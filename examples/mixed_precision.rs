//! Mixed precision as a *complementary* memory lever.
//!
//! ```sh
//! cargo run --release -p capuchin --example mixed_precision
//! ```
//!
//! The paper deliberately excludes low-precision training ("it is not
//! always easy to analyze the effects ... on the final training accuracy",
//! §1) — but the substrate supports it: activations can be declared `f16`
//! and every downstream layer inherits the type, halving feature-map
//! bytes. This example shows fp16 roughly doubling the feasible batch and
//! Capuchin stacking on top for another multiple — the two techniques are
//! orthogonal, exactly as the paper argues.

use capuchin::Capuchin;
use capuchin_executor::{Engine, EngineConfig, MemoryPolicy, TfOri};
use capuchin_graph::Graph;
use capuchin_models::Model;
use capuchin_sim::DeviceSpec;
use capuchin_tensor::{DType, Shape};

fn cnn(batch: usize, dtype: DType) -> Model {
    let mut g = Graph::new("precision-demo");
    let x = g.input("images", Shape::nchw(batch, 3, 64, 64), dtype);
    let labels = g.input("labels", Shape::vector(batch), DType::I32);
    let mut h = x;
    for (i, ch) in [32usize, 32, 64, 64, 128, 128].iter().enumerate() {
        h = g.conv2d(&format!("conv{i}"), h, *ch, 3, 1, 1);
        h = g.batch_norm(&format!("bn{i}"), h);
        h = g.relu(&format!("relu{i}"), h);
        if i % 2 == 1 {
            h = g.max_pool(&format!("pool{i}"), h, 2, 2, 0);
        }
    }
    let gap = g.global_avg_pool("gap", h);
    let logits = g.dense("fc", gap, 10);
    let loss = g.softmax_cross_entropy("loss", logits, labels);
    Model::finish(g, loss, batch)
}

fn max_batch(dtype: DType, policy: fn() -> Box<dyn MemoryPolicy>, budget: u64) -> usize {
    let fits = |b: usize| -> bool {
        let model = cnn(b, dtype);
        let cfg = EngineConfig {
            spec: DeviceSpec::p100_pcie3().with_memory(budget),
            ..EngineConfig::default()
        };
        Engine::new(&model.graph, cfg, policy()).run(6).is_ok()
    };
    let (mut lo, mut hi) = (1usize, 2usize);
    while fits(hi) {
        lo = hi;
        hi *= 2;
    }
    while hi - lo > (lo / 50).max(1) {
        let mid = (lo + hi) / 2;
        if fits(mid) {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    lo
}

fn main() {
    let budget = 1u64 << 30; // 1 GiB device
    println!("6-conv CNN on a 1 GiB device: maximum batch size\n");
    let tf: fn() -> Box<dyn MemoryPolicy> = || Box::new(TfOri::new());
    let cap: fn() -> Box<dyn MemoryPolicy> = || Box::new(Capuchin::new());
    let fp32 = max_batch(DType::F32, tf, budget);
    let fp16 = max_batch(DType::F16, tf, budget);
    let fp32_cap = max_batch(DType::F32, cap, budget);
    let fp16_cap = max_batch(DType::F16, cap, budget);
    println!("  fp32 activations, no manager : {fp32}");
    println!(
        "  fp16 activations, no manager : {fp16}  ({:.2}x)",
        fp16 as f64 / fp32 as f64
    );
    println!(
        "  fp32 activations + Capuchin  : {fp32_cap}  ({:.2}x)",
        fp32_cap as f64 / fp32 as f64
    );
    println!(
        "  fp16 activations + Capuchin  : {fp16_cap}  ({:.2}x)",
        fp16_cap as f64 / fp32 as f64
    );
    println!("\nthe two levers stack, up to the bound set by the un-shrinkable working set.");
}
