//! Quickstart: train a small CNN under memory pressure with Capuchin.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! Builds a ResNet-50 training graph, shrinks the simulated GPU until the
//! workload no longer fits, and shows Capuchin rescuing the run: the first
//! iteration executes in passive mode (on-demand eviction), the measured
//! execution derives a swap/recompute plan, and guided iterations run with
//! almost no stall.

use capuchin::Capuchin;
use capuchin_executor::{Engine, EngineConfig, ExecError, TfOri};
use capuchin_models::ModelKind;
use capuchin_sim::DeviceSpec;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let batch = 32;
    let model = ModelKind::ResNet50.build(batch);
    println!(
        "ResNet-50 @ batch {batch}: {} ops, {} parameters",
        model.graph.op_count(),
        model.graph.param_count()
    );

    // How much memory does vanilla execution need?
    let mut free = Engine::new(
        &model.graph,
        EngineConfig::default(),
        Box::new(TfOri::new()),
    );
    let stats = free.run(2)?;
    let peak = stats.iters.last().unwrap().peak_mem;
    let base_wall = stats.iters.last().unwrap().wall();
    println!(
        "unconstrained: peak {:.2} GiB, {:.1} ms/iteration ({:.1} images/sec)",
        peak as f64 / (1 << 30) as f64,
        base_wall.as_millis_f64(),
        batch as f64 / base_wall.as_secs_f64(),
    );

    // Give the device only 60% of that and watch TF-ori die...
    let budget = peak * 60 / 100;
    let cfg = EngineConfig {
        spec: DeviceSpec::p100_pcie3().with_memory(budget),
        ..EngineConfig::default()
    };
    let mut tf = Engine::new(&model.graph, cfg.clone(), Box::new(TfOri::new()));
    match tf.run(1) {
        Err(ExecError::Oom { op, .. }) => {
            println!(
                "\nTF-ori at a {:.2} GiB budget: OOM at op `{op}` — as expected",
                budget as f64 / (1 << 30) as f64
            )
        }
        other => println!("unexpected: {other:?}"),
    }

    // ...while Capuchin adapts.
    let mut eng = Engine::new(&model.graph, cfg, Box::new(Capuchin::new()));
    let stats = eng.run(8)?;
    println!("\nCapuchin at the same budget:");
    for it in &stats.iters {
        println!(
            "  iter {:>2}: {:>7.1} ms  (swapped out {:>6.1} MiB, recomputed {:>3} kernels, \
             passive evictions {:>2}, stall {:>6.1} ms)",
            it.iter,
            it.wall().as_millis_f64(),
            it.swap_out_bytes as f64 / (1 << 20) as f64,
            it.recompute_kernels,
            it.passive_evictions,
            it.stall_time.as_millis_f64(),
        );
    }
    let last = stats.iters.last().unwrap();
    println!(
        "\nsteady state: {:.1} ms/iteration = {:.1}% of unconstrained speed at 60% of the memory",
        last.wall().as_millis_f64(),
        100.0 * base_wall.as_secs_f64() / last.wall().as_secs_f64(),
    );

    // The plan that made it possible:
    let cap = eng
        .policy()
        .as_any()
        .and_then(|a| a.downcast_ref::<Capuchin>())
        .expect("policy is Capuchin");
    println!("plan: {}", cap.plan().summary());
    Ok(())
}
