//! Train BERT-Base at batch sizes far beyond device memory.
//!
//! ```sh
//! cargo run --release --example bert_large_batch
//! ```
//!
//! The paper's headline NLP result: on a 16 GB P100, original TensorFlow
//! trains BERT at batch 64 while Capuchin reaches ~450 (7×). This example
//! sweeps the batch size upward and reports how the hybrid policy shifts
//! from "do nothing" to swap to swap+recompute.

use capuchin::Capuchin;
use capuchin_executor::{Engine, EngineConfig, TfOri};
use capuchin_models::ModelKind;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("BERT-Base MLM training on a simulated 16 GiB P100\n");
    println!(
        "{:>6} {:>10} {:>12} {:>12} {:>12} {:>10}",
        "batch", "TF-ori", "Capuchin", "swapped", "recomputed", "stall"
    );

    for batch in [64usize, 128, 192, 256, 320, 384, 440] {
        let model = ModelKind::BertBase.build(batch);

        let tf = {
            let mut eng = Engine::new(
                &model.graph,
                EngineConfig::default(),
                Box::new(TfOri::new()),
            );
            eng.run(3)
                .ok()
                .map(|s| batch as f64 / s.iters.last().unwrap().wall().as_secs_f64())
        };

        let mut eng = Engine::new(
            &model.graph,
            EngineConfig::default(),
            Box::new(Capuchin::new()),
        );
        match eng.run(10) {
            Ok(stats) => {
                let last = stats.iters.last().unwrap();
                println!(
                    "{batch:>6} {:>10} {:>10.1}/s {:>9.1} GiB {:>10} ops {:>8.0} ms",
                    tf.map(|t| format!("{t:.1}/s"))
                        .unwrap_or_else(|| "OOM".into()),
                    batch as f64 / last.wall().as_secs_f64(),
                    last.swap_out_bytes as f64 / (1 << 30) as f64,
                    last.recompute_kernels,
                    last.stall_time.as_millis_f64(),
                );
            }
            Err(e) => {
                println!("{batch:>6} {:>10} Capuchin: {e}", "OOM");
                break;
            }
        }
    }
    println!("\n(paper Table 2: TF-ori max 64, Capuchin max 450 — a 7x larger batch)");
    Ok(())
}
