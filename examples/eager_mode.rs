//! Eager (imperative) execution: the mode no prior memory manager could
//! optimize (paper §6.4).
//!
//! ```sh
//! cargo run --release --example eager_mode
//! ```
//!
//! Runs DenseNet-121 in eager mode, where per-op dispatch overhead slows
//! execution and interpreter-held intermediates inflate memory. Capuchin
//! needs no computation graph — it works purely from the runtime tensor
//! access stream — so it is the only policy that functions here.

use capuchin::Capuchin;
use capuchin_executor::{Engine, EngineConfig, ExecMode, TfOri};
use capuchin_models::ModelKind;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cfg = EngineConfig {
        mode: ExecMode::eager_default(),
        ..EngineConfig::default()
    };

    println!("DenseNet-121, eager mode, simulated 16 GiB P100\n");
    println!("{:>6} {:>12} {:>12}", "batch", "TF-ori", "Capuchin");
    for batch in [50usize, 70, 90, 110, 130, 150, 170, 190] {
        let model = ModelKind::DenseNet121.build(batch);
        let tf = {
            let mut eng = Engine::new(&model.graph, cfg.clone(), Box::new(TfOri::new()));
            eng.run(3)
                .ok()
                .map(|s| batch as f64 / s.iters.last().unwrap().wall().as_secs_f64())
        };
        let cap = {
            let mut eng = Engine::new(&model.graph, cfg.clone(), Box::new(Capuchin::new()));
            eng.run(8)
                .ok()
                .map(|s| batch as f64 / s.iters.last().unwrap().wall().as_secs_f64())
        };
        let fmt = |v: Option<f64>| {
            v.map(|t| format!("{t:.1}/s"))
                .unwrap_or_else(|| "OOM".into())
        };
        println!("{batch:>6} {:>12} {:>12}", fmt(tf), fmt(cap));
    }
    println!("\n(paper Table 3: TF eager max 70, Capuchin 190; Fig. 10(b): DenseNet's");
    println!(" throughput *rises* with batch as GPU utilization climbs)");
    Ok(())
}
