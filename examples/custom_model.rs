//! Bring your own network: build a custom graph with the builder API and
//! manage it with any memory policy — no apriori knowledge of the
//! architecture required (the paper's "computation graph agnostic" claim).
//!
//! ```sh
//! cargo run --release --example custom_model
//! ```
//!
//! Defines a little U-Net-ish encoder/decoder with skip connections — an
//! architecture none of the built-in policies were tuned for — then
//! compares TF-ori, gradient checkpointing, and Capuchin on it under a
//! tight memory budget.

use capuchin::Capuchin;
use capuchin_baselines::{CheckpointMode, GradientCheckpointing};
use capuchin_executor::{Engine, EngineConfig, MemoryPolicy, TfOri};
use capuchin_graph::{Graph, ValueId};
use capuchin_models::Model;
use capuchin_sim::DeviceSpec;
use capuchin_tensor::{DType, Shape};

/// conv + bn + relu.
fn block(g: &mut Graph, name: &str, x: ValueId, ch: usize, stride: usize) -> ValueId {
    let c = g.conv2d(&format!("{name}/conv"), x, ch, 3, stride, 1);
    let b = g.batch_norm(&format!("{name}/bn"), c);
    g.relu(&format!("{name}/relu"), b)
}

fn unet(batch: usize) -> Model {
    let mut g = Graph::new("mini-unet");
    let x = g.input("images", Shape::nchw(batch, 3, 128, 128), DType::F32);
    let labels = g.input("labels", Shape::vector(batch), DType::I32);

    // Encoder with skips, two blocks per scale so stored feature maps
    // dwarf any single op's working set (the regime memory managers help).
    let e1 = block(&mut g, "enc1a", x, 32, 1); // 128
    let e1 = block(&mut g, "enc1b", e1, 32, 1);
    let e2 = block(&mut g, "enc2a", e1, 64, 2); // 64
    let e2 = block(&mut g, "enc2b", e2, 64, 1);
    let e3 = block(&mut g, "enc3a", e2, 128, 2); // 32
    let e3 = block(&mut g, "enc3b", e3, 128, 1);
    let e4 = block(&mut g, "enc4a", e3, 256, 2); // 16
    let e4 = block(&mut g, "enc4b", e4, 256, 1);

    // Bottleneck.
    let mid = block(&mut g, "mid_a", e4, 256, 1);
    let mid = block(&mut g, "mid_b", mid, 256, 1);

    // Decoder with skip concats (spatial kept; upsampling is immaterial
    // to the memory behaviour being demonstrated).
    let d3 = block(&mut g, "dec3_pre", mid, 256, 1);
    let d3 = g.concat("skip3", &[d3, e4], 1);
    let d3 = block(&mut g, "dec3a", d3, 128, 1);
    let d3 = block(&mut g, "dec3b", d3, 128, 1);
    let d2_pre = block(&mut g, "dec2_pre", d3, 128, 1);
    let d2 = g.concat("skip2", &[d2_pre, e4], 1);
    let d2 = block(&mut g, "dec2a", d2, 64, 1);
    let d2 = block(&mut g, "dec2b", d2, 64, 1);

    let gap = g.global_avg_pool("gap", d2);
    let logits = g.dense("head", gap, 10);
    let loss = g.softmax_cross_entropy("loss", logits, labels);
    // Model::finish appends the backward pass (autodiff) and validates.
    Model::finish(g, loss, batch)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let batch = 64;
    let model = unet(batch);
    println!(
        "mini-unet @ batch {batch}: {} ops, {:.1} M parameters\n",
        model.graph.op_count(),
        model.graph.param_count() as f64 / 1e6
    );

    // Find its natural peak, then squeeze to 55%.
    let mut free = Engine::new(
        &model.graph,
        EngineConfig::default(),
        Box::new(TfOri::new()),
    );
    let peak = free.run(2)?.iters.last().unwrap().peak_mem;
    let weights = model.graph.param_count() * 4;
    let budget = weights + (peak - weights) * 70 / 100;
    println!(
        "peak {:.0} MiB; budget {:.0} MiB (70% of transient)\n",
        peak as f64 / (1 << 20) as f64,
        budget as f64 / (1 << 20) as f64
    );

    let cfg = EngineConfig {
        spec: DeviceSpec::p100_pcie3().with_memory(budget),
        ..EngineConfig::default()
    };
    let policies: Vec<(&str, Box<dyn MemoryPolicy>)> = vec![
        ("TF-ori", Box::new(TfOri::new())),
        (
            "OpenAI-M",
            Box::new(GradientCheckpointing::from_graph(
                &model.graph,
                CheckpointMode::Memory,
            )),
        ),
        ("Capuchin", Box::new(Capuchin::new())),
    ];
    for (name, policy) in policies {
        let mut eng = Engine::new(&model.graph, cfg.clone(), policy);
        match eng.run(8) {
            Ok(stats) => {
                let last = stats.iters.last().unwrap();
                println!(
                    "{name:>9}: {:>7.1} ms/iter ({:.0} images/sec)",
                    last.wall().as_millis_f64(),
                    batch as f64 / last.wall().as_secs_f64()
                );
            }
            Err(e) => println!("{name:>9}: {e}"),
        }
    }
    Ok(())
}
