//! Cross-crate integration tests: the full stack (models → executor →
//! policies) exercised end to end, including the invariants that tie the
//! whole reproduction together.

use capuchin::{Capuchin, CapuchinConfig};
use capuchin_baselines::{CheckpointMode, GradientCheckpointing, TfOri, Vdnn};
use capuchin_executor::{Engine, EngineConfig, ExecMode, MemoryPolicy};
use capuchin_models::ModelKind;
use capuchin_sim::DeviceSpec;

fn cfg(mem_mb: u64) -> EngineConfig {
    EngineConfig {
        spec: DeviceSpec::p100_pcie3().with_memory(mem_mb << 20),
        ..EngineConfig::default()
    }
}

/// Every workload × every policy completes at a small batch with ample
/// memory, and all policies agree on iteration time when memory is
/// plentiful (no policy should slow an unconstrained run).
#[test]
fn all_models_all_policies_unconstrained() {
    for kind in ModelKind::ALL {
        let model = kind.build(2);
        let mut baseline = None;
        let policies: Vec<Box<dyn MemoryPolicy>> = vec![
            Box::new(TfOri::new()),
            Box::new(Vdnn::from_graph(&model.graph)),
            Box::new(GradientCheckpointing::from_graph(
                &model.graph,
                CheckpointMode::Memory,
            )),
            Box::new(Capuchin::new()),
        ];
        for policy in policies {
            let name = policy.name().to_owned();
            let mut eng = Engine::new(&model.graph, cfg(16 << 10), policy);
            let stats = eng
                .run(3)
                .unwrap_or_else(|e| panic!("{kind} under {name}: {e}"));
            let wall = stats.iters.last().unwrap().wall();
            match (&name[..], baseline) {
                ("tf-ori", _) => baseline = Some(wall),
                // Capuchin must add zero overhead when nothing is evicted.
                ("capuchin", Some(base)) => {
                    assert_eq!(
                        wall, base,
                        "{kind}: capuchin must match tf-ori unconstrained"
                    )
                }
                _ => {}
            }
        }
    }
}

/// The paper's central comparison at one oversubscribed operating point:
/// Capuchin survives and beats the baselines that survive.
#[test]
fn oversubscribed_ordering_resnet50() {
    let model = ModelKind::ResNet50.build(48);
    // ~2.6 GiB: roughly 65% of what batch 48 wants.
    let budget_mb = 2_600;

    let mut tf = Engine::new(&model.graph, cfg(budget_mb), Box::new(TfOri::new()));
    assert!(tf.run(1).is_err(), "tf-ori must OOM");

    let run = |policy: Box<dyn MemoryPolicy>, iters| -> Option<f64> {
        let mut eng = Engine::new(&model.graph, cfg(budget_mb), policy);
        eng.run(iters)
            .ok()
            .map(|s| s.iters.last().unwrap().wall().as_secs_f64())
    };
    let cap = run(Box::new(Capuchin::new()), 10).expect("capuchin survives");
    let ck = run(
        Box::new(GradientCheckpointing::from_graph(
            &model.graph,
            CheckpointMode::Memory,
        )),
        3,
    );
    if let Some(ck) = ck {
        assert!(
            cap <= ck * 1.05,
            "capuchin ({cap:.4}s) should not lose to checkpointing ({ck:.4}s)"
        );
    }
}

/// Signatures guarantee swap and recomputation never corrupt tensor
/// contents — across every policy and a full training run. (The engine
/// asserts internally; completing is the proof.)
#[test]
fn data_integrity_under_heavy_management() {
    let model = ModelKind::InceptionV3.build(8);
    let weights = model.graph.param_count() * 4;
    let mut free = Engine::new(&model.graph, cfg(16 << 10), Box::new(TfOri::new()));
    let peak = free.run(2).unwrap().iters.last().unwrap().peak_mem;
    let budget_mb = (weights + (peak - weights) * 55 / 100) >> 20;
    let mut eng = Engine::new(&model.graph, cfg(budget_mb), Box::new(Capuchin::new()));
    let stats = eng.run(10).expect("survives at 55% transient budget");
    let last = stats.iters.last().unwrap();
    assert!(last.swap_out_bytes > 0 || last.recompute_kernels > 0);
}

/// Eager mode works end to end and costs more than graph mode, for every
/// policy that supports it (i.e. Capuchin and the no-op baseline).
#[test]
fn eager_mode_end_to_end() {
    let model = ModelKind::ResNet50.build(8);
    let graph_wall = {
        let mut eng = Engine::new(&model.graph, cfg(16 << 10), Box::new(TfOri::new()));
        eng.run(2).unwrap().iters.last().unwrap().wall()
    };
    let eager_cfg = EngineConfig {
        mode: ExecMode::eager_default(),
        ..cfg(16 << 10)
    };
    let mut eng = Engine::new(&model.graph, eager_cfg, Box::new(Capuchin::new()));
    let eager_wall = eng.run(3).unwrap().iters.last().unwrap().wall();
    assert!(eager_wall > graph_wall);
}

/// Ablation switches produce distinguishable behaviour.
#[test]
fn capuchin_config_switches_matter() {
    let model = ModelKind::ResNet50.build(24);
    let budget = cfg(1_600);
    let swap_only = {
        let mut eng = Engine::new(
            &model.graph,
            budget.clone(),
            Box::new(Capuchin::with_config(CapuchinConfig::swap_only())),
        );
        eng.run(8).expect("swap-only survives")
    };
    let rec_only = {
        let mut eng = Engine::new(
            &model.graph,
            budget,
            Box::new(Capuchin::with_config(CapuchinConfig::recompute_only())),
        );
        eng.run(8).expect("recompute-only survives")
    };
    assert_eq!(swap_only.iters.last().unwrap().recompute_kernels, 0);
    assert!(rec_only.iters.last().unwrap().recompute_kernels > 0);
    assert!(swap_only.iters.last().unwrap().swap_out_bytes > 0);
}
