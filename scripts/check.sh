#!/usr/bin/env bash
# Repo-wide checks: formatting, lints, and the tier-1 build+test gate.
# Run from the repository root. Fails fast on the first broken check.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo doc --workspace --no-deps (deny warnings)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

echo "==> tier-1: cargo build --release && cargo test -q"
cargo build --release
cargo test -q

echo "==> smoke: cluster_gang bench (gang placement + interconnect model)"
cargo run --release -q -p capuchin-bench --bin cluster_gang -- --smoke

echo "==> smoke: cluster_gang per-tensor transfer path (shared PCIe fabric)"
cargo run --release -q -p capuchin-bench --bin cluster_gang -- --smoke --interconnect pcie

echo "==> smoke: trace_export round-trip (emitted Chrome trace must parse)"
cargo run --release -q -p capuchin-bench --bin trace_export -- --smoke

echo "==> smoke: cluster_elastic shrink-then-regrow cycle"
cargo run --release -q -p capuchin-bench --bin cluster_elastic -- --smoke

echo "==> smoke: serve daemon, in-process (TCP submit/subscribe/drain, stats byte-identity)"
cargo run --release -q -p capuchin-bench --bin serve_smoke -- --smoke

echo "==> smoke: cluster_scale wall-clock-per-job guard (vs committed baseline, 2x soft limit)"
cargo run --release -q -p capuchin-bench --bin cluster_scale -- --smoke

echo "==> smoke: cluster_mixed SLO-attainment guard (burst-absorption cycle + committed floor)"
cargo run --release -q -p capuchin-bench --bin cluster_mixed -- --smoke

echo "==> smoke: ablations policy matrix (registry invariants + pre-registry fixture identity)"
cargo run --release -q -p capuchin-bench --bin ablations -- --smoke

echo "==> smoke: cluster_predict warm-key validation ceiling (predicted admission stays measurement-free)"
cargo run --release -q -p capuchin-bench --bin cluster_predict -- --smoke

echo "==> smoke: serve daemon, external process on an ephemeral port"
serve_log="$(mktemp)"
./target/release/capuchin-serve --addr 127.0.0.1:0 --clock virtual \
  --gpus 2 --admission tf-ori --elastic on > "$serve_log" &
serve_pid=$!
trap 'kill "$serve_pid" 2>/dev/null || true; rm -f "$serve_log"' EXIT
for _ in $(seq 1 50); do
  grep -q 'listening on ' "$serve_log" && break
  sleep 0.1
done
serve_addr="$(grep -oE '127\.0\.0\.1:[0-9]+' "$serve_log" | head -1)"
[ -n "$serve_addr" ] || { echo "capuchin-serve never reported its address"; exit 1; }
./target/release/serve_smoke --connect "$serve_addr"
wait "$serve_pid"   # shutdown op must terminate the daemon cleanly
trap - EXIT
rm -f "$serve_log"

echo "==> all checks passed"
