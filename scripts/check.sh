#!/usr/bin/env bash
# Repo-wide checks: formatting, lints, and the tier-1 build+test gate.
# Run from the repository root. Fails fast on the first broken check.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo doc --workspace --no-deps (deny warnings)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

echo "==> tier-1: cargo build --release && cargo test -q"
cargo build --release
cargo test -q

echo "==> smoke: cluster_gang bench (gang placement + interconnect model)"
cargo run --release -q -p capuchin-bench --bin cluster_gang -- --smoke

echo "==> smoke: cluster_gang per-tensor transfer path (shared PCIe fabric)"
cargo run --release -q -p capuchin-bench --bin cluster_gang -- --smoke --interconnect pcie

echo "==> smoke: trace_export round-trip (emitted Chrome trace must parse)"
cargo run --release -q -p capuchin-bench --bin trace_export -- --smoke

echo "==> smoke: cluster_elastic shrink-then-regrow cycle"
cargo run --release -q -p capuchin-bench --bin cluster_elastic -- --smoke

echo "==> all checks passed"
