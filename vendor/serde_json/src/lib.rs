//! Offline stand-in for `serde_json`: a thin facade over the vendored
//! value-tree `serde` and its JSON renderer/parser.

pub use serde::{Error, Value};

use serde::{text, Deserialize, Serialize};

/// Serializes `value` as compact JSON.
///
/// # Errors
///
/// Infallible in this stub; `Result` is kept for API compatibility.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(text::render_compact(&value.to_value()))
}

/// Serializes `value` as pretty-printed JSON (2-space indent).
///
/// # Errors
///
/// Infallible in this stub; `Result` is kept for API compatibility.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(text::render_pretty(&value.to_value()))
}

/// Parses JSON text into a `T`.
///
/// # Errors
///
/// Returns [`Error`] on malformed JSON or a shape mismatch.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    T::from_value(&text::parse(s)?)
}

/// Converts any serializable value into a [`Value`] tree.
///
/// # Errors
///
/// Infallible in this stub; `Result` is kept for API compatibility.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Result<Value, Error> {
    Ok(value.to_value())
}

/// Rebuilds a `T` from a [`Value`] tree.
///
/// # Errors
///
/// Returns [`Error`] on a shape mismatch.
pub fn from_value<T: Deserialize>(v: &Value) -> Result<T, Error> {
    T::from_value(v)
}
