//! Offline stand-in for `criterion`, vendored because this build
//! environment has no network access to crates.io.
//!
//! Runs each benchmark a fixed number of iterations and prints the mean
//! wall-clock time — no warm-up analysis, outlier rejection, or HTML
//! reports. Enough to keep `cargo bench` working and give ballpark
//! numbers.

use std::time::{Duration, Instant};

/// How `iter_batched` amortizes setup cost. The stub runs one routine per
/// setup regardless; the variants exist for API compatibility.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

/// Prevents the optimizer from deleting a value or the work producing it.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// The benchmark driver.
pub struct Criterion {
    iters: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        let iters = std::env::var("CRITERION_STUB_ITERS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(10);
        Criterion { iters }
    }
}

impl Criterion {
    /// Times `f` and prints the mean per-iteration wall time.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            iters: self.iters,
            elapsed: Duration::ZERO,
            timed: 0,
        };
        f(&mut b);
        let mean = if b.timed > 0 {
            b.elapsed / u32::try_from(b.timed).unwrap_or(u32::MAX)
        } else {
            Duration::ZERO
        };
        println!("bench: {name:<45} {mean:>12.2?}/iter ({} iters)", b.timed);
        self
    }
}

/// Times the routine under measurement.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
    timed: u64,
}

impl Bencher {
    /// Times `routine` run back-to-back.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..self.iters {
            let t = Instant::now();
            black_box(routine());
            self.elapsed += t.elapsed();
            self.timed += 1;
        }
    }

    /// Times `routine` on fresh inputs from `setup`; setup is untimed.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..self.iters {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            self.elapsed += t.elapsed();
            self.timed += 1;
        }
    }
}

/// Declares a benchmark group runner, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the benchmark `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
