//! Offline stand-in for `rand`, vendored because this build environment
//! has no network access to crates.io. Provides a deterministic seedable
//! generator with the handful of methods callers typically need.

use std::ops::Range;

/// A generator seedable from a `u64`.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// The random-value surface shared by all generators.
pub trait Rng {
    /// The next 64 pseudo-random bits.
    fn next_u64(&mut self) -> u64;

    /// A uniform value in `range`.
    fn gen_range(&mut self, range: Range<u64>) -> u64 {
        assert!(range.start < range.end, "empty range");
        range.start + self.next_u64() % (range.end - range.start)
    }

    /// A uniform float in `[0, 1)`.
    fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// A splitmix64 generator (used for both `StdRng` and `SmallRng`).
#[derive(Debug, Clone)]
pub struct StdRng {
    state: u64,
}

/// Alias: the stub does not distinguish small and standard generators.
pub type SmallRng = StdRng;

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        StdRng { state: seed }
    }
}

impl Rng for StdRng {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

pub mod rngs {
    //! Generator types, mirroring `rand::rngs`.
    pub use crate::{SmallRng, StdRng};
}

pub mod prelude {
    //! The glob-import surface.
    pub use crate::{Rng, SeedableRng, SmallRng, StdRng};
}
