//! Offline stand-in for `serde_derive`, written against `proc_macro`
//! directly (no syn/quote — neither is available in this build
//! environment).
//!
//! Supports plain (non-generic) structs and enums without `#[serde(...)]`
//! attributes, which is exactly what this workspace uses. The generated
//! impls target the vendored value-tree `serde`:
//!
//! * named struct  → `Value::Object` in declaration order;
//! * newtype struct → the inner value;
//! * tuple struct  → `Value::Array`;
//! * enum          → externally tagged (`"Unit"` / `{"Variant": data}`).

use proc_macro::{Delimiter, TokenStream, TokenTree};

// ---------------------------------------------------------------------
// Item model + parsing
// ---------------------------------------------------------------------

enum Fields {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

struct Variant {
    name: String,
    fields: Fields,
}

enum Item {
    Struct {
        name: String,
        fields: Fields,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

/// Splits a token sequence at top-level commas. Tracks `<`/`>` depth so a
/// comma inside `HashMap<K, V>` does not split; `->` is ignored.
fn split_commas(tokens: Vec<TokenTree>) -> Vec<Vec<TokenTree>> {
    let mut chunks = vec![Vec::new()];
    let mut angle: i32 = 0;
    let mut prev_punct = ' ';
    for t in tokens {
        let mut c = ' ';
        if let TokenTree::Punct(p) = &t {
            c = p.as_char();
            match c {
                '<' => angle += 1,
                '>' if prev_punct != '-' => angle = (angle - 1).max(0),
                ',' if angle == 0 => {
                    chunks.push(Vec::new());
                    prev_punct = c;
                    continue;
                }
                _ => {}
            }
        }
        prev_punct = c;
        chunks.last_mut().unwrap().push(t);
    }
    chunks.retain(|c| !c.is_empty());
    chunks
}

/// Strips leading `#[...]` attributes and a `pub` / `pub(...)` visibility
/// from the front of a token chunk.
fn skip_attrs_and_vis(tokens: &mut Vec<TokenTree>) {
    loop {
        match tokens.first() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                tokens.remove(0);
                match tokens.first() {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {
                        tokens.remove(0);
                    }
                    _ => panic!("serde derive: malformed attribute"),
                }
            }
            Some(TokenTree::Ident(i)) if i.to_string() == "pub" => {
                tokens.remove(0);
                if let Some(TokenTree::Group(g)) = tokens.first() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        tokens.remove(0);
                    }
                }
            }
            _ => return,
        }
    }
}

fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    split_commas(stream.into_iter().collect())
        .into_iter()
        .map(|mut chunk| {
            skip_attrs_and_vis(&mut chunk);
            match chunk.first() {
                Some(TokenTree::Ident(i)) => i.to_string(),
                _ => panic!("serde derive: expected a field name"),
            }
        })
        .collect()
}

fn parse_item(input: TokenStream) -> Item {
    let mut tokens: Vec<TokenTree> = input.into_iter().collect();
    skip_attrs_and_vis(&mut tokens);
    let mut it = tokens.into_iter().peekable();

    let kind = match it.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => panic!("serde derive: expected `struct` or `enum`, got {other:?}"),
    };
    let name = match it.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => panic!("serde derive: expected a type name, got {other:?}"),
    };
    if matches!(it.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde derive: generic types are not supported by the vendored stub");
    }

    match (kind.as_str(), it.next()) {
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => {
            Item::Struct {
                name,
                fields: Fields::Named(parse_named_fields(g.stream())),
            }
        }
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Parenthesis => {
            Item::Struct {
                name,
                fields: Fields::Tuple(split_commas(g.stream().into_iter().collect()).len()),
            }
        }
        ("struct", Some(TokenTree::Punct(p))) if p.as_char() == ';' => Item::Struct {
            name,
            fields: Fields::Unit,
        },
        ("enum", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => {
            let variants = split_commas(g.stream().into_iter().collect())
                .into_iter()
                .map(|mut chunk| {
                    skip_attrs_and_vis(&mut chunk);
                    let vname = match chunk.first() {
                        Some(TokenTree::Ident(i)) => i.to_string(),
                        _ => panic!("serde derive: expected a variant name"),
                    };
                    let fields = match chunk.get(1) {
                        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                            Fields::Named(parse_named_fields(g.stream()))
                        }
                        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                            Fields::Tuple(split_commas(g.stream().into_iter().collect()).len())
                        }
                        _ => Fields::Unit, // bare variant, possibly `= discriminant`
                    };
                    Variant {
                        name: vname,
                        fields,
                    }
                })
                .collect();
            Item::Enum { name, variants }
        }
        (k, t) => panic!("serde derive: unsupported item shape ({k}, {t:?})"),
    }
}

// ---------------------------------------------------------------------
// Serialize codegen
// ---------------------------------------------------------------------

fn named_to_object(fields: &[String], access: impl Fn(&str) -> String) -> String {
    let entries: Vec<String> = fields
        .iter()
        .map(|f| {
            format!(
                "({:?}.to_string(), ::serde::Serialize::to_value({}))",
                f,
                access(f)
            )
        })
        .collect();
    format!("::serde::Value::Object(vec![{}])", entries.join(", "))
}

fn derive_serialize_src(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Unit => "::serde::Value::Null".to_string(),
                Fields::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
                Fields::Tuple(n) => {
                    let items: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                        .collect();
                    format!("::serde::Value::Array(vec![{}])", items.join(", "))
                }
                Fields::Named(fs) => named_to_object(fs, |f| format!("&self.{f}")),
            };
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.fields {
                        Fields::Unit => format!(
                            "{name}::{vn} => ::serde::Value::Str({vn:?}.to_string()),"
                        ),
                        Fields::Tuple(n) => {
                            let binds: Vec<String> =
                                (0..*n).map(|i| format!("__f{i}")).collect();
                            let content = if *n == 1 {
                                "::serde::Serialize::to_value(__f0)".to_string()
                            } else {
                                let items: Vec<String> = binds
                                    .iter()
                                    .map(|b| format!("::serde::Serialize::to_value({b})"))
                                    .collect();
                                format!("::serde::Value::Array(vec![{}])", items.join(", "))
                            };
                            format!(
                                "{name}::{vn}({}) => ::serde::Value::Object(vec![({vn:?}.to_string(), {content})]),",
                                binds.join(", ")
                            )
                        }
                        Fields::Named(fs) => {
                            let content = named_to_object(fs, |f| f.to_string());
                            format!(
                                "{name}::{vn} {{ {} }} => ::serde::Value::Object(vec![({vn:?}.to_string(), {content})]),",
                                fs.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         match self {{\n{}\n}}\n\
                     }}\n\
                 }}",
                arms.join("\n")
            )
        }
    }
}

// ---------------------------------------------------------------------
// Deserialize codegen
// ---------------------------------------------------------------------

/// Field initializer that tolerates a missing key when the field type
/// accepts `null` (e.g. `Option<T>`), and reports `missing field`
/// otherwise.
fn named_field_init(source: &str, field: &str) -> String {
    format!(
        "{field}: match ::serde::Value::get({source}, {field:?}) {{\n\
             Some(__x) => ::serde::Deserialize::from_value(__x)?,\n\
             None => ::serde::Deserialize::from_value(&::serde::Value::Null)\n\
                 .map_err(|_| ::serde::Error::custom(concat!(\"missing field `\", {field:?}, \"`\")))?,\n\
         }},"
    )
}

fn tuple_from_array(ctor: &str, source: &str, n: usize, what: &str) -> String {
    let items: Vec<String> = (0..n)
        .map(|i| format!("::serde::Deserialize::from_value(&__items[{i}])?"))
        .collect();
    format!(
        "{{\n\
             let __items = {source}.as_array().ok_or_else(|| ::serde::Error::custom(\n\
                 concat!(\"expected an array for `\", {what:?}, \"`\")))?;\n\
             if __items.len() != {n} {{\n\
                 return Err(::serde::Error::custom(concat!(\n\
                     \"expected an array of length {n} for `\", {what:?}, \"`\")));\n\
             }}\n\
             Ok({ctor}({}))\n\
         }}",
        items.join(", ")
    )
}

fn derive_deserialize_src(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Unit => format!("{{ let _ = v; Ok({name}) }}"),
                Fields::Tuple(1) => {
                    format!("Ok({name}(::serde::Deserialize::from_value(v)?))")
                }
                Fields::Tuple(n) => tuple_from_array(name, "v", *n, name),
                Fields::Named(fs) => {
                    let inits: Vec<String> = fs.iter().map(|f| named_field_init("v", f)).collect();
                    format!(
                        "{{\n\
                             if v.as_object().is_none() {{\n\
                                 return Err(::serde::Error::custom(concat!(\n\
                                     \"expected an object for `\", {name:?}, \"`\")));\n\
                             }}\n\
                             Ok({name} {{\n{}\n}})\n\
                         }}",
                        inits.join("\n")
                    )
                }
            };
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> Result<Self, ::serde::Error> {{ {body} }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.fields, Fields::Unit))
                .map(|v| format!("{0:?} => return Ok({name}::{0}),", v.name))
                .collect();
            let data_arms: Vec<String> = variants
                .iter()
                .filter_map(|v| {
                    let vn = &v.name;
                    match &v.fields {
                        Fields::Unit => None,
                        Fields::Tuple(1) => Some(format!(
                            "{vn:?} => return Ok({name}::{vn}(::serde::Deserialize::from_value(_content)?)),"
                        )),
                        Fields::Tuple(n) => Some(format!(
                            "{vn:?} => return {},",
                            tuple_from_array(&format!("{name}::{vn}"), "_content", *n, vn)
                        )),
                        Fields::Named(fs) => {
                            let inits: Vec<String> = fs
                                .iter()
                                .map(|f| named_field_init("_content", f))
                                .collect();
                            Some(format!(
                                "{vn:?} => return Ok({name}::{vn} {{\n{}\n}}),",
                                inits.join("\n")
                            ))
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> Result<Self, ::serde::Error> {{\n\
                         if let Some(__s) = v.as_str() {{\n\
                             match __s {{\n\
                                 {units}\n\
                                 _ => {{}}\n\
                             }}\n\
                         }}\n\
                         if let Some(__entries) = v.as_object() {{\n\
                             if __entries.len() == 1 {{\n\
                                 let (__tag, _content) = &__entries[0];\n\
                                 match __tag.as_str() {{\n\
                                     {datas}\n\
                                     _ => {{}}\n\
                                 }}\n\
                             }}\n\
                         }}\n\
                         Err(::serde::Error::custom(concat!(\"unknown or malformed variant of `\", {name:?}, \"`\")))\n\
                     }}\n\
                 }}",
                units = unit_arms.join("\n"),
                datas = data_arms.join("\n")
            )
        }
    }
}

// ---------------------------------------------------------------------
// Entry points
// ---------------------------------------------------------------------

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    derive_serialize_src(&item)
        .parse()
        .expect("serde derive: generated Serialize impl failed to parse")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    derive_deserialize_src(&item)
        .parse()
        .expect("serde derive: generated Deserialize impl failed to parse")
}
