//! The self-describing value tree.

/// A JSON-shaped value. Objects keep insertion order so serialization is
/// deterministic (a requirement of this workspace's reproducibility
/// tests).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A signed integer (fits i64).
    Int(i64),
    /// An unsigned integer that does not fit i64.
    UInt(u64),
    /// A floating-point number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Value>),
    /// An object; insertion-ordered key/value pairs.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The object entries, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// As u64, when the value is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::Int(i) if i >= 0 => Some(i as u64),
            Value::UInt(u) => Some(u),
            _ => None,
        }
    }

    /// As i64, when the value is an integer fitting i64.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::Int(i) => Some(i),
            Value::UInt(u) => i64::try_from(u).ok(),
            _ => None,
        }
    }

    /// As f64, for any numeric value.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::Int(i) => Some(i as f64),
            Value::UInt(u) => Some(u as f64),
            Value::Float(f) => Some(f),
            _ => None,
        }
    }

    /// Looks up an object field by key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()?
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }
}
