//! [`Serialize`] implementations for standard types.

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};

use crate::text::render_compact;
use crate::value::Value;
use crate::Serialize;

macro_rules! ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
    )*};
}
ser_int!(i8, i16, i32, i64, isize, u8, u16, u32);

impl Serialize for u64 {
    fn to_value(&self) -> Value {
        match i64::try_from(*self) {
            Ok(i) => Value::Int(i),
            Err(_) => Value::UInt(*self),
        }
    }
}

impl Serialize for usize {
    fn to_value(&self) -> Value {
        (*self as u64).to_value()
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl Serialize for () {
    fn to_value(&self) -> Value {
        Value::Null
    }
}

macro_rules! ser_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$n.to_value()),+])
            }
        }
    )*};
}
ser_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

/// Renders a map key: string keys pass through, anything else becomes its
/// compact JSON text (and is parsed back on the way in).
pub(crate) fn key_string<K: Serialize>(key: &K) -> String {
    match key.to_value() {
        Value::Str(s) => s,
        other => render_compact(&other),
    }
}

impl<K: Serialize, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        // Deterministic output: sort entries by rendered key.
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (key_string(k), v.to_value()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(entries)
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (key_string(k), v.to_value()))
                .collect(),
        )
    }
}

impl<T: Serialize, S> Serialize for HashSet<T, S> {
    fn to_value(&self) -> Value {
        // Deterministic output: sort elements by rendered value.
        let mut items: Vec<Value> = self.iter().map(Serialize::to_value).collect();
        items.sort_by_key(render_compact);
        Value::Array(items)
    }
}

impl<T: Serialize> Serialize for BTreeSet<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}
