//! [`Deserialize`] implementations for standard types, plus the error
//! type shared by serialization facades.

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::fmt;
use std::hash::{BuildHasher, Hash};

use crate::text;
use crate::value::Value;
use crate::Deserialize;

/// A (de)serialization error.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    /// Builds an error from any displayable message.
    pub fn custom<T: fmt::Display>(msg: T) -> Self {
        Error {
            msg: msg.to_string(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

fn mismatch(expected: &str, got: &Value) -> Error {
    let kind = match got {
        Value::Null => "null",
        Value::Bool(_) => "a boolean",
        Value::Int(_) | Value::UInt(_) => "an integer",
        Value::Float(_) => "a float",
        Value::Str(_) => "a string",
        Value::Array(_) => "an array",
        Value::Object(_) => "an object",
    };
    Error::custom(format!("expected {expected}, found {kind}"))
}

/// Looks up a required struct field; used by derived impls.
pub fn field<'v>(v: &'v Value, name: &str) -> Result<&'v Value, Error> {
    v.get(name)
        .ok_or_else(|| Error::custom(format!("missing field `{name}`")))
}

macro_rules! de_int {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let i = v.as_i64().ok_or_else(|| mismatch("an integer", v))?;
                <$t>::try_from(i)
                    .map_err(|_| Error::custom(format!(
                        "integer {i} out of range for {}", stringify!($t)
                    )))
            }
        }
    )*};
}
de_int!(i8, i16, i32, i64, isize, u8, u16, u32);

impl Deserialize for u64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_u64()
            .ok_or_else(|| mismatch("a non-negative integer", v))
    }
}

impl Deserialize for usize {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let u = u64::from_value(v)?;
        usize::try_from(u).map_err(|_| Error::custom(format!("integer {u} out of range for usize")))
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_f64().ok_or_else(|| mismatch("a number", v))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        f64::from_value(v).map(|f| f as f32)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_bool().ok_or_else(|| mismatch("a boolean", v))
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map(str::to_owned)
            .ok_or_else(|| mismatch("a string", v))
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let s = v.as_str().ok_or_else(|| mismatch("a string", v))?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::custom("expected a single-character string")),
        }
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_array()
            .ok_or_else(|| mismatch("an array", v))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl Deserialize for () {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(()),
            other => Err(mismatch("null", other)),
        }
    }
}

macro_rules! de_tuple {
    ($(($len:literal; $($n:tt $t:ident),+))*) => {$(
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let items = v.as_array().ok_or_else(|| mismatch("an array", v))?;
                if items.len() != $len {
                    return Err(Error::custom(format!(
                        "expected an array of length {}, found {}", $len, items.len()
                    )));
                }
                Ok(($($t::from_value(&items[$n])?,)+))
            }
        }
    )*};
}
de_tuple! {
    (1; 0 A)
    (2; 0 A, 1 B)
    (3; 0 A, 1 B, 2 C)
    (4; 0 A, 1 B, 2 C, 3 D)
}

/// Reverses [`crate::ser::key_string`]: string-typed keys deserialize from
/// the raw string, everything else from its compact-JSON rendering.
fn key_value<K: Deserialize>(key: &str) -> Result<K, Error> {
    match text::parse(key) {
        Ok(parsed) => {
            K::from_value(&parsed).or_else(|_| K::from_value(&Value::Str(key.to_owned())))
        }
        Err(_) => K::from_value(&Value::Str(key.to_owned())),
    }
}

impl<K, V, S> Deserialize for HashMap<K, V, S>
where
    K: Deserialize + Eq + Hash,
    V: Deserialize,
    S: BuildHasher + Default,
{
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_object()
            .ok_or_else(|| mismatch("an object", v))?
            .iter()
            .map(|(k, val)| Ok((key_value(k)?, V::from_value(val)?)))
            .collect()
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_object()
            .ok_or_else(|| mismatch("an object", v))?
            .iter()
            .map(|(k, val)| Ok((key_value(k)?, V::from_value(val)?)))
            .collect()
    }
}

impl<T, S> Deserialize for HashSet<T, S>
where
    T: Deserialize + Eq + Hash,
    S: BuildHasher + Default,
{
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_array()
            .ok_or_else(|| mismatch("an array", v))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Deserialize + Ord> Deserialize for BTreeSet<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_array()
            .ok_or_else(|| mismatch("an array", v))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}
