//! Offline stand-in for `serde`, vendored because this build environment
//! has no network access to crates.io.
//!
//! It implements exactly the surface this workspace uses: the
//! [`Serialize`] / [`Deserialize`] traits (value-tree based rather than
//! visitor based), a self-describing [`Value`] tree, and — behind the
//! `derive` feature — `#[derive(Serialize, Deserialize)]` for plain
//! structs and enums without generics or `#[serde(...)]` attributes.
//!
//! Representation choices mirror real serde's JSON data model:
//!
//! * named-field structs → objects (field order preserved);
//! * newtype structs → the inner value;
//! * tuple structs → arrays;
//! * unit enum variants → `"Name"`; data variants → `{"Name": ...}`
//!   (externally tagged);
//! * maps → objects; non-string keys are rendered as the compact JSON of
//!   the key (and parsed back on deserialization).

pub mod de;
pub mod ser;
pub mod text;
mod value;

pub use de::Error;
pub use value::Value;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// A value serializable into a [`Value`] tree.
pub trait Serialize {
    /// Converts `self` into a self-describing value tree.
    fn to_value(&self) -> Value;
}

/// A value reconstructible from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a value tree.
    ///
    /// # Errors
    ///
    /// Returns [`Error`] when the tree's shape does not match `Self`.
    fn from_value(v: &Value) -> Result<Self, Error>;
}
