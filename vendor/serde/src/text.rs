//! JSON text rendering and parsing for [`Value`] trees.
//!
//! Lives here (rather than in the `serde_json` facade) so map-key
//! round-tripping in [`crate::de`] can reuse the parser without a
//! dependency cycle.

use crate::value::Value;
use crate::Error;

// ---------------------------------------------------------------------
// Rendering
// ---------------------------------------------------------------------

/// Renders `v` as compact JSON.
pub fn render_compact(v: &Value) -> String {
    let mut out = String::new();
    render(v, None, 0, &mut out);
    out
}

/// Renders `v` as pretty JSON (2-space indent, like serde_json).
pub fn render_pretty(v: &Value) -> String {
    let mut out = String::new();
    render(v, Some(2), 0, &mut out);
    out
}

fn render(v: &Value, indent: Option<usize>, depth: usize, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => render_float(*f, out),
        Value::Str(s) => render_string(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(indent, depth + 1, out);
                render(item, indent, depth + 1, out);
            }
            newline_indent(indent, depth, out);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(indent, depth + 1, out);
                render_string(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                render(item, indent, depth + 1, out);
            }
            newline_indent(indent, depth, out);
            out.push('}');
        }
    }
}

fn newline_indent(indent: Option<usize>, depth: usize, out: &mut String) {
    if let Some(w) = indent {
        out.push('\n');
        for _ in 0..w * depth {
            out.push(' ');
        }
    }
}

fn render_float(f: f64, out: &mut String) {
    if !f.is_finite() {
        // JSON has no NaN/Infinity; match serde_json's lossy `null`.
        out.push_str("null");
        return;
    }
    // `{:?}` is Rust's shortest round-trip representation and always
    // contains a '.' or exponent, so the value parses back as a float.
    out.push_str(&format!("{f:?}"));
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------

/// Parses a JSON document into a [`Value`] tree.
///
/// # Errors
///
/// Returns [`Error`] on malformed input or trailing garbage.
pub fn parse(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::custom(format!(
            "trailing characters at byte {}",
            p.pos
        )));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> Error {
        Error::custom(format!("{msg} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected `{lit}`")))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            entries.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let c = self.peek().ok_or_else(|| self.err("unterminated string"))?;
            self.pos += 1;
            match c {
                b'"' => return Ok(out),
                b'\\' => {
                    let e = self.peek().ok_or_else(|| self.err("bad escape"))?;
                    self.pos += 1;
                    match e {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair.
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.expect(b'u')?;
                                    let lo = self.hex4()?;
                                    0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                                } else {
                                    return Err(self.err("lone surrogate"));
                                }
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(code).ok_or_else(|| self.err("bad \\u escape"))?,
                            );
                        }
                        _ => return Err(self.err("bad escape character")),
                    }
                }
                _ => {
                    // Re-consume the full UTF-8 character.
                    self.pos -= 1;
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid UTF-8"))?;
                    let ch = s.chars().next().ok_or_else(|| self.err("empty"))?;
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let mut v = 0u32;
        for _ in 0..4 {
            let c = self.peek().ok_or_else(|| self.err("short \\u escape"))?;
            self.pos += 1;
            v = v * 16
                + (c as char)
                    .to_digit(16)
                    .ok_or_else(|| self.err("bad hex digit"))?;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| self.err("invalid number"))
    }
}
