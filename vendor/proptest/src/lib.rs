//! Offline stand-in for `proptest`, vendored because this build
//! environment has no network access to crates.io.
//!
//! It keeps proptest's authoring surface (`proptest!`, `prop_oneof!`,
//! `Strategy`, `prop::collection::vec`, `any::<T>()`, `ProptestConfig`)
//! but simplifies the runner: cases are generated from a deterministic
//! per-test PRNG (seeded from the test path and case index, so every run
//! and every machine sees the same inputs), and failures panic with the
//! case number instead of shrinking. Set `PROPTEST_CASES` to override the
//! default case count.

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

pub mod prelude {
    //! The glob-import surface: `use proptest::prelude::*;`.
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    pub mod prop {
        //! Mirrors proptest's `prop::` facade (e.g. `prop::collection::vec`).
        pub use crate::collection;
    }
}

/// Defines property tests. Each `pat in strategy` argument is generated
/// fresh per case; the body runs once per case and panics on failure.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config = $cfg;
            for __case in 0..__config.cases {
                let mut __rng = $crate::test_runner::TestRng::for_case(
                    concat!(module_path!(), "::", stringify!($name)),
                    __case,
                );
                $(let $pat = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)*
                let __guard = $crate::test_runner::CaseGuard::new(
                    stringify!($name), __case);
                $body
                __guard.disarm();
            }
        }
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            panic!("proptest assertion failed: {}", stringify!($cond));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            panic!("proptest assertion failed: {}", format!($($fmt)+));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (__a, __b) = (&$a, &$b);
        if !(__a == __b) {
            panic!(
                "proptest assertion failed: `{} == {}` (left: {:?}, right: {:?})",
                stringify!($a), stringify!($b), __a, __b
            );
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (__a, __b) = (&$a, &$b);
        if !(__a == __b) {
            panic!(
                "proptest assertion failed: {} (left: {:?}, right: {:?})",
                format!($($fmt)+), __a, __b
            );
        }
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (__a, __b) = (&$a, &$b);
        if __a == __b {
            panic!(
                "proptest assertion failed: `{} != {}` (both: {:?})",
                stringify!($a),
                stringify!($b),
                __a
            );
        }
    }};
}

/// Weighted (`w => strategy`) or uniform choice between strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}
