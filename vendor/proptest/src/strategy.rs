//! The [`Strategy`] trait and combinators.

use std::ops::Range;

use crate::test_runner::TestRng;

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erases this strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

/// Always yields a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Weighted choice between type-erased strategies (see `prop_oneof!`).
pub struct Union<T> {
    options: Vec<(u32, BoxedStrategy<T>)>,
}

impl<T> Union<T> {
    /// Builds a union; total weight must be non-zero.
    pub fn new(options: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        assert!(
            options.iter().map(|(w, _)| u64::from(*w)).sum::<u64>() > 0,
            "prop_oneof! needs a non-zero total weight"
        );
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let total: u64 = self.options.iter().map(|(w, _)| u64::from(*w)).sum();
        let mut pick = rng.below(total);
        for (w, s) in &self.options {
            if pick < u64::from(*w) {
                return s.generate(rng);
            }
            pick -= u64::from(*w);
        }
        unreachable!("weighted pick out of range")
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! signed_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = self.end.wrapping_sub(self.start) as u64;
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
    )*};
}
signed_range_strategy!(i32, i64);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (self.end - self.start) * rng.unit_f64() as $t
            }
        }
    )*};
}
float_range_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($(($($t:ident),+))*) => {$(
        impl<$($t: Strategy),+> Strategy for ($($t,)+) {
            type Value = ($($t::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($t,)+) = self;
                ($($t.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}
