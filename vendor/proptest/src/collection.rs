//! Collection strategies (`prop::collection::vec`).

use std::ops::Range;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// A strategy producing `Vec`s whose length is drawn from `size`.
pub struct VecStrategy<S> {
    elem: S,
    size: Range<usize>,
}

/// `Vec` strategy: each element from `elem`, length drawn from `size`.
pub fn vec<S: Strategy>(elem: S, size: Range<usize>) -> VecStrategy<S> {
    assert!(size.start < size.end, "empty vec-size range");
    VecStrategy { elem, size }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.end - self.size.start) as u64;
        let len = self.size.start + rng.below(span) as usize;
        (0..len).map(|_| self.elem.generate(rng)).collect()
    }
}
