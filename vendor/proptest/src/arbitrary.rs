//! `any::<T>()` and the [`Arbitrary`] trait.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// A type with a canonical full-range strategy.
pub trait Arbitrary {
    /// Generates an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arb_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.unit_f64()
    }
}

/// The strategy returned by [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

/// The canonical strategy for `T` (e.g. `any::<usize>()`).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}
