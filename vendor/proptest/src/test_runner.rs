//! Deterministic test runner pieces: the per-case PRNG, config, and the
//! failure guard used by the `proptest!` macro.

/// Configuration for a `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases (overridable via `PROPTEST_CASES`).
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases: env_cases().unwrap_or(cases),
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: env_cases().unwrap_or(256),
        }
    }
}

fn env_cases() -> Option<u32> {
    std::env::var("PROPTEST_CASES").ok()?.parse().ok()
}

/// A failed test case (kept for API compatibility with real proptest).
#[derive(Debug, Clone)]
pub struct TestCaseError {
    msg: String,
}

impl TestCaseError {
    /// Builds a failure with a message.
    pub fn fail<T: std::fmt::Display>(msg: T) -> Self {
        TestCaseError {
            msg: msg.to_string(),
        }
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.msg)
    }
}

/// Deterministic PRNG (splitmix64) seeded from the test path and case
/// index: every run on every machine generates identical inputs.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// The RNG for case `case` of test `name`.
    pub fn for_case(name: &str, case: u32) -> Self {
        // FNV-1a over the test path, perturbed by the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng {
            state: h ^ u64::from(case + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15),
        }
    }

    /// The next 64 pseudo-random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform value in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }

    /// A uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Prints which case failed when a test body panics mid-case.
pub struct CaseGuard {
    name: &'static str,
    case: u32,
    armed: bool,
}

impl CaseGuard {
    /// Arms the guard for one case.
    pub fn new(name: &'static str, case: u32) -> Self {
        CaseGuard {
            name,
            case,
            armed: true,
        }
    }

    /// Disarms the guard; the case passed.
    pub fn disarm(mut self) {
        self.armed = false;
    }
}

impl Drop for CaseGuard {
    fn drop(&mut self) {
        if self.armed && std::thread::panicking() {
            eprintln!(
                "proptest: `{}` failed at case {} (deterministic; rerun reproduces it)",
                self.name, self.case
            );
        }
    }
}
