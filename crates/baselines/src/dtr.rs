//! Dynamic Tensor Rematerialization (arXiv:2006.09616): a fully online
//! eviction policy that needs **no measured iteration and no plan**.
//!
//! When an allocation fails, DTR scores every evictable resident tensor
//! with the paper's `h-DTR` heuristic
//!
//! ```text
//! h(t) = cost(t) / (staleness(t) × size(t))
//! ```
//!
//! and evicts the lowest-scoring tensor first: cheap to regenerate,
//! untouched for a long time, and freeing many bytes. Recomputable
//! tensors are *released* (regenerated on demand by the executor's
//! lineage replay — the rematerialization that gives DTR its name);
//! tensors with no lineage (graph inputs) fall back to a synchronous
//! swap, priced as their PCIe transfer so the heuristic stays
//! cost-comparable across both eviction kinds.
//!
//! Because nothing is measured or planned, a scheduler can admit a DTR
//! job without running a validation iteration — the `Heuristic`
//! admission cost class of `capuchin-cluster`'s policy registry.

use capuchin_executor::{Engine, MemoryPolicy, PolicySnapshot};
use capuchin_graph::{kernel_cost, OpId};
use capuchin_sim::{CopyDir, TransferModel};
use capuchin_tensor::{TensorKey, TensorStatus};

/// Online evict-by-heuristic rematerialization (DTR).
///
/// # Examples
///
/// ```
/// use capuchin_baselines::DtrPolicy;
/// use capuchin_executor::{Engine, EngineConfig};
/// use capuchin_models::ModelKind;
///
/// let model = ModelKind::ResNet50.build(4);
/// let mut engine = Engine::new(&model.graph, EngineConfig::default(), Box::new(DtrPolicy::new()));
/// engine.run(2).unwrap();
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct DtrPolicy;

/// Snapshot marker: DTR keeps no cross-iteration state, so checkpoint/
/// restore round-trips an empty payload.
struct DtrSnapshot;

impl DtrPolicy {
    /// Creates the policy.
    pub fn new() -> DtrPolicy {
        DtrPolicy
    }
}

/// Permille-scaled `h-DTR` score in pure integer math: score rises with
/// regeneration cost and falls with staleness and size, so evicting the
/// minimum drops the least valuable resident bytes. `u128` keeps the
/// product exact for multi-GiB tensors and hour-long staleness.
fn h_dtr(cost_ns: u64, staleness_ns: u64, size: u64) -> u128 {
    u128::from(cost_ns) * 1_000_000 / (u128::from(staleness_ns.max(1)) * u128::from(size.max(1)))
}

impl MemoryPolicy for DtrPolicy {
    fn name(&self) -> &str {
        "dtr"
    }

    fn on_alloc_failure(&mut self, engine: &mut Engine<'_>, need: u64) -> bool {
        let now = engine.now();
        let spec = engine.spec().clone();
        let transfers = TransferModel::for_device(&spec);
        // Score every evictable resident: regeneration cost is the
        // producing kernel's duration for recomputable tensors and the
        // D2H+H2D round trip for swap-only ones, so both eviction kinds
        // compete in one ranking.
        let mut candidates: Vec<(u128, TensorKey, bool)> = engine
            .registry()
            .iter()
            .filter(|t| {
                t.status == TensorStatus::In
                    && !t.meta.persistent
                    && t.device.is_some()
                    && !engine.pinned().contains(&t.key())
            })
            .map(|t| {
                let size = t.size_bytes();
                let recompute = t.meta.recomputable && t.meta.op.is_some();
                let cost_ns = if recompute {
                    let op = engine.graph().op(OpId(t.meta.op.expect("checked").0));
                    kernel_cost(engine.graph(), op)
                        .duration_on(&spec)
                        .as_nanos()
                } else {
                    (transfers.time(size, CopyDir::DeviceToHost)
                        + transfers.time(size, CopyDir::HostToDevice))
                    .as_nanos()
                };
                let staleness = now.saturating_since(t.last_access).as_nanos();
                (h_dtr(cost_ns, staleness, size), t.key(), recompute)
            })
            .collect();
        // Lowest h first; key tie-break keeps the order byte-stable.
        candidates.sort_by_key(|&(h, key, _)| (h, key));
        let mut any = false;
        for (_, key, recompute) in candidates {
            let evicted = if recompute {
                let released = engine.release_for_recompute_at(key, now);
                if released {
                    // Make the freed bytes visible to the pending
                    // allocation immediately.
                    engine.process_matured_frees();
                }
                released
            } else {
                engine.swap_out_sync(key)
            };
            if evicted {
                any = true;
                if engine.device().can_alloc(need) {
                    return true;
                }
            }
        }
        any
    }

    fn snapshot(&self) -> Option<PolicySnapshot> {
        Some(PolicySnapshot::new("dtr", DtrSnapshot))
    }

    fn restore(&mut self, snapshot: PolicySnapshot) -> bool {
        snapshot.downcast::<DtrSnapshot>().is_ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use capuchin_executor::{EngineConfig, TfOri};
    use capuchin_models::ModelKind;
    use capuchin_sim::DeviceSpec;

    #[test]
    fn rematerializes_where_tf_ori_dies() {
        let model = ModelKind::ResNet50.build(16);
        let cfg = EngineConfig {
            spec: DeviceSpec::p100_pcie3().with_memory(900 << 20),
            ..EngineConfig::default()
        };
        let mut tf = Engine::new(&model.graph, cfg.clone(), Box::new(TfOri::new()));
        assert!(tf.run(1).is_err());
        let mut dtr = Engine::new(&model.graph, cfg, Box::new(DtrPolicy::new()));
        let stats = dtr.run(2).expect("DTR rescues the run");
        let it = stats.try_last().expect("run produced iterations");
        // Rematerialization, not paging: recompute kernels ran.
        assert!(it.recompute_kernels > 0, "{it:?}");
    }

    #[test]
    fn cheaper_than_oblivious_paging_under_pressure() {
        let model = ModelKind::ResNet50.build(16);
        let cfg = EngineConfig {
            spec: DeviceSpec::p100_pcie3().with_memory(900 << 20),
            ..EngineConfig::default()
        };
        let mut dtr = Engine::new(&model.graph, cfg.clone(), Box::new(DtrPolicy::new()));
        let dtr_it = dtr.run(2).unwrap().try_last().unwrap().clone();
        let mut lru = Engine::new(&model.graph, cfg, Box::new(crate::LruSwap::new()));
        let lru_it = lru.run(2).unwrap().try_last().unwrap().clone();
        // Regenerating cheap activations beats paging them over PCIe.
        assert!(
            dtr_it.wall() < lru_it.wall(),
            "dtr {:?} vs lru {:?}",
            dtr_it.wall(),
            lru_it.wall()
        );
    }

    #[test]
    fn no_interference_when_memory_suffices() {
        let model = ModelKind::ResNet50.build(8);
        let mut eng = Engine::new(
            &model.graph,
            EngineConfig::default(),
            Box::new(DtrPolicy::new()),
        );
        let stats = eng.run(2).unwrap();
        let it = stats.try_last().expect("run produced iterations");
        assert_eq!(it.passive_evictions, 0);
        assert_eq!(it.recompute_kernels, 0);
    }

    #[test]
    fn h_dtr_prefers_cheap_stale_large() {
        // Higher cost → higher score (kept); more staleness or size →
        // lower score (evicted first).
        assert!(h_dtr(1_000, 100, 10) < h_dtr(2_000, 100, 10));
        assert!(h_dtr(1_000, 200, 10) < h_dtr(1_000, 100, 10));
        assert!(h_dtr(1_000, 100, 20) < h_dtr(1_000, 100, 10));
        // Zero staleness/size must not divide by zero.
        assert!(h_dtr(1, 0, 0) > 0);
    }

    #[test]
    fn snapshot_round_trips() {
        let mut p = DtrPolicy::new();
        let snap = p.snapshot().expect("DTR supports snapshots");
        assert!(p.restore(snap));
    }
}
