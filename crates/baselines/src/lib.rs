//! # capuchin-baselines — the systems Capuchin is compared against
//!
//! Faithful re-implementations of the paper's §6.1 baselines on the same
//! executor hook surface:
//!
//! * [`TfOri`] (re-export) — original TensorFlow: no memory management,
//!   OOM is fatal;
//! * [`Vdnn`] — vDNN's static layer-wise offload of convolution inputs
//!   with layer-synchronized transfers and one-layer-lookahead prefetch;
//! * [`LruSwap`] — computation-oblivious on-demand paging (the
//!   "virtualized GPU memory" related-work class of §7);
//! * [`GradientCheckpointing`] — OpenAI's gradient-checkpointing in both
//!   **memory** (≈√n articulation points) and **speed** (keep conv/matmul
//!   outputs) modes;
//! * [`DtrPolicy`] — Dynamic Tensor Rematerialization (arXiv:2006.09616):
//!   online evict-by-`h-DTR` with lineage replay on access, no measured
//!   iteration and no plan.
//!
//! All three demonstrate the static-analysis limitations the paper argues
//! against; Capuchin itself lives in the [`capuchin`] crate.
//!
//! [`capuchin`]: https://docs.rs/capuchin

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod checkpoint;
mod dtr;
mod lru_swap;
mod vdnn;

pub use capuchin_executor::TfOri;
pub use checkpoint::{CheckpointMode, GradientCheckpointing};
pub use dtr::DtrPolicy;
pub use lru_swap::LruSwap;
pub use vdnn::Vdnn;
