//! OpenAI-style gradient checkpointing (`cybertronai/gradient-checkpointing`),
//! the re-implementation of Chen et al.'s sublinear-memory training the
//! paper compares against (§6.1).
//!
//! A static set of forward activations is kept ("checkpoints"); every
//! other feature map is dropped at its last forward use and re-derived in
//! the backward pass by replaying the segment from the nearest checkpoint.
//!
//! * **Memory mode** selects ≈√n evenly spaced *articulation points* —
//!   activations that are the sole live forward value at their point in
//!   the schedule, so they split the graph in two — targeting O(√n)
//!   memory.
//! * **Speed mode** checkpoints the outputs of all convolutions and
//!   matrix multiplies ("operations that are typically expensive to
//!   compute") and recomputes only the cheap elementwise layers. The
//!   paper's breakdown (Fig. 8b) shows this heuristic can *lose* to
//!   memory mode — per-layer cost assumptions are exactly what Capuchin
//!   replaces with measurement.

use std::collections::{HashMap, HashSet};

use capuchin_executor::{AccessEvent, Engine, MemoryPolicy};
use capuchin_graph::{Graph, OpKind, Phase, ValueKind};
use capuchin_tensor::TensorKey;

/// Which checkpoint-selection heuristic to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CheckpointMode {
    /// ≈√n articulation points, count-based and evenly spaced — the
    /// faithful reproduction of the OpenAI tool's heuristic.
    Memory,
    /// Keep conv/matmul outputs, recompute the rest.
    Speed,
    /// A stronger variant we built for the ablation study: checkpoints
    /// chosen to minimize `checkpoint bytes + largest segment bytes`,
    /// which matters when tensor sizes are highly non-uniform.
    MemoryBalanced,
}

impl std::fmt::Display for CheckpointMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointMode::Memory => f.write_str("memory"),
            CheckpointMode::Speed => f.write_str("speed"),
            CheckpointMode::MemoryBalanced => f.write_str("memory-balanced"),
        }
    }
}

/// The gradient-checkpointing policy.
///
/// # Examples
///
/// ```
/// use capuchin_baselines::{CheckpointMode, GradientCheckpointing};
/// use capuchin_executor::{Engine, EngineConfig};
/// use capuchin_models::ModelKind;
///
/// let model = ModelKind::ResNet50.build(4);
/// let policy = GradientCheckpointing::from_graph(&model.graph, CheckpointMode::Memory);
/// assert!(policy.checkpoints() > 0);
/// let mut engine = Engine::new(&model.graph, EngineConfig::default(), Box::new(policy));
/// engine.run(2).unwrap();
/// ```
#[derive(Debug, Clone)]
pub struct GradientCheckpointing {
    mode: CheckpointMode,
    /// `(tensor, access_count)` at which to release the tensor.
    release_at: HashMap<(TensorKey, u32), ()>,
    /// Schedule position of each value's first backward reader; used to
    /// decide whether a regenerated intermediate belongs to the segment
    /// currently being differentiated.
    bwd_start: HashMap<TensorKey, u32>,
    checkpoints: usize,
    released: usize,
}

impl GradientCheckpointing {
    /// Derives the static checkpoint plan from the graph.
    pub fn from_graph(graph: &Graph, mode: CheckpointMode) -> GradientCheckpointing {
        // Forward activations that the backward pass will re-read.
        let eligible: Vec<_> = graph
            .values()
            .iter()
            .filter(|v| {
                v.kind == ValueKind::Activation
                    && graph.phase(v.producer) == Phase::Forward
                    && graph
                        .consumers(v.id)
                        .iter()
                        .any(|&o| graph.phase(o) == Phase::Backward)
            })
            .map(|v| v.id)
            .collect();

        let checkpoints: HashSet<_> = match mode {
            CheckpointMode::Speed => eligible
                .iter()
                .copied()
                .filter(|&v| {
                    matches!(
                        graph.op(graph.value(v).producer).kind,
                        OpKind::Conv2d(_) | OpKind::MatMul { .. }
                    )
                })
                .collect(),
            CheckpointMode::Memory => {
                // The tool's own heuristic: √n articulation points,
                // evenly spaced by position, sizes ignored.
                let eligible_set: HashSet<_> = eligible.iter().copied().collect();
                let arts: Vec<_> = articulation_points(graph)
                    .into_iter()
                    .filter(|v| eligible_set.contains(v))
                    .collect();
                let target = (eligible.len() as f64).sqrt().ceil() as usize;
                if arts.len() <= target || target == 0 {
                    arts.into_iter().collect()
                } else {
                    let stride = arts.len() as f64 / target as f64;
                    (0..target)
                        .map(|i| arts[(i as f64 * stride) as usize])
                        .collect()
                }
            }
            CheckpointMode::MemoryBalanced => {
                // Byte-balanced articulation selection: scan candidate
                // checkpoint counts and pick the one minimizing
                // (checkpoint bytes + largest segment bytes) — the peak
                // proxy of O(√n) checkpointing when tensor sizes are
                // wildly uneven (a stage-1 ResNet map is 64× a stage-4
                // map).
                let arts = articulation_points(graph);
                let eligible_set: HashSet<_> = eligible.iter().copied().collect();
                // Eligible bytes in producer-op order.
                let mut sized: Vec<(u32, u64, capuchin_graph::ValueId)> = eligible
                    .iter()
                    .map(|&v| (graph.value(v).producer.0, graph.value(v).size_bytes(), v))
                    .collect();
                sized.sort();
                // Only arts the backward pass re-reads can serve as kept
                // checkpoints.
                let art_pos: Vec<(u32, capuchin_graph::ValueId)> = arts
                    .iter()
                    .filter(|v| eligible_set.contains(v))
                    .map(|&v| (graph.value(v).producer.0, v))
                    .collect();
                let total: u64 = sized.iter().map(|&(_, s, _)| s).sum();
                let mut best: Option<(u64, HashSet<capuchin_graph::ValueId>)> = None;
                for k in 1..=art_pos.len().max(1) {
                    let budget = total / k as u64 + 1;
                    let mut chosen = HashSet::new();
                    let mut chosen_bytes = 0u64;
                    let mut seg = 0u64;
                    let mut max_seg = 0u64;
                    let mut idx = 0usize;
                    for &(pos, v) in &art_pos {
                        while idx < sized.len() && sized[idx].0 <= pos {
                            seg += sized[idx].1;
                            idx += 1;
                        }
                        if seg >= budget {
                            // Checkpointing v removes it from its segment.
                            chosen.insert(v);
                            chosen_bytes += graph.value(v).size_bytes();
                            seg = seg.saturating_sub(graph.value(v).size_bytes());
                            max_seg = max_seg.max(seg);
                            seg = 0;
                        }
                    }
                    while idx < sized.len() {
                        seg += sized[idx].1;
                        idx += 1;
                    }
                    max_seg = max_seg.max(seg);
                    let cost = chosen_bytes + max_seg;
                    if std::env::var("CKPT_DEBUG").is_ok() {
                        eprintln!("k={k} budget={budget} chosen={} chosen_bytes={} max_seg={} cost={cost}", chosen.len(), chosen_bytes, max_seg);
                    }
                    if best.as_ref().map(|(c, _)| cost < *c).unwrap_or(true) {
                        best = Some((cost, chosen));
                    }
                }
                best.map(|(_, c)| c).unwrap_or_default()
            }
        };

        // A tensor may only be released if its recompute chain is anchored:
        // walking its lineage through released/dead nodes must end at
        // weights, checkpoints, or values still alive at the tensor's
        // back-access. A chain that reaches a dead graph *input* cannot be
        // replayed (inputs are not recomputable), so such tensors are kept.
        let mut checkpoints = checkpoints;
        let last_reader = |v: capuchin_graph::ValueId| -> u32 {
            graph.consumers(v).iter().map(|o| o.0).max().unwrap_or(0)
        };
        let first_bwd = |v: capuchin_graph::ValueId| -> u32 {
            graph
                .consumers(v)
                .iter()
                .filter(|&&o| graph.phase(o) == Phase::Backward)
                .map(|o| o.0)
                .min()
                .unwrap_or(u32::MAX)
        };
        let mut released_set: HashSet<capuchin_graph::ValueId> = HashSet::new();
        let mut ordered = eligible.clone();
        ordered.sort_by_key(|v| graph.value(*v).producer.0);
        for &v in &ordered {
            if checkpoints.contains(&v) {
                continue;
            }
            let back = first_bwd(v);
            let mut ok = true;
            let mut stack: Vec<capuchin_graph::ValueId> =
                graph.op(graph.value(v).producer).inputs.clone();
            let mut seen = HashSet::new();
            while let Some(u) = stack.pop() {
                if !seen.insert(u) {
                    continue;
                }
                let uv = graph.value(u);
                if uv.kind == ValueKind::Weight || checkpoints.contains(&u) {
                    continue;
                }
                if !released_set.contains(&u) && last_reader(u) > back {
                    continue; // still alive when the replay runs
                }
                // Dead or released: must itself be replayable.
                let producer = graph.op(uv.producer);
                if producer.kind.is_source() {
                    ok = false; // a dead graph input cannot be regenerated
                    break;
                }
                stack.extend(producer.inputs.iter().copied());
            }
            if ok {
                released_set.insert(v);
            } else {
                checkpoints.insert(v); // keep it: it anchors later chains
            }
        }

        let mut release_at = HashMap::new();
        let mut released = 0;
        for &v in &released_set {
            let fwd_reads = graph
                .consumers(v)
                .iter()
                .filter(|&&o| graph.phase(o) == Phase::Forward)
                .count() as u32;
            // Access counter at the last forward access (1 = produce).
            release_at.insert((Engine::key_of(v), 1 + fwd_reads), ());
            released += 1;
        }

        let mut bwd_start = HashMap::new();
        for v in graph.values() {
            if let Some(&op) = graph
                .consumers(v.id)
                .iter()
                .find(|&&o| graph.phase(o) == Phase::Backward)
            {
                bwd_start.insert(Engine::key_of(v.id), op.0);
            }
        }

        GradientCheckpointing {
            mode,
            release_at,
            bwd_start,
            checkpoints: checkpoints.len(),
            released,
        }
    }

    /// Number of checkpointed activations.
    pub fn checkpoints(&self) -> usize {
        self.checkpoints
    }

    /// Number of activations scheduled for recomputation.
    pub fn released(&self) -> usize {
        self.released
    }

    /// The selection mode.
    pub fn mode(&self) -> CheckpointMode {
        self.mode
    }
}

/// Forward activations that are the *only* live forward value at their
/// point in the schedule (removing them cuts the forward dataflow) — the
/// "articulation points" the OpenAI heuristic checkpoints.
fn articulation_points(graph: &Graph) -> Vec<capuchin_graph::ValueId> {
    // Last forward reader position per value.
    let mut last_fwd_read: HashMap<capuchin_graph::ValueId, u32> = HashMap::new();
    for op in graph.ops() {
        if graph.phase(op.id) != Phase::Forward {
            continue;
        }
        for &v in &op.inputs {
            last_fwd_read.insert(v, op.id.0);
        }
    }
    let mut live: HashSet<capuchin_graph::ValueId> = HashSet::new();
    let mut arts = Vec::new();
    for op in graph.ops() {
        if graph.phase(op.id) != Phase::Forward {
            break;
        }
        for &v in &op.inputs {
            if last_fwd_read.get(&v) == Some(&op.id.0) {
                live.remove(&v);
            }
        }
        for &v in &op.outputs {
            if graph.value(v).kind == ValueKind::Activation
                && last_fwd_read.get(&v).map(|&l| l > op.id.0).unwrap_or(false)
            {
                live.insert(v);
            }
        }
        if live.len() == 1 {
            let &v = live.iter().next().expect("len checked");
            if arts.last() != Some(&v) {
                arts.push(v);
            }
        }
    }
    arts
}

impl MemoryPolicy for GradientCheckpointing {
    fn name(&self) -> &str {
        match self.mode {
            CheckpointMode::Memory => "openai-memory",
            CheckpointMode::Speed => "openai-speed",
            CheckpointMode::MemoryBalanced => "checkpoint-balanced",
        }
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }

    fn post_access(&mut self, engine: &mut Engine<'_>, ev: &AccessEvent) {
        if self.release_at.contains_key(&(ev.key, ev.count)) {
            engine.release_for_recompute_at(ev.key, ev.end);
        }
    }

    fn keep_recompute_intermediate(
        &mut self,
        _engine: &Engine<'_>,
        key: TensorKey,
        target: TensorKey,
    ) -> bool {
        // Segment replay: keep a regenerated intermediate only when its
        // own backward use is near the target's — i.e. it belongs to the
        // segment currently being differentiated. In the graph-rewrite
        // implementation each `tf.gradients` segment materializes its own
        // recomputed copies and frees them when the segment's backward is
        // done; copies pulled in from *other* segments (the residual
        // shortcut cascade) are temporaries there, so they are dropped
        // here too.
        let window = match self.mode {
            CheckpointMode::Speed => 48,
            CheckpointMode::Memory | CheckpointMode::MemoryBalanced => 160,
        };
        match (self.bwd_start.get(&key), self.bwd_start.get(&target)) {
            (Some(&k), Some(&t)) => k >= t.saturating_sub(8) && k <= t + window,
            _ => false,
        }
    }

    // No on_alloc_failure: a static plan that does not fit defines the
    // baseline's maximum batch size.
}

#[cfg(test)]
mod tests {
    use super::*;
    use capuchin_executor::{EngineConfig, TfOri};
    use capuchin_models::ModelKind;
    use capuchin_sim::DeviceSpec;

    #[test]
    fn memory_mode_selects_sqrt_checkpoints() {
        let model = ModelKind::ResNet50.build(2);
        let p = GradientCheckpointing::from_graph(&model.graph, CheckpointMode::Memory);
        let eligible = p.checkpoints() + p.released();
        let sqrt = (eligible as f64).sqrt();
        assert!(
            (p.checkpoints() as f64) <= sqrt * 2.0,
            "{} checkpoints for {} eligible",
            p.checkpoints(),
            eligible
        );
        assert!(p.released() > p.checkpoints());
    }

    #[test]
    fn speed_mode_keeps_conv_outputs() {
        let model = ModelKind::ResNet50.build(2);
        let p = GradientCheckpointing::from_graph(&model.graph, CheckpointMode::Speed);
        // 53 convs + 1 fc matmul (+ mlm-style heads none) — all kept.
        assert!(p.checkpoints() >= 53);
    }

    #[test]
    fn recomputes_in_backward() {
        let model = ModelKind::ResNet50.build(4);
        let p = GradientCheckpointing::from_graph(&model.graph, CheckpointMode::Memory);
        let mut eng = Engine::new(&model.graph, EngineConfig::default(), Box::new(p));
        let stats = eng.run(2).unwrap();
        let it = &stats.iters[1];
        assert!(it.recompute_kernels > 0, "{it:?}");
        assert_eq!(it.swap_out_bytes, 0, "checkpointing never swaps");
    }

    #[test]
    fn memory_mode_reduces_peak() {
        let model = ModelKind::ResNet50.build(8);
        let mut tf = Engine::new(
            &model.graph,
            EngineConfig::default(),
            Box::new(TfOri::new()),
        );
        let tf_peak = tf.run(2).unwrap().iters[1].peak_mem;
        let p = GradientCheckpointing::from_graph(&model.graph, CheckpointMode::Memory);
        let mut ck = Engine::new(&model.graph, EngineConfig::default(), Box::new(p));
        let ck_peak = ck.run(2).unwrap().iters[1].peak_mem;
        assert!(
            ck_peak < tf_peak * 6 / 10,
            "checkpointing should cut peak: {ck_peak} vs {tf_peak}"
        );
    }

    #[test]
    fn extends_max_batch_beyond_tf_ori() {
        let model = ModelKind::ResNet50.build(16);
        let cfg = EngineConfig {
            spec: DeviceSpec::p100_pcie3().with_memory(1 << 30),
            ..EngineConfig::default()
        };
        let mut tf = Engine::new(&model.graph, cfg.clone(), Box::new(TfOri::new()));
        assert!(tf.run(1).is_err());
        let p = GradientCheckpointing::from_graph(&model.graph, CheckpointMode::Memory);
        let mut ck = Engine::new(&model.graph, cfg, Box::new(p));
        ck.run(2).expect("checkpointing survives");
    }

    #[test]
    fn never_releases_chains_anchored_at_dead_inputs() {
        // Fuzz-found regression: relu(input) has a backward reader (its
        // ReluGrad), but the input dies right after the relu — releasing
        // the relu output would make its recompute impossible.
        use capuchin_graph::Graph;
        use capuchin_tensor::{DType, Shape};
        let mut g = Graph::new("regression");
        let x = g.input("x", Shape::nchw(4, 4, 16, 16), DType::F32);
        let labels = g.input("labels", Shape::vector(4), DType::I32);
        let stem = g.relu("stem", x);
        let c = g.conv2d("conv", stem, 8, 3, 1, 1);
        let gap = g.global_avg_pool("gap", c);
        let fc = g.dense("fc", gap, 10);
        let loss = g.softmax_cross_entropy("loss", fc, labels);
        capuchin_graph::build_backward(&mut g, loss);
        for mode in [CheckpointMode::Memory, CheckpointMode::Speed] {
            let p = GradientCheckpointing::from_graph(&g, mode);
            let mut eng = Engine::new(&g, EngineConfig::default(), Box::new(p));
            eng.run(2).unwrap_or_else(|e| panic!("{mode}: {e}"));
        }
    }

    #[test]
    fn articulation_points_exist_in_chain_models() {
        let model = ModelKind::Vgg16.build(2);
        let arts = articulation_points(&model.graph);
        // VGG is a pure chain: nearly every layer output is a cut point.
        assert!(arts.len() > 20, "{}", arts.len());
    }
}
