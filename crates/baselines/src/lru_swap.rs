//! On-demand LRU paging — the "virtualized GPU memory" class of related
//! work the paper's §7 discusses ([7] GeePS, [21]): treat host memory as
//! backing store and page tensors in and out on demand, with no awareness
//! of the training computation.
//!
//! This is essentially Capuchin's passive mode running forever — no
//! measured execution, no plan, no recomputation — and it exists here to
//! quantify the paper's claim that computation-oblivious swapping
//! "delivers poor performance due to the large overhead of on-demand data
//! transfer".

use capuchin_executor::{Engine, MemoryPolicy};
use capuchin_sim::Time;
use capuchin_tensor::{TensorKey, TensorStatus};

/// Computation-oblivious on-demand paging with LRU victim selection.
///
/// # Examples
///
/// ```
/// use capuchin_baselines::LruSwap;
/// use capuchin_executor::{Engine, EngineConfig};
/// use capuchin_models::ModelKind;
///
/// let model = ModelKind::ResNet50.build(4);
/// let mut engine = Engine::new(&model.graph, EngineConfig::default(), Box::new(LruSwap::new()));
/// engine.run(2).unwrap();
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct LruSwap;

impl LruSwap {
    /// Creates the pager.
    pub fn new() -> LruSwap {
        LruSwap
    }
}

impl MemoryPolicy for LruSwap {
    fn name(&self) -> &str {
        "lru-swap"
    }

    fn on_alloc_failure(&mut self, engine: &mut Engine<'_>, need: u64) -> bool {
        // Strict LRU over resident tensors, evicted synchronously —
        // on-demand paging with no overlap, like OS-style virtual memory.
        let mut candidates: Vec<(Time, TensorKey)> = engine
            .registry()
            .iter()
            .filter(|t| {
                t.status == TensorStatus::In
                    && !t.meta.persistent
                    && t.device.is_some()
                    && !engine.pinned().contains(&t.key())
            })
            .map(|t| (t.last_access, t.key()))
            .collect();
        candidates.sort();
        let mut any = false;
        for (_, key) in candidates {
            if engine.swap_out_sync(key) {
                any = true;
                if engine.device().can_alloc(need) {
                    return true;
                }
            }
        }
        any
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use capuchin_executor::{EngineConfig, TfOri};
    use capuchin_models::ModelKind;
    use capuchin_sim::DeviceSpec;

    #[test]
    fn pages_where_tf_ori_dies_but_pays_for_it() {
        let model = ModelKind::ResNet50.build(16);
        let cfg = EngineConfig {
            spec: DeviceSpec::p100_pcie3().with_memory(900 << 20),
            ..EngineConfig::default()
        };
        let mut tf = Engine::new(&model.graph, cfg.clone(), Box::new(TfOri::new()));
        assert!(tf.run(1).is_err());
        let mut lru = Engine::new(&model.graph, cfg.clone(), Box::new(LruSwap::new()));
        let stats = lru.run(2).expect("paging rescues the run");
        let it = stats.try_last().expect("run produced iterations");
        assert!(it.passive_evictions > 0);
        // On-demand transfers are fully exposed: the stall is substantial.
        assert!(it.stall_time.as_secs_f64() > 0.05 * it.wall().as_secs_f64());
    }

    #[test]
    fn no_interference_when_memory_suffices() {
        let model = ModelKind::ResNet50.build(8);
        let mut eng = Engine::new(
            &model.graph,
            EngineConfig::default(),
            Box::new(LruSwap::new()),
        );
        let stats = eng.run(2).unwrap();
        let it = stats.try_last().expect("run produced iterations");
        assert_eq!(it.passive_evictions, 0);
    }
}
