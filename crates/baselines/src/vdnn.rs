//! vDNN (Rhu et al., MICRO 2016): static layer-wise offload/prefetch.
//!
//! The comparison baseline of paper §6: convolution-layer inputs are
//! offloaded to host memory during the forward pass with *layer-wise
//! synchronization* (the next layer cannot start until the current layer's
//! offload completes — the source of Fig. 1's synchronization overhead),
//! and prefetched back with a static one-layer-lookahead policy during the
//! backward pass.
//!
//! All decisions are made from the computation graph before execution —
//! precisely the static analysis whose limitations the paper demonstrates:
//! no notion of per-layer time variation, no overlap measurement, and the
//! offload set is fixed regardless of actual memory pressure.

use std::collections::HashMap;

use capuchin_executor::{AccessEvent, Engine, MemoryPolicy};
use capuchin_graph::{Graph, OpId, OpKind, Phase, ValueId};
use capuchin_tensor::{AccessKind, TensorKey};

/// The static offload plan derived from the graph.
#[derive(Debug, Clone, Default)]
struct StaticPlan {
    /// `(tensor, conv op)` pairs: offload the tensor when this op reads it.
    offload_at: HashMap<(TensorKey, OpId), ()>,
    /// Backward op → tensors to prefetch when it executes (one-layer
    /// lookahead).
    prefetch_at: HashMap<OpId, Vec<TensorKey>>,
}

/// The vDNN memory policy.
///
/// # Examples
///
/// ```
/// use capuchin_baselines::Vdnn;
/// use capuchin_executor::{Engine, EngineConfig};
/// use capuchin_models::ModelKind;
///
/// let model = ModelKind::ResNet50.build(4);
/// let policy = Vdnn::from_graph(&model.graph);
/// let mut engine = Engine::new(&model.graph, EngineConfig::default(), Box::new(policy));
/// engine.run(2).unwrap();
/// ```
#[derive(Debug, Clone)]
pub struct Vdnn {
    plan: StaticPlan,
    /// Number of convolution layers found (diagnostics).
    conv_layers: usize,
}

impl Vdnn {
    /// Builds the static plan for `graph` by scanning its convolution
    /// layers.
    pub fn from_graph(graph: &Graph) -> Vdnn {
        let mut plan = StaticPlan::default();

        // Forward convolution layers in schedule order with their data
        // inputs. A "layer" here is the conv unit including its batch
        // normalization, as in vDNN's layer granularity — both the conv
        // input and the BN input (the conv output) are offload targets.
        let convs: Vec<(OpId, ValueId)> = graph
            .ops()
            .iter()
            .filter(|op| {
                matches!(op.kind, OpKind::Conv2d(_) | OpKind::BatchNorm)
                    && graph.phase(op.id) == Phase::Forward
            })
            .map(|op| (op.id, op.inputs[0]))
            .collect();

        for &(conv, x) in &convs {
            plan.offload_at.insert((Engine::key_of(x), conv), ());
        }

        // Backward ops belonging to each conv layer: the consumers of the
        // layer's input/filter that run in the backward phase.
        let bwd_ops_of = |i: usize| -> Vec<OpId> {
            let (layer, x) = convs[i];
            let mut ops: Vec<OpId> = graph
                .op(layer)
                .inputs
                .iter()
                .flat_map(|&input| graph.consumers(input).iter().copied())
                .chain(graph.consumers(x).iter().copied())
                .filter(|&o| {
                    graph.phase(o) == Phase::Backward
                        && matches!(
                            graph.op(o).kind,
                            OpKind::Conv2dBackpropInput(_)
                                | OpKind::Conv2dBackpropFilter(_)
                                | OpKind::BatchNormGrad
                        )
                })
                .collect();
            ops.sort();
            ops.dedup();
            ops
        };

        // One-layer lookahead: when layer i+1's backward starts, prefetch
        // layer i's offloaded input. The deepest layer is prefetched by
        // its own backward (on demand).
        for (i, &(_, x)) in convs.iter().enumerate().take(convs.len().saturating_sub(1)) {
            let x_i = Engine::key_of(x);
            for op in bwd_ops_of(i + 1) {
                plan.prefetch_at.entry(op).or_default().push(x_i);
            }
        }

        Vdnn {
            plan,
            conv_layers: convs.len(),
        }
    }

    /// Number of convolution layers the plan offloads around.
    pub fn conv_layers(&self) -> usize {
        self.conv_layers
    }
}

impl MemoryPolicy for Vdnn {
    fn name(&self) -> &str {
        "vdnn"
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }

    fn post_access(&mut self, engine: &mut Engine<'_>, ev: &AccessEvent) {
        // Offload: the conv layer that consumes this tensor just ran; the
        // copy overlaps the layer but the next layer waits for it
        // (layer-wise synchronization).
        if ev.kind == AccessKind::Read && self.plan.offload_at.contains_key(&(ev.key, ev.op)) {
            engine.swap_out_coupled(ev.key, ev.start);
        }
        // Static prefetch lookahead.
        if let Some(targets) = self.plan.prefetch_at.get(&ev.op).cloned() {
            for t in targets {
                let _ = engine.swap_in_async(t, ev.start);
            }
        }
    }

    // No on_alloc_failure: vDNN has no on-demand rescue. If the
    // non-offloaded residual working set does not fit, the run OOMs —
    // that is vDNN's maximum batch size.
}

#[cfg(test)]
mod tests {
    use super::*;
    use capuchin_executor::{EngineConfig, TfOri};
    use capuchin_models::ModelKind;
    use capuchin_sim::DeviceSpec;

    #[test]
    fn finds_all_resnet_conv_layers() {
        let model = ModelKind::ResNet50.build(2);
        let vdnn = Vdnn::from_graph(&model.graph);
        // 53 convolutions + 53 batch norms.
        assert_eq!(vdnn.conv_layers(), 106);
    }

    #[test]
    fn offloads_and_prefetches() {
        let model = ModelKind::Vgg16.build(4);
        let vdnn = Vdnn::from_graph(&model.graph);
        let mut eng = Engine::new(&model.graph, EngineConfig::default(), Box::new(vdnn));
        let stats = eng.run(2).unwrap();
        let it = &stats.iters[1];
        assert!(it.swap_out_bytes > 0, "vDNN must offload conv inputs");
        assert!(it.swap_in_bytes > 0, "vDNN must prefetch them back");
    }

    #[test]
    fn layerwise_sync_causes_stall() {
        // On a fast device the offload cannot hide under one layer's
        // compute; vDNN's coupled synchronization must show up as stall
        // (the Fig. 1 phenomenon).
        let model = ModelKind::Vgg16.build(32);
        let vdnn = Vdnn::from_graph(&model.graph);
        let mut eng = Engine::new(&model.graph, EngineConfig::default(), Box::new(vdnn));
        let stats = eng.run(2).unwrap();
        assert!(
            stats.iters[1].stall_time > capuchin_sim::Duration::ZERO,
            "layer-wise sync must stall: {:?}",
            stats.iters[1]
        );
    }

    #[test]
    fn extends_max_batch_beyond_tf_ori() {
        // At a memory budget where TF-ori fails, vDNN's offloading lets
        // VGG16 (whose conv inputs dominate) run. TF-ori needs ~2.9 GiB at
        // batch 32; vDNN ~2.1 GiB.
        let model = ModelKind::Vgg16.build(32);
        let cfg = EngineConfig {
            spec: DeviceSpec::p100_pcie3().with_memory(2500 << 20),
            ..EngineConfig::default()
        };
        let mut tf = Engine::new(&model.graph, cfg.clone(), Box::new(TfOri::new()));
        assert!(tf.run(1).is_err(), "tf-ori should OOM at this budget");
        let vdnn = Vdnn::from_graph(&model.graph);
        let mut eng = Engine::new(&model.graph, cfg, Box::new(vdnn));
        eng.run(2).expect("vDNN survives where tf-ori OOMs");
    }
}
