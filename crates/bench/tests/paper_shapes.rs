//! Regression guards for the paper's headline *shapes*: if a code change
//! breaks any comparative result the reproduction stands on, one of these
//! fails. Each check is a fixed-point probe (no searches) so the suite
//! stays fast in release mode.

use capuchin_bench::{Bench, System};
use capuchin_models::ModelKind;

#[test]
fn table2_resnet50_capacity_ordering() {
    let bench = Bench::default();
    let kind = ModelKind::ResNet50;
    // TF-ori: fits ~211, not 280 (paper 190).
    assert!(bench.fits(kind, 190, System::TfOri));
    assert!(!bench.fits(kind, 280, System::TfOri));
    // vDNN and OpenAI-M both clear 500 (paper 520/540).
    assert!(bench.fits(kind, 500, System::Vdnn));
    assert!(bench.fits(kind, 500, System::OpenAiMemory));
    // OpenAI-S dies well before memory mode (paper 300 vs 540).
    assert!(!bench.fits(kind, 500, System::OpenAiSpeed));
    // Capuchin clears 1000 (paper 1014).
    assert!(bench.fits(kind, 1000, System::Capuchin));
}

#[test]
fn table2_bert_capacity_ordering() {
    let bench = Bench::default();
    let kind = ModelKind::BertBase;
    assert!(bench.fits(kind, 64, System::TfOri), "paper's TF-ori point");
    assert!(!bench.fits(kind, 200, System::TfOri));
    assert!(bench.fits(kind, 400, System::Capuchin), "paper: 450");
}

#[test]
fn fig9_throughput_ordering_at_tf_max() {
    let bench = Bench::default();
    let kind = ModelKind::ResNet50;
    let batch = 190;
    let tf = bench.throughput(kind, batch, System::TfOri).expect("fits");
    let cap = bench
        .throughput(kind, batch, System::Capuchin)
        .expect("fits");
    let vdnn = bench.throughput(kind, batch, System::Vdnn).expect("fits");
    let om = bench
        .throughput(kind, batch, System::OpenAiMemory)
        .expect("fits");
    // Capuchin adds zero overhead when memory suffices.
    assert!((cap - tf).abs() / tf < 0.01, "cap={cap} tf={tf}");
    // vDNN's layer-wise sync loses ~70% on ResNet (paper: 70.0%).
    assert!(vdnn < tf * 0.45, "vdnn={vdnn} tf={tf}");
    // Checkpointing sits between vDNN and TF-ori.
    assert!(om > vdnn && om < tf, "om={om} vdnn={vdnn} tf={tf}");
}

#[test]
fn fig9_capuchin_graceful_degradation() {
    let bench = Bench::default();
    let kind = ModelKind::ResNet50;
    let at_base = bench.throughput(kind, 210, System::Capuchin).expect("fits");
    let at_1_3x = bench.throughput(kind, 280, System::Capuchin).expect("fits");
    // Paper: <3% loss at +20% batch; allow 5% at +33%.
    assert!(
        at_1_3x > at_base * 0.95,
        "early oversubscription too costly: {at_1_3x} vs {at_base}"
    );
}

#[test]
fn fig8b_speed_heuristic_misfires() {
    // The paper's §6.2 point: checkpointing's "speed" mode is not reliably
    // faster — at batch 342 it still runs, but dies long before memory
    // mode, and Capuchin's measured-cost recomputation beats it there.
    let bench = Bench::default();
    let kind = ModelKind::ResNet50;
    let os = bench
        .throughput(kind, 342, System::OpenAiSpeed)
        .expect("speed mode's own max");
    let cap = bench
        .throughput(kind, 342, System::Capuchin)
        .expect("capuchin fits");
    assert!(cap > os, "cap={cap} openai-s={os}");
}

#[test]
fn eager_only_capuchin_extends_the_batch() {
    let bench = Bench::eager();
    let kind = ModelKind::DenseNet121;
    assert!(bench.fits(kind, 80, System::TfOri));
    assert!(!bench.fits(kind, 120, System::TfOri));
    assert!(bench.fits(kind, 180, System::Capuchin), "paper: 190");
}
