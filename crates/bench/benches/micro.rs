//! Criterion micro-benchmarks for the building blocks whose costs bound
//! the whole system: the BFC allocator, content signatures, graph
//! construction + autodiff, the simulated executor, and the Policy Maker.
//!
//! Run with `cargo bench`. These measure *host* costs of the simulator and
//! policy machinery (the simulated GPU timeline is free), which is what
//! determines how fast the experiment harness can sweep configurations.

use capuchin::{make_plan, Capuchin, PlannerConfig};
use capuchin_bench::{Bench, System};
use capuchin_executor::{Engine, EngineConfig, TfOri};
use capuchin_mem::DeviceAllocator;
use capuchin_models::ModelKind;
use capuchin_sim::DeviceSpec;
use capuchin_tensor::sig;
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

fn bench_allocator(c: &mut Criterion) {
    c.bench_function("allocator/alloc_free_1k_mixed", |b| {
        b.iter_batched(
            || DeviceAllocator::new(1 << 30),
            |mut dev| {
                let mut live = Vec::new();
                for i in 0..1_000u64 {
                    let size = 1 + (i * 2_654_435_761) % 262_144;
                    if let Ok(a) = dev.alloc(size) {
                        live.push(a);
                    }
                    if i % 3 == 0 {
                        if let Some(a) = live.pop() {
                            dev.free(a).unwrap();
                        }
                    }
                }
                for a in live {
                    dev.free(a).unwrap();
                }
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_signatures(c: &mut Criterion) {
    let inputs: Vec<u64> = (0..8).map(|i| sig::leaf("x", i)).collect();
    c.bench_function("sig/op_8_inputs", |b| {
        b.iter(|| sig::op("conv2d", 42, 0, std::hint::black_box(&inputs)))
    });
}

fn bench_graph_build(c: &mut Criterion) {
    c.bench_function("graph/build_resnet50_with_autodiff", |b| {
        b.iter(|| ModelKind::ResNet50.build(std::hint::black_box(8)))
    });
}

fn bench_executor(c: &mut Criterion) {
    let model = ModelKind::ResNet50.build(8);
    c.bench_function("executor/resnet50_b8_iteration", |b| {
        b.iter_batched(
            || {
                Engine::new(
                    &model.graph,
                    EngineConfig::default(),
                    Box::new(TfOri::new()),
                )
            },
            |mut eng| eng.run(1).unwrap(),
            BatchSize::SmallInput,
        )
    });
}

fn bench_policy_maker(c: &mut Criterion) {
    // Measure plan construction on a real measured profile: run the
    // measured iteration once, then re-plan from the captured profile.
    let model = ModelKind::ResNet50.build(32);
    let spec = DeviceSpec::p100_pcie3().with_memory(1 << 30);
    let cfg = EngineConfig {
        spec: spec.clone(),
        ..EngineConfig::default()
    };
    let mut eng = Engine::new(&model.graph, cfg, Box::new(Capuchin::new()));
    eng.run(2).expect("measured execution");
    let profile = eng
        .policy()
        .as_any()
        .and_then(|a| a.downcast_ref::<Capuchin>())
        .expect("capuchin policy")
        .profile()
        .clone();
    c.bench_function("policy/make_plan_resnet50_b32", |b| {
        b.iter(|| {
            make_plan(
                std::hint::black_box(&profile),
                &spec,
                &PlannerConfig::default(),
            )
        })
    });
}

fn bench_capuchin_iteration(c: &mut Criterion) {
    // Host-side cost of a fully-managed (guided) iteration — the
    // simulator's end-to-end speed under the heaviest policy.
    let bench = Bench {
        spec: DeviceSpec::p100_pcie3().with_memory(2 << 30),
        ..Bench::default()
    };
    let model = ModelKind::ResNet50.build(32);
    c.bench_function("executor/capuchin_guided_run", |b| {
        b.iter(|| bench.run(&model, System::Capuchin, 6).expect("fits"))
    });
}

criterion_group!(
    benches,
    bench_allocator,
    bench_signatures,
    bench_graph_build,
    bench_executor,
    bench_policy_maker,
    bench_capuchin_iteration,
);
criterion_main!(benches);
