//! # capuchin-bench — the experiment harness
//!
//! Shared machinery for regenerating every table and figure of the paper's
//! evaluation (§6): system/policy factories, maximum-batch-size search,
//! throughput measurement, and JSON artifact emission. One binary per
//! exhibit lives in `src/bin/` (see `DESIGN.md` for the experiment index).

#![warn(missing_docs)]

use std::io::Write as _;
use std::path::Path;

use capuchin::{Capuchin, CapuchinConfig};
use capuchin_baselines::{CheckpointMode, GradientCheckpointing, TfOri, Vdnn};
use capuchin_cluster::{JobPolicy, JobSpec};
use capuchin_executor::{Engine, EngineConfig, ExecMode, IterStats, MemoryPolicy, RunStats};
use capuchin_graph::Graph;
use capuchin_models::{Model, ModelKind};
use capuchin_sim::DeviceSpec;
use serde::Serialize;

/// The systems compared in the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
pub enum System {
    /// Original TensorFlow (no memory management).
    TfOri,
    /// vDNN layer-wise offload.
    Vdnn,
    /// OpenAI gradient-checkpointing, memory mode.
    OpenAiMemory,
    /// OpenAI gradient-checkpointing, speed mode.
    OpenAiSpeed,
    /// Capuchin (full hybrid policy).
    Capuchin,
    /// Capuchin restricted to swapping (Fig. 8a breakdowns).
    CapuchinSwapOnly,
    /// Capuchin restricted to recomputation (Fig. 8b breakdowns).
    CapuchinRecomputeOnly,
}

impl System {
    /// The four headline systems of Table 2 / Fig. 9.
    pub const HEADLINE: [System; 4] = [
        System::TfOri,
        System::Vdnn,
        System::OpenAiMemory,
        System::Capuchin,
    ];

    /// Display name used in tables.
    pub fn name(self) -> &'static str {
        match self {
            System::TfOri => "TF-ori",
            System::Vdnn => "vDNN",
            System::OpenAiMemory => "OpenAI-M",
            System::OpenAiSpeed => "OpenAI-S",
            System::Capuchin => "Capuchin",
            System::CapuchinSwapOnly => "Capuchin(swap)",
            System::CapuchinRecomputeOnly => "Capuchin(recompute)",
        }
    }

    /// Instantiates the policy for a graph.
    pub fn policy(self, graph: &Graph) -> Box<dyn MemoryPolicy> {
        match self {
            System::TfOri => Box::new(TfOri::new()),
            System::Vdnn => Box::new(Vdnn::from_graph(graph)),
            System::OpenAiMemory => Box::new(GradientCheckpointing::from_graph(
                graph,
                CheckpointMode::Memory,
            )),
            System::OpenAiSpeed => Box::new(GradientCheckpointing::from_graph(
                graph,
                CheckpointMode::Speed,
            )),
            System::Capuchin => Box::new(Capuchin::new()),
            System::CapuchinSwapOnly => {
                Box::new(Capuchin::with_config(CapuchinConfig::swap_only()))
            }
            System::CapuchinRecomputeOnly => {
                Box::new(Capuchin::with_config(CapuchinConfig::recompute_only()))
            }
        }
    }

    /// Iterations needed for the system's steady state (Capuchin needs the
    /// measured iteration plus refinement rounds).
    pub fn warm_iters(self) -> u64 {
        match self {
            System::Capuchin | System::CapuchinSwapOnly | System::CapuchinRecomputeOnly => 10,
            _ => 3,
        }
    }
}

impl std::fmt::Display for System {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Harness-wide run configuration.
#[derive(Debug, Clone)]
pub struct Bench {
    /// Device spec (defaults to the paper's 16 GB P100).
    pub spec: DeviceSpec,
    /// Graph or eager execution.
    pub mode: ExecMode,
}

impl Default for Bench {
    fn default() -> Bench {
        Bench {
            spec: DeviceSpec::p100_pcie3(),
            mode: ExecMode::Graph,
        }
    }
}

impl Bench {
    /// The eager-mode harness (Table 3 / Fig. 10).
    pub fn eager() -> Bench {
        Bench {
            mode: ExecMode::eager_default(),
            ..Bench::default()
        }
    }

    fn engine_config(&self) -> EngineConfig {
        EngineConfig {
            spec: self.spec.clone(),
            mode: self.mode,
            ..EngineConfig::default()
        }
    }

    /// Runs `system` on `model` for `iters` iterations.
    ///
    /// Returns `None` on OOM.
    pub fn run(&self, model: &Model, system: System, iters: u64) -> Option<RunStats> {
        let mut engine = Engine::new(
            &model.graph,
            self.engine_config(),
            system.policy(&model.graph),
        );
        match engine.run(iters) {
            Ok(mut stats) => {
                stats.batch = model.batch;
                Some(stats)
            }
            Err(_) => None,
        }
    }

    /// Steady-state training speed in samples/second, or `None` on OOM.
    pub fn throughput(&self, kind: ModelKind, batch: usize, system: System) -> Option<f64> {
        let model = kind.build(batch);
        let stats = self.run(&model, system, system.warm_iters())?;
        let last = stats.try_last()?;
        Some(batch as f64 / last.wall().as_secs_f64())
    }

    /// Whether `system` completes training at `batch`.
    pub fn fits(&self, kind: ModelKind, batch: usize, system: System) -> bool {
        let model = kind.build(batch);
        self.run(&model, system, system.warm_iters()).is_some()
    }

    /// Maximum batch size: exponential probe from `seed`, then binary
    /// search to a granularity of ~1.5%.
    pub fn max_batch(&self, kind: ModelKind, system: System, seed: usize) -> usize {
        let mut lo = 0usize; // known-good
        let mut probe = seed.max(2);
        loop {
            if self.fits(kind, probe, system) {
                lo = probe;
                probe *= 2;
            } else {
                break;
            }
        }
        let mut hi = probe; // known-bad
        if lo == 0 {
            // The seed itself failed: search downwards.
            while probe > 1 {
                probe /= 2;
                if self.fits(kind, probe, system) {
                    lo = probe;
                    break;
                }
            }
            if lo == 0 {
                return 0;
            }
            hi = lo * 2;
        }
        let granularity = (lo / 64).max(2);
        while hi - lo > granularity {
            let mid = (lo + hi) / 2;
            if self.fits(kind, mid, system) {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        // Fragmentation makes fit non-monotonic in rare pockets; probe a
        // few more steps upward so an isolated failure does not understate
        // the maximum.
        let mut best = lo;
        let mut b = lo + granularity;
        let mut misses = 0;
        while misses < 5 {
            if self.fits(kind, b, system) {
                best = b;
                misses = 0;
            } else {
                misses += 1;
            }
            b += granularity;
        }
        best
    }
}

/// Builds one cluster [`JobSpec`] — the shared job-mix vocabulary of the
/// cluster benches (`cluster_gang`, `cluster_preemption`), so workloads
/// read as one-line rows instead of struct literals.
#[allow(clippy::too_many_arguments)]
pub fn cluster_job(
    name: &str,
    model: ModelKind,
    batch: usize,
    gpus: usize,
    policy: JobPolicy,
    iters: u64,
    priority: u32,
    arrival_time: f64,
) -> JobSpec {
    JobSpec {
        name: name.to_owned(),
        model,
        batch,
        gpus,
        policy,
        iters,
        priority,
        arrival_time,
        elastic: false,
        ..JobSpec::default()
    }
}

/// The final iteration of a run: the steady-state sample every exhibit
/// reports. Exits with a diagnostic (rather than panicking) when a run
/// recorded no iterations.
pub fn final_iter(stats: &RunStats) -> &IterStats {
    stats.try_last().unwrap_or_else(|| {
        eprintln!("error: run recorded no iterations");
        std::process::exit(1);
    })
}

/// Writes a serializable artifact under `results/` so figures can be
/// regenerated without re-running the sweep.
pub fn write_artifact<T: Serialize>(name: &str, value: &T) {
    let dir = Path::new("results");
    if std::fs::create_dir_all(dir).is_err() {
        return;
    }
    let path = dir.join(format!("{name}.json"));
    match std::fs::File::create(&path) {
        Ok(mut f) => {
            let json = serde_json::to_string_pretty(value).expect("serializable artifact");
            if f.write_all(json.as_bytes()).is_ok() {
                eprintln!("[artifact] wrote {}", path.display());
            }
        }
        Err(e) => eprintln!("[artifact] cannot write {}: {e}", path.display()),
    }
}

/// Formats one fixed-width table row.
pub fn row(cells: &[String], widths: &[usize]) -> String {
    cells
        .iter()
        .zip(widths)
        .map(|(c, w)| format!("{c:>w$}"))
        .collect::<Vec<_>>()
        .join("  ")
}

/// `--quick` flag: smaller sweeps for smoke runs.
pub fn quick_mode() -> bool {
    std::env::args().any(|a| a == "--quick")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throughput_and_fits_agree() {
        let bench = Bench::default();
        assert!(bench.fits(ModelKind::ResNet50, 32, System::TfOri));
        let tput = bench.throughput(ModelKind::ResNet50, 32, System::TfOri);
        assert!(tput.expect("fits") > 10.0);
    }

    #[test]
    fn max_batch_search_brackets_correctly() {
        // Tiny device for a fast search.
        let bench = Bench {
            spec: DeviceSpec::p100_pcie3().with_memory(2 << 30),
            ..Bench::default()
        };
        let max = bench.max_batch(ModelKind::ResNet50, System::TfOri, 8);
        assert!(max > 0);
        assert!(bench.fits(ModelKind::ResNet50, max, System::TfOri));
        assert!(!bench.fits(ModelKind::ResNet50, max * 2, System::TfOri));
    }

    #[test]
    fn all_systems_instantiate() {
        let model = ModelKind::ResNet50.build(4);
        for system in [
            System::TfOri,
            System::Vdnn,
            System::OpenAiMemory,
            System::OpenAiSpeed,
            System::Capuchin,
            System::CapuchinSwapOnly,
            System::CapuchinRecomputeOnly,
        ] {
            let policy = system.policy(&model.graph);
            assert!(!policy.name().is_empty());
        }
    }
}
