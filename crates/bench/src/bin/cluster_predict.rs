//! Predictive admission — validation-engine runs and admission
//! wall-clock, cold keys vs warm keys.
//!
//! The footprint predictor ([`capuchin_cluster::FootprintPredictor`])
//! lets a returning `(model, policy, class)` family admit from a fitted
//! regression instead of a measured iteration. This bench drives the
//! same cluster through two arrival streams and records what the
//! predictor actually buys:
//!
//! * **cold** — every key unseen: admission falls back to measured
//!   execution, so the phase pays the validation-engine runs the
//!   pre-predictor scheduler always paid.
//! * **warm** — the same families return (including batches *between*
//!   the fitted ones, exercising interpolation): admissions are granted
//!   from `prediction × safety margin` and charge **zero** new
//!   validation-engine runs.
//!
//! Both phases run on one [`Cluster`] — the predictor's whole point is
//! that its state survives across submissions, exactly as it does
//! across `capuchin-serve` submissions. The committed artifact
//! (`results/cluster_predict.json`) records per-phase wall-clock,
//! per-job admission cost, validation counts and predictor counters.
//! `--smoke` re-runs the small scenario and fails when the warm phase
//! charges more validation runs than the committed ceiling, when any
//! job aborts mid-run, or when the warm phase never hits the predictor
//! — the regression gate for "admit without a measured iteration".

use std::time::Instant;

use capuchin_bench::write_artifact;
use capuchin_cluster::{AdmissionMode, Cluster, ClusterConfig, JobPolicy, JobSpec, StrategyKind};
use capuchin_models::ModelKind;
use serde::{Deserialize, Serialize};

/// One arrival stream's measured outcome. Wall-clock fields vary run to
/// run; the simulation-side fields (validations, predictor counters,
/// completions) are reproducible.
#[derive(Debug, Serialize, Deserialize)]
struct PhaseRun {
    phase: String,
    jobs: usize,
    completed: usize,
    /// Validation-engine runs this phase added to the controller total.
    validation_runs: u64,
    predictor_hits: u64,
    predictor_misses: u64,
    mispredict_recoveries: u64,
    midrun_aborts: usize,
    sim_makespan_secs: f64,
    wall_secs: f64,
    /// Wall-clock per submitted job — admission dominates this phase
    /// cost at these scales, so cold vs warm is the predictor's saving.
    us_per_job: f64,
}

#[derive(Debug, Serialize, Deserialize)]
struct PredictArtifact {
    gpus: usize,
    runs: Vec<PhaseRun>,
}

struct Scenario {
    name: &'static str,
    gpus: usize,
    /// Jobs per phase (the warm stream is the same size as the cold).
    jobs: usize,
}

/// CI guard row: small enough to finish in seconds on any machine.
const SMOKE: Scenario = Scenario {
    name: "smoke",
    gpus: 64,
    jobs: 400,
};

/// Headline row: the scheduler-scale cluster with a predictor in front.
const LARGE: Scenario = Scenario {
    name: "large",
    gpus: 1024,
    jobs: 4_000,
};

/// The family menu: two `(model, policy)` keys, cold batches at the fit
/// points and warm batches both on and *between* them (interpolation).
const COLD_BATCHES: &[usize] = &[16, 32, 48];
const WARM_BATCHES: &[usize] = &[16, 24, 32, 40, 48];
const MODELS: &[ModelKind] = &[ModelKind::ResNet50, ModelKind::DenseNet121];

fn stream(n: usize, batches: &[usize], tag: &str) -> Vec<JobSpec> {
    (0..n)
        .map(|i| JobSpec {
            name: format!("{tag}{i:05}"),
            model: MODELS[i % MODELS.len()],
            batch: batches[(i / MODELS.len()) % batches.len()],
            gpus: 1,
            policy: JobPolicy::Capuchin,
            iters: 2,
            priority: 0,
            arrival_time: i as f64 * 0.05,
            elastic: false,
            ..JobSpec::default()
        })
        .collect()
}

fn run_phase(cluster: &mut Cluster, phase: &str, jobs: &[JobSpec]) -> PhaseRun {
    let before = cluster.validation_runs();
    let start = Instant::now();
    let stats = cluster.run(jobs);
    let wall = start.elapsed();
    let run = PhaseRun {
        phase: phase.to_owned(),
        jobs: jobs.len(),
        completed: stats.completed,
        validation_runs: cluster.validation_runs() - before,
        predictor_hits: stats.predictor_hits,
        predictor_misses: stats.predictor_misses,
        mispredict_recoveries: stats.mispredict_recoveries,
        midrun_aborts: stats.midrun_oom_aborts,
        sim_makespan_secs: stats.makespan.as_secs_f64(),
        wall_secs: wall.as_secs_f64(),
        us_per_job: wall.as_secs_f64() * 1e6 / jobs.len() as f64,
    };
    eprintln!(
        "[{}] {} jobs ({} completed): {} validation runs, {} hits / {} misses, \
         {} recoveries, {:.2}s wall, {:.1}us/job",
        run.phase,
        run.jobs,
        run.completed,
        run.validation_runs,
        run.predictor_hits,
        run.predictor_misses,
        run.mispredict_recoveries,
        run.wall_secs,
        run.us_per_job,
    );
    assert_eq!(
        run.completed, run.jobs,
        "{phase}: {}/{} jobs completed — predictive admission stranded work",
        run.completed, run.jobs
    );
    run
}

fn run_scenario(sc: &Scenario) -> PredictArtifact {
    eprintln!("[{}] {} GPUs, {} jobs per phase", sc.name, sc.gpus, sc.jobs);
    let cfg = ClusterConfig::builder()
        .gpus(sc.gpus)
        .admission(AdmissionMode::Capuchin)
        .strategy(StrategyKind::FifoFirstFit)
        .predictive(true)
        .build()
        .expect("valid predict config");
    let mut cluster = Cluster::new(cfg);
    let cold = run_phase(&mut cluster, "cold", &stream(sc.jobs, COLD_BATCHES, "cold"));
    // Same cluster: the predictor (and the measured-run caches that feed
    // it) survive the reset, exactly as across serve submissions.
    let warm = run_phase(&mut cluster, "warm", &stream(sc.jobs, WARM_BATCHES, "warm"));
    assert!(
        warm.predictor_hits > 0,
        "{}: warm stream never hit the predictor — keys failed to warm",
        sc.name
    );
    PredictArtifact {
        gpus: sc.gpus,
        runs: vec![cold, warm],
    }
}

/// The `--smoke` guard: warm-phase validation runs must not exceed the
/// committed ceiling, nothing may abort mid-run, and the warm stream
/// must actually admit from the predictor.
fn smoke_guard() -> ! {
    let artifact = run_scenario(&SMOKE);
    let warm = artifact.runs.iter().find(|r| r.phase == "warm").unwrap();
    if warm.midrun_aborts > 0 {
        eprintln!(
            "error: {} job(s) aborted mid-run — a predicted grant slipped \
             past recovery",
            warm.midrun_aborts
        );
        std::process::exit(1);
    }
    let committed = std::fs::read_to_string("results/cluster_predict.json")
        .ok()
        .and_then(|s| serde_json::from_str::<PredictArtifact>(&s).ok());
    let ceiling = committed
        .as_ref()
        .and_then(|a| a.runs.iter().find(|r| r.phase == "warm"))
        .map(|r| r.validation_runs);
    match ceiling {
        Some(ceiling) => {
            eprintln!(
                "[smoke] warm phase: {} validation runs vs committed ceiling {}",
                warm.validation_runs, ceiling
            );
            if warm.validation_runs > ceiling {
                eprintln!(
                    "error: warm-key admissions charged {} validation runs \
                     (committed ceiling {}) — predicted admission regressed \
                     to measured execution",
                    warm.validation_runs, ceiling
                );
                std::process::exit(1);
            }
        }
        None => eprintln!("[smoke] no committed baseline; measurement recorded above"),
    }
    std::process::exit(0);
}

fn main() {
    if std::env::args().any(|a| a == "--smoke") {
        smoke_guard();
    }
    let artifact = run_scenario(&LARGE);
    let cold = &artifact.runs[0];
    let warm = &artifact.runs[1];
    assert!(
        warm.validation_runs < cold.validation_runs,
        "warm phase charged {} validation runs vs cold's {} — the predictor \
         bought nothing",
        warm.validation_runs,
        cold.validation_runs
    );
    write_artifact("cluster_predict", &artifact);
}
