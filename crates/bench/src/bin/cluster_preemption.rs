//! Checkpoint-preemption — JCT tails with `--preemption on` vs `off` on a
//! contended, priority-inverted workload.
//!
//! Without preemption a high-priority arrival that fits on no GPU waits
//! for a whole low-priority run to drain (head-of-line blocking), so the
//! high-priority JCT tail tracks the *longest* resident job. With
//! checkpoint-preemption the scheduler snapshots the lowest-priority
//! resident to host memory over the PCIe model, runs the urgent job, and
//! resumes the victim — trading a bounded, accounted checkpoint/restore
//! cost for a much shorter high-priority tail.
//!
//! The workload pins that inversion: long low-priority VGG16 jobs arrive
//! first and occupy every GPU (each needs more than half a device, so
//! nothing co-resides), then short priority-8 jobs arrive behind them.

use capuchin_bench::{cluster_job as job, write_artifact};
use capuchin_cluster::{
    AdmissionMode, Cluster, ClusterConfig, ClusterStats, JobOutcome, JobPolicy, JobSpec,
    StrategyKind,
};
use capuchin_models::ModelKind;
use capuchin_sim::{DeviceSpec, Duration};
use serde::Serialize;

/// 2 GPUs' worth of long low-priority residents plus a queued third, then
/// three short high-priority arrivals that cannot fit anywhere.
fn workload() -> Vec<JobSpec> {
    use JobPolicy::TfOri;
    use ModelKind::Vgg16;
    let mut jobs = Vec::new();
    for (i, arrival) in [0.0, 0.1, 0.2].into_iter().enumerate() {
        jobs.push(job(&format!("low{i}"), Vgg16, 48, 1, TfOri, 30, 0, arrival));
    }
    for (i, arrival) in [0.5, 0.6, 0.7].into_iter().enumerate() {
        jobs.push(job(&format!("high{i}"), Vgg16, 48, 1, TfOri, 4, 8, arrival));
    }
    jobs
}

fn run(preemption: bool, jobs: &[JobSpec]) -> ClusterStats {
    let cfg = ClusterConfig::builder()
        .gpus(2)
        .spec(DeviceSpec::p100_pcie3().with_memory(6 << 30))
        .admission(AdmissionMode::TfOri)
        .strategy(StrategyKind::BestFit)
        .preemption(preemption)
        .build()
        .expect("valid config");
    Cluster::new(cfg).run(jobs)
}

/// Tail of a (sorted-ascending) duration sample at quantile `q` in \[0,1\].
fn tail(sorted: &[Duration], q: f64) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    let idx = ((sorted.len() as f64 - 1.0) * q).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

fn class_jcts(stats: &ClusterStats, prefix: &str) -> Vec<Duration> {
    let mut jcts: Vec<Duration> = stats
        .jobs
        .iter()
        .filter(|j| j.name.starts_with(prefix) && j.outcome == JobOutcome::Completed)
        .map(|j| j.jct)
        .collect();
    jcts.sort();
    jcts
}

#[derive(Serialize)]
struct Comparison {
    off: ClusterStats,
    on: ClusterStats,
}

fn main() {
    let jobs = workload();
    println!("Checkpoint-preemption on 6 priority-inverted jobs / 2 × 6 GiB GPUs (best-fit)");
    println!(
        "{:<12} {:>11} {:>13} {:>13} {:>12} {:>12}",
        "preemption", "preemptions", "high p50 JCT", "high max JCT", "low max JCT", "makespan"
    );
    let mut results = Vec::new();
    for preemption in [false, true] {
        let stats = run(preemption, &jobs);
        assert_eq!(
            stats.midrun_oom_aborts, 0,
            "admitted jobs must never abort mid-run"
        );
        let high = class_jcts(&stats, "high");
        let low = class_jcts(&stats, "low");
        assert_eq!(high.len(), 3, "all high-priority jobs must complete");
        assert_eq!(low.len(), 3, "all low-priority jobs must complete");
        println!(
            "{:<12} {:>11} {:>12.2}s {:>12.2}s {:>11.2}s {:>11.2}s",
            if preemption { "on" } else { "off" },
            stats.preemptions,
            tail(&high, 0.5).as_secs_f64(),
            tail(&high, 1.0).as_secs_f64(),
            tail(&low, 1.0).as_secs_f64(),
            stats.makespan.as_secs_f64(),
        );
        results.push(stats);
    }
    let on = results.pop().expect("two runs");
    let off = results.pop().expect("two runs");
    assert_eq!(off.preemptions, 0, "preemption off must never preempt");
    assert!(on.preemptions >= 1, "the inversion must trigger preemption");
    let (high_on, high_off) = (class_jcts(&on, "high"), class_jcts(&off, "high"));
    assert!(
        tail(&high_on, 1.0) < tail(&high_off, 1.0),
        "preemption must shorten the high-priority JCT tail: {:?} vs {:?}",
        tail(&high_on, 1.0),
        tail(&high_off, 1.0),
    );
    // Every victim resumed, completed, and has its checkpoint/restore PCIe
    // cost visible on its own clock.
    for j in on.jobs.iter().filter(|j| j.preemptions > 0) {
        assert_eq!(j.outcome, JobOutcome::Completed, "{}", j.name);
        assert!(j.checkpoint_overhead > Duration::ZERO, "{}", j.name);
        assert!(j.resume_latency > Duration::ZERO, "{}", j.name);
    }
    let overhead: f64 = on
        .jobs
        .iter()
        .map(|j| j.checkpoint_overhead.as_secs_f64())
        .sum();
    println!(
        "\npreemption cut the high-priority max JCT {:.2}s -> {:.2}s \
         for {:.3}s of checkpoint/restore copies across {} preemption(s)",
        tail(&high_off, 1.0).as_secs_f64(),
        tail(&high_on, 1.0).as_secs_f64(),
        overhead,
        on.preemptions,
    );
    write_artifact("cluster_preemption", &Comparison { off, on });
}
