//! Table 2 — Maximum batch size in graph mode.
//!
//! Paper (16 GB P100):
//!
//! | Model        | TF-ori | vDNN | OpenAI | Capuchin |
//! |--------------|-------:|-----:|-------:|---------:|
//! | Vgg16        |    228 |  272 |    260 |      350 |
//! | ResNet-50    |    190 |  520 |    540 |     1014 |
//! | ResNet-152   |     86 |  330 |    440 |      798 |
//! | InceptionV3  |    160 |  400 |    400 |      716 |
//! | InceptionV4  |     88 |  220 |    220 |      468 |
//! | BERT         |     64 |    – |    210 |      450 |
//!
//! ("OpenAI" is the better of its two modes; vDNN is CNN-only.)

use capuchin_bench::{quick_mode, row, write_artifact, Bench, System};
use capuchin_models::ModelKind;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    model: &'static str,
    tf_ori: usize,
    vdnn: Option<usize>,
    openai_memory: usize,
    openai_speed: usize,
    capuchin: usize,
}

fn main() {
    let bench = Bench::default();
    let quick = quick_mode();
    let workloads: &[(ModelKind, usize)] = if quick {
        &[(ModelKind::ResNet50, 190), (ModelKind::BertBase, 64)]
    } else {
        &[
            (ModelKind::Vgg16, 228),
            (ModelKind::ResNet50, 190),
            (ModelKind::ResNet152, 86),
            (ModelKind::InceptionV3, 160),
            (ModelKind::InceptionV4, 88),
            (ModelKind::BertBase, 64),
        ]
    };

    println!("Table 2: maximum batch size, graph mode (simulated 16 GB P100)");
    let widths = [12, 8, 8, 10, 10, 10, 9, 9];
    println!(
        "{}",
        row(
            &["Model", "TF-ori", "vDNN", "OpenAI-M", "OpenAI-S", "Capuchin", "Cap/TF", "Cap/2nd"]
                .map(String::from),
            &widths
        )
    );

    let mut rows = Vec::new();
    let mut ratio_tf_sum = 0.0;
    let mut ratio_2nd_sum = 0.0;
    for &(kind, seed) in workloads {
        let tf = bench.max_batch(kind, System::TfOri, seed);
        let vdnn = if kind == ModelKind::BertBase {
            None // vDNN is CNN-specific (paper: "not available on BERT")
        } else {
            Some(bench.max_batch(kind, System::Vdnn, tf.max(2)))
        };
        let om = bench.max_batch(kind, System::OpenAiMemory, tf.max(2));
        let os = bench.max_batch(kind, System::OpenAiSpeed, tf.max(2));
        let cap = bench.max_batch(kind, System::Capuchin, tf.max(2));
        let second = vdnn.unwrap_or(0).max(om).max(os);
        let r_tf = cap as f64 / tf.max(1) as f64;
        let r_2nd = cap as f64 / second.max(1) as f64;
        ratio_tf_sum += r_tf;
        ratio_2nd_sum += r_2nd;
        println!(
            "{}",
            row(
                &[
                    kind.name().to_owned(),
                    tf.to_string(),
                    vdnn.map(|v| v.to_string()).unwrap_or_else(|| "-".into()),
                    om.to_string(),
                    os.to_string(),
                    cap.to_string(),
                    format!("{r_tf:.2}x"),
                    format!("{r_2nd:.2}x"),
                ],
                &widths
            )
        );
        rows.push(Row {
            model: kind.name(),
            tf_ori: tf,
            vdnn,
            openai_memory: om,
            openai_speed: os,
            capuchin: cap,
        });
    }
    let n = workloads.len() as f64;
    println!(
        "\naverage Capuchin/TF-ori = {:.2}x (paper: 5.49x), Capuchin/2nd-best = {:.2}x (paper: 1.84x)",
        ratio_tf_sum / n,
        ratio_2nd_sum / n
    );
    write_artifact("table2_max_batch", &rows);
}
