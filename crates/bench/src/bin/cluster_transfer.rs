//! The unified per-tensor transfer layer, exhibited: one swapping
//! workload run with the fabric off, unconstrained, and constrained
//! (shared PCIe), with the per-tensor transfer trace decomposed.
//!
//! Three claims, each asserted below:
//!
//! 1. **Unconstrained ≡ off** — routing every replayed tensor over an
//!    infinite-bandwidth fabric reproduces the fabric-off per-job stats
//!    exactly: the per-tensor path adds observability, never cost.
//! 2. **Exact decomposition** — on the constrained fabric, each job's
//!    `comm_delay` equals the sum of its traced per-tensor charges, and
//!    no link is charged beyond its wall-clock occupancy.
//! 3. **Feedback closes the loop** — stretched swap-ins accumulate §4.4
//!    leads, so late iterations want their tensors earlier than early
//!    ones; the lead is visible per record in the trace.

use std::collections::BTreeMap;

use capuchin_bench::{cluster_job as job, write_artifact};
use capuchin_cluster::{
    AdmissionMode, Cluster, ClusterConfig, ClusterStats, ClusterTransfer, JobPolicy, JobSpec,
    StrategyKind,
};
use capuchin_models::ModelKind;
use capuchin_sim::{Duration, InterconnectSpec};
use serde::Serialize;

/// Two heavyweight swapping singles sharing one host link with a 2-GPU
/// gang: swap replay, allreduce shares, and (fabric-priced) iteration
/// traffic all contend on the same lane.
fn workload() -> Vec<JobSpec> {
    use JobPolicy::{Capuchin, TfOri};
    use ModelKind::{ResNet50, Vgg16};
    vec![
        job("swap-vgg", Vgg16, 320, 1, Capuchin, 4, 0, 0.0),
        job("swap-r50", ResNet50, 256, 1, Capuchin, 4, 0, 0.05),
        job("gang2-r50", ResNet50, 64, 2, TfOri, 4, 0, 0.10),
    ]
}

fn run(fabric: Option<InterconnectSpec>) -> (ClusterStats, Vec<ClusterTransfer>) {
    let cfg = ClusterConfig::builder()
        .gpus(4)
        .admission(AdmissionMode::Capuchin)
        .strategy(StrategyKind::BestFit)
        .interconnect(fabric)
        .build()
        .expect("valid config");
    Cluster::new(cfg).run_traced(&workload())
}

/// Per-transfer-kind aggregate over the trace.
#[derive(Default, Serialize)]
struct KindRow {
    transfers: u64,
    bytes: u64,
    waited: u64,
    total_wait: Duration,
    total_charge: Duration,
    max_lead: Duration,
}

fn by_kind(trace: &[ClusterTransfer]) -> BTreeMap<String, KindRow> {
    let mut rows: BTreeMap<String, KindRow> = BTreeMap::new();
    for t in trace {
        let kind = t.label.split(':').next().unwrap_or(&t.label).to_owned();
        let row = rows.entry(kind).or_default();
        row.transfers += 1;
        row.bytes += t.bytes;
        if t.wait > Duration::ZERO {
            row.waited += 1;
        }
        row.total_wait += t.wait;
        row.total_charge += t.charge;
        row.max_lead = row.max_lead.max(t.lead);
    }
    rows
}

#[derive(Serialize)]
struct Artifact {
    constrained: ClusterStats,
    kinds: BTreeMap<String, KindRow>,
    trace: Vec<ClusterTransfer>,
}

fn main() {
    println!("Per-tensor transfer replay on 3 jobs / 4 x 16 GiB GPUs (best-fit)");
    let (off, off_trace) = run(None);
    let (free, _) = run(Some(InterconnectSpec::unconstrained()));
    let (on, trace) = run(Some(InterconnectSpec::pcie_shared()));
    assert!(off_trace.is_empty(), "no fabric, no transfer records");

    // (1) Unconstrained ≡ off, job by job.
    let off_json = serde_json::to_string(&off.jobs).expect("serialize");
    let free_json = serde_json::to_string(&free.jobs).expect("serialize");
    assert_eq!(
        off_json, free_json,
        "infinite bandwidth must reproduce the fabric-off stats"
    );

    // (2) Exact decomposition on the constrained fabric.
    for j in &on.jobs {
        let charged: Duration = trace
            .iter()
            .filter(|t| t.job == j.name)
            .map(|t| t.charge)
            .sum();
        assert_eq!(
            charged, j.comm_delay,
            "{}: comm_delay must decompose into per-tensor charges",
            j.name
        );
    }
    for l in &on.links {
        let charged: Duration = trace
            .iter()
            .filter(|t| t.link == l.link)
            .map(|t| t.charge)
            .sum();
        assert!(
            charged <= l.busy,
            "link {}: charged {:?} beyond occupancy {:?}",
            l.link,
            charged,
            l.busy
        );
    }

    // (3) Feedback visible: some stretched swap-in accumulated a lead.
    let max_lead = trace.iter().map(|t| t.lead).max().unwrap_or(Duration::ZERO);
    assert!(
        max_lead > Duration::ZERO,
        "contention must fire the §4.4 feedback during guided replay"
    );

    let kinds = by_kind(&trace);
    println!(
        "{:<12} {:>9} {:>12} {:>8} {:>12} {:>12} {:>10}",
        "kind", "transfers", "bytes", "waited", "wait", "charged", "max lead"
    );
    for (kind, row) in &kinds {
        println!(
            "{:<12} {:>9} {:>12} {:>8} {:>11.4}s {:>11.4}s {:>9.4}s",
            kind,
            row.transfers,
            row.bytes,
            row.waited,
            row.total_wait.as_secs_f64(),
            row.total_charge.as_secs_f64(),
            row.max_lead.as_secs_f64(),
        );
    }
    println!(
        "\nmakespan {:.2}s (off) -> {:.2}s (pcie), {} per-tensor records, \
         comm delay decomposes exactly, max feedback lead {:.4}s",
        off.makespan.as_secs_f64(),
        on.makespan.as_secs_f64(),
        trace.len(),
        max_lead.as_secs_f64(),
    );
    write_artifact(
        "cluster_transfer",
        &Artifact {
            constrained: on,
            kinds,
            trace,
        },
    );
}
