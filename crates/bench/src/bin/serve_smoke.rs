//! Serve smoke — the daemon's end-to-end contract, over a real TCP
//! socket: a mixed workload submitted on the wire, one job's lifecycle
//! stream consumed by a deliberately throttled subscriber (so the
//! bounded queue's coalesced `dropped` markers are exercised), a
//! graceful `drain`, and final stats that must be **byte-identical** to
//! `Cluster::run` on the same config + submission sequence. Also
//! bump-checks both schema versions: every wire line must carry
//! `capuchin_serve::WIRE_SCHEMA_VERSION` and the stats payload
//! `capuchin_cluster::STATS_SCHEMA_VERSION`.
//!
//! By default the daemon is spawned in-process on an ephemeral port
//! (still real TCP). `--connect <addr>` drives an externally started
//! daemon instead — it must run with `--clock virtual --gpus 2
//! --admission tf-ori --elastic on` so the locally computed batch
//! baseline matches. `--smoke` is accepted for check.sh symmetry and
//! changes nothing: this exhibit *is* the smoke.

use capuchin_bench::{cluster_job as job, write_artifact};
use capuchin_cluster::{AdmissionMode, Cluster, ClusterConfig, JobSpec, STATS_SCHEMA_VERSION};
use capuchin_models::ModelKind;
use capuchin_serve::client::{request, Client};
use capuchin_serve::{serve, ClockMode, ServeConfig, WIRE_SCHEMA_VERSION};
use serde::{Serialize, Value};

/// The mixed workload: two cheap residents, a two-GPU gang, an elastic
/// full-device job, a many-iteration job whose per-iteration events
/// swamp the throttled subscriber's 4-slot queue, and an inference job
/// whose request lifecycle must flow through the same bounded queues.
fn workload() -> Vec<JobSpec> {
    use capuchin_cluster::JobPolicy::TfOri;
    use ModelKind::Vgg16;
    vec![
        job("res0", Vgg16, 64, 1, TfOri, 3, 0, 0.0),
        job("busy", Vgg16, 32, 1, TfOri, 24, 0, 0.05),
        job("gang", Vgg16, 64, 2, TfOri, 3, 0, 0.10),
        job("big", Vgg16, 256, 1, TfOri, 4, 0, 0.15).with_elastic(),
        job("infer", Vgg16, 8, 1, TfOri, 1, 2, 0.20).into_inference(40.0, 400.0, 12, 64 << 20, 4),
    ]
}

/// Index of the subscribed job in [`workload`] (= its submission id).
const BUSY: u64 = 1;

/// Index of the inference job in [`workload`] (= its submission id).
const INFER: u64 = 4;

fn cfg() -> ClusterConfig {
    ClusterConfig::builder()
        .gpus(2)
        .admission(AdmissionMode::TfOri)
        .elastic(true)
        .build()
        .expect("valid config")
}

#[derive(Serialize)]
struct Summary {
    wire_schema: u32,
    stats_schema: u32,
    jobs_submitted: usize,
    completed: u64,
    stream_lines: usize,
    dropped_total: u64,
    request_lines: usize,
    served_lines: usize,
    stats_bytes: usize,
}

fn check_wire_version(line: &Value) {
    assert_eq!(
        line.get("schema_version").and_then(Value::as_u64),
        Some(u64::from(WIRE_SCHEMA_VERSION)),
        "wire schema drift: {line:?}"
    );
}

fn ok(reply: &Value) -> &Value {
    assert_eq!(
        reply.get("ok").and_then(Value::as_bool),
        Some(true),
        "request failed: {reply:?}"
    );
    check_wire_version(reply);
    reply
}

fn main() {
    // Pin the wire schema: v3 added `admission_source` to status
    // replies. Any further protocol change must bump the constant *and*
    // this pin.
    assert_eq!(
        WIRE_SCHEMA_VERSION, 3,
        "wire schema bumped without re-pinning"
    );

    let args: Vec<String> = std::env::args().skip(1).collect();
    let connect = args
        .iter()
        .position(|a| a == "--connect")
        .map(|i| args.get(i + 1).expect("--connect needs an address").clone());

    // The baseline the daemon must reproduce byte-for-byte.
    let specs = workload();
    let expected = Cluster::new(cfg()).run(&specs).to_json();

    // In-process daemon on an ephemeral port unless --connect was given.
    let (addr, handle) = match &connect {
        Some(addr) => (addr.clone(), None),
        None => {
            let handle = serve(ServeConfig {
                cluster: cfg(),
                clock: ClockMode::Virtual,
                addr: "127.0.0.1:0".into(),
            })
            .expect("bind ephemeral port");
            (handle.addr().to_string(), Some(handle))
        }
    };

    let mut control = Client::connect(&*addr).expect("connect control");
    for (i, spec) in specs.iter().enumerate() {
        let reply = control
            .request(&request(
                "submit",
                vec![("spec".to_owned(), spec.to_value())],
            ))
            .expect("submit");
        assert_eq!(
            ok(&reply).get("job").and_then(Value::as_u64),
            Some(i as u64),
            "submission ids are the submission order"
        );
    }

    // Throttled subscriber: a 4-line queue drained at ≥2 ms per line
    // cannot keep up with a drain that retires dozens of events at
    // simulation speed — the daemon must drop-and-coalesce, never stall.
    let mut sub = Client::connect(&*addr).expect("connect subscriber");
    let reply = sub
        .request(&request(
            "subscribe",
            vec![
                ("job".to_owned(), Value::UInt(BUSY)),
                ("queue".to_owned(), Value::UInt(4)),
                ("pace_us".to_owned(), Value::UInt(2000)),
            ],
        ))
        .expect("subscribe");
    ok(&reply);

    // Unthrottled subscriber on the inference job: its request lifecycle
    // records ride the same bounded stream queues as training events.
    let mut infer_sub = Client::connect(&*addr).expect("connect inference subscriber");
    let reply = infer_sub
        .request(&request(
            "subscribe",
            vec![("job".to_owned(), Value::UInt(INFER))],
        ))
        .expect("subscribe inference");
    ok(&reply);

    let drained = control.request(&request("drain", vec![])).expect("drain");
    let stats = ok(&drained)
        .get("stats")
        .expect("drain reply carries stats");
    assert_eq!(
        stats.get("schema_version").and_then(Value::as_u64),
        Some(u64::from(STATS_SCHEMA_VERSION)),
        "stats schema drift"
    );
    let rendered = serde_json::to_string_pretty(stats).expect("render stats");
    assert_eq!(
        rendered, expected,
        "daemon stats differ from the batch run on the same submission sequence"
    );
    let completed = stats
        .get("completed")
        .and_then(Value::as_u64)
        .expect("completed count");
    assert_eq!(completed, specs.len() as u64, "all jobs complete");

    ok(&control
        .request(&request("shutdown", vec![]))
        .expect("shutdown"));

    // Drain the subscriber stream to EOF: only the busy job's events,
    // plus at least one coalesced backpressure marker.
    let mut stream_lines = 0usize;
    let mut dropped_total = 0u64;
    while let Some(line) = sub.recv().expect("stream") {
        check_wire_version(&line);
        stream_lines += 1;
        match line.get("stream").and_then(Value::as_str) {
            Some("dropped") => {
                dropped_total += line
                    .get("dropped")
                    .and_then(Value::as_u64)
                    .expect("dropped count");
            }
            Some("event") => {
                assert_eq!(line.get("job").and_then(Value::as_u64), Some(BUSY));
            }
            other => panic!("unexpected stream tag {other:?} in {line:?}"),
        }
    }
    assert!(
        dropped_total > 0,
        "throttled subscriber saw no backpressure marker over {stream_lines} lines"
    );

    // The inference stream must carry the request lifecycle: arrivals and
    // serves for every request, with integer latency micros on serves.
    let mut request_lines = 0usize;
    let mut served_lines = 0usize;
    while let Some(line) = infer_sub.recv().expect("inference stream") {
        check_wire_version(&line);
        if line.get("stream").and_then(Value::as_str) != Some("event") {
            continue;
        }
        assert_eq!(line.get("job").and_then(Value::as_u64), Some(INFER));
        match line.get("kind").and_then(Value::as_str) {
            Some("request_arrived") => request_lines += 1,
            Some("request_served") | Some("slo_missed") => {
                served_lines += 1;
                assert!(
                    line.get("latency_us").and_then(Value::as_u64).is_some(),
                    "request record without integer latency: {line:?}"
                );
            }
            _ => {}
        }
    }
    assert!(
        request_lines > 0 && served_lines > 0,
        "inference stream carried {request_lines} arrival(s) and {served_lines} serve(s)"
    );

    if let Some(handle) = handle {
        handle.wait();
    }

    let summary = Summary {
        wire_schema: WIRE_SCHEMA_VERSION,
        stats_schema: STATS_SCHEMA_VERSION,
        jobs_submitted: specs.len(),
        completed,
        stream_lines,
        dropped_total,
        request_lines,
        served_lines,
        stats_bytes: rendered.len(),
    };
    println!(
        "serve smoke OK: {} jobs over TCP, {} stream line(s), {} dropped \
         (coalesced), {} request arrival(s) / {} serve(s) streamed, \
         stats byte-identical to the batch run ({} bytes)",
        summary.jobs_submitted,
        summary.stream_lines,
        summary.dropped_total,
        summary.request_lines,
        summary.served_lines,
        summary.stats_bytes,
    );
    if connect.is_none() {
        write_artifact("serve_smoke", &summary);
    }
}
