//! Runs every experiment binary in sequence — the one-command full
//! reproduction. Pass `--quick` to forward reduced sweeps where supported.
//!
//! ```sh
//! cargo run --release -p capuchin-bench --bin all_experiments
//! ```

use std::process::Command;

fn main() {
    let quick = capuchin_bench::quick_mode();
    let bins = [
        "fig1_vdnn_sync",
        "fig2_conv_times",
        "fig3_access_pattern",
        "table2_max_batch",
        "fig8a_swap_breakdown",
        "fig8b_recompute_breakdown",
        "fig9_perf_graph",
        "overhead_tracking",
        "table3_eager_max_batch",
        "fig10_perf_eager",
        "ablations",
    ];
    let exe_dir = std::env::current_exe()
        .expect("own path")
        .parent()
        .expect("bin dir")
        .to_path_buf();
    for bin in bins {
        println!("\n================= {bin} =================");
        let mut cmd = Command::new(exe_dir.join(bin));
        if quick {
            cmd.arg("--quick");
        }
        let status = cmd
            .status()
            .unwrap_or_else(|e| panic!("launching {bin}: {e}"));
        if !status.success() {
            eprintln!("{bin} failed with {status}");
            std::process::exit(1);
        }
    }
    println!("\nall experiments complete; artifacts in results/");
}
