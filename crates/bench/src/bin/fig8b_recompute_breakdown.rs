//! Figure 8(b) — Recomputation mechanism breakdown on ResNet-50.
//!
//! Paper: at OpenAI-S's max batch (300), Capuchin's measured-cost
//! recomputation (ATP) beats OpenAI-S by 37.9% — and OpenAI-S actually
//! runs *slower* than OpenAI-M by 8.3%, demonstrating that layer-type
//! heuristics misfire. At OpenAI-M's max batch (540), ATP wins 10.7% and
//! collective recomputation (CR) adds another 7.1%.

use capuchin::{Capuchin, CapuchinConfig};
use capuchin_baselines::{CheckpointMode, GradientCheckpointing};
use capuchin_bench::{write_artifact, Bench, System};
use capuchin_executor::{Engine, EngineConfig, MemoryPolicy};
use capuchin_models::ModelKind;
use serde::Serialize;

#[derive(Serialize)]
struct Point {
    batch: usize,
    system: String,
    throughput: Option<f64>,
}

fn run(batch: usize, policy: Box<dyn MemoryPolicy>, iters: u64) -> Option<f64> {
    let model = ModelKind::ResNet50.build(batch);
    let mut eng = Engine::new(&model.graph, EngineConfig::default(), policy);
    let stats = eng.run(iters).ok()?;
    Some(batch as f64 / stats.try_last()?.wall().as_secs_f64())
}

fn main() {
    let bench = Bench::default();
    // The paper's two x-points are the two modes' maximum batch sizes.
    let b_speed = bench.max_batch(ModelKind::ResNet50, System::OpenAiSpeed, 190);
    let b_mem = bench.max_batch(ModelKind::ResNet50, System::OpenAiMemory, 190);
    println!(
        "Fig. 8(b) — recompute breakdown on ResNet-50 (images/sec)\n\
         OpenAI-S max batch = {b_speed} (paper: 300), OpenAI-M max batch = {b_mem} (paper: 540)\n"
    );
    println!(
        "{:<8} {:>10} {:>10} {:>10} {:>10}",
        "batch", "OpenAI-S", "OpenAI-M", "ATP", "ATP+CR"
    );

    let mut points = Vec::new();
    for batch in [b_speed, b_mem] {
        let model = ModelKind::ResNet50.build(batch);
        let os = run(
            batch,
            Box::new(GradientCheckpointing::from_graph(
                &model.graph,
                CheckpointMode::Speed,
            )),
            3,
        );
        let om = run(
            batch,
            Box::new(GradientCheckpointing::from_graph(
                &model.graph,
                CheckpointMode::Memory,
            )),
            3,
        );
        let atp_cfg = CapuchinConfig {
            collective: false,
            ..CapuchinConfig::recompute_only()
        };
        let atp = run(batch, Box::new(Capuchin::with_config(atp_cfg)), 10);
        let atp_cr = run(
            batch,
            Box::new(Capuchin::with_config(CapuchinConfig::recompute_only())),
            10,
        );
        let fmt = |v: Option<f64>| v.map(|t| format!("{t:.1}")).unwrap_or_else(|| "-".into());
        println!(
            "{batch:<8} {:>10} {:>10} {:>10} {:>10}",
            fmt(os),
            fmt(om),
            fmt(atp),
            fmt(atp_cr)
        );
        for (name, v) in [
            ("OpenAI-S", os),
            ("OpenAI-M", om),
            ("ATP", atp),
            ("ATP+CR", atp_cr),
        ] {
            points.push(Point {
                batch,
                system: name.to_owned(),
                throughput: v,
            });
        }
    }
    write_artifact("fig8b_recompute_breakdown", &points);
}
