//! Cluster admission throughput — tf-ori-admission vs capuchin-admission
//! on a mixed 16-job / 4-GPU workload.
//!
//! The cluster-level claim mirrors the paper's single-job one: because
//! Capuchin can shrink a job's footprint with a swap/recompute plan, a
//! memory-aware admission controller (a) admits jobs whose ideal peak
//! exceeds a bare GPU instead of rejecting them, and (b) packs more
//! concurrent jobs per GPU at a bounded per-job slowdown — so the fleet
//! completes at least as many jobs, with zero mid-run OOM aborts for
//! everything admitted.
//!
//! The workload mixes comfortable footprints (ResNet-50 / Inception /
//! DenseNet at small batches) with oversubscribed ones (VGG16 @320 and
//! ResNet-50 @256 both peak ≈19 GiB against 16 GiB devices).

use capuchin_bench::write_artifact;
use capuchin_cluster::{
    synthetic_jobs, AdmissionMode, Cluster, ClusterConfig, ClusterStats, JobPolicy, JobSpec,
    StrategyKind,
};
use capuchin_models::ModelKind;
use serde::Serialize;

/// The fixed mixed workload: 12 comfortable jobs from the synthetic menu
/// (seed 7) plus 4 oversubscribed ones no bare 16 GiB GPU can hold.
fn workload() -> Vec<JobSpec> {
    let mut jobs = synthetic_jobs(16, 7, 1.5);
    // Overwrite four slots with jobs whose ideal peak exceeds the device:
    // tf-ori admission must reject these, Capuchin admission shrinks them.
    for (slot, (model, batch)) in [
        (2, (ModelKind::Vgg16, 320)),
        (6, (ModelKind::ResNet50, 256)),
        (9, (ModelKind::Vgg16, 320)),
        (13, (ModelKind::ResNet50, 256)),
    ] {
        let j = &mut jobs[slot];
        j.model = model;
        j.batch = batch;
        j.policy = JobPolicy::Capuchin;
        j.iters = 3;
    }
    jobs
}

fn run(admission: AdmissionMode, jobs: &[JobSpec]) -> ClusterStats {
    let cfg = ClusterConfig::builder()
        .gpus(4)
        .admission(admission)
        .strategy(StrategyKind::BestFit)
        .build()
        .expect("valid config");
    Cluster::new(cfg).run(jobs)
}

#[derive(Serialize)]
struct Comparison {
    tf_ori: ClusterStats,
    capuchin: ClusterStats,
}

fn main() {
    let jobs = workload();
    println!("Cluster admission on 16 mixed jobs / 4 × 16 GiB GPUs (best-fit placement)");
    println!(
        "{:<22} {:>10} {:>9} {:>7} {:>12} {:>14}",
        "admission", "completed", "rejected", "shrunk", "makespan", "samples/sec"
    );
    let mut results = Vec::new();
    for admission in [AdmissionMode::TfOri, AdmissionMode::Capuchin] {
        let stats = run(admission, &jobs);
        assert_eq!(
            stats.midrun_oom_aborts, 0,
            "admitted jobs must never abort mid-run"
        );
        println!(
            "{:<22} {:>7}/{:<2} {:>9} {:>7} {:>10.2}s {:>14.1}",
            stats.admission,
            stats.completed,
            stats.submitted,
            stats.oom_rejections,
            stats.jobs.iter().filter(|j| j.shrunk).count(),
            stats.makespan.as_secs_f64(),
            stats.aggregate_samples_per_sec,
        );
        results.push(stats);
    }
    let capuchin = results.pop().expect("two runs");
    let tf_ori = results.pop().expect("two runs");
    assert!(
        capuchin.completed >= tf_ori.completed,
        "capuchin admission must complete at least as many jobs \
         ({} vs {})",
        capuchin.completed,
        tf_ori.completed,
    );
    let extra = capuchin.completed - tf_ori.completed;
    println!(
        "\ncapuchin-admission completed {extra} job(s) tf-ori-admission rejected, \
         with 0 mid-run OOM aborts"
    );
    write_artifact("cluster_throughput", &Comparison { tf_ori, capuchin });
}
