//! Mixed-workload frontier — SLO attainment vs training throughput as
//! inference load grows on a shared cluster.
//!
//! One workload shape, three scheduling modes per offered load:
//!
//! * `aware` — SLO-aware scheduling (the default): waiting inference
//!   jobs' effective priority grows with their oldest request's SLO
//!   slack burn-down, and elastic training jobs shrink down the
//!   re-batch ladder to absorb request bursts, re-growing when the
//!   burst drains.
//! * `blind` — identical cluster, `--slo-aware off`: the scheduler
//!   sees inference jobs as ordinary static-priority jobs. Burst
//!   absorption still runs (it is an elastic feature, not an SLO one).
//! * `rigid` — elastic re-batching off: training and inference
//!   co-locate with no shrink-to-absorb escape valve.
//!
//! The artifact (`results/cluster_mixed.json`) records, per offered
//! load, each mode's SLO attainment, worst p99 latency, training
//! completions, and burst-absorption counters — the frontier the paper's
//! tensor-level memory story buys at cluster level. Invariants enforced
//! on the full sweep:
//!
//! * At every contended load, `aware` attainment strictly exceeds
//!   `blind` (the boost is the only difference between the two).
//! * `aware` training completions are never below `rigid` at equal
//!   load: absorbing bursts by shrinking must not starve training.
//!
//! `--smoke` re-runs the designated smoke row in `aware` mode and fails
//! unless at least one full shrink-to-absorb / re-grow cycle closed and
//! attainment meets the committed floor in the artifact — the CI guard
//! wired into `scripts/check.sh`.

use capuchin_bench::write_artifact;
use capuchin_cluster::{
    AdmissionMode, Cluster, ClusterConfig, ClusterStats, JobOutcome, JobPolicy, JobSpec,
    StrategyKind,
};
use capuchin_models::ModelKind;
use capuchin_sim::DeviceSpec;
use serde::{Deserialize, Serialize};

/// Offered per-job request rates swept by the full run, req/s. The
/// middle row is the `--smoke` guard row.
const LOADS: &[f64] = &[4.0, 12.0, 24.0];

/// The `--smoke` row: contended enough to force burst absorption, small
/// enough for CI.
const SMOKE_LOAD: f64 = 12.0;

/// Undersized device: training fills a GPU, so inference arrives into a
/// real backlog and KV growth genuinely competes for headroom.
const CAPACITY: u64 = 4 << 30;

/// The workload: a backlog of elastic training jobs at priority 1 that
/// more than fills the cluster, plus two inference jobs at priority 0
/// arriving into that backlog. Static priorities put inference *behind*
/// training, so under SLO-blind scheduling its requests age in the
/// queue; the SLO boost (up to +2 priority levels) is what lets the
/// aware scheduler jump it ahead when a slot frees. Requests scale with
/// the offered rate so every sweep row serves a comparable burst window.
fn workload(rate: f64) -> Vec<JobSpec> {
    let mut jobs: Vec<JobSpec> = (0..6)
        .map(|i| JobSpec {
            name: format!("train{i}"),
            model: ModelKind::Vgg16,
            batch: 32,
            gpus: 1,
            policy: JobPolicy::TfOri,
            iters: 6,
            priority: 1,
            arrival_time: 0.05 * i as f64,
            elastic: true,
            ..JobSpec::default()
        })
        .collect();
    for i in 0..2 {
        jobs.push(
            JobSpec {
                name: format!("serve{i}"),
                model: ModelKind::ResNet50,
                batch: 32,
                gpus: 1,
                policy: JobPolicy::TfOri,
                iters: 1,
                priority: 0,
                arrival_time: 0.2 + 0.1 * i as f64,
                elastic: false,
                ..JobSpec::default()
            }
            .into_inference(rate, 400.0, (rate * 4.0) as u64, 768 << 20, 6),
        )
    }
    jobs
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    Aware,
    Blind,
    Rigid,
}

impl Mode {
    fn name(self) -> &'static str {
        match self {
            Mode::Aware => "aware",
            Mode::Blind => "blind",
            Mode::Rigid => "rigid",
        }
    }
}

fn cfg(mode: Mode) -> ClusterConfig {
    ClusterConfig::builder()
        .gpus(2)
        .spec(DeviceSpec::p100_pcie3().with_memory(CAPACITY))
        .strategy(StrategyKind::BestFit)
        .admission(AdmissionMode::TfOri)
        .preemption(true)
        .elastic(mode != Mode::Rigid)
        .slo_aware(mode == Mode::Aware)
        .build()
        .expect("valid mixed config")
}

/// One mode's measured outcome at one offered load. Everything here is
/// simulation-side and byte-reproducible run to run.
#[derive(Debug, Serialize, Deserialize)]
struct ModeRun {
    mode: String,
    requests_served: u64,
    slo_misses: u64,
    slo_attainment_permille: u64,
    /// Worst per-job p99 request latency, in integer microseconds.
    worst_p99_us: u64,
    training_completed: usize,
    burst_shrinks: u64,
    burst_cycles: u64,
    makespan_secs: f64,
}

#[derive(Debug, Serialize, Deserialize)]
struct SweepRow {
    offered_load_rps: f64,
    runs: Vec<ModeRun>,
}

#[derive(Debug, Serialize, Deserialize)]
struct MixedArtifact {
    gpus: usize,
    /// The `--smoke` guard: the smoke row's aware attainment must meet
    /// this floor on every future run.
    smoke_floor_permille: u64,
    sweep: Vec<SweepRow>,
}

fn run_mode(rate: f64, mode: Mode) -> ModeRun {
    let specs = workload(rate);
    let stats: ClusterStats = Cluster::new(cfg(mode)).run(&specs);
    let training_completed = stats
        .jobs
        .iter()
        .zip(&specs)
        .filter(|(j, s)| !s.is_inference() && j.outcome == JobOutcome::Completed)
        .count();
    let worst_p99_us = stats
        .jobs
        .iter()
        .map(|j| j.p99_latency.as_nanos() / 1_000)
        .max()
        .unwrap_or(0);
    let run = ModeRun {
        mode: mode.name().to_owned(),
        requests_served: stats.requests_served,
        slo_misses: stats.slo_misses,
        slo_attainment_permille: stats.slo_attainment_permille,
        worst_p99_us,
        training_completed,
        burst_shrinks: stats.burst_shrinks,
        burst_cycles: stats.burst_cycles,
        makespan_secs: stats.makespan.as_secs_f64(),
    };
    eprintln!(
        "[{:>5} @ {rate:>4.1} req/s] attainment {}‰ ({} served, {} missed), \
         worst p99 {:.1}ms, {} training done, {} burst shrink(s), {} cycle(s)",
        run.mode,
        run.slo_attainment_permille,
        run.requests_served,
        run.slo_misses,
        run.worst_p99_us as f64 / 1_000.0,
        run.training_completed,
        run.burst_shrinks,
        run.burst_cycles,
    );
    run
}

fn committed_floor() -> Option<u64> {
    let text = std::fs::read_to_string("results/cluster_mixed.json").ok()?;
    let artifact: MixedArtifact = serde_json::from_str(&text).ok()?;
    Some(artifact.smoke_floor_permille)
}

/// The `--smoke` guard: the aware smoke row must close at least one full
/// shrink-to-absorb / re-grow cycle and meet the committed attainment
/// floor.
fn smoke_guard() -> ! {
    let run = run_mode(SMOKE_LOAD, Mode::Aware);
    assert!(
        run.burst_cycles >= 1,
        "smoke row closed no shrink-to-absorb-burst cycle \
         ({} shrink(s) without a re-grow)",
        run.burst_shrinks
    );
    match committed_floor() {
        Some(floor) => {
            assert!(
                run.slo_attainment_permille >= floor,
                "smoke attainment {}‰ fell below the committed floor {floor}‰",
                run.slo_attainment_permille
            );
            eprintln!(
                "[smoke] attainment {}‰ >= floor {floor}‰, {} burst cycle(s)",
                run.slo_attainment_permille, run.burst_cycles
            );
        }
        None => eprintln!("[smoke] no committed baseline; measurement recorded above"),
    }
    std::process::exit(0);
}

fn main() {
    if std::env::args().any(|a| a == "--smoke") {
        smoke_guard();
    }
    let sweep: Vec<SweepRow> = LOADS
        .iter()
        .map(|&rate| SweepRow {
            offered_load_rps: rate,
            runs: [Mode::Aware, Mode::Blind, Mode::Rigid]
                .iter()
                .map(|&m| run_mode(rate, m))
                .collect(),
        })
        .collect();

    let get = |row: &SweepRow, mode: Mode| -> (u64, usize) {
        let r = row
            .runs
            .iter()
            .find(|r| r.mode == mode.name())
            .expect("every mode ran");
        (r.slo_attainment_permille, r.training_completed)
    };
    let mut smoke_floor = 1000;
    for row in &sweep {
        let (aware_att, aware_trained) = get(row, Mode::Aware);
        let (blind_att, _) = get(row, Mode::Blind);
        let (_, rigid_trained) = get(row, Mode::Rigid);
        // SLO-aware never loses to SLO-blind at equal offered load, and
        // wins strictly wherever serving is viable at all (past
        // saturation every mode misses everything — both sit at 0‰).
        assert!(
            aware_att >= blind_att,
            "at {} req/s SLO-aware attainment {}‰ lost to SLO-blind {}‰",
            row.offered_load_rps,
            aware_att,
            blind_att
        );
        if row.offered_load_rps == SMOKE_LOAD {
            assert!(
                aware_att > blind_att,
                "at the guard load ({} req/s) SLO-aware attainment {}‰ \
                 does not strictly beat SLO-blind {}‰",
                row.offered_load_rps,
                aware_att,
                blind_att
            );
            smoke_floor = aware_att;
        }
        assert!(
            aware_trained >= rigid_trained,
            "at {} req/s burst absorption starved training: {} completed vs {} rigid",
            row.offered_load_rps,
            aware_trained,
            rigid_trained
        );
    }
    write_artifact(
        "cluster_mixed",
        &MixedArtifact {
            gpus: 2,
            smoke_floor_permille: smoke_floor,
            sweep,
        },
    );
}
