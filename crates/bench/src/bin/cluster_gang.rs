//! Gang scheduling with a shared-interconnect model — mixed 1/2/4-GPU
//! jobs on 8 GPUs, capuchin-admission vs tf-ori-admission, with the
//! interconnect model off vs on (PCIe host link shared by all traffic,
//! peer lanes inside 4-GPU link domains).
//!
//! Three claims, each asserted below:
//!
//! 1. **All-or-nothing gangs** — every job either holds its full gang
//!    width or nothing, and admitted jobs never abort mid-run; capuchin
//!    admission additionally completes the whole workload, including the
//!    oversubscribed singles tf-ori rejects.
//! 2. **Gradient traffic is real** — with the fabric on, every completed
//!    multi-GPU gang pays a positive ring-allreduce cost
//!    (`2·(k−1)/k × gradient bytes` per replica, routed over the peer
//!    lane when the gang fits one link domain, over the shared host link
//!    otherwise).
//! 3. **Contention stretches, it never reorders** — the fabric-on run is
//!    measurably slower end-to-end than the fabric-off run, while
//!    admission decisions (completed/rejected sets) are identical: the
//!    interconnect model only adds queueing, it never changes what fits.
//!
//! `--smoke` runs a 2-GPU miniature of the same shape (one single + one
//! 2-GPU gang) without writing the artifact; `scripts/check.sh` uses it.
//! `--smoke --interconnect pcie` additionally runs a swapping pair
//! through `run_traced` and asserts the per-tensor transfer path: each
//! job's `comm_delay` decomposes exactly into traced per-tensor charges,
//! and a stretched prefetch shows the §4.4 in-trigger feedback lead.

use capuchin_bench::{cluster_job as job, write_artifact};
use capuchin_cluster::{
    AdmissionMode, Cluster, ClusterConfig, ClusterStats, JobOutcome, JobPolicy, JobSpec,
    StrategyKind,
};
use capuchin_models::ModelKind;
use capuchin_sim::{Duration, InterconnectSpec};
use serde::Serialize;

/// Mixed 1/2/4-GPU workload for 8 × 16 GiB GPUs. The singles include two
/// oversubscribed footprints (VGG16 @320 and ResNet-50 @256 both peak
/// ≈19 GiB) that only capuchin admission can shrink onto a device; the
/// 4-GPU ResNet-50 gang runs each replica at batch 64, deliberately
/// sharing the measuring cache with the batch-64 single.
fn workload() -> Vec<JobSpec> {
    use JobPolicy::{Capuchin, TfOri};
    use ModelKind::{DenseNet121, InceptionV3, ResNet50, Vgg16};
    vec![
        // Singles: comfortable footprints plus two oversubscribed ones.
        job("single-r50", ResNet50, 64, 1, TfOri, 6, 0, 0.0),
        job("single-dense", DenseNet121, 32, 1, TfOri, 6, 0, 0.05),
        job("single-inc", InceptionV3, 32, 1, TfOri, 6, 1, 0.10),
        job("single-vgg-big", Vgg16, 320, 1, Capuchin, 3, 0, 0.15),
        job("single-r50-big", ResNet50, 256, 1, Capuchin, 3, 0, 0.20),
        // 2-GPU gangs (replica batches: 64, 48, 32).
        job("gang2-r50", ResNet50, 128, 2, TfOri, 5, 1, 0.25),
        job("gang2-vgg", Vgg16, 96, 2, TfOri, 5, 0, 0.30),
        job("gang2-dense", DenseNet121, 64, 2, TfOri, 5, 2, 0.35),
        // 4-GPU gangs (replica batches: 64, 32).
        job("gang4-r50", ResNet50, 256, 4, TfOri, 4, 1, 0.40),
        job("gang4-inc", InceptionV3, 128, 4, TfOri, 4, 0, 0.45),
    ]
}

fn run(
    gpus: usize,
    admission: AdmissionMode,
    fabric: Option<InterconnectSpec>,
    jobs: &[JobSpec],
) -> ClusterStats {
    let cfg = ClusterConfig::builder()
        .gpus(gpus)
        .admission(admission)
        .strategy(StrategyKind::BestFit)
        .interconnect(fabric)
        .build()
        .expect("valid config");
    Cluster::new(cfg).run(jobs)
}

/// Invariants that must hold for every run: all-or-nothing gangs on
/// distinct devices and zero mid-run aborts for everything admitted.
fn assert_gang_safety(stats: &ClusterStats) {
    assert_eq!(
        stats.midrun_oom_aborts, 0,
        "admitted jobs must never abort mid-run"
    );
    for j in &stats.jobs {
        assert!(
            j.gpus_used.is_empty() || j.gpus_used.len() == j.replicas,
            "{} holds a partial gang: {:?} of {}",
            j.name,
            j.gpus_used,
            j.replicas
        );
        let mut distinct = j.gpus_used.clone();
        distinct.sort_unstable();
        distinct.dedup();
        assert_eq!(
            distinct.len(),
            j.gpus_used.len(),
            "{}: duplicate GPU in gang",
            j.name
        );
    }
}

fn total_comm(stats: &ClusterStats) -> Duration {
    stats
        .jobs
        .iter()
        .map(|j| j.allreduce_time + j.comm_delay)
        .sum()
}

fn print_row(stats: &ClusterStats) {
    let gangs_placed = stats
        .jobs
        .iter()
        .filter(|j| j.replicas > 1 && !j.gpus_used.is_empty())
        .count();
    println!(
        "{:<22} {:<11} {:>7}/{:<2} {:>8} {:>6} {:>11.3}s {:>10.3}s {:>10.2}s",
        stats.admission,
        stats.interconnect,
        stats.completed,
        stats.submitted,
        stats.oom_rejections,
        gangs_placed,
        stats
            .jobs
            .iter()
            .map(|j| j.allreduce_time)
            .sum::<Duration>()
            .as_secs_f64(),
        stats
            .jobs
            .iter()
            .map(|j| j.comm_delay)
            .sum::<Duration>()
            .as_secs_f64(),
        stats.makespan.as_secs_f64(),
    );
}

/// Tiny 2-GPU version of the same shape for `scripts/check.sh`: one
/// single plus one 2-GPU gang over the shared-PCIe fabric.
fn smoke() {
    use JobPolicy::TfOri;
    let jobs = vec![
        job("single", ModelKind::ResNet50, 16, 1, TfOri, 3, 0, 0.0),
        job("gang2", ModelKind::ResNet50, 32, 2, TfOri, 3, 0, 0.05),
    ];
    let off = run(2, AdmissionMode::Capuchin, None, &jobs);
    let on = run(
        2,
        AdmissionMode::Capuchin,
        Some(InterconnectSpec::pcie_shared()),
        &jobs,
    );
    for stats in [&off, &on] {
        assert_gang_safety(stats);
        assert_eq!(stats.completed, 2, "smoke workload must complete");
    }
    let gang = on.jobs.iter().find(|j| j.replicas == 2).expect("gang job");
    assert!(
        gang.allreduce_time > Duration::ZERO,
        "fabric-on gang must pay for its allreduce"
    );
    assert!(
        on.makespan >= off.makespan,
        "the fabric never speeds runs up"
    );
    println!(
        "smoke ok: 2 jobs completed, gang allreduce {:.4}s, makespan {:.2}s -> {:.2}s",
        gang.allreduce_time.as_secs_f64(),
        off.makespan.as_secs_f64(),
        on.makespan.as_secs_f64(),
    );
}

/// `--smoke --interconnect pcie`: two swapping VGG16 singles share one
/// PCIe host link; assert the per-tensor transfer path end to end.
fn smoke_pcie() {
    use JobPolicy::Capuchin;
    let jobs = vec![
        job("swap0", ModelKind::Vgg16, 320, 1, Capuchin, 4, 0, 0.0),
        job("swap1", ModelKind::Vgg16, 320, 1, Capuchin, 4, 0, 0.0),
    ];
    let cfg = ClusterConfig::builder()
        .gpus(2)
        .admission(AdmissionMode::Capuchin)
        .strategy(StrategyKind::BestFit)
        .interconnect(Some(InterconnectSpec::pcie_shared()))
        .build()
        .expect("valid config");
    let (stats, trace) = Cluster::new(cfg).run_traced(&jobs);
    assert_gang_safety(&stats);
    assert_eq!(stats.completed, 2, "swapping pair must complete");
    assert!(
        !trace.is_empty(),
        "swap replay must produce per-tensor records"
    );
    // The per-tensor path, not a lump: each job's comm_delay decomposes
    // exactly into its traced per-tensor charges.
    let mut total = Duration::ZERO;
    for j in &stats.jobs {
        let charged: Duration = trace
            .iter()
            .filter(|t| t.job == j.name)
            .map(|t| t.charge)
            .sum();
        assert_eq!(
            charged, j.comm_delay,
            "{}: comm_delay must decompose into per-tensor charges",
            j.name
        );
        total += charged;
    }
    assert!(
        total > Duration::ZERO,
        "two co-resident swappers must contend on the shared link"
    );
    // §4.4 feedback, cluster flavour: a stretched prefetch/swap-in (late
    // in-trigger) moves its want earlier on a later iteration.
    let stretched = trace
        .iter()
        .filter(|t| {
            (t.label.starts_with("prefetch:") || t.label.starts_with("swapin:"))
                && t.wait > Duration::ZERO
        })
        .count();
    assert!(
        stretched > 0,
        "the shared link must stretch at least one prefetch/swap-in"
    );
    assert!(
        trace.iter().any(|t| t.lead > Duration::ZERO),
        "a stretched prefetch must feed back an earlier in-trigger"
    );
    println!(
        "pcie smoke ok: {} per-tensor transfers traced, {} stretched prefetches, \
         {:.4}s comm delay decomposed, feedback lead visible",
        trace.len(),
        stretched,
        total.as_secs_f64(),
    );
}

#[derive(Serialize)]
struct Comparison {
    tf_ori_off: ClusterStats,
    tf_ori_on: ClusterStats,
    capuchin_off: ClusterStats,
    capuchin_on: ClusterStats,
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.iter().any(|a| a == "--smoke") {
        if args
            .windows(2)
            .any(|w| w[0] == "--interconnect" && w[1] == "pcie")
        {
            smoke_pcie();
        } else {
            smoke();
        }
        return;
    }
    let jobs = workload();
    let fabric = InterconnectSpec::pcie_peer_domains(4);
    println!(
        "Gang scheduling on {} mixed 1/2/4-GPU jobs / 8 x 16 GiB GPUs (best-fit, fabric {})",
        jobs.len(),
        fabric.name,
    );
    println!(
        "{:<22} {:<11} {:>10} {:>8} {:>6} {:>12} {:>11} {:>11}",
        "admission",
        "fabric",
        "completed",
        "rejected",
        "gangs",
        "allreduce",
        "comm delay",
        "makespan"
    );
    let mut results = Vec::new();
    for admission in [AdmissionMode::TfOri, AdmissionMode::Capuchin] {
        for fabric in [None, Some(fabric.clone())] {
            let stats = run(8, admission, fabric, &jobs);
            assert_gang_safety(&stats);
            print_row(&stats);
            results.push(stats);
        }
    }
    let [tf_ori_off, tf_ori_on, capuchin_off, capuchin_on]: [ClusterStats; 4] =
        results.try_into().expect("four runs");

    // (1) Capuchin admission completes everything, including the two
    // oversubscribed singles tf-ori must reject.
    for stats in [&capuchin_off, &capuchin_on] {
        assert_eq!(
            stats.completed, stats.submitted,
            "capuchin admission must complete the whole workload"
        );
    }
    assert!(
        tf_ori_off.oom_rejections >= 2,
        "tf-ori must reject the oversubscribed singles"
    );
    assert!(capuchin_off.completed > tf_ori_off.completed);

    // (2) With the fabric on, every completed gang pays its allreduce.
    for stats in [&tf_ori_on, &capuchin_on] {
        for j in &stats.jobs {
            if j.replicas > 1 && j.outcome == JobOutcome::Completed {
                assert!(
                    j.allreduce_time > Duration::ZERO,
                    "{}: completed gang with zero allreduce time",
                    j.name
                );
            }
        }
        assert!(
            stats.links.iter().map(|l| l.bytes).sum::<u64>() > 0,
            "the fabric must have routed traffic"
        );
    }

    // (3) Contention stretches but never reorders admission: fabric-on is
    // measurably slower, with identical completed/rejected sets.
    for (off, on) in [(&tf_ori_off, &tf_ori_on), (&capuchin_off, &capuchin_on)] {
        assert!(total_comm(off) == Duration::ZERO && total_comm(on) > Duration::ZERO);
        assert!(
            on.makespan > off.makespan,
            "{}: fabric contention must stretch the makespan ({:?} vs {:?})",
            on.admission,
            on.makespan,
            off.makespan,
        );
        assert_eq!(on.completed, off.completed);
        assert_eq!(on.oom_rejections, off.oom_rejections);
        for (a, b) in off.jobs.iter().zip(on.jobs.iter()) {
            assert_eq!(
                a.outcome, b.outcome,
                "{}: fabric changed an outcome",
                a.name
            );
        }
    }

    println!(
        "\nfabric stretched the capuchin makespan {:.2}s -> {:.2}s \
         ({:.3}s allreduce + {:.3}s queueing across {} link(s)), \
         identical admission decisions, 0 mid-run aborts",
        capuchin_off.makespan.as_secs_f64(),
        capuchin_on.makespan.as_secs_f64(),
        capuchin_on
            .jobs
            .iter()
            .map(|j| j.allreduce_time)
            .sum::<Duration>()
            .as_secs_f64(),
        capuchin_on
            .jobs
            .iter()
            .map(|j| j.comm_delay)
            .sum::<Duration>()
            .as_secs_f64(),
        capuchin_on.links.len(),
    );
    write_artifact(
        "cluster_gang",
        &Comparison {
            tf_ori_off,
            tf_ori_on,
            capuchin_off,
            capuchin_on,
        },
    );
}
