//! Export a simulated timeline as a Chrome trace (`chrome://tracing` /
//! Perfetto) for visual inspection of overlap, stalls, and swap traffic.
//!
//! ```sh
//! cargo run --release -p capuchin-bench --bin trace_export -- [model] [batch] [system]
//! # e.g.
//! cargo run --release -p capuchin-bench --bin trace_export -- resnet50 300 capuchin
//! ```
//!
//! Writes `results/trace_<model>_<batch>_<system>.json` with two process
//! groups:
//!
//! * **pid 1 — streams**: the engine's execution trace (kernels on the
//!   compute stream, swap copies and stalls on the two copy streams), one
//!   track per stream;
//! * **pid 2 — transfers**: the unified per-tensor transfer timeline from
//!   the device's [`capuchin_sim::TransferEngine`], one track per lane
//!   (`copy-out`, `copy-in`). Each record renders its queueing delay
//!   (`wait:<label>`) and wire time (`<label>`) as separate slices, so a
//!   stretched prefetch is visible as a wait slice in front of its copy.
//!
//! `--smoke` runs a miniature export to a temp directory and re-parses
//! the emitted JSON as the typed event list, proving the artifact stays
//! loadable; `scripts/check.sh` uses it.

use capuchin_bench::System;
use capuchin_executor::{Engine, EngineConfig};
use capuchin_models::ModelKind;
use capuchin_sim::{StreamKind, TraceKind, TransferRecord};
use serde::{Deserialize, Serialize};

#[derive(Serialize, Deserialize)]
struct ChromeEvent {
    name: String,
    cat: String,
    ph: String,
    ts: f64,
    dur: f64,
    pid: u32,
    tid: u32,
}

fn parse_model(s: &str) -> ModelKind {
    match s {
        "vgg16" => ModelKind::Vgg16,
        "resnet50" => ModelKind::ResNet50,
        "resnet152" => ModelKind::ResNet152,
        "inceptionv3" => ModelKind::InceptionV3,
        "inceptionv4" => ModelKind::InceptionV4,
        "densenet" => ModelKind::DenseNet121,
        "bert" => ModelKind::BertBase,
        other => panic!("unknown model `{other}`"),
    }
}

fn parse_system(s: &str) -> System {
    match s {
        "tf-ori" => System::TfOri,
        "vdnn" => System::Vdnn,
        "openai-m" => System::OpenAiMemory,
        "openai-s" => System::OpenAiSpeed,
        "capuchin" => System::Capuchin,
        other => panic!("unknown system `{other}`"),
    }
}

/// Track index within the transfer process group (pid 2).
fn lane_tid(link: &str) -> u32 {
    match link {
        "copy-out" => 1,
        "copy-in" => 2,
        _ => 3,
    }
}

/// The two slices of one transfer record: its queueing delay (if any)
/// and its time on the wire.
fn transfer_events(rec: &TransferRecord) -> Vec<ChromeEvent> {
    let tid = lane_tid(&rec.link);
    let mut out = Vec::new();
    if rec.wait() > capuchin_sim::Duration::ZERO {
        out.push(ChromeEvent {
            name: format!("wait:{}", rec.label),
            cat: "transfer-wait".to_owned(),
            ph: "X".to_owned(),
            ts: rec.queued.as_micros_f64(),
            dur: rec.wait().as_micros_f64(),
            pid: 2,
            tid,
        });
    }
    out.push(ChromeEvent {
        name: rec.label.clone(),
        cat: if rec.late() {
            "transfer-late".to_owned()
        } else {
            "transfer".to_owned()
        },
        ph: "X".to_owned(),
        ts: rec.start.as_micros_f64(),
        dur: rec.service().as_micros_f64(),
        pid: 2,
        tid,
    });
    out
}

/// Runs `system` on `kind`/`batch` and renders the combined stream +
/// transfer timeline.
fn export(kind: ModelKind, batch: usize, system: System) -> Vec<ChromeEvent> {
    let model = kind.build(batch);
    let cfg = EngineConfig {
        trace: true,
        ..EngineConfig::default()
    };
    let mut eng = Engine::new(&model.graph, cfg, system.policy(&model.graph));
    eng.run(system.warm_iters())
        .unwrap_or_else(|e| panic!("{kind} b={batch} under {system}: {e}"));

    let mut events: Vec<ChromeEvent> = eng
        .take_trace()
        .expect("trace enabled")
        .events()
        .iter()
        .map(|e| ChromeEvent {
            name: e.label.clone(),
            cat: match e.kind {
                TraceKind::Kernel => "kernel",
                TraceKind::SwapOut => "swap-out",
                TraceKind::SwapIn => "swap-in",
                TraceKind::Stall => "stall",
            }
            .to_owned(),
            ph: "X".to_owned(),
            ts: e.start.as_micros_f64(),
            dur: e.duration().as_micros_f64(),
            pid: 1,
            tid: match e.stream {
                StreamKind::Compute => 1,
                StreamKind::CopyOut => 2,
                StreamKind::CopyIn => 3,
            },
        })
        .collect();
    for per_iter in eng.iter_transfers() {
        for rec in per_iter {
            events.extend(transfer_events(rec));
        }
    }
    events
}

/// Miniature export into a temp file, re-parsed as the typed event list:
/// the emitted JSON must stay loadable.
fn smoke() {
    let events = export(ModelKind::ResNet50, 280, System::Capuchin);
    let json = serde_json::to_string(&events).expect("serialize");
    let path = std::env::temp_dir().join("capuchin_trace_smoke.json");
    std::fs::write(&path, &json).expect("write smoke trace");
    let raw = std::fs::read_to_string(&path).expect("read smoke trace");
    let parsed: Vec<ChromeEvent> = serde_json::from_str(&raw).expect("emitted trace must parse");
    assert_eq!(parsed.len(), events.len());
    assert!(
        parsed
            .iter()
            .any(|e| e.pid == 2 && e.cat.starts_with("transfer")),
        "smoke trace must contain unified transfer-timeline events"
    );
    assert!(
        parsed.iter().any(|e| e.pid == 1 && e.cat == "kernel"),
        "smoke trace must contain compute-stream events"
    );
    let _ = std::fs::remove_file(&path);
    println!(
        "trace smoke ok: {} events round-tripped ({} transfer slices)",
        parsed.len(),
        parsed.iter().filter(|e| e.pid == 2).count(),
    );
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.iter().any(|a| a == "--smoke") {
        smoke();
        return;
    }
    let model_name = args.get(1).map(String::as_str).unwrap_or("resnet50");
    let batch: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(300);
    let system = parse_system(args.get(3).map(String::as_str).unwrap_or("capuchin"));
    let kind = parse_model(model_name);

    let events = export(kind, batch, system);
    std::fs::create_dir_all("results").expect("results dir");
    let path = format!("results/trace_{model_name}_{batch}_{system}.json");
    std::fs::write(&path, serde_json::to_string(&events).expect("serialize")).expect("write");
    println!(
        "wrote {path} ({} events, {} transfer slices) — open in chrome://tracing or ui.perfetto.dev",
        events.len(),
        events.iter().filter(|e| e.pid == 2).count(),
    );
}
