//! Export a simulated timeline as a Chrome trace (`chrome://tracing` /
//! Perfetto) for visual inspection of overlap, stalls, and swap traffic.
//!
//! ```sh
//! cargo run --release -p capuchin-bench --bin trace_export -- [model] [batch] [system]
//! # e.g.
//! cargo run --release -p capuchin-bench --bin trace_export -- resnet50 300 capuchin
//! ```
//!
//! Writes `results/trace_<model>_<batch>_<system>.json`.

use capuchin_bench::System;
use capuchin_executor::{Engine, EngineConfig};
use capuchin_models::ModelKind;
use capuchin_sim::{StreamKind, TraceKind};
use serde::Serialize;

#[derive(Serialize)]
struct ChromeEvent {
    name: String,
    cat: String,
    ph: &'static str,
    ts: f64,
    dur: f64,
    pid: u32,
    tid: u32,
}

fn parse_model(s: &str) -> ModelKind {
    match s {
        "vgg16" => ModelKind::Vgg16,
        "resnet50" => ModelKind::ResNet50,
        "resnet152" => ModelKind::ResNet152,
        "inceptionv3" => ModelKind::InceptionV3,
        "inceptionv4" => ModelKind::InceptionV4,
        "densenet" => ModelKind::DenseNet121,
        "bert" => ModelKind::BertBase,
        other => panic!("unknown model `{other}`"),
    }
}

fn parse_system(s: &str) -> System {
    match s {
        "tf-ori" => System::TfOri,
        "vdnn" => System::Vdnn,
        "openai-m" => System::OpenAiMemory,
        "openai-s" => System::OpenAiSpeed,
        "capuchin" => System::Capuchin,
        other => panic!("unknown system `{other}`"),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let model_name = args.get(1).map(String::as_str).unwrap_or("resnet50");
    let batch: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(300);
    let system = parse_system(args.get(3).map(String::as_str).unwrap_or("capuchin"));
    let kind = parse_model(model_name);

    let model = kind.build(batch);
    let cfg = EngineConfig {
        trace: true,
        ..EngineConfig::default()
    };
    let mut eng = Engine::new(&model.graph, cfg, system.policy(&model.graph));
    eng.run(system.warm_iters())
        .unwrap_or_else(|e| panic!("{kind} b={batch} under {system}: {e}"));
    let trace = eng.take_trace().expect("trace enabled");

    let events: Vec<ChromeEvent> = trace
        .events()
        .iter()
        .map(|e| ChromeEvent {
            name: e.label.clone(),
            cat: match e.kind {
                TraceKind::Kernel => "kernel",
                TraceKind::SwapOut => "swap-out",
                TraceKind::SwapIn => "swap-in",
                TraceKind::Stall => "stall",
            }
            .to_owned(),
            ph: "X",
            ts: e.start.as_micros_f64(),
            dur: e.duration().as_micros_f64(),
            pid: 1,
            tid: match e.stream {
                StreamKind::Compute => 1,
                StreamKind::CopyOut => 2,
                StreamKind::CopyIn => 3,
            },
        })
        .collect();

    std::fs::create_dir_all("results").expect("results dir");
    let path = format!("results/trace_{model_name}_{batch}_{system}.json");
    std::fs::write(&path, serde_json::to_string(&events).expect("serialize")).expect("write");
    println!(
        "wrote {path} ({} events) — open in chrome://tracing or ui.perfetto.dev",
        events.len()
    );
}
