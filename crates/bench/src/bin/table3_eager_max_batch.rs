//! Table 3 — Maximum batch size in eager mode.
//!
//! Paper: ResNet-50 122 (TF) vs 300 (Capuchin, 2.46x); DenseNet 70 vs 190
//! (2.71x). No other system supports eager mode ("no other works are
//! capable of optimizing memory in this mode").

use capuchin_bench::{row, write_artifact, Bench, System};
use capuchin_models::ModelKind;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    model: &'static str,
    tf_ori: usize,
    capuchin: usize,
}

fn main() {
    let bench = Bench::eager();
    println!("Table 3: maximum batch size, eager mode");
    let widths = [12, 10, 10, 8];
    println!(
        "{}",
        row(
            &["Model", "TF-ori", "Capuchin", "ratio"].map(String::from),
            &widths
        )
    );
    let mut rows = Vec::new();
    for (kind, seed) in [(ModelKind::ResNet50, 122), (ModelKind::DenseNet121, 70)] {
        let tf = bench.max_batch(kind, System::TfOri, seed);
        let cap = bench.max_batch(kind, System::Capuchin, tf.max(2));
        println!(
            "{}",
            row(
                &[
                    kind.name().to_owned(),
                    tf.to_string(),
                    cap.to_string(),
                    format!("{:.2}x", cap as f64 / tf.max(1) as f64),
                ],
                &widths
            )
        );
        rows.push(Row {
            model: kind.name(),
            tf_ori: tf,
            capuchin: cap,
        });
    }
    println!("(paper: ResNet-50 122 -> 300 = 2.46x; DenseNet 70 -> 190 = 2.71x)");
    write_artifact("table3_eager_max_batch", &rows);
}
