//! Figure 10 — Training speed vs batch size in eager mode.
//!
//! Paper: ResNet-50 degrades 23.1% while batch grows 83.6%; DenseNet
//! *speeds up* with batch because rising GPU utilization outweighs
//! recomputation overhead.

use capuchin_bench::{row, write_artifact, Bench, System};
use capuchin_models::ModelKind;
use serde::Serialize;

#[derive(Serialize)]
struct Point {
    model: &'static str,
    system: &'static str,
    batch: usize,
    throughput: Option<f64>,
}

fn main() {
    let bench = Bench::eager();
    let sweeps: [(ModelKind, Vec<usize>); 2] = [
        (ModelKind::ResNet50, (0..9).map(|i| 90 + i * 20).collect()),
        (
            ModelKind::DenseNet121,
            (0..8).map(|i| 50 + i * 15).collect(),
        ),
    ];
    let mut points = Vec::new();
    for (kind, batches) in sweeps {
        println!(
            "\nFig. 10 — {} eager mode (samples/sec; '-' = OOM)",
            kind.name()
        );
        let mut widths = vec![10usize];
        widths.extend(batches.iter().map(|_| 8));
        let mut header = vec!["batch".to_owned()];
        header.extend(batches.iter().map(|b| b.to_string()));
        println!("{}", row(&header, &widths));
        for system in [System::TfOri, System::Capuchin] {
            let mut cells = vec![system.name().to_owned()];
            for &b in &batches {
                let tput = bench.throughput(kind, b, system);
                cells.push(
                    tput.map(|t| format!("{t:.1}"))
                        .unwrap_or_else(|| "-".into()),
                );
                points.push(Point {
                    model: kind.name(),
                    system: system.name(),
                    batch: b,
                    throughput: tput,
                });
            }
            println!("{}", row(&cells, &widths));
        }
    }
    write_artifact("fig10_perf_eager", &points);
}
