//! Figure 3 — Regularity of tensor accesses across iterations.
//!
//! The paper profiles three ResNet-50 tensors at iterations 5, 10, and 15
//! and shows fixed access counts and near-identical relative timestamps
//! (variance < 1 ms) — the property that makes measured-execution-based
//! planning valid.

use capuchin_bench::write_artifact;
use capuchin_executor::{Engine, EngineConfig, TfOri};
use capuchin_models::ModelKind;
use capuchin_tensor::TensorKey;
use serde::Serialize;
use std::collections::HashMap;

#[derive(Serialize)]
struct TensorSeries {
    tensor: String,
    accesses: usize,
    /// Relative timestamps (ms) per profiled iteration.
    times_ms: Vec<Vec<f64>>,
    max_variance_ms: f64,
}

fn main() {
    let model = ModelKind::ResNet50.build(190);
    let mut eng = Engine::new(
        &model.graph,
        EngineConfig::default(),
        Box::new(TfOri::new()),
    );

    // Profile iterations 5, 10, 15 as in the paper.
    let mut profiles: Vec<HashMap<TensorKey, Vec<f64>>> = Vec::new();
    for iter in 0..16u64 {
        eng.run(1).expect("fits at TF max batch");
        if matches!(iter, 5 | 10 | 15) {
            let start = eng.iter_stats().started_at;
            let mut per_tensor: HashMap<TensorKey, Vec<f64>> = HashMap::new();
            for a in eng.access_log() {
                per_tensor
                    .entry(a.key)
                    .or_default()
                    .push(a.time.saturating_since(start).as_millis_f64());
            }
            profiles.push(per_tensor);
        }
    }

    // Pick T1 with 4 accesses and T2, T3 with 6, as in the paper.
    let pick = |want: usize, skip: &[TensorKey]| -> Option<TensorKey> {
        let mut keys: Vec<_> = profiles[0]
            .iter()
            .filter(|(k, v)| v.len() == want && !skip.contains(k))
            .map(|(&k, _)| k)
            .collect();
        keys.sort();
        // A mid-network tensor is more illustrative than the stem.
        keys.get(keys.len() / 2).copied()
    };
    let t1 = pick(4, &[]).expect("a 4-access tensor exists");
    let t2 = pick(6, &[]).expect("a 6-access tensor exists");
    let t3 = pick(6, &[t2]).expect("another 6-access tensor exists");

    println!("Fig. 3 — ResNet-50 tensor access timeline at iterations 5/10/15 (batch 190)");
    let mut series = Vec::new();
    for key in [t1, t2, t3] {
        let name = model
            .graph
            .value(capuchin_executor::Engine::value_of(key))
            .name
            .clone();
        let times: Vec<Vec<f64>> = profiles.iter().map(|p| p[&key].clone()).collect();
        // Max across accesses of the spread across iterations.
        let accesses = times[0].len();
        let mut max_var: f64 = 0.0;
        for i in 0..accesses {
            let vals: Vec<f64> = times.iter().map(|t| t[i]).collect();
            let spread = vals.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
                - vals.iter().cloned().fold(f64::INFINITY, f64::min);
            max_var = max_var.max(spread);
        }
        println!(
            "{name}: {accesses} accesses, times (iter 5) = {:?} ms, cross-iteration variance = {max_var:.3} ms (paper: <1 ms)",
            times[0].iter().map(|t| (t * 10.0).round() / 10.0).collect::<Vec<_>>()
        );
        assert!(
            times[0] == times[1] && times[1] == times[2],
            "the simulator is deterministic: identical timelines expected"
        );
        series.push(TensorSeries {
            tensor: name,
            accesses,
            times_ms: times,
            max_variance_ms: max_var,
        });
    }
    println!("\naccess patterns are exactly repeated across iterations — the paper's premise holds by construction in steady state");
    write_artifact("fig3_access_pattern", &series);
}
