//! Figure 9 — Training speed vs batch size, graph mode, for all six
//! workloads under TF-ori, vDNN, OpenAI (both modes), and Capuchin.
//!
//! Paper highlights to reproduce in shape: Capuchin tracks TF-ori until
//! TF-ori's limit and degrades gracefully beyond it (<3% loss at +20%
//! batch); vDNN loses up to 70–74% on the ResNets; OpenAI sits between;
//! systems disappear from the series once they exceed their maximum batch.

use capuchin_bench::{quick_mode, row, write_artifact, Bench, System};
use capuchin_models::ModelKind;
use serde::Serialize;

#[derive(Serialize)]
struct Point {
    model: &'static str,
    system: &'static str,
    batch: usize,
    /// samples/second; `None` = OOM at this batch.
    throughput: Option<f64>,
}

/// Batch sweeps mirroring the paper's x-axes.
fn sweep(kind: ModelKind) -> Vec<usize> {
    let (start, step, count) = match kind {
        ModelKind::Vgg16 => (200, 10, 9),       // 200..280
        ModelKind::ResNet50 => (140, 70, 9),    // 140..700
        ModelKind::InceptionV3 => (110, 60, 9), // 110..590
        ModelKind::ResNet152 => (50, 65, 9),    // 50..570
        ModelKind::InceptionV4 => (60, 40, 9),  // 60..380
        ModelKind::BertBase => (40, 40, 9),     // 40..360
        ModelKind::DenseNet121 => (50, 15, 8),  // eager-only workload
    };
    (0..count).map(|i| start + i * step).collect()
}

fn main() {
    let bench = Bench::default();
    let quick = quick_mode();
    let models: &[ModelKind] = if quick {
        &[ModelKind::ResNet50]
    } else {
        &[
            ModelKind::Vgg16,
            ModelKind::ResNet50,
            ModelKind::InceptionV3,
            ModelKind::ResNet152,
            ModelKind::InceptionV4,
            ModelKind::BertBase,
        ]
    };
    let systems = [
        System::TfOri,
        System::Vdnn,
        System::OpenAiMemory,
        System::OpenAiSpeed,
        System::Capuchin,
    ];

    let mut points = Vec::new();
    for &kind in models {
        let batches = sweep(kind);
        println!("\nFig. 9 — {} (samples/sec; '-' = OOM)", kind.name());
        let mut widths = vec![10usize];
        widths.extend(batches.iter().map(|_| 8));
        let mut header = vec!["batch".to_owned()];
        header.extend(batches.iter().map(|b| b.to_string()));
        println!("{}", row(&header, &widths));
        for system in systems {
            if kind == ModelKind::BertBase && system == System::Vdnn {
                continue;
            }
            let mut cells = vec![system.name().to_owned()];
            for &b in &batches {
                let tput = bench.throughput(kind, b, system);
                cells.push(
                    tput.map(|t| format!("{t:.1}"))
                        .unwrap_or_else(|| "-".to_owned()),
                );
                points.push(Point {
                    model: kind.name(),
                    system: system.name(),
                    batch: b,
                    throughput: tput,
                });
            }
            println!("{}", row(&cells, &widths));
        }
    }
    write_artifact("fig9_perf_graph", &points);
}
