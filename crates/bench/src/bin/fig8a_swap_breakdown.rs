//! Figure 8(a) — Swap mechanism breakdown on InceptionV3.
//!
//! Paper: at batch 200, access-time-based profiling + decoupled swap
//! (ATP+DS) beats vDNN by 73.9%, and feedback adjustment (FA) adds 21.9%;
//! at vDNN's max batch 400, total data transfer dwarfs compute and the
//! improvement shrinks to 5.5%.

use capuchin::{Capuchin, CapuchinConfig};
use capuchin_baselines::Vdnn;
use capuchin_bench::write_artifact;
use capuchin_executor::{Engine, EngineConfig, MemoryPolicy};
use capuchin_models::ModelKind;
use serde::Serialize;

#[derive(Serialize)]
struct Point {
    batch: usize,
    system: String,
    throughput: Option<f64>,
}

fn run(batch: usize, policy: Box<dyn MemoryPolicy>, iters: u64) -> Option<f64> {
    let model = ModelKind::InceptionV3.build(batch);
    let mut eng = Engine::new(&model.graph, EngineConfig::default(), policy);
    let stats = eng.run(iters).ok()?;
    Some(batch as f64 / stats.try_last()?.wall().as_secs_f64())
}

fn main() {
    println!("Fig. 8(a) — swap breakdown on InceptionV3 (images/sec)");
    println!(
        "{:<8} {:>10} {:>10} {:>12} {:>12}",
        "batch", "vDNN", "ATP+DS", "ATP+DS+FA", "+lane-aware"
    );
    let mut points = Vec::new();
    for batch in [200usize, 400] {
        let model = ModelKind::InceptionV3.build(batch);
        let vdnn = run(batch, Box::new(Vdnn::from_graph(&model.graph)), 3);
        // The paper's ATP+DS: naive per-tensor in-trigger estimate, no FA.
        let naive = CapuchinConfig {
            feedback: false,
            lane_aware: false,
            ..CapuchinConfig::swap_only()
        };
        let atp_ds = run(batch, Box::new(Capuchin::with_config(naive)), 10);
        // + feedback adjustment (the paper's full swap mechanism).
        let naive_fa = CapuchinConfig {
            lane_aware: false,
            ..CapuchinConfig::swap_only()
        };
        let atp_ds_fa = run(batch, Box::new(Capuchin::with_config(naive_fa)), 16);
        // Our refinement: lane-aware placement (default configuration).
        let lane = run(
            batch,
            Box::new(Capuchin::with_config(CapuchinConfig::swap_only())),
            10,
        );
        let fmt = |v: Option<f64>| v.map(|t| format!("{t:.1}")).unwrap_or_else(|| "-".into());
        println!(
            "{batch:<8} {:>10} {:>10} {:>12} {:>12}",
            fmt(vdnn),
            fmt(atp_ds),
            fmt(atp_ds_fa),
            fmt(lane)
        );
        for (name, v) in [
            ("vDNN", vdnn),
            ("ATP+DS", atp_ds),
            ("ATP+DS+FA", atp_ds_fa),
            ("ATP+DS+lane", lane),
        ] {
            points.push(Point {
                batch,
                system: name.to_owned(),
                throughput: v,
            });
        }
        if let (Some(v), Some(a), Some(f)) = (vdnn, atp_ds, atp_ds_fa) {
            println!(
                "  ATP+DS vs vDNN: {:+.1}%   (paper @200: +73.9%)   FA on top: {:+.1}%   (paper @200: +21.9%)",
                100.0 * (a / v - 1.0),
                100.0 * (f / a - 1.0)
            );
        }
    }
    write_artifact("fig8a_swap_breakdown", &points);
}
