//! Figure 2 — Execution-time variation of InceptionV3's convolution layers.
//!
//! The paper measures all 94 convolution layers of InceptionV3 on a P100
//! and finds a 37× spread (474 µs – 17,727 µs), with 95.7% of layers under
//! 3 ms — the observation that invalidates "convolution = expensive"
//! static heuristics.

use capuchin_bench::write_artifact;
use capuchin_executor::{Engine, EngineConfig, TfOri};
use capuchin_graph::{OpKind, Phase};
use capuchin_models::ModelKind;
use capuchin_sim::TraceKind;
use serde::Serialize;

#[derive(Serialize)]
struct Fig2 {
    batch: usize,
    conv_layers: usize,
    min_us: f64,
    max_us: f64,
    spread: f64,
    under_3ms_pct: f64,
    times_us: Vec<f64>,
}

fn main() {
    let batch = 64; // the paper does not state the profiled batch; 64 reproduces the distribution
    let model = ModelKind::InceptionV3.build(batch);
    let cfg = EngineConfig {
        trace: true,
        ..EngineConfig::default()
    };
    let mut eng = Engine::new(&model.graph, cfg, Box::new(TfOri::new()));
    eng.run(2).expect("InceptionV3 fits at TF-ori max batch");
    let trace = eng.take_trace().expect("trace enabled");

    // Forward convolution kernel durations, in layer order.
    let conv_names: Vec<&str> = model
        .graph
        .ops()
        .iter()
        .filter(|op| {
            matches!(op.kind, OpKind::Conv2d(_)) && model.graph.phase(op.id) == Phase::Forward
        })
        .map(|op| op.name.as_str())
        .collect();
    let mut times = Vec::new();
    for name in &conv_names {
        if let Some(k) = trace
            .of_kind(TraceKind::Kernel)
            .filter(|k| k.label == *name)
            .last()
        {
            times.push(k.duration().as_micros_f64());
        }
    }

    let min = times.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = times.iter().cloned().fold(0.0, f64::max);
    let under = times.iter().filter(|&&t| t < 3_000.0).count();
    let pct = 100.0 * under as f64 / times.len() as f64;

    println!("Fig. 2 — InceptionV3 convolution layer times (batch {batch})");
    println!("layers: {}   (paper: 94)", times.len());
    println!("min: {min:.0} us   (paper: 474 us)");
    println!("max: {max:.0} us   (paper: 17,727 us)");
    println!("spread: {:.0}x   (paper: 37x)", max / min);
    println!("under 3 ms: {pct:.1}%   (paper: 95.7%)");
    println!("\nlayer#  time(us)");
    for (i, t) in times.iter().enumerate() {
        println!("{i:>6}  {t:>9.0}");
    }

    write_artifact(
        "fig2_conv_times",
        &Fig2 {
            batch,
            conv_layers: times.len(),
            min_us: min,
            max_us: max,
            spread: max / min,
            under_3ms_pct: pct,
            times_us: times,
        },
    );
}
