//! Scheduler scale — wall-clock cost per simulated job as the cluster
//! grows to 1024 GPUs and 100k jobs.
//!
//! The online core's placement probes ride an incremental free-headroom
//! index ([`capuchin_cluster::GpuPool`]), the waiting queue is keyed for
//! O(log n) removal, and elastic-ladder probes are memoized per pool
//! generation — this bench is the perf-trajectory artifact that keeps
//! those asymptotics honest. Three scenarios:
//!
//! * `smoke`  —   64 GPUs /   2k jobs, FIFO, tf-ori admission: the CI
//!   guard row. `--smoke` re-runs exactly this row and fails when the
//!   measured wall-clock-per-job is more than 2× the committed
//!   `results/cluster_scale.json` baseline (a soft guard: machines
//!   differ, asymptotic regressions don't hide inside 2×).
//! * `medium` —  256 GPUs /  20k jobs, best-fit + preemption + elastic:
//!   every scheduling feature's hot path at once.
//! * `large`  — 1024 GPUs / 100k jobs, FIFO, tf-ori admission: the
//!   headline target — single-digit seconds end to end.
//!
//! Workloads come from [`capuchin_cluster::synthetic_mixed_jobs`] (rigid
//! singles, gangs, elastic jobs; a deliberately small shape menu so
//! admission measuring collapses onto cached runs and the clock measures
//! *scheduling*, not graph building). The driver drains the event and
//! transfer side-channels periodically so bench RSS stays bounded; peak
//! RSS is read back from `VmHWM` (Linux; 0 elsewhere).

use std::time::Instant;

use capuchin_bench::write_artifact;
use capuchin_cluster::{synthetic_mixed_jobs, AdmissionMode, Cluster, ClusterConfig, StrategyKind};
use capuchin_sim::InterconnectSpec;
use serde::{Deserialize, Serialize};

/// One scale scenario's measured outcome. Wall-clock fields vary run to
/// run (this artifact records a perf trajectory, not a deterministic
/// simulation result); the simulation-side fields are reproducible.
#[derive(Debug, Serialize, Deserialize)]
struct ScaleRun {
    name: String,
    gpus: usize,
    jobs: usize,
    strategy: String,
    admission: String,
    preemption: bool,
    elastic: bool,
    completed: usize,
    events: u64,
    sim_makespan_secs: f64,
    wall_secs: f64,
    us_per_job: f64,
    peak_rss_kib: u64,
}

#[derive(Debug, Serialize, Deserialize)]
struct ScaleArtifact {
    runs: Vec<ScaleRun>,
}

/// Peak resident set size in KiB from `/proc/self/status` (`VmHWM`).
fn peak_rss_kib() -> u64 {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("VmHWM:"))
                .and_then(|l| l.split_whitespace().nth(1))
                .and_then(|v| v.parse().ok())
        })
        .unwrap_or(0)
}

struct Scenario {
    name: &'static str,
    gpus: usize,
    jobs: usize,
    seed: u64,
    mean_interarrival: f64,
    strategy: StrategyKind,
    admission: AdmissionMode,
    preemption: bool,
    elastic: bool,
    pcie: bool,
}

const SMOKE: Scenario = Scenario {
    name: "smoke",
    gpus: 64,
    jobs: 2_000,
    seed: 7,
    mean_interarrival: 0.02,
    strategy: StrategyKind::FifoFirstFit,
    admission: AdmissionMode::TfOri,
    preemption: false,
    elastic: false,
    pcie: false,
};

const MEDIUM: Scenario = Scenario {
    name: "medium",
    gpus: 256,
    jobs: 20_000,
    seed: 11,
    mean_interarrival: 0.006,
    strategy: StrategyKind::BestFit,
    // tf-ori admission: under capuchin admission every shrunk grant is a
    // distinct byte budget, and each forces a real planner validation
    // run (~10ms of engine work — the paper's measured validation, by
    // design uncacheable across budgets). That is per-job simulation
    // payload, covered by the admission benches; this bench clocks the
    // scheduler, so the mode stays out of its hot loop.
    admission: AdmissionMode::TfOri,
    preemption: true,
    elastic: true,
    // No fabric: with the interconnect on, wall clock is dominated by
    // replaying each Capuchin job's per-tensor swap timeline (millions
    // of transfer records — simulation payload, not scheduler work,
    // measured by `cluster_transfer` instead).
    pcie: false,
};

const LARGE: Scenario = Scenario {
    name: "large",
    gpus: 1024,
    jobs: 100_000,
    seed: 13,
    mean_interarrival: 0.0015,
    strategy: StrategyKind::FifoFirstFit,
    admission: AdmissionMode::TfOri,
    preemption: false,
    elastic: false,
    pcie: false,
};

fn run_scenario(sc: &Scenario) -> ScaleRun {
    let jobs = synthetic_mixed_jobs(sc.jobs, sc.gpus, sc.seed, sc.mean_interarrival);
    let cfg = ClusterConfig::builder()
        .gpus(sc.gpus)
        .strategy(sc.strategy)
        .admission(sc.admission)
        .preemption(sc.preemption)
        .elastic(sc.elastic)
        .interconnect(sc.pcie.then(InterconnectSpec::pcie_shared))
        .build()
        .expect("valid scale config");
    let mut cluster = Cluster::new(cfg);
    let start = Instant::now();
    for spec in &jobs {
        cluster.submit(spec);
    }
    // Drive the online core to idle, draining the side-channels
    // periodically so the bench's own buffers don't dominate RSS.
    let mut events = 0u64;
    let mut steps = 0u64;
    while cluster.step() {
        steps += 1;
        if steps.is_multiple_of(65_536) {
            events += cluster.take_events().len() as u64;
            cluster.take_transfers().clear();
        }
    }
    events += cluster.take_events().len() as u64;
    cluster.take_transfers().clear();
    let wall = start.elapsed();
    let stats = cluster.stats();
    let run = ScaleRun {
        name: sc.name.to_owned(),
        gpus: sc.gpus,
        jobs: sc.jobs,
        strategy: sc.strategy.name().to_owned(),
        admission: sc.admission.name().to_owned(),
        preemption: sc.preemption,
        elastic: sc.elastic,
        completed: stats.completed,
        events,
        sim_makespan_secs: stats.makespan.as_secs_f64(),
        wall_secs: wall.as_secs_f64(),
        us_per_job: wall.as_secs_f64() * 1e6 / sc.jobs as f64,
        peak_rss_kib: peak_rss_kib(),
    };
    eprintln!(
        "[{}] {} GPUs, {} jobs ({} completed), {} events: {:.2}s wall, \
         {:.1}us/job, peak RSS {} KiB",
        run.name,
        run.gpus,
        run.jobs,
        run.completed,
        run.events,
        run.wall_secs,
        run.us_per_job,
        run.peak_rss_kib,
    );
    assert!(
        run.completed > sc.jobs / 2,
        "{}: scheduler starved — only {}/{} completed",
        sc.name,
        run.completed,
        sc.jobs
    );
    run
}

/// The `--smoke` guard: re-run the smoke row and compare against the
/// committed artifact's baseline. More than 2× slower per job fails.
fn smoke_guard() -> ! {
    let run = run_scenario(&SMOKE);
    let committed = std::fs::read_to_string("results/cluster_scale.json")
        .ok()
        .and_then(|s| serde_json::from_str::<ScaleArtifact>(&s).ok());
    let baseline = committed
        .as_ref()
        .and_then(|a| a.runs.iter().find(|r| r.name == "smoke"));
    match baseline {
        Some(base) => {
            let ratio = run.us_per_job / base.us_per_job;
            eprintln!(
                "[smoke] {:.1}us/job vs committed {:.1}us/job ({ratio:.2}x)",
                run.us_per_job, base.us_per_job
            );
            if ratio > 2.0 {
                eprintln!(
                    "error: wall-clock-per-job regressed {ratio:.2}x over the \
                     committed baseline (limit 2x) — re-profile before shipping"
                );
                std::process::exit(1);
            }
        }
        None => eprintln!("[smoke] no committed baseline; measurement recorded above"),
    }
    std::process::exit(0);
}

fn main() {
    if std::env::args().any(|a| a == "--smoke") {
        smoke_guard();
    }
    let runs: Vec<ScaleRun> = [SMOKE, MEDIUM, LARGE].iter().map(run_scenario).collect();
    let large = runs.iter().find(|r| r.name == "large").expect("large row");
    assert!(
        large.wall_secs < 10.0,
        "1024-GPU / 100k-job run took {:.2}s — the single-digit-seconds \
         target regressed",
        large.wall_secs
    );
    write_artifact("cluster_scale", &ScaleArtifact { runs });
}
