//! Ablation studies for the design choices DESIGN.md calls out — the
//! paper's §5.3 optimizations plus this reproduction's own additions.
//!
//! Sections (pass a name to run one, or nothing for all):
//!   decoupled    — decoupled computation/swap vs vDNN-style coupling
//!   lane         — lane-aware vs naive in-trigger placement (+feedback)
//!   collective   — collective recomputation on/off across budgets
//!   feedback     — feedback step-size sweep (naive triggers)
//!   passive      — Capuchin vs computation-oblivious LRU paging
//!   checkpoints  — count-based vs byte-balanced checkpoint selection
//!   policy       — the cluster-level policy × fabric × workload matrix:
//!                  every registry policy (tf-ori, capuchin, dtr, delta)
//!                  over every fabric and workload shape
//!
//! `--smoke` runs a reduced policy matrix and asserts the registry
//! invariants: every policy schedules work, heuristic-class policies
//! (DTR) admit with zero measured validation runs, DELTA at least
//! matches Capuchin on the PCIe-saturated row, and tf-ori/capuchin
//! same-seed runs stay byte-identical to the pre-registry fixtures.

use capuchin::{Capuchin, CapuchinConfig};
use capuchin_baselines::{CheckpointMode, GradientCheckpointing, LruSwap};
use capuchin_bench::write_artifact;
use capuchin_cluster::{
    synthetic_jobs, AdmissionMode, Cluster, ClusterConfig, ClusterStats, CostClass, JobSpec,
    StrategyKind, REGISTRY,
};
use capuchin_executor::{Engine, EngineConfig, MemoryPolicy, TfOri};
use capuchin_models::ModelKind;
use capuchin_sim::{DeviceSpec, Duration, InterconnectSpec};
use serde::Serialize;

#[derive(Serialize)]
struct Result {
    study: &'static str,
    config: String,
    model: &'static str,
    batch: usize,
    budget_mb: u64,
    throughput: Option<f64>,
    stall_ms: Option<f64>,
}

/// One cell of the policy × fabric × workload matrix.
#[derive(Serialize)]
struct MatrixRow {
    policy: &'static str,
    cost_class: &'static str,
    fabric: &'static str,
    workload: &'static str,
    submitted: usize,
    completed: usize,
    oom_rejections: usize,
    preemptions: usize,
    makespan_s: f64,
    samples_per_sec: f64,
    evictions: u64,
    recompute_time_ms: f64,
    admission_validations: u64,
}

fn run(
    kind: ModelKind,
    batch: usize,
    budget_mb: u64,
    policy: Box<dyn MemoryPolicy>,
    iters: u64,
) -> (Option<f64>, Option<f64>) {
    let model = kind.build(batch);
    let cfg = EngineConfig {
        spec: DeviceSpec::p100_pcie3().with_memory(budget_mb << 20),
        ..EngineConfig::default()
    };
    let mut eng = Engine::new(&model.graph, cfg, policy);
    match eng.run(iters) {
        Ok(stats) => match stats.try_last() {
            Some(last) => (
                Some(batch as f64 / last.wall().as_secs_f64()),
                Some(last.stall_time.as_millis_f64()),
            ),
            None => (None, None),
        },
        Err(_) => (None, None),
    }
}

fn fmt(v: Option<f64>) -> String {
    v.map(|t| format!("{t:.1}")).unwrap_or_else(|| "OOM".into())
}

/// One workload shape of the policy matrix.
struct Workload {
    name: &'static str,
    jobs: usize,
    seed: u64,
    /// Per-GPU memory. The tight shapes sit below the menu's big-batch
    /// ideal peaks, forcing shrunk admissions and swap traffic.
    memory: u64,
}

/// The CLI's `cluster` defaults (4 GPUs, capuchin admission,
/// fifo-first-fit, aging 0.1, SLO-aware) at `memory` bytes per GPU —
/// the same recipe that produced the pre-registry fixtures.
fn cluster_run(
    jobs: &[JobSpec],
    memory: u64,
    fabric: Option<InterconnectSpec>,
    preemption: bool,
    elastic: bool,
) -> ClusterStats {
    let cfg = ClusterConfig::builder()
        .gpus(4)
        .spec(DeviceSpec::p100_pcie3().with_memory(memory))
        .admission(AdmissionMode::Capuchin)
        .strategy(StrategyKind::FifoFirstFit)
        .aging_rate(0.1)
        .preemption(preemption)
        .interconnect(fabric)
        .elastic(elastic)
        .min_batch_fraction(0.25)
        .slo_aware(true)
        .build()
        .expect("cluster config");
    Cluster::new(cfg).run(jobs)
}

/// The fabrics a matrix workload runs over: no modelled interconnect,
/// and the shared-PCIe fabric where swap traffic contends.
fn fabrics() -> Vec<(&'static str, Option<InterconnectSpec>)> {
    let pcie = InterconnectSpec::parse("pcie").expect("pcie spec");
    vec![("off", None), ("pcie", pcie)]
}

/// Runs the policy × fabric × workload matrix: each registry policy gets
/// the whole synthetic workload to itself (every job's `policy` field
/// rewritten), so the per-policy scheduling cost shows up unblended.
fn policy_matrix(smoke: bool) -> Vec<MatrixRow> {
    let workloads: &[Workload] = if smoke {
        &[Workload {
            name: "tight8",
            jobs: 8,
            seed: 3,
            memory: 6 << 30,
        }]
    } else {
        &[
            Workload {
                name: "synthetic10",
                jobs: 10,
                seed: 7,
                memory: 16 << 30,
            },
            Workload {
                name: "tight8",
                jobs: 8,
                seed: 3,
                memory: 6 << 30,
            },
        ]
    };
    let mut rows = Vec::new();
    println!("## policy × fabric × workload (4 GPUs, capuchin admission)");
    for w in workloads {
        for (fabric_name, fabric) in fabrics() {
            for d in REGISTRY {
                let mut jobs = synthetic_jobs(w.jobs, w.seed, 2.0);
                for j in &mut jobs {
                    j.policy = d.policy;
                }
                let stats = cluster_run(&jobs, w.memory, fabric.clone(), false, false);
                let recompute: Duration = stats.jobs.iter().map(|j| j.recompute_time).sum();
                let evictions: u64 = stats.jobs.iter().map(|j| j.evictions).sum();
                let validations: u64 = stats.jobs.iter().map(|j| j.admission_validations).sum();
                println!(
                    "  {:<9} {:<5} {:<12} {:>2}/{:<2} jobs  {:>7.1} samp/s  \
                     {:>3} evictions  {:>2} validations",
                    d.name,
                    fabric_name,
                    w.name,
                    stats.completed,
                    stats.submitted,
                    stats.aggregate_samples_per_sec,
                    evictions,
                    validations,
                );
                rows.push(MatrixRow {
                    policy: d.name,
                    cost_class: d.cost_class.name(),
                    fabric: fabric_name,
                    workload: w.name,
                    submitted: stats.submitted,
                    completed: stats.completed,
                    oom_rejections: stats.oom_rejections,
                    preemptions: stats.preemptions,
                    makespan_s: stats.makespan.as_secs_f64(),
                    samples_per_sec: stats.aggregate_samples_per_sec,
                    evictions,
                    recompute_time_ms: recompute.as_millis_f64(),
                    admission_validations: validations,
                });
            }
        }
    }
    rows
}

/// Strips `keys` from every object in the tree, recursively — used to
/// compare post-registry stats (schema 4, three extra per-job counters)
/// against the pre-registry fixtures (schema 3).
fn strip_keys(v: &mut serde_json::Value, keys: &[&str]) {
    match v {
        serde_json::Value::Object(entries) => {
            entries.retain(|(k, _)| !keys.contains(&k.as_str()));
            for (_, val) in entries.iter_mut() {
                strip_keys(val, keys);
            }
        }
        serde_json::Value::Array(items) => {
            for item in items.iter_mut() {
                strip_keys(item, keys);
            }
        }
        _ => {}
    }
}

/// Asserts a same-seed run is byte-identical to its pre-registry fixture
/// once the fields the registry PR added are stripped from both sides.
fn check_fixture(fixture: &str, stats: &ClusterStats) {
    let path = format!(
        "{}/../cluster/tests/fixtures/{fixture}",
        env!("CARGO_MANIFEST_DIR")
    );
    let want = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read fixture {path}: {e}"));
    let stripped = [
        "schema_version",
        "recompute_time",
        "evictions",
        "admission_validations",
        // Schema-5 predictive-admission fields: identically zero /
        // "measured" in these predictive-off runs, but the fixtures
        // predate the fields entirely.
        "admission_source",
        "predicted_bytes",
        "prediction_error_permille",
        "mispredict_recoveries",
        "predictor_hits",
        "predictor_misses",
    ];
    let mut want: serde_json::Value = serde_json::from_str(&want).expect("fixture parses");
    let mut got: serde_json::Value = serde_json::from_str(&stats.to_json()).expect("stats parse");
    strip_keys(&mut want, &stripped);
    strip_keys(&mut got, &stripped);
    assert!(
        got == want,
        "same-seed run diverged from pre-registry fixture {fixture}"
    );
    println!("  fixture {fixture}: identical");
}

/// The `--smoke` gate: the registry invariants the CI run must hold.
fn smoke() {
    let rows = policy_matrix(true);

    // Every registry policy schedules work on the uncontended fabric.
    for d in REGISTRY {
        assert!(
            rows.iter()
                .any(|r| r.policy == d.name && r.fabric == "off" && r.completed > 0),
            "policy {} completed no jobs",
            d.name
        );
    }

    // Heuristic-class admission never runs a measured validation.
    for r in rows.iter().filter(|r| r.cost_class == "heuristic") {
        assert_eq!(
            r.admission_validations, 0,
            "heuristic policy {} charged {} validation runs",
            r.policy, r.admission_validations
        );
    }
    for d in REGISTRY
        .iter()
        .filter(|d| d.cost_class == CostClass::Measured)
    {
        assert!(
            rows.iter()
                .any(|r| r.policy == d.name && r.admission_validations > 0),
            "measured policy {} recorded no validation runs",
            d.name
        );
    }

    // DELTA's priced swap/recompute interleaving must at least match
    // plain Capuchin where swap traffic saturates the shared PCIe link.
    let samples = |policy: &str| {
        rows.iter()
            .find(|r| r.policy == policy && r.fabric == "pcie" && r.workload == "tight8")
            .map(|r| r.samples_per_sec)
            .expect("saturated row present")
    };
    let (cap, delta) = (samples("capuchin"), samples("delta"));
    assert!(
        delta >= cap,
        "delta ({delta:.1} samples/s) fell below capuchin ({cap:.1}) on the saturated row"
    );
    println!("  delta {delta:.1} samples/s >= capuchin {cap:.1} on saturated PCIe");

    // Registry dispatch left the legacy policies' behavior untouched:
    // same-seed runs are byte-identical to the pre-registry fixtures.
    let legacy = synthetic_jobs(10, 7, 2.0);
    let stats = cluster_run(&legacy, 16 << 30, None, false, false);
    check_fixture("prerefactor_synthetic10_seed7.json", &stats);
    let pcie = synthetic_jobs(8, 3, 2.0);
    let stats = cluster_run(
        &pcie,
        16 << 30,
        InterconnectSpec::parse("pcie").expect("pcie spec"),
        true,
        true,
    );
    check_fixture("prerefactor_synthetic8_seed3_pcie.json", &stats);

    println!("ablations smoke: all policy-matrix invariants hold");
}

fn main() {
    let which = std::env::args().nth(1);
    if which.as_deref() == Some("--smoke") {
        smoke();
        return;
    }
    let all = which.is_none();
    let is = |name: &str| all || which.as_deref() == Some(name);
    let mut results = Vec::new();

    if is("decoupled") {
        println!("## decoupled computation/swap (ResNet-50 @ 300, 16 GiB)");
        for (label, coupled) in [
            ("decoupled (paper §5.3)", false),
            ("coupled (vDNN-style)", true),
        ] {
            let cfg = CapuchinConfig {
                coupled_swap: coupled,
                ..CapuchinConfig::swap_only()
            };
            let (t, s) = run(
                ModelKind::ResNet50,
                300,
                16 << 10,
                Box::new(Capuchin::with_config(cfg)),
                10,
            );
            println!("  {label:<26} {:>8} img/s  stall {:>8} ms", fmt(t), fmt(s));
            results.push(Result {
                study: "decoupled",
                config: label.into(),
                model: "ResNet-50",
                batch: 300,
                budget_mb: 16 << 10,
                throughput: t,
                stall_ms: s,
            });
        }
    }

    if is("lane") {
        println!("## in-trigger placement (InceptionV3 @ 300, 16 GiB)");
        for (label, lane, fa) in [
            ("naive, no feedback", false, false),
            ("naive + feedback (paper)", false, true),
            ("lane-aware (ours)", true, true),
        ] {
            let cfg = CapuchinConfig {
                lane_aware: lane,
                feedback: fa,
                ..CapuchinConfig::swap_only()
            };
            let (t, s) = run(
                ModelKind::InceptionV3,
                300,
                16 << 10,
                Box::new(Capuchin::with_config(cfg)),
                14,
            );
            println!("  {label:<26} {:>8} img/s  stall {:>8} ms", fmt(t), fmt(s));
            results.push(Result {
                study: "lane",
                config: label.into(),
                model: "InceptionV3",
                batch: 300,
                budget_mb: 16 << 10,
                throughput: t,
                stall_ms: s,
            });
        }
    }

    if is("collective") {
        println!("## collective recomputation (ResNet-50 @ 48, shrinking budget)");
        for budget_mb in [2600u64, 2200, 1800] {
            for (label, cr) in [("CR on", true), ("CR off", false)] {
                let cfg = CapuchinConfig {
                    collective: cr,
                    ..CapuchinConfig::recompute_only()
                };
                let (t, s) = run(
                    ModelKind::ResNet50,
                    48,
                    budget_mb,
                    Box::new(Capuchin::with_config(cfg)),
                    10,
                );
                println!(
                    "  {budget_mb:>5} MiB  {label:<8} {:>8} img/s  stall {:>8} ms",
                    fmt(t),
                    fmt(s)
                );
                results.push(Result {
                    study: "collective",
                    config: format!("{label}@{budget_mb}MiB"),
                    model: "ResNet-50",
                    batch: 48,
                    budget_mb,
                    throughput: t,
                    stall_ms: s,
                });
            }
        }
    }

    if is("feedback") {
        println!("## feedback step size (InceptionV3 @ 260, naive triggers)");
        for step in [0.01f64, 0.05, 0.20] {
            let cfg = CapuchinConfig {
                lane_aware: false,
                lead_step: step,
                ..CapuchinConfig::swap_only()
            };
            let (t, s) = run(
                ModelKind::InceptionV3,
                260,
                16 << 10,
                Box::new(Capuchin::with_config(cfg)),
                16,
            );
            println!(
                "  step {step:<5} {:>8} img/s  stall {:>8} ms",
                fmt(t),
                fmt(s)
            );
            results.push(Result {
                study: "feedback",
                config: format!("step={step}"),
                model: "InceptionV3",
                batch: 260,
                budget_mb: 16 << 10,
                throughput: t,
                stall_ms: s,
            });
        }
    }

    if is("passive") {
        println!("## computation-aware vs oblivious paging (ResNet-50 @ 400, 16 GiB)");
        let cases: Vec<(&str, Box<dyn MemoryPolicy>)> = vec![
            ("LRU on-demand paging", Box::new(LruSwap::new())),
            ("Capuchin", Box::new(Capuchin::new())),
        ];
        for (label, policy) in cases {
            let (t, s) = run(ModelKind::ResNet50, 400, 16 << 10, policy, 10);
            println!("  {label:<26} {:>8} img/s  stall {:>8} ms", fmt(t), fmt(s));
            results.push(Result {
                study: "passive",
                config: label.into(),
                model: "ResNet-50",
                batch: 400,
                budget_mb: 16 << 10,
                throughput: t,
                stall_ms: s,
            });
        }
    }

    if is("checkpoints") {
        println!("## checkpoint selection (ResNet-50 @ 500, 16 GiB)");
        let model = ModelKind::ResNet50.build(2);
        for (label, mode) in [
            ("count-based sqrt(n) (tool)", CheckpointMode::Memory),
            ("byte-balanced (ours)", CheckpointMode::MemoryBalanced),
        ] {
            let p = GradientCheckpointing::from_graph(&model.graph, mode);
            let info = format!(
                "{} checkpoints / {} released",
                p.checkpoints(),
                p.released()
            );
            let (t, s) = run(
                ModelKind::ResNet50,
                500,
                16 << 10,
                Box::new(GradientCheckpointing::from_graph(
                    &ModelKind::ResNet50.build(500).graph,
                    mode,
                )),
                3,
            );
            println!(
                "  {label:<28} {info:<28} {:>8} img/s  stall {:>8} ms",
                fmt(t),
                fmt(s)
            );
            results.push(Result {
                study: "checkpoints",
                config: label.into(),
                model: "ResNet-50",
                batch: 500,
                budget_mb: 16 << 10,
                throughput: t,
                stall_ms: s,
            });
        }
        // And their effect on tf-ori for scale.
        let (t, s) = run(
            ModelKind::ResNet50,
            500,
            16 << 10,
            Box::new(TfOri::new()),
            2,
        );
        println!(
            "  (tf-ori reference)           {:>37} img/s  stall {:>8} ms",
            fmt(t),
            fmt(s)
        );
    }

    let policy_matrix = if is("policy") {
        policy_matrix(false)
    } else {
        Vec::new()
    };

    #[derive(Serialize)]
    struct Artifact {
        engine: Vec<Result>,
        policy_matrix: Vec<MatrixRow>,
    }
    write_artifact(
        "ablations",
        &Artifact {
            engine: results,
            policy_matrix,
        },
    );
}
