//! Ablation studies for the design choices DESIGN.md calls out — the
//! paper's §5.3 optimizations plus this reproduction's own additions.
//!
//! Sections (pass a name to run one, or nothing for all):
//!   decoupled    — decoupled computation/swap vs vDNN-style coupling
//!   lane         — lane-aware vs naive in-trigger placement (+feedback)
//!   collective   — collective recomputation on/off across budgets
//!   feedback     — feedback step-size sweep (naive triggers)
//!   passive      — Capuchin vs computation-oblivious LRU paging
//!   checkpoints  — count-based vs byte-balanced checkpoint selection

use capuchin::{Capuchin, CapuchinConfig};
use capuchin_baselines::{CheckpointMode, GradientCheckpointing, LruSwap};
use capuchin_bench::write_artifact;
use capuchin_executor::{Engine, EngineConfig, MemoryPolicy, TfOri};
use capuchin_models::ModelKind;
use capuchin_sim::DeviceSpec;
use serde::Serialize;

#[derive(Serialize)]
struct Result {
    study: &'static str,
    config: String,
    model: &'static str,
    batch: usize,
    budget_mb: u64,
    throughput: Option<f64>,
    stall_ms: Option<f64>,
}

fn run(
    kind: ModelKind,
    batch: usize,
    budget_mb: u64,
    policy: Box<dyn MemoryPolicy>,
    iters: u64,
) -> (Option<f64>, Option<f64>) {
    let model = kind.build(batch);
    let cfg = EngineConfig {
        spec: DeviceSpec::p100_pcie3().with_memory(budget_mb << 20),
        ..EngineConfig::default()
    };
    let mut eng = Engine::new(&model.graph, cfg, policy);
    match eng.run(iters) {
        Ok(stats) => match stats.try_last() {
            Some(last) => (
                Some(batch as f64 / last.wall().as_secs_f64()),
                Some(last.stall_time.as_millis_f64()),
            ),
            None => (None, None),
        },
        Err(_) => (None, None),
    }
}

fn fmt(v: Option<f64>) -> String {
    v.map(|t| format!("{t:.1}")).unwrap_or_else(|| "OOM".into())
}

fn main() {
    let which = std::env::args().nth(1);
    let all = which.is_none();
    let is = |name: &str| all || which.as_deref() == Some(name);
    let mut results = Vec::new();

    if is("decoupled") {
        println!("## decoupled computation/swap (ResNet-50 @ 300, 16 GiB)");
        for (label, coupled) in [
            ("decoupled (paper §5.3)", false),
            ("coupled (vDNN-style)", true),
        ] {
            let cfg = CapuchinConfig {
                coupled_swap: coupled,
                ..CapuchinConfig::swap_only()
            };
            let (t, s) = run(
                ModelKind::ResNet50,
                300,
                16 << 10,
                Box::new(Capuchin::with_config(cfg)),
                10,
            );
            println!("  {label:<26} {:>8} img/s  stall {:>8} ms", fmt(t), fmt(s));
            results.push(Result {
                study: "decoupled",
                config: label.into(),
                model: "ResNet-50",
                batch: 300,
                budget_mb: 16 << 10,
                throughput: t,
                stall_ms: s,
            });
        }
    }

    if is("lane") {
        println!("## in-trigger placement (InceptionV3 @ 300, 16 GiB)");
        for (label, lane, fa) in [
            ("naive, no feedback", false, false),
            ("naive + feedback (paper)", false, true),
            ("lane-aware (ours)", true, true),
        ] {
            let cfg = CapuchinConfig {
                lane_aware: lane,
                feedback: fa,
                ..CapuchinConfig::swap_only()
            };
            let (t, s) = run(
                ModelKind::InceptionV3,
                300,
                16 << 10,
                Box::new(Capuchin::with_config(cfg)),
                14,
            );
            println!("  {label:<26} {:>8} img/s  stall {:>8} ms", fmt(t), fmt(s));
            results.push(Result {
                study: "lane",
                config: label.into(),
                model: "InceptionV3",
                batch: 300,
                budget_mb: 16 << 10,
                throughput: t,
                stall_ms: s,
            });
        }
    }

    if is("collective") {
        println!("## collective recomputation (ResNet-50 @ 48, shrinking budget)");
        for budget_mb in [2600u64, 2200, 1800] {
            for (label, cr) in [("CR on", true), ("CR off", false)] {
                let cfg = CapuchinConfig {
                    collective: cr,
                    ..CapuchinConfig::recompute_only()
                };
                let (t, s) = run(
                    ModelKind::ResNet50,
                    48,
                    budget_mb,
                    Box::new(Capuchin::with_config(cfg)),
                    10,
                );
                println!(
                    "  {budget_mb:>5} MiB  {label:<8} {:>8} img/s  stall {:>8} ms",
                    fmt(t),
                    fmt(s)
                );
                results.push(Result {
                    study: "collective",
                    config: format!("{label}@{budget_mb}MiB"),
                    model: "ResNet-50",
                    batch: 48,
                    budget_mb,
                    throughput: t,
                    stall_ms: s,
                });
            }
        }
    }

    if is("feedback") {
        println!("## feedback step size (InceptionV3 @ 260, naive triggers)");
        for step in [0.01f64, 0.05, 0.20] {
            let cfg = CapuchinConfig {
                lane_aware: false,
                lead_step: step,
                ..CapuchinConfig::swap_only()
            };
            let (t, s) = run(
                ModelKind::InceptionV3,
                260,
                16 << 10,
                Box::new(Capuchin::with_config(cfg)),
                16,
            );
            println!(
                "  step {step:<5} {:>8} img/s  stall {:>8} ms",
                fmt(t),
                fmt(s)
            );
            results.push(Result {
                study: "feedback",
                config: format!("step={step}"),
                model: "InceptionV3",
                batch: 260,
                budget_mb: 16 << 10,
                throughput: t,
                stall_ms: s,
            });
        }
    }

    if is("passive") {
        println!("## computation-aware vs oblivious paging (ResNet-50 @ 400, 16 GiB)");
        let cases: Vec<(&str, Box<dyn MemoryPolicy>)> = vec![
            ("LRU on-demand paging", Box::new(LruSwap::new())),
            ("Capuchin", Box::new(Capuchin::new())),
        ];
        for (label, policy) in cases {
            let (t, s) = run(ModelKind::ResNet50, 400, 16 << 10, policy, 10);
            println!("  {label:<26} {:>8} img/s  stall {:>8} ms", fmt(t), fmt(s));
            results.push(Result {
                study: "passive",
                config: label.into(),
                model: "ResNet-50",
                batch: 400,
                budget_mb: 16 << 10,
                throughput: t,
                stall_ms: s,
            });
        }
    }

    if is("checkpoints") {
        println!("## checkpoint selection (ResNet-50 @ 500, 16 GiB)");
        let model = ModelKind::ResNet50.build(2);
        for (label, mode) in [
            ("count-based sqrt(n) (tool)", CheckpointMode::Memory),
            ("byte-balanced (ours)", CheckpointMode::MemoryBalanced),
        ] {
            let p = GradientCheckpointing::from_graph(&model.graph, mode);
            let info = format!(
                "{} checkpoints / {} released",
                p.checkpoints(),
                p.released()
            );
            let (t, s) = run(
                ModelKind::ResNet50,
                500,
                16 << 10,
                Box::new(GradientCheckpointing::from_graph(
                    &ModelKind::ResNet50.build(500).graph,
                    mode,
                )),
                3,
            );
            println!(
                "  {label:<28} {info:<28} {:>8} img/s  stall {:>8} ms",
                fmt(t),
                fmt(s)
            );
            results.push(Result {
                study: "checkpoints",
                config: label.into(),
                model: "ResNet-50",
                batch: 500,
                budget_mb: 16 << 10,
                throughput: t,
                stall_ms: s,
            });
        }
        // And their effect on tf-ori for scale.
        let (t, s) = run(
            ModelKind::ResNet50,
            500,
            16 << 10,
            Box::new(TfOri::new()),
            2,
        );
        println!(
            "  (tf-ori reference)           {:>37} img/s  stall {:>8} ms",
            fmt(t),
            fmt(s)
        );
    }

    write_artifact("ablations", &results);
}
