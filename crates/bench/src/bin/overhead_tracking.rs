//! §6.3.2 "Runtime overhead" — the cost of Capuchin's access tracking when
//! memory management is inactive (batch fits comfortably).
//!
//! Paper: <1% at TF-ori's max batch (average 0.36%) in graph mode;
//! 1.5%/2.5% in eager mode (ResNet-50/DenseNet), where sequential op
//! processing makes the tracker's locking visible.
//!
//! Tracking cost is modeled as a fixed per-access host-side charge (the
//! `RecordTensorAccess` instrumentation + tensor-access-list lock), set to
//! 2 µs per access in graph mode and 4 µs in eager mode (Python
//! interpreter in the loop).

use capuchin::Capuchin;
use capuchin_bench::{final_iter, write_artifact};
use capuchin_executor::{Engine, EngineConfig, ExecMode, TfOri};
use capuchin_models::ModelKind;
use capuchin_sim::Duration;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    model: &'static str,
    mode: &'static str,
    batch: usize,
    overhead_pct: f64,
}

fn overhead(kind: ModelKind, batch: usize, mode: ExecMode, per_access: Duration) -> f64 {
    let model = kind.build(batch);
    let base_cfg = EngineConfig {
        mode,
        ..EngineConfig::default()
    };
    let mut base = Engine::new(&model.graph, base_cfg.clone(), Box::new(TfOri::new()));
    let base_stats = base.run(3).expect("fits");
    let b = final_iter(&base_stats).wall();
    let cap_cfg = EngineConfig {
        tracking_overhead: per_access,
        ..base_cfg
    };
    let mut cap = Engine::new(&model.graph, cap_cfg, Box::new(Capuchin::new()));
    let cap_stats = cap.run(3).expect("fits");
    let c = final_iter(&cap_stats).wall();
    100.0 * (c.as_secs_f64() / b.as_secs_f64() - 1.0)
}

fn main() {
    println!("Runtime tracking overhead at TF-ori max batch (paper: graph <1%, eager 1.5-2.5%)");
    let mut rows = Vec::new();
    let graph_cases = [
        (ModelKind::Vgg16, 208),
        (ModelKind::ResNet50, 190),
        (ModelKind::ResNet152, 86),
        (ModelKind::InceptionV3, 160),
        (ModelKind::InceptionV4, 88),
        (ModelKind::BertBase, 64),
    ];
    let mut sum = 0.0;
    for (kind, batch) in graph_cases {
        let pct = overhead(kind, batch, ExecMode::Graph, Duration::from_micros(2));
        println!(
            "  graph  {:<12} b={batch:<4} overhead = {pct:.2}%",
            kind.name()
        );
        sum += pct;
        rows.push(Row {
            model: kind.name(),
            mode: "graph",
            batch,
            overhead_pct: pct,
        });
    }
    println!(
        "  graph average: {:.2}%   (paper: 0.36%)",
        sum / graph_cases.len() as f64
    );
    for (kind, batch) in [(ModelKind::ResNet50, 120), (ModelKind::DenseNet121, 70)] {
        let pct = overhead(
            kind,
            batch,
            ExecMode::eager_default(),
            Duration::from_micros(4),
        );
        println!(
            "  eager  {:<12} b={batch:<4} overhead = {pct:.2}%   (paper: 1.5-2.5%)",
            kind.name()
        );
        rows.push(Row {
            model: kind.name(),
            mode: "eager",
            batch,
            overhead_pct: pct,
        });
    }
    write_artifact("overhead_tracking", &rows);
}
