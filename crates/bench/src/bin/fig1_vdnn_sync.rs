//! Figure 1 — vDNN's synchronization overhead on Vgg16.
//!
//! The paper profiles vDNN on Vgg16 (batch 230, P100, PCIe 3.0 ×16) and
//! shows the largest tensor's swap-out/in each taking >3× the overlapped
//! layer's compute time, for a total performance loss of 41.3%.
//!
//! This harness traces the same configuration, reports the largest swap
//! against the layer it tried to hide under, and the end-to-end loss
//! versus unconstrained TF-ori.

use capuchin_baselines::{TfOri, Vdnn};
use capuchin_bench::{final_iter, write_artifact};
use capuchin_executor::{Engine, EngineConfig};
use capuchin_models::ModelKind;
use capuchin_sim::TraceKind;
use serde::Serialize;

#[derive(Serialize)]
struct Fig1 {
    batch: usize,
    largest_swap_ms: f64,
    overlapped_layer_ms: f64,
    swap_to_layer_ratio: f64,
    vdnn_iter_ms: f64,
    tf_iter_ms: f64,
    performance_loss_pct: f64,
    paper_ratio: &'static str,
    paper_loss_pct: f64,
}

fn main() {
    let batch = 230;
    let model = ModelKind::Vgg16.build(batch);

    // TF-ori cannot run batch 230 (the paper's point); take its per-sample
    // speed at its comfort zone, batch 208, as the baseline.
    let tf_model = ModelKind::Vgg16.build(208);
    let mut tf = Engine::new(
        &tf_model.graph,
        EngineConfig::default(),
        Box::new(TfOri::new()),
    );
    let tf_stats = tf.run(3).expect("VGG16 @208 fits TF-ori");
    let tf_iter = final_iter(&tf_stats).wall();
    let tf_tput = 208.0 / tf_iter.as_secs_f64();

    let cfg = EngineConfig {
        trace: true,
        ..EngineConfig::default()
    };
    let vdnn = Vdnn::from_graph(&model.graph);
    let mut eng = Engine::new(&model.graph, cfg, Box::new(vdnn));
    let stats = eng.run(2).expect("vDNN runs VGG16 @230");
    let vdnn_iter = final_iter(&stats).wall();
    let trace = eng.take_trace().expect("trace enabled");

    // Largest swap-out and the kernel that runs concurrently with it.
    let largest = trace
        .of_kind(TraceKind::SwapOut)
        .max_by_key(|e| e.duration())
        .expect("vDNN swapped something");
    let overlapped = trace
        .of_kind(TraceKind::Kernel)
        .filter(|k| k.start <= largest.end && k.end >= largest.start)
        .max_by_key(|k| k.duration())
        .expect("a kernel overlaps the swap");

    // The paper compares the *round trip* ("the time of swapping out/in
    // are more than 3x as much as the overlapped layer's execution time").
    let in_time = eng.spec().copy_time(
        model
            .graph
            .values()
            .iter()
            .find(|v| largest.label.contains(&v.name))
            .map(|v| v.size_bytes())
            .unwrap_or(0),
        capuchin_sim::CopyDir::HostToDevice,
    );
    let ratio = (largest.duration().as_secs_f64() + in_time.as_secs_f64())
        / overlapped.duration().as_secs_f64();
    let vdnn_tput = batch as f64 / vdnn_iter.as_secs_f64();
    let loss = 100.0 * (1.0 - vdnn_tput / tf_tput);

    println!("Fig. 1 — vDNN synchronization overhead on Vgg16 (batch {batch})");
    println!(
        "largest swap-out: {} ({})",
        largest.duration(),
        largest.label
    );
    println!(
        "overlapped layer: {} ({})",
        overlapped.duration(),
        overlapped.label
    );
    println!("swap/layer ratio: {ratio:.1}x   (paper: >3x)");
    println!(
        "vDNN {vdnn_tput:.1} img/s @230 vs TF-ori {tf_tput:.1} img/s @208 -> loss {loss:.1}%   (paper: 41.3%)"
    );
    let _ = tf_iter;

    write_artifact(
        "fig1_vdnn_sync",
        &Fig1 {
            batch,
            largest_swap_ms: largest.duration().as_millis_f64(),
            overlapped_layer_ms: overlapped.duration().as_millis_f64(),
            swap_to_layer_ratio: ratio,
            vdnn_iter_ms: vdnn_iter.as_millis_f64(),
            tf_iter_ms: tf_iter.as_millis_f64(),
            performance_loss_pct: loss,
            paper_ratio: ">3x",
            paper_loss_pct: 41.3,
        },
    );
}
