//! Elastic re-batching — batch size traded for earlier starts, with
//! `--elastic on` vs `off` on a full cluster.
//!
//! A rigid job that needs a whole 16 GiB device queues behind whatever is
//! resident; head-of-line blocking tracks the longest neighbour. An
//! elastic job instead bisects its batch down a halving ladder until the
//! per-replica footprint fits the current headroom, starts immediately
//! with its iteration count extended (total samples trained is preserved
//! exactly), and re-grows toward the full batch at completed-iteration
//! boundaries when headroom frees — paying the same checkpoint/restore
//! copy costs preemption models.
//!
//! The workload pins that trade: medium VGG16 residents occupy every GPU
//! (each holds just under half a device), then full-device VGG16 jobs
//! arrive behind them. Rigidly they wait; elastically they start at half
//! batch next to the residents and grow to the full batch the moment the
//! residents drain.
//!
//! `--smoke` runs a two-job single-GPU variant quickly and asserts the
//! same invariants, including at least one shrink-then-regrow cycle.

use capuchin_bench::{cluster_job as job, write_artifact};
use capuchin_cluster::{
    AdmissionMode, Cluster, ClusterConfig, ClusterStats, JobOutcome, JobPolicy, JobSpec,
};
use capuchin_models::ModelKind;
use capuchin_sim::Duration;
use serde::Serialize;

/// Two GPUs' worth of medium residents, then three full-device arrivals
/// (two elastic, one rigid control that shows the head-of-line cost).
fn workload() -> Vec<JobSpec> {
    use JobPolicy::TfOri;
    use ModelKind::Vgg16;
    vec![
        job("res0", Vgg16, 128, 1, TfOri, 6, 0, 0.0),
        job("res1", Vgg16, 128, 1, TfOri, 6, 0, 0.05),
        job("big0", Vgg16, 256, 1, TfOri, 8, 0, 0.20).with_elastic(),
        job("big1", Vgg16, 256, 1, TfOri, 8, 0, 0.25).with_elastic(),
        job("rigid", Vgg16, 256, 1, TfOri, 4, 0, 0.30),
    ]
}

/// The minimal shrink-then-regrow cycle: one resident, one elastic
/// arrival, one GPU.
fn smoke_workload() -> Vec<JobSpec> {
    use JobPolicy::TfOri;
    use ModelKind::Vgg16;
    vec![
        job("res0", Vgg16, 128, 1, TfOri, 4, 0, 0.0),
        job("big0", Vgg16, 256, 1, TfOri, 8, 0, 0.05).with_elastic(),
    ]
}

fn run(gpus: usize, elastic: bool, jobs: &[JobSpec]) -> ClusterStats {
    let cfg = ClusterConfig::builder()
        .gpus(gpus)
        .admission(AdmissionMode::TfOri)
        .elastic(elastic)
        .min_batch_fraction(0.25)
        .build()
        .expect("valid config");
    Cluster::new(cfg).run(jobs)
}

/// Invariants both runs must satisfy, plus the elastic-vs-rigid claims:
/// zero mid-run aborts, no lost completions, at least one earlier start,
/// and exact sample preservation for every completed job.
fn assert_elastic_wins(rigid: &ClusterStats, elastic: &ClusterStats, jobs: &[JobSpec]) {
    for stats in [rigid, elastic] {
        assert_eq!(
            stats.midrun_oom_aborts, 0,
            "admitted jobs must never abort mid-run"
        );
        for (j, spec) in stats.jobs.iter().zip(jobs.iter()) {
            if j.outcome == JobOutcome::Completed {
                assert_eq!(
                    j.samples_preserved,
                    spec.batch as u64 * spec.iters,
                    "{}: samples must be preserved exactly",
                    j.name
                );
            }
        }
    }
    assert!(
        elastic.completed >= rigid.completed,
        "elastic admission must not lose completions: {} vs {}",
        elastic.completed,
        rigid.completed
    );
    let earlier = rigid
        .jobs
        .iter()
        .zip(elastic.jobs.iter())
        .filter(|(r, e)| {
            r.outcome == JobOutcome::Completed
                && e.outcome == JobOutcome::Completed
                && e.queueing_delay < r.queueing_delay
        })
        .count();
    assert!(
        earlier >= 1,
        "elastic admission must start at least one job earlier"
    );
    assert_eq!(rigid.rebatches, 0, "elastic off must never re-batch");
    let cycled = elastic.jobs.iter().filter(|j| j.rebatches >= 2).count();
    assert!(
        cycled >= 1,
        "at least one job must shrink at admission and re-grow: {}",
        elastic.to_json()
    );
}

#[derive(Serialize)]
struct Comparison {
    rigid: ClusterStats,
    elastic: ClusterStats,
}

fn report(rigid: &ClusterStats, elastic: &ClusterStats) {
    println!(
        "{:<10} {:>9} {:>9} {:>10} {:>12} {:>12}",
        "elastic", "completed", "rebatches", "makespan", "mean queue", "mean JCT"
    );
    for (label, stats) in [("off", rigid), ("on", elastic)] {
        println!(
            "{:<10} {:>9} {:>9} {:>9.2}s {:>11.2}s {:>11.2}s",
            label,
            stats.completed,
            stats.rebatches,
            stats.makespan.as_secs_f64(),
            stats.mean_queueing_delay.as_secs_f64(),
            stats.mean_jct.as_secs_f64(),
        );
    }
    let reduced: f64 = elastic
        .jobs
        .iter()
        .map(|j| j.elastic_time_at_reduced_batch.as_secs_f64())
        .sum();
    let copies: Duration = elastic
        .jobs
        .iter()
        .filter(|j| j.rebatches > 0)
        .map(|j| j.checkpoint_overhead)
        .sum();
    println!(
        "\nelastic re-batching: {} batch change(s), {:.2}s trained below the \
         requested batch, {:.3}s of re-batch checkpoint/restore copies",
        elastic.rebatches,
        reduced,
        copies.as_secs_f64(),
    );
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (gpus, jobs) = if smoke {
        (1, smoke_workload())
    } else {
        (2, workload())
    };
    println!(
        "Elastic re-batching on {} jobs / {gpus} × 16 GiB GPUs (tf-ori admission, fifo)",
        jobs.len()
    );
    let rigid = run(gpus, false, &jobs);
    let elastic = run(gpus, true, &jobs);
    assert_elastic_wins(&rigid, &elastic, &jobs);
    report(&rigid, &elastic);
    if smoke {
        println!("smoke OK: shrink-then-regrow cycle verified");
        return;
    }
    write_artifact("cluster_elastic", &Comparison { rigid, elastic });
}
