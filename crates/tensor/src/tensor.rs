//! Tensor metadata, runtime state, and the registry.
//!
//! This mirrors the paper's extended `Tensor` structure (Listing 1): a
//! stable id, access count, last-access timestamp, a five-state status, and
//! lineage (`inputs` + producing operation) for recomputation. The stable
//! [`TensorKey`] is what lets Capuchin "locate the same tensor across
//! multiple iterations [whose] underlying memory address could be different"
//! (§5.2) — here it is derived from the graph value a tensor materializes.

use std::collections::HashMap;
use std::fmt;

use capuchin_mem::{Allocation, HostAllocId};
use capuchin_sim::Time;
use serde::{Deserialize, Serialize};

use crate::shape::{DType, Shape};
use crate::sig::Signature;

/// Stable identity of a tensor across iterations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TensorKey(pub u64);

impl fmt::Display for TensorKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// Opaque handle to the operation that produced a tensor (the executor maps
/// this to its graph's op id). Part of the lineage used for recomputation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct OpHandle(pub u32);

/// The five tensor states of the paper (Listing 1). Tensors released for
/// recomputation only use `In`, `Out`, and `Recompute`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TensorStatus {
    /// Resident in device memory.
    In,
    /// Device copy still valid; an asynchronous copy-out is in flight and
    /// the device memory will be released when it completes.
    SwappingOut,
    /// Only the host copy exists.
    Out,
    /// A copy-in is in flight; device memory is allocated but contents are
    /// not yet valid.
    SwappingIn,
    /// Dropped entirely; must be re-derived from lineage.
    Recompute,
}

impl fmt::Display for TensorStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            TensorStatus::In => "IN",
            TensorStatus::SwappingOut => "SWAPPING_OUT",
            TensorStatus::Out => "OUT",
            TensorStatus::SwappingIn => "SWAPPING_IN",
            TensorStatus::Recompute => "RECOMPUTE",
        };
        f.write_str(s)
    }
}

/// How a tensor was touched.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AccessKind {
    /// The tensor was written by the operation that created it.
    Produce,
    /// The tensor was read as an operation input.
    Read,
}

/// One entry of the tensor access list: `{tensor_id, access_count,
/// timestamp}` as in §5.2, plus the access kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TensorAccess {
    /// Which tensor.
    pub key: TensorKey,
    /// The value of the tensor's access counter *after* this access
    /// (1 for the producing access).
    pub count: u32,
    /// GPU-timeline timestamp of the access.
    pub time: Time,
    /// Read or produce.
    pub kind: AccessKind,
}

/// Immutable description of a tensor (survives iterations).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TensorMeta {
    /// Stable identity.
    pub key: TensorKey,
    /// Human-readable name (op output name).
    pub name: String,
    /// Logical shape.
    pub shape: Shape,
    /// Element type.
    pub dtype: DType,
    /// Lineage: the tensors consumed by the producing operation.
    pub inputs: Vec<TensorKey>,
    /// Lineage: the producing operation.
    pub op: Option<OpHandle>,
    /// Name of the producing operation (diagnostics).
    pub op_name: String,
    /// Persistent tensors (weights, optimizer state) stay resident across
    /// iterations and are never eviction candidates (§2.1).
    pub persistent: bool,
    /// Whether the tensor can be re-derived by replaying its lineage.
    /// Graph inputs can be swapped but not recomputed.
    pub recomputable: bool,
}

impl TensorMeta {
    /// Size of the tensor contents in bytes.
    pub fn size_bytes(&self) -> u64 {
        self.shape.size_bytes(self.dtype)
    }
}

/// A live tensor: metadata plus mutable runtime state.
#[derive(Debug, Clone)]
pub struct Tensor {
    /// Immutable description.
    pub meta: TensorMeta,
    /// Current residency status.
    pub status: TensorStatus,
    /// Device allocation backing the tensor (present in `In`,
    /// `SwappingOut`, and `SwappingIn` states).
    pub device: Option<Allocation>,
    /// Host staging buffer (present in `SwappingOut`, `Out`, `SwappingIn`).
    pub host: Option<HostAllocId>,
    /// Instant at which the device contents become valid (the swap-in or
    /// producing kernel completion event). Reads must not start earlier.
    pub ready_at: Time,
    /// Instant at which an in-flight swap-out completes (device memory may
    /// be released then).
    pub swapout_done_at: Option<Time>,
    /// Number of times the tensor has been accessed this iteration.
    pub access_count: u32,
    /// Timestamp of the most recent access.
    pub last_access: Time,
    /// Expected content signature.
    pub signature: Signature,
}

impl Tensor {
    /// Creates a tensor in the `Recompute`-like "not yet produced" state.
    pub fn new(meta: TensorMeta, signature: Signature) -> Tensor {
        Tensor {
            meta,
            status: TensorStatus::Recompute,
            device: None,
            host: None,
            ready_at: Time::ZERO,
            swapout_done_at: None,
            access_count: 0,
            last_access: Time::ZERO,
            signature,
        }
    }

    /// Stable identity.
    pub fn key(&self) -> TensorKey {
        self.meta.key
    }

    /// Size in bytes.
    pub fn size_bytes(&self) -> u64 {
        self.meta.size_bytes()
    }

    /// Whether the device copy currently holds valid-or-becoming-valid data.
    pub fn on_device(&self) -> bool {
        matches!(
            self.status,
            TensorStatus::In | TensorStatus::SwappingOut | TensorStatus::SwappingIn
        )
    }
}

/// The set of live tensors, indexed by stable key.
///
/// # Examples
///
/// ```
/// use capuchin_tensor::{DType, Shape, TensorKey, TensorMeta, TensorRegistry};
///
/// let mut reg = TensorRegistry::new();
/// let key = TensorKey(7);
/// reg.insert_new(
///     TensorMeta {
///         key,
///         name: "relu_out".into(),
///         shape: Shape::nchw(1, 8, 4, 4),
///         dtype: DType::F32,
///         inputs: vec![],
///         op: None,
///         op_name: "relu".into(),
///         persistent: false,
///         recomputable: true,
///     },
///     0xdead_beef,
/// );
/// assert_eq!(reg.get(key).unwrap().signature, 0xdead_beef);
/// ```
#[derive(Debug, Default, Clone)]
pub struct TensorRegistry {
    tensors: HashMap<TensorKey, Tensor>,
}

impl TensorRegistry {
    /// Creates an empty registry.
    pub fn new() -> TensorRegistry {
        TensorRegistry::default()
    }

    /// Number of registered tensors.
    pub fn len(&self) -> usize {
        self.tensors.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.tensors.is_empty()
    }

    /// Registers a fresh tensor.
    ///
    /// # Panics
    ///
    /// Panics if the key is already registered.
    pub fn insert_new(&mut self, meta: TensorMeta, signature: Signature) -> &mut Tensor {
        let key = meta.key;
        let prev = self.tensors.insert(key, Tensor::new(meta, signature));
        assert!(prev.is_none(), "tensor {key} registered twice");
        self.tensors.get_mut(&key).expect("just inserted")
    }

    /// Looks up a tensor.
    pub fn get(&self, key: TensorKey) -> Option<&Tensor> {
        self.tensors.get(&key)
    }

    /// Looks up a tensor mutably.
    pub fn get_mut(&mut self, key: TensorKey) -> Option<&mut Tensor> {
        self.tensors.get_mut(&key)
    }

    /// Removes a tensor, returning it.
    pub fn remove(&mut self, key: TensorKey) -> Option<Tensor> {
        self.tensors.remove(&key)
    }

    /// Iterates over all tensors.
    pub fn iter(&self) -> impl Iterator<Item = &Tensor> {
        self.tensors.values()
    }

    /// Iterates mutably over all tensors.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = &mut Tensor> {
        self.tensors.values_mut()
    }

    /// Drops all non-persistent tensors (end of iteration), keeping weights.
    pub fn retain_persistent(&mut self) {
        self.tensors.retain(|_, t| t.meta.persistent);
    }

    /// Resets per-iteration counters on the surviving tensors.
    pub fn reset_access_counts(&mut self) {
        for t in self.tensors.values_mut() {
            t.access_count = 0;
            t.last_access = Time::ZERO;
        }
    }

    /// Total bytes of tensors currently backed by device memory.
    pub fn device_resident_bytes(&self) -> u64 {
        self.tensors
            .values()
            .filter(|t| t.device.is_some())
            .map(|t| t.size_bytes())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta(key: u64, persistent: bool) -> TensorMeta {
        TensorMeta {
            key: TensorKey(key),
            name: format!("t{key}"),
            shape: Shape::vector(16),
            dtype: DType::F32,
            inputs: vec![],
            op: None,
            op_name: "leaf".into(),
            persistent,
            recomputable: !persistent,
        }
    }

    #[test]
    fn insert_and_lookup() {
        let mut reg = TensorRegistry::new();
        reg.insert_new(meta(1, false), 11);
        reg.insert_new(meta(2, true), 22);
        assert_eq!(reg.len(), 2);
        assert_eq!(reg.get(TensorKey(1)).unwrap().signature, 11);
        assert!(reg.get(TensorKey(3)).is_none());
    }

    #[test]
    #[should_panic(expected = "registered twice")]
    fn duplicate_key_panics() {
        let mut reg = TensorRegistry::new();
        reg.insert_new(meta(1, false), 0);
        reg.insert_new(meta(1, false), 0);
    }

    #[test]
    fn retain_persistent_drops_activations() {
        let mut reg = TensorRegistry::new();
        reg.insert_new(meta(1, false), 0);
        reg.insert_new(meta(2, true), 0);
        reg.retain_persistent();
        assert_eq!(reg.len(), 1);
        assert!(reg.get(TensorKey(2)).is_some());
    }

    #[test]
    fn new_tensor_starts_unmaterialized() {
        let t = Tensor::new(meta(5, false), 99);
        assert_eq!(t.status, TensorStatus::Recompute);
        assert!(!t.on_device());
        assert_eq!(t.access_count, 0);
    }

    #[test]
    fn size_bytes_follows_shape() {
        let t = Tensor::new(meta(5, false), 0);
        assert_eq!(t.size_bytes(), 64);
    }

    #[test]
    fn reset_access_counts_clears() {
        let mut reg = TensorRegistry::new();
        reg.insert_new(meta(1, true), 0);
        reg.get_mut(TensorKey(1)).unwrap().access_count = 5;
        reg.reset_access_counts();
        assert_eq!(reg.get(TensorKey(1)).unwrap().access_count, 0);
    }
}
