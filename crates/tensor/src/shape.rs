//! Tensor shapes and element types.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Element type of a tensor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DType {
    /// 32-bit IEEE float (the paper's training precision).
    F32,
    /// 16-bit IEEE float.
    F16,
    /// 32-bit signed integer (labels, indices).
    I32,
}

impl DType {
    /// Size of one element in bytes.
    pub const fn size_of(self) -> u64 {
        match self {
            DType::F32 | DType::I32 => 4,
            DType::F16 => 2,
        }
    }
}

impl fmt::Display for DType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DType::F32 => "f32",
            DType::F16 => "f16",
            DType::I32 => "i32",
        };
        f.write_str(s)
    }
}

/// A dense tensor shape (row-major, NCHW for images).
///
/// # Examples
///
/// ```
/// use capuchin_tensor::{DType, Shape};
///
/// let s = Shape::nchw(32, 64, 56, 56);
/// assert_eq!(s.elem_count(), 32 * 64 * 56 * 56);
/// assert_eq!(s.size_bytes(DType::F32), s.elem_count() as u64 * 4);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Shape {
    dims: Vec<usize>,
}

impl Shape {
    /// Creates a shape from explicit dimensions.
    pub fn new(dims: Vec<usize>) -> Shape {
        Shape { dims }
    }

    /// A scalar (rank 0).
    pub fn scalar() -> Shape {
        Shape { dims: Vec::new() }
    }

    /// A rank-1 shape.
    pub fn vector(n: usize) -> Shape {
        Shape { dims: vec![n] }
    }

    /// A rank-2 shape.
    pub fn matrix(rows: usize, cols: usize) -> Shape {
        Shape {
            dims: vec![rows, cols],
        }
    }

    /// A batched image shape in NCHW layout.
    pub fn nchw(n: usize, c: usize, h: usize, w: usize) -> Shape {
        Shape {
            dims: vec![n, c, h, w],
        }
    }

    /// The dimensions.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.dims.len()
    }

    /// Dimension `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= rank`.
    pub fn dim(&self, i: usize) -> usize {
        self.dims[i]
    }

    /// Total number of elements.
    pub fn elem_count(&self) -> usize {
        self.dims.iter().product()
    }

    /// Total size in bytes for elements of `dtype`.
    pub fn size_bytes(&self, dtype: DType) -> u64 {
        self.elem_count() as u64 * dtype.size_of()
    }

    /// Returns a copy with dimension `i` replaced by `v`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= rank`.
    pub fn with_dim(&self, i: usize, v: usize) -> Shape {
        let mut dims = self.dims.clone();
        dims[i] = v;
        Shape { dims }
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, d) in self.dims.iter().enumerate() {
            if i > 0 {
                write!(f, "x")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, "]")
    }
}

impl From<Vec<usize>> for Shape {
    fn from(dims: Vec<usize>) -> Shape {
        Shape::new(dims)
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Shape {
        Shape::new(dims.to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn elem_count_and_bytes() {
        let s = Shape::nchw(2, 3, 4, 5);
        assert_eq!(s.elem_count(), 120);
        assert_eq!(s.size_bytes(DType::F32), 480);
        assert_eq!(s.size_bytes(DType::F16), 240);
    }

    #[test]
    fn scalar_has_one_element() {
        assert_eq!(Shape::scalar().elem_count(), 1);
        assert_eq!(Shape::scalar().rank(), 0);
    }

    #[test]
    fn display_format() {
        assert_eq!(Shape::matrix(3, 7).to_string(), "[3x7]");
        assert_eq!(Shape::scalar().to_string(), "[]");
    }

    #[test]
    fn with_dim_replaces() {
        let s = Shape::nchw(1, 2, 3, 4).with_dim(0, 9);
        assert_eq!(s.dims(), &[9, 2, 3, 4]);
    }
}
