//! Content signatures.
//!
//! The paper argues that swap and recomputation "do not affect training
//! accuracy" because both re-produce bit-identical tensor contents. Instead
//! of simulating arithmetic, every tensor here carries a deterministic
//! 64-bit *content signature*: a leaf tensor's signature is derived from a
//! seed, and an operation's output signature is a hash of the operation tag,
//! its attributes, and its input signatures. The executor asserts the
//! expected signature at every access, which turns "memory management never
//! corrupts data" into a machine-checked invariant — a swap must preserve
//! the signature and a recomputation must regenerate it.

/// A tensor content signature.
pub type Signature = u64;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a over a byte slice.
fn fnv1a(mut state: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        state ^= u64::from(b);
        state = state.wrapping_mul(FNV_PRIME);
    }
    state
}

/// Signature of a leaf tensor (graph input, weight) derived from a seed.
///
/// # Examples
///
/// ```
/// use capuchin_tensor::sig;
///
/// let a = sig::leaf("conv1/weight", 0);
/// let b = sig::leaf("conv1/weight", 1);
/// assert_ne!(a, b);
/// assert_eq!(a, sig::leaf("conv1/weight", 0));
/// ```
pub fn leaf(name: &str, seed: u64) -> Signature {
    let state = fnv1a(FNV_OFFSET, name.as_bytes());
    fnv1a(state, &seed.to_le_bytes())
}

/// Signature of an operation output: combines the op tag, an attribute
/// hash, the output index, and all input signatures, order-sensitively.
///
/// # Examples
///
/// ```
/// use capuchin_tensor::sig;
///
/// let x = sig::leaf("x", 0);
/// let w = sig::leaf("w", 0);
/// let y = sig::op("conv2d", 42, 0, &[x, w]);
/// // Deterministic and order-sensitive:
/// assert_eq!(y, sig::op("conv2d", 42, 0, &[x, w]));
/// assert_ne!(y, sig::op("conv2d", 42, 0, &[w, x]));
/// ```
pub fn op(op_tag: &str, attr_hash: u64, output_index: usize, inputs: &[Signature]) -> Signature {
    let mut state = fnv1a(FNV_OFFSET, op_tag.as_bytes());
    state = fnv1a(state, &attr_hash.to_le_bytes());
    state = fnv1a(state, &(output_index as u64).to_le_bytes());
    for input in inputs {
        state = fnv1a(state, &input.to_le_bytes());
    }
    state
}

/// Hashes a sequence of attribute words into a single attribute hash.
pub fn attrs(words: &[u64]) -> u64 {
    let mut state = FNV_OFFSET;
    for w in words {
        state = fnv1a(state, &w.to_le_bytes());
    }
    state
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leaf_varies_with_name_and_seed() {
        assert_ne!(leaf("a", 0), leaf("b", 0));
        assert_ne!(leaf("a", 0), leaf("a", 1));
    }

    #[test]
    fn op_depends_on_everything() {
        let base = op("matmul", 1, 0, &[10, 20]);
        assert_ne!(base, op("matmul2", 1, 0, &[10, 20]));
        assert_ne!(base, op("matmul", 2, 0, &[10, 20]));
        assert_ne!(base, op("matmul", 1, 1, &[10, 20]));
        assert_ne!(base, op("matmul", 1, 0, &[10, 21]));
        assert_ne!(base, op("matmul", 1, 0, &[10]));
    }

    #[test]
    fn attrs_are_order_sensitive() {
        assert_ne!(attrs(&[1, 2]), attrs(&[2, 1]));
        assert_eq!(attrs(&[]), attrs(&[]));
    }
}
