//! # capuchin-tensor — tensor identity, state, lineage, and signatures
//!
//! The data structures behind Capuchin's tensor-granularity bookkeeping:
//!
//! * [`TensorKey`] — a stable per-tensor id valid across iterations (§5.2);
//! * [`TensorStatus`] — the paper's five residency states;
//! * [`TensorMeta`]/[`Tensor`] — the extended `Tensor` structure of
//!   Listing 1, including the lineage (`inputs`, producing op) that powers
//!   on-the-fly recomputation;
//! * [`TensorAccess`] — one element of the tensor access list;
//! * [`sig`] — deterministic content signatures that make "memory
//!   management never corrupts tensor contents" a checkable invariant.
//!
//! ```
//! use capuchin_tensor::{sig, DType, Shape, TensorKey, TensorMeta, TensorRegistry};
//!
//! let mut reg = TensorRegistry::new();
//! let w = TensorKey(0);
//! reg.insert_new(
//!     TensorMeta {
//!         key: w,
//!         name: "fc/weight".into(),
//!         shape: Shape::matrix(1024, 1024),
//!         dtype: DType::F32,
//!         inputs: vec![],
//!         op: None,
//!         op_name: "weight".into(),
//!         persistent: true,
//!         recomputable: false,
//!     },
//!     sig::leaf("fc/weight", 0),
//! );
//! assert!(reg.get(w).unwrap().meta.persistent);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod shape;
pub mod sig;
mod tensor;

pub use shape::{DType, Shape};
pub use sig::Signature;
pub use tensor::{
    AccessKind, OpHandle, Tensor, TensorAccess, TensorKey, TensorMeta, TensorRegistry, TensorStatus,
};
