//! Property tests for the device allocator: arbitrary interleavings of
//! allocations and frees must preserve the arena invariants (chunks tile the
//! space, coalescing is eager, accounting matches) and never hand out
//! overlapping regions.

use capuchin_mem::{Allocation, DeviceAllocator, ALIGNMENT};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Cmd {
    /// Allocate this many bytes.
    Alloc(u64),
    /// Free the live allocation at this (wrapped) index.
    Free(usize),
}

fn cmds() -> impl Strategy<Value = Vec<Cmd>> {
    prop::collection::vec(
        prop_oneof![
            3 => (1u64..200_000).prop_map(Cmd::Alloc),
            2 => any::<usize>().prop_map(Cmd::Free),
        ],
        1..200,
    )
}

fn overlaps(a: &Allocation, b: &Allocation) -> bool {
    a.offset() < b.offset() + b.size() && b.offset() < a.offset() + a.size()
}

proptest! {
    #[test]
    fn random_alloc_free_preserves_invariants(script in cmds()) {
        let mut dev = DeviceAllocator::new(1 << 20);
        let mut live: Vec<Allocation> = Vec::new();
        let mut expected_in_use = 0u64;

        for cmd in script {
            match cmd {
                Cmd::Alloc(size) => {
                    match dev.alloc(size) {
                        Ok(a) => {
                            prop_assert!(a.size() >= size);
                            prop_assert_eq!(a.size() % ALIGNMENT, 0);
                            for other in &live {
                                prop_assert!(!overlaps(&a, other),
                                    "overlap: {:?} vs {:?}", a, other);
                            }
                            expected_in_use += a.size();
                            live.push(a);
                        }
                        Err(err) => {
                            // OOM must be honest: the request truly exceeds
                            // the largest contiguous free region.
                            prop_assert!(err.largest_free < size.div_ceil(ALIGNMENT) * ALIGNMENT);
                        }
                    }
                }
                Cmd::Free(idx) => {
                    if !live.is_empty() {
                        let a = live.swap_remove(idx % live.len());
                        expected_in_use -= a.size();
                        dev.free(a).unwrap();
                    }
                }
            }
            prop_assert_eq!(dev.in_use(), expected_in_use);
            if let Err(msg) = dev.check_invariants() {
                prop_assert!(false, "invariant violated: {}", msg);
            }
        }

        // Draining everything restores a pristine arena.
        for a in live.drain(..) {
            dev.free(a).unwrap();
        }
        prop_assert_eq!(dev.in_use(), 0);
        prop_assert_eq!(dev.largest_free(), dev.capacity());
        prop_assert!(dev.check_invariants().is_ok());
    }

    #[test]
    fn full_then_empty_cycles(sizes in prop::collection::vec(1u64..50_000, 1..64)) {
        let mut dev = DeviceAllocator::new(1 << 20);
        for _cycle in 0..3 {
            let mut live = Vec::new();
            for &s in &sizes {
                if let Ok(a) = dev.alloc(s) {
                    live.push(a);
                }
            }
            for a in live {
                dev.free(a).unwrap();
            }
            prop_assert_eq!(dev.largest_free(), dev.capacity());
        }
    }
}
