//! Best-fit-with-coalescing device allocator.
//!
//! TensorFlow manages GPU memory with its BFC ("best-fit with coalescing")
//! allocator layered over `cudaMalloc`; Capuchin extends that allocator with
//! `SwapOut`/`SwapIn` entry points (paper §5.1). This module reimplements
//! the allocator core: aligned chunks carved from one arena, a size-ordered
//! free index for best-fit search, chunk splitting, and eager coalescing of
//! free neighbours. Fragmentation therefore behaves like the real thing,
//! which matters for the maximum-batch-size experiments (Tables 2 and 3).

use std::collections::BTreeMap;
use std::collections::BTreeSet;
use std::fmt;

use serde::{Deserialize, Serialize};

/// Allocation granularity; TF's BFC allocator uses 256-byte alignment.
pub const ALIGNMENT: u64 = 256;

/// Unique identity of one live allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct AllocId(u64);

impl fmt::Display for AllocId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "alloc#{}", self.0)
    }
}

/// A live region of device memory.
///
/// The token is `Copy`; the allocator validates it on [`DeviceAllocator::free`],
/// so a stale or forged token is rejected rather than corrupting the arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Allocation {
    id: AllocId,
    offset: u64,
    size: u64,
}

impl Allocation {
    /// Identity of the allocation.
    pub fn id(&self) -> AllocId {
        self.id
    }

    /// Byte offset of the region within the arena.
    pub fn offset(&self) -> u64 {
        self.offset
    }

    /// Size of the region in bytes (rounded up to [`ALIGNMENT`]).
    pub fn size(&self) -> u64 {
        self.size
    }
}

/// Why an allocation failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct OomError {
    /// Bytes requested (after alignment rounding).
    pub requested: u64,
    /// Total free bytes in the arena at the time of failure.
    pub free_total: u64,
    /// Largest contiguous free region; `requested > largest_free` means the
    /// failure may be due to fragmentation rather than sheer occupancy.
    pub largest_free: u64,
}

impl fmt::Display for OomError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "out of device memory: requested {} B, {} B free ({} B largest contiguous)",
            self.requested, self.free_total, self.largest_free
        )
    }
}

impl std::error::Error for OomError {}

/// Why a free failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InvalidAllocation {
    id: AllocId,
}

impl fmt::Display for InvalidAllocation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} is not a live allocation", self.id)
    }
}

impl std::error::Error for InvalidAllocation {}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ChunkState {
    Free,
    InUse(AllocId),
}

#[derive(Debug, Clone, Copy)]
struct Chunk {
    size: u64,
    state: ChunkState,
}

/// Allocator statistics, cheap to copy out for reporting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DeviceMemStats {
    /// Bytes currently allocated.
    pub in_use: u64,
    /// High-water mark of `in_use` over the allocator's lifetime.
    pub peak_in_use: u64,
    /// Number of successful allocations.
    pub allocs: u64,
    /// Number of frees.
    pub frees: u64,
    /// Number of allocation attempts that returned [`OomError`].
    pub failed_allocs: u64,
}

/// A best-fit-with-coalescing arena allocator over a fixed-size device memory.
///
/// # Examples
///
/// ```
/// use capuchin_mem::DeviceAllocator;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut dev = DeviceAllocator::new(1 << 20);
/// let a = dev.alloc(1000)?;
/// let b = dev.alloc(2000)?;
/// dev.free(a)?;
/// assert!(dev.free_total() > 0);
/// dev.free(b)?;
/// assert_eq!(dev.in_use(), 0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct DeviceAllocator {
    capacity: u64,
    /// Offsets at or above this boundary form the *reserved region* served
    /// only by [`DeviceAllocator::alloc_high`]; chunks never coalesce
    /// across it. Defaults to `capacity` (no reservation).
    boundary: u64,
    chunks: BTreeMap<u64, Chunk>,
    /// Free chunks indexed by `(size, offset)` for best-fit retrieval.
    free_index: BTreeSet<(u64, u64)>,
    live: BTreeMap<AllocId, u64>,
    next_id: u64,
    stats: DeviceMemStats,
}

impl DeviceAllocator {
    /// Creates an allocator over `capacity` bytes of device memory.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: u64) -> DeviceAllocator {
        DeviceAllocator::with_reserved(capacity, 0)
    }

    /// Creates an allocator whose top `reserved` bytes form a segregated
    /// pool served only by [`DeviceAllocator::alloc_high`] — the classic
    /// pool-separation defence against fragmentation from long-lived
    /// buffers. `reserved` is clamped to the capacity.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn with_reserved(capacity: u64, reserved: u64) -> DeviceAllocator {
        assert!(capacity > 0, "device capacity must be non-zero");
        let capacity = capacity / ALIGNMENT * ALIGNMENT;
        let reserved = (reserved.min(capacity)).div_ceil(ALIGNMENT) * ALIGNMENT;
        let boundary = capacity - reserved;
        let mut chunks = BTreeMap::new();
        let mut free_index = BTreeSet::new();
        if boundary > 0 {
            chunks.insert(
                0,
                Chunk {
                    size: boundary,
                    state: ChunkState::Free,
                },
            );
            free_index.insert((boundary, 0));
        }
        if reserved > 0 {
            chunks.insert(
                boundary,
                Chunk {
                    size: reserved,
                    state: ChunkState::Free,
                },
            );
            free_index.insert((reserved, boundary));
        }
        DeviceAllocator {
            capacity,
            boundary,
            chunks,
            free_index,
            live: BTreeMap::new(),
            next_id: 0,
            stats: DeviceMemStats::default(),
        }
    }

    /// Total arena size in bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Bytes currently allocated.
    pub fn in_use(&self) -> u64 {
        self.stats.in_use
    }

    /// Bytes currently free (possibly fragmented).
    pub fn free_total(&self) -> u64 {
        self.capacity - self.stats.in_use
    }

    /// Largest contiguous free region, i.e. the largest request that can
    /// currently succeed.
    pub fn largest_free(&self) -> u64 {
        self.free_index.iter().next_back().map_or(0, |&(s, _)| s)
    }

    /// Location of the largest contiguous free region as `(offset, size)`.
    pub fn largest_free_region(&self) -> Option<(u64, u64)> {
        self.free_index.iter().next_back().map(|&(s, o)| (o, s))
    }

    /// All free regions as `(offset, size)`, largest first.
    pub fn free_regions(&self) -> Vec<(u64, u64)> {
        self.free_index.iter().rev().map(|&(s, o)| (o, s)).collect()
    }

    /// The id of the in-use allocation immediately preceding `offset`, if
    /// any (used for eviction-driven hole growing).
    pub fn neighbor_before(&self, offset: u64) -> Option<AllocId> {
        let (_, chunk) = self.chunks.range(..offset).next_back()?;
        match chunk.state {
            ChunkState::InUse(id) => Some(id),
            ChunkState::Free => None,
        }
    }

    /// The id of the in-use allocation starting exactly at `offset`, if
    /// any.
    pub fn neighbor_at(&self, offset: u64) -> Option<AllocId> {
        match self.chunks.get(&offset)?.state {
            ChunkState::InUse(id) => Some(id),
            ChunkState::Free => None,
        }
    }

    /// Snapshot of lifetime statistics.
    pub fn stats(&self) -> DeviceMemStats {
        self.stats
    }

    /// Number of live allocations.
    pub fn live_count(&self) -> usize {
        self.live.len()
    }

    /// Whether a request of `size` bytes would succeed right now.
    pub fn can_alloc(&self, size: u64) -> bool {
        align_up(size) <= self.largest_free()
    }

    /// Allocates `size` bytes (rounded up to [`ALIGNMENT`]).
    ///
    /// # Errors
    ///
    /// Returns [`OomError`] when no contiguous free chunk can hold the
    /// request; the error reports total and largest-contiguous free space so
    /// callers can distinguish fragmentation from exhaustion.
    pub fn alloc(&mut self, size: u64) -> Result<Allocation, OomError> {
        self.alloc_inner(size, false)
    }

    /// Allocates from the *top* of the arena (highest-offset fitting chunk,
    /// carved from its high end). Callers use this to segregate
    /// short-lived or unreclaimable buffers away from the main pool,
    /// mirroring how caching allocators separate pools to curb
    /// fragmentation.
    ///
    /// # Errors
    ///
    /// Returns [`OomError`] like [`DeviceAllocator::alloc`].
    pub fn alloc_high(&mut self, size: u64) -> Result<Allocation, OomError> {
        self.alloc_inner(size, true)
    }

    fn alloc_inner(&mut self, size: u64, high: bool) -> Result<Allocation, OomError> {
        let size = align_up(size);
        let found = if high {
            // Highest-offset fitting chunk within the reserved region (or
            // anywhere when no region is reserved).
            self.free_index
                .iter()
                .filter(|&&(s, o)| {
                    s >= size && (self.boundary == self.capacity || o >= self.boundary)
                })
                .max_by_key(|&&(_, o)| o)
                .copied()
        } else {
            // Best fit among low-region chunks.
            self.free_index
                .range((size, 0)..)
                .find(|&&(_, o)| o < self.boundary || self.boundary == self.capacity)
                .copied()
        };
        let Some((chunk_size, offset)) = found else {
            self.stats.failed_allocs += 1;
            return Err(OomError {
                requested: size,
                free_total: self.free_total(),
                largest_free: self.largest_free(),
            });
        };
        self.free_index.remove(&(chunk_size, offset));
        let id = AllocId(self.next_id);
        self.next_id += 1;
        // Split the chunk if the remainder is at least one alignment unit;
        // high allocations carve from the top so the remainder stays low.
        let remainder = chunk_size - size;
        if remainder >= ALIGNMENT {
            let (used_off, free_off) = if high {
                (offset + remainder, offset)
            } else {
                (offset, offset + size)
            };
            self.chunks.insert(
                used_off,
                Chunk {
                    size,
                    state: ChunkState::InUse(id),
                },
            );
            self.chunks.insert(
                free_off,
                Chunk {
                    size: remainder,
                    state: ChunkState::Free,
                },
            );
            self.free_index.insert((remainder, free_off));
            let offset = used_off;
            let granted = self.chunks[&offset].size;
            self.live.insert(id, offset);
            self.stats.in_use += granted;
            self.stats.peak_in_use = self.stats.peak_in_use.max(self.stats.in_use);
            self.stats.allocs += 1;
            return Ok(Allocation {
                id,
                offset,
                size: granted,
            });
        } else {
            // Hand out the whole chunk (includes any sub-alignment slack).
            self.chunks.insert(
                offset,
                Chunk {
                    size: chunk_size,
                    state: ChunkState::InUse(id),
                },
            );
        }
        let granted = self.chunks[&offset].size;
        self.live.insert(id, offset);
        self.stats.in_use += granted;
        self.stats.peak_in_use = self.stats.peak_in_use.max(self.stats.in_use);
        self.stats.allocs += 1;
        Ok(Allocation {
            id,
            offset,
            size: granted,
        })
    }

    /// Releases an allocation, coalescing with free neighbours.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidAllocation`] if the token does not refer to a live
    /// allocation (e.g. double free).
    pub fn free(&mut self, alloc: Allocation) -> Result<(), InvalidAllocation> {
        let Some(offset) = self.live.remove(&alloc.id) else {
            return Err(InvalidAllocation { id: alloc.id });
        };
        debug_assert_eq!(offset, alloc.offset, "allocation table corrupt");
        let chunk = self.chunks[&offset];
        debug_assert_eq!(chunk.state, ChunkState::InUse(alloc.id));
        self.stats.in_use -= chunk.size;
        self.stats.frees += 1;

        let mut merged_offset = offset;
        let mut merged_size = chunk.size;

        // Coalesce with the previous chunk if free (never across the
        // reserved-region boundary).
        if let Some((&prev_off, &prev)) = self.chunks.range(..offset).next_back() {
            if prev.state == ChunkState::Free
                && prev_off + prev.size == offset
                && offset != self.boundary
            {
                self.free_index.remove(&(prev.size, prev_off));
                self.chunks.remove(&prev_off);
                merged_offset = prev_off;
                merged_size += prev.size;
            }
        }
        // Coalesce with the next chunk if free (never across the boundary).
        let next_off = offset + chunk.size;
        if let Some(&next) = self.chunks.get(&next_off) {
            if next.state == ChunkState::Free && next_off != self.boundary {
                self.free_index.remove(&(next.size, next_off));
                self.chunks.remove(&next_off);
                merged_size += next.size;
            }
        }

        self.chunks.remove(&offset);
        self.chunks.insert(
            merged_offset,
            Chunk {
                size: merged_size,
                state: ChunkState::Free,
            },
        );
        self.free_index.insert((merged_size, merged_offset));
        Ok(())
    }

    /// Verifies internal invariants; used by tests and `debug_assert!`s.
    ///
    /// Checks that chunks tile the arena exactly, that no two free chunks
    /// are adjacent (coalescing is eager), and that the free index matches
    /// the chunk table.
    pub fn check_invariants(&self) -> Result<(), String> {
        let mut cursor = 0;
        let mut prev_free = false;
        let mut free_total = 0;
        for (&off, chunk) in &self.chunks {
            if off != cursor {
                return Err(format!("gap or overlap at offset {off}, expected {cursor}"));
            }
            cursor += chunk.size;
            match chunk.state {
                ChunkState::Free => {
                    if prev_free && off != self.boundary {
                        return Err(format!("adjacent free chunks at offset {off}"));
                    }
                    if !self.free_index.contains(&(chunk.size, off)) {
                        return Err(format!("free chunk at {off} missing from index"));
                    }
                    free_total += chunk.size;
                    prev_free = true;
                }
                ChunkState::InUse(id) => {
                    if self.live.get(&id) != Some(&off) {
                        return Err(format!("in-use chunk at {off} missing from live table"));
                    }
                    prev_free = false;
                }
            }
        }
        if cursor != self.capacity {
            return Err(format!("chunks cover {cursor} B of {} B", self.capacity));
        }
        if self.free_index.len()
            != self
                .chunks
                .values()
                .filter(|c| c.state == ChunkState::Free)
                .count()
        {
            return Err("free index size mismatch".to_owned());
        }
        if free_total != self.free_total() {
            return Err(format!(
                "free accounting mismatch: chunks say {free_total}, stats say {}",
                self.free_total()
            ));
        }
        Ok(())
    }
}

fn align_up(size: u64) -> u64 {
    size.max(1).div_ceil(ALIGNMENT) * ALIGNMENT
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_rounds_to_alignment() {
        let mut dev = DeviceAllocator::new(1 << 20);
        let a = dev.alloc(1).unwrap();
        assert_eq!(a.size(), ALIGNMENT);
        dev.check_invariants().unwrap();
    }

    #[test]
    fn zero_sized_alloc_gets_one_unit() {
        let mut dev = DeviceAllocator::new(1 << 20);
        let a = dev.alloc(0).unwrap();
        assert_eq!(a.size(), ALIGNMENT);
    }

    #[test]
    fn exhaustion_returns_oom_with_diagnostics() {
        let mut dev = DeviceAllocator::new(4096);
        let _a = dev.alloc(4096).unwrap();
        let err = dev.alloc(256).unwrap_err();
        assert_eq!(err.free_total, 0);
        assert_eq!(err.largest_free, 0);
        assert_eq!(dev.stats().failed_allocs, 1);
    }

    #[test]
    fn free_then_realloc_reuses_space() {
        let mut dev = DeviceAllocator::new(4096);
        let a = dev.alloc(4096).unwrap();
        dev.free(a).unwrap();
        let b = dev.alloc(4096).unwrap();
        assert_eq!(b.offset(), 0);
        dev.check_invariants().unwrap();
    }

    #[test]
    fn double_free_is_rejected() {
        let mut dev = DeviceAllocator::new(4096);
        let a = dev.alloc(256).unwrap();
        dev.free(a).unwrap();
        assert!(dev.free(a).is_err());
    }

    #[test]
    fn best_fit_prefers_smallest_suitable_chunk() {
        let mut dev = DeviceAllocator::new(1 << 20);
        // Carve out [big free][used][small free][used] pattern.
        let a = dev.alloc(8192).unwrap(); // will become big free
        let keep1 = dev.alloc(256).unwrap();
        let b = dev.alloc(512).unwrap(); // will become small free
        let _keep2 = dev.alloc(256).unwrap();
        dev.free(a).unwrap();
        dev.free(b).unwrap();
        dev.check_invariants().unwrap();
        // A 512-byte request should land in the small hole, not the big one.
        let c = dev.alloc(512).unwrap();
        assert_eq!(c.offset(), keep1.offset() + keep1.size());
    }

    #[test]
    fn coalescing_merges_both_neighbours() {
        let mut dev = DeviceAllocator::new(4096);
        let a = dev.alloc(1024).unwrap();
        let b = dev.alloc(1024).unwrap();
        let c = dev.alloc(1024).unwrap();
        dev.free(a).unwrap();
        dev.free(c).unwrap();
        dev.free(b).unwrap(); // merges with both sides + tail
        dev.check_invariants().unwrap();
        assert_eq!(dev.largest_free(), dev.capacity());
        let whole = dev.alloc(4096).unwrap();
        assert_eq!(whole.offset(), 0);
    }

    #[test]
    fn fragmentation_visible_in_oom_error() {
        let mut dev = DeviceAllocator::new(4096);
        let a = dev.alloc(1024).unwrap();
        let _b = dev.alloc(1024).unwrap();
        let c = dev.alloc(1024).unwrap();
        let _d = dev.alloc(1024).unwrap();
        dev.free(a).unwrap();
        dev.free(c).unwrap();
        // 2048 free but split into two 1024 holes.
        let err = dev.alloc(2048).unwrap_err();
        assert_eq!(err.free_total, 2048);
        assert_eq!(err.largest_free, 1024);
    }

    #[test]
    fn peak_tracks_high_water_mark() {
        let mut dev = DeviceAllocator::new(1 << 20);
        let a = dev.alloc(4096).unwrap();
        let b = dev.alloc(4096).unwrap();
        dev.free(a).unwrap();
        dev.free(b).unwrap();
        assert_eq!(dev.stats().peak_in_use, 8192);
        assert_eq!(dev.in_use(), 0);
    }

    #[test]
    fn exact_fit_takes_whole_chunk_without_split() {
        let mut dev = DeviceAllocator::new(4096);
        // 3968 rounds up to 4096, consuming the arena exactly — no split.
        let a = dev.alloc(4096 - 128).unwrap();
        assert_eq!(a.size(), 4096);
        assert_eq!(dev.largest_free(), 0);
        dev.check_invariants().unwrap();
        dev.free(a).unwrap();
        // A request leaving a >= ALIGNMENT remainder does split.
        let b = dev.alloc(3840).unwrap();
        assert_eq!(b.size(), 3840);
        assert_eq!(dev.largest_free(), 256);
        dev.check_invariants().unwrap();
    }

    #[test]
    fn can_alloc_matches_alloc_outcome() {
        let mut dev = DeviceAllocator::new(4096);
        assert!(dev.can_alloc(4096));
        let _a = dev.alloc(2048).unwrap();
        assert!(!dev.can_alloc(4096));
        assert!(dev.can_alloc(2048));
    }
}

#[cfg(test)]
mod high_alloc_tests {
    use super::*;

    #[test]
    fn alloc_high_takes_top_of_arena() {
        let mut dev = DeviceAllocator::new(1 << 20);
        let low = dev.alloc(4096).unwrap();
        let high = dev.alloc_high(4096).unwrap();
        assert_eq!(low.offset(), 0);
        assert_eq!(high.offset() + high.size(), dev.capacity());
        dev.check_invariants().unwrap();
        dev.free(low).unwrap();
        dev.free(high).unwrap();
        assert_eq!(dev.largest_free(), dev.capacity());
    }

    #[test]
    fn segregation_prevents_interleaving_fragmentation() {
        // Alternate long-lived (high) and churning (low) allocations; the
        // churners coalesce into one hole because the long-lived ones are
        // clustered at the top.
        let mut dev = DeviceAllocator::new(1 << 20);
        let mut churn = Vec::new();
        let mut pinned = Vec::new();
        for _ in 0..16 {
            churn.push(dev.alloc(8192).unwrap());
            pinned.push(dev.alloc_high(8192).unwrap());
        }
        for a in churn {
            dev.free(a).unwrap();
        }
        dev.check_invariants().unwrap();
        // All churned space is one contiguous region.
        assert_eq!(dev.largest_free(), dev.capacity() - 16 * 8192);
    }
}
