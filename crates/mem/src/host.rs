//! Host (CPU DRAM) staging pool.
//!
//! Swapped-out tensors land in pinned host memory. Host DRAM is two orders
//! of magnitude larger than device memory on the paper's testbed (256 GB vs
//! 16 GB), so the pool is modeled as simple size accounting with a capacity
//! check — there is no fragmentation concern for pinned staging buffers,
//! which are allocated per-tensor and freed on swap-in completion.

use std::collections::HashMap;
use std::fmt;

use serde::{Deserialize, Serialize};

/// Identity of one live host buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct HostAllocId(u64);

impl fmt::Display for HostAllocId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "host#{}", self.0)
    }
}

/// Error returned when the host pool is exhausted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HostOomError {
    /// Bytes requested.
    pub requested: u64,
    /// Bytes available.
    pub available: u64,
}

impl fmt::Display for HostOomError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "out of host memory: requested {} B, {} B available",
            self.requested, self.available
        )
    }
}

impl std::error::Error for HostOomError {}

/// A counting allocator for pinned host staging buffers.
///
/// # Examples
///
/// ```
/// use capuchin_mem::HostPool;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut host = HostPool::new(1 << 30);
/// let buf = host.alloc(4096)?;
/// assert_eq!(host.in_use(), 4096);
/// host.free(buf);
/// assert_eq!(host.in_use(), 0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct HostPool {
    capacity: u64,
    in_use: u64,
    peak_in_use: u64,
    live: HashMap<HostAllocId, u64>,
    next_id: u64,
}

impl HostPool {
    /// Creates a pool of `capacity` bytes.
    pub fn new(capacity: u64) -> HostPool {
        HostPool {
            capacity,
            in_use: 0,
            peak_in_use: 0,
            live: HashMap::new(),
            next_id: 0,
        }
    }

    /// The paper's testbed: 256 GB of host DRAM.
    pub fn testbed() -> HostPool {
        HostPool::new(256 * (1 << 30))
    }

    /// Total pool size in bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Bytes currently pinned.
    pub fn in_use(&self) -> u64 {
        self.in_use
    }

    /// High-water mark of pinned bytes.
    pub fn peak_in_use(&self) -> u64 {
        self.peak_in_use
    }

    /// Number of live buffers.
    pub fn live_count(&self) -> usize {
        self.live.len()
    }

    /// Bytes still available for staging (`capacity − in_use`).
    pub fn available(&self) -> u64 {
        self.capacity - self.in_use
    }

    /// Pins a staging buffer of `size` bytes.
    ///
    /// # Errors
    ///
    /// Returns [`HostOomError`] when the pool is exhausted (checked
    /// arithmetic: a pathological request near `u64::MAX` must OOM, not
    /// wrap past the capacity check).
    pub fn alloc(&mut self, size: u64) -> Result<HostAllocId, HostOomError> {
        if self
            .in_use
            .checked_add(size)
            .is_none_or(|total| total > self.capacity)
        {
            return Err(HostOomError {
                requested: size,
                available: self.available(),
            });
        }
        let id = HostAllocId(self.next_id);
        self.next_id += 1;
        self.live.insert(id, size);
        self.in_use += size;
        self.peak_in_use = self.peak_in_use.max(self.in_use);
        Ok(id)
    }

    /// Unpins a buffer. Unknown ids are ignored (frees are idempotent for
    /// the host pool, which only does accounting).
    pub fn free(&mut self, id: HostAllocId) {
        if let Some(size) = self.live.remove(&id) {
            self.in_use -= size;
        }
    }

    /// Size of a live buffer, if it exists.
    pub fn size_of(&self, id: HostAllocId) -> Option<u64> {
        self.live.get(&id).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accounting_roundtrip() {
        let mut pool = HostPool::new(10_000);
        let a = pool.alloc(6_000).unwrap();
        let b = pool.alloc(4_000).unwrap();
        assert_eq!(pool.in_use(), 10_000);
        assert!(pool.alloc(1).is_err());
        pool.free(a);
        assert_eq!(pool.in_use(), 4_000);
        assert_eq!(pool.size_of(b), Some(4_000));
        pool.free(b);
        assert_eq!(pool.live_count(), 0);
        assert_eq!(pool.peak_in_use(), 10_000);
    }

    #[test]
    fn double_free_is_harmless() {
        let mut pool = HostPool::new(100);
        let a = pool.alloc(50).unwrap();
        pool.free(a);
        pool.free(a);
        assert_eq!(pool.in_use(), 0);
    }

    #[test]
    fn oom_reports_available() {
        let mut pool = HostPool::new(100);
        let _ = pool.alloc(80).unwrap();
        let err = pool.alloc(40).unwrap_err();
        assert_eq!(err.available, 20);
        assert_eq!(err.requested, 40);
        assert_eq!(pool.available(), 20);
    }

    #[test]
    fn pathological_request_cannot_wrap_the_capacity_check() {
        let mut pool = HostPool::new(100);
        let _ = pool.alloc(80).unwrap();
        assert!(pool.alloc(u64::MAX - 50).is_err());
        assert_eq!(pool.in_use(), 80);
    }
}
