//! # capuchin-mem — device and host memory allocators
//!
//! Reimplementation of the allocator substrate Capuchin plugs into
//! (paper §5.1, "Allocator"): a best-fit-with-coalescing arena allocator
//! for device memory, modeled on TensorFlow's BFC allocator, plus a pinned
//! host staging pool for swapped-out tensors.
//!
//! The allocator is deliberately realistic about fragmentation: chunk
//! splitting, eager coalescing, and best-fit search reproduce the conditions
//! under which the paper's maximum-batch-size numbers were measured.
//!
//! ```
//! use capuchin_mem::{DeviceAllocator, HostPool};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut dev = DeviceAllocator::new(16 * (1 << 30));
//! let tensor = dev.alloc(64 << 20)?;
//! // Evict: move the bytes to a pinned host buffer, free the device region.
//! let mut host = HostPool::testbed();
//! let staged = host.alloc(tensor.size())?;
//! dev.free(tensor)?;
//! # let _ = staged;
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod device;
mod host;

pub use device::{
    AllocId, Allocation, DeviceAllocator, DeviceMemStats, InvalidAllocation, OomError, ALIGNMENT,
};
pub use host::{HostAllocId, HostOomError, HostPool};
