//! Checkpoint/resume: a run interrupted at an iteration boundary and
//! resumed in a fresh engine (via `Engine::snapshot` / `Engine::restore`)
//! must replay the remaining iterations exactly as the uninterrupted run
//! would have — same walls, same memory traffic, same recomputes. This is
//! the invariant the cluster scheduler's checkpoint-preemption relies on:
//! a preempted job's recorded per-iteration walls stay valid after resume.

use capuchin::Capuchin;
use capuchin_executor::{Engine, EngineConfig, IterStats, MemoryPolicy, TfOri};
use capuchin_models::ModelKind;
use capuchin_sim::DeviceSpec;

fn fingerprint(stats: &[IterStats]) -> Vec<(u64, u64, u64, u64, u64, u64)> {
    stats
        .iter()
        .map(|it| {
            (
                it.iter,
                it.wall().as_nanos(),
                it.peak_mem,
                it.swap_out_bytes,
                it.recompute_kernels,
                it.stall_time.as_nanos(),
            )
        })
        .collect()
}

fn straight_vs_resumed(mem: u64, policy_factory: impl Fn() -> Box<dyn MemoryPolicy>) {
    let model = ModelKind::ResNet50.build(16);
    let cfg = EngineConfig {
        spec: DeviceSpec::p100_pcie3().with_memory(mem),
        ..EngineConfig::default()
    };

    let mut straight = Engine::new(&model.graph, cfg.clone(), policy_factory());
    let full = straight.run(6).expect("uninterrupted run fits");

    let mut first = Engine::new(&model.graph, cfg.clone(), policy_factory());
    first.run(3).expect("first half fits");
    let checkpoint = first.snapshot();
    drop(first);

    let mut second = Engine::new(&model.graph, cfg, policy_factory());
    second.restore(checkpoint).expect("restore fits");
    let resumed = second.run(3).expect("resumed half fits");

    assert_eq!(
        fingerprint(&full.iters[3..]),
        fingerprint(&resumed.iters),
        "resumed iterations diverged from the uninterrupted run"
    );
}

#[test]
fn capuchin_resume_matches_uninterrupted_run() {
    // Tight enough that the plan actively swaps/recomputes: the snapshot
    // must carry the plan + profile for the resumed half to match.
    straight_vs_resumed(1200 << 20, || Box::new(Capuchin::new()));
}

#[test]
fn tf_ori_resume_matches_uninterrupted_run() {
    // Stateless policy: snapshot carries only the iteration cursor.
    straight_vs_resumed(4 << 30, || Box::new(TfOri::new()));
}

/// The engine half of elastic re-batching: a checkpoint taken at one
/// batch size restores into a fresh engine built at a *different* batch —
/// only the iteration cursor survives; the policy deliberately starts
/// fresh (the old profile and plan describe the old batch's tensors) and
/// re-measures at the new shape. The resumed iterations must therefore
/// behave exactly like a fresh run at the new batch, just numbered from
/// the saved cursor.
#[test]
fn rebatched_restore_resumes_cursor_and_replans_at_new_batch() {
    let small = ModelKind::ResNet50.build(16);
    let big = ModelKind::ResNet50.build(32);
    // Tight enough that the grown batch (ideal peak ≈ 2.5 GiB) cannot run
    // unplanned: the resumed engine must actually re-measure and re-plan.
    let cfg = EngineConfig {
        spec: DeviceSpec::p100_pcie3().with_memory(2 << 30),
        ..EngineConfig::default()
    };

    let mut first = Engine::new(&small.graph, cfg.clone(), Box::new(Capuchin::new()));
    first.run(3).expect("first half fits");
    let checkpoint = first.snapshot();
    drop(first);

    let mut regrown = Engine::new(&big.graph, cfg.clone(), Box::new(Capuchin::new()));
    regrown
        .restore_rebatched(checkpoint)
        .expect("weights fit at the new batch");
    let resumed = regrown.run(3).expect("resumed half fits");

    // The cursor continued where the old batch stopped — and the first
    // resumed iteration re-ran measured execution at the new shape.
    let numbers: Vec<u64> = resumed.iters.iter().map(|it| it.iter).collect();
    assert_eq!(numbers, vec![3, 4, 5]);

    // The guided iterations match a fresh engine at the new batch, wall
    // for wall: the re-measured plan is the plan a fresh run derives.
    let mut fresh = Engine::new(&big.graph, cfg, Box::new(Capuchin::new()));
    let baseline = fresh.run(4).expect("fresh run fits");
    let strip = |stats: &[IterStats]| {
        fingerprint(stats)
            .iter()
            .map(|f| (f.1, f.2, f.3, f.4, f.5))
            .collect::<Vec<_>>()
    };
    assert_eq!(
        strip(&resumed.iters[1..]),
        strip(&baseline.iters[2..4]),
        "rebatched guided iterations diverged from a fresh run at the new batch"
    );
}

#[test]
fn restore_into_used_engine_panics() {
    let model = ModelKind::ResNet50.build(4);
    let cfg = EngineConfig {
        spec: DeviceSpec::p100_pcie3(),
        ..EngineConfig::default()
    };
    let mut eng = Engine::new(&model.graph, cfg.clone(), Box::new(TfOri::new()));
    eng.run(1).expect("fits");
    let snap = eng.snapshot();
    let mut used = Engine::new(&model.graph, cfg, Box::new(TfOri::new()));
    used.run(1).expect("fits");
    let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| used.restore(snap)));
    assert!(err.is_err(), "restore into a mid-run engine must panic");
}
