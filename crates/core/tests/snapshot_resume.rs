//! Checkpoint/resume: a run interrupted at an iteration boundary and
//! resumed in a fresh engine (via `Engine::snapshot` / `Engine::restore`)
//! must replay the remaining iterations exactly as the uninterrupted run
//! would have — same walls, same memory traffic, same recomputes. This is
//! the invariant the cluster scheduler's checkpoint-preemption relies on:
//! a preempted job's recorded per-iteration walls stay valid after resume.

use capuchin::Capuchin;
use capuchin_executor::{Engine, EngineConfig, IterStats, MemoryPolicy, TfOri};
use capuchin_models::ModelKind;
use capuchin_sim::DeviceSpec;

fn fingerprint(stats: &[IterStats]) -> Vec<(u64, u64, u64, u64, u64, u64)> {
    stats
        .iter()
        .map(|it| {
            (
                it.iter,
                it.wall().as_nanos(),
                it.peak_mem,
                it.swap_out_bytes,
                it.recompute_kernels,
                it.stall_time.as_nanos(),
            )
        })
        .collect()
}

fn straight_vs_resumed(mem: u64, policy_factory: impl Fn() -> Box<dyn MemoryPolicy>) {
    let model = ModelKind::ResNet50.build(16);
    let cfg = EngineConfig {
        spec: DeviceSpec::p100_pcie3().with_memory(mem),
        ..EngineConfig::default()
    };

    let mut straight = Engine::new(&model.graph, cfg.clone(), policy_factory());
    let full = straight.run(6).expect("uninterrupted run fits");

    let mut first = Engine::new(&model.graph, cfg.clone(), policy_factory());
    first.run(3).expect("first half fits");
    let checkpoint = first.snapshot();
    drop(first);

    let mut second = Engine::new(&model.graph, cfg, policy_factory());
    second.restore(checkpoint).expect("restore fits");
    let resumed = second.run(3).expect("resumed half fits");

    assert_eq!(
        fingerprint(&full.iters[3..]),
        fingerprint(&resumed.iters),
        "resumed iterations diverged from the uninterrupted run"
    );
}

#[test]
fn capuchin_resume_matches_uninterrupted_run() {
    // Tight enough that the plan actively swaps/recomputes: the snapshot
    // must carry the plan + profile for the resumed half to match.
    straight_vs_resumed(1200 << 20, || Box::new(Capuchin::new()));
}

#[test]
fn tf_ori_resume_matches_uninterrupted_run() {
    // Stateless policy: snapshot carries only the iteration cursor.
    straight_vs_resumed(4 << 30, || Box::new(TfOri::new()));
}

#[test]
fn restore_into_used_engine_panics() {
    let model = ModelKind::ResNet50.build(4);
    let cfg = EngineConfig {
        spec: DeviceSpec::p100_pcie3(),
        ..EngineConfig::default()
    };
    let mut eng = Engine::new(&model.graph, cfg.clone(), Box::new(TfOri::new()));
    eng.run(1).expect("fits");
    let snap = eng.snapshot();
    let mut used = Engine::new(&model.graph, cfg, Box::new(TfOri::new()));
    used.run(1).expect("fits");
    let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| used.restore(snap)));
    assert!(err.is_err(), "restore into a mid-run engine must panic");
}
