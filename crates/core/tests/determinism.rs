//! Determinism: two identical runs must produce byte-identical behaviour,
//! for every policy, including under memory pressure. This pins down the
//! HashMap-iteration-order class of bugs (a plan that differs between runs
//! makes every experiment unreproducible) and underwrites Fig. 3.

use capuchin::{make_plan, Capuchin, PlannerConfig};
use capuchin_baselines::{CheckpointMode, GradientCheckpointing, LruSwap, Vdnn};
use capuchin_executor::{Engine, EngineConfig, IterStats, MemoryPolicy};
use capuchin_models::ModelKind;
use capuchin_sim::DeviceSpec;

fn fingerprint(stats: &[IterStats]) -> Vec<(u64, u64, u64, u64, u64)> {
    stats
        .iter()
        .map(|it| {
            (
                it.wall().as_nanos(),
                it.peak_mem,
                it.swap_out_bytes,
                it.recompute_kernels,
                it.stall_time.as_nanos(),
            )
        })
        .collect()
}

fn run_twice(policy_factory: impl Fn(&capuchin_graph::Graph) -> Box<dyn MemoryPolicy>) {
    let model = ModelKind::ResNet50.build(16);
    let cfg = EngineConfig {
        spec: DeviceSpec::p100_pcie3().with_memory(1200 << 20),
        ..EngineConfig::default()
    };
    let mut runs = Vec::new();
    for _ in 0..2 {
        let mut eng = Engine::new(&model.graph, cfg.clone(), policy_factory(&model.graph));
        let stats = eng.run(8).expect("fits with management");
        runs.push(fingerprint(&stats.iters));
    }
    assert_eq!(runs[0], runs[1], "two identical runs diverged");
}

#[test]
fn capuchin_runs_are_reproducible() {
    run_twice(|_| Box::new(Capuchin::new()));
}

#[test]
fn vdnn_runs_are_reproducible() {
    run_twice(|g| Box::new(Vdnn::from_graph(g)));
}

#[test]
fn checkpointing_runs_are_reproducible() {
    run_twice(|g| Box::new(GradientCheckpointing::from_graph(g, CheckpointMode::Memory)));
}

#[test]
fn lru_runs_are_reproducible() {
    run_twice(|_| Box::new(LruSwap::new()));
}

#[test]
fn plans_are_pure_functions_of_the_profile() {
    // Same profile + config → identical plan, including trigger placement.
    let model = ModelKind::ResNet50.build(16);
    let cfg = EngineConfig {
        spec: DeviceSpec::p100_pcie3().with_memory(1200 << 20),
        ..EngineConfig::default()
    };
    let mut eng = Engine::new(&model.graph, cfg.clone(), Box::new(Capuchin::new()));
    eng.run(2).expect("measured");
    let profile = eng
        .policy()
        .as_any()
        .and_then(|a| a.downcast_ref::<Capuchin>())
        .expect("capuchin")
        .profile()
        .clone();
    let a = make_plan(&profile, &cfg.spec, &PlannerConfig::default());
    let b = make_plan(&profile, &cfg.spec, &PlannerConfig::default());
    assert_eq!(a.evictions, b.evictions);
    assert_eq!(a.in_triggers, b.in_triggers);
    assert_eq!(a.planned_saving, b.planned_saving);
    let mut sa: Vec<_> = a.swaps.iter().collect();
    let mut sb: Vec<_> = b.swaps.iter().collect();
    sa.sort_by_key(|(k, _)| **k);
    sb.sort_by_key(|(k, _)| **k);
    assert_eq!(sa, sb);
}
