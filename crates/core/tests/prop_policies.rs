//! Policy fuzzing: random layer stacks under random memory budgets, run
//! under every policy. The outcome must always be clean — either the run
//! completes (and per-iteration accounting holds) or it fails with an
//! honest OOM. The engine's internal signature assertions additionally
//! guarantee no silent data corruption on any path the fuzzer finds.

use capuchin::{Capuchin, CapuchinConfig};
use capuchin_baselines::{CheckpointMode, GradientCheckpointing, Vdnn};
use capuchin_executor::{Engine, EngineConfig, ExecError, MemoryPolicy};
use capuchin_graph::{Graph, ValueId};
use capuchin_sim::DeviceSpec;
use capuchin_tensor::{DType, Shape};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Layer {
    Conv { ch: usize },
    Relu,
    BatchNorm,
    Pool,
    Dropout,
    Residual,
}

fn layer_strategy() -> impl Strategy<Value = Layer> {
    prop_oneof![
        (4usize..24).prop_map(|ch| Layer::Conv { ch }),
        Just(Layer::Relu),
        Just(Layer::BatchNorm),
        Just(Layer::Pool),
        Just(Layer::Dropout),
        Just(Layer::Residual),
    ]
}

fn build(layers: &[Layer]) -> Graph {
    let mut g = Graph::new("fuzz");
    let x = g.input("x", Shape::nchw(4, 4, 16, 16), DType::F32);
    let labels = g.input("labels", Shape::vector(4), DType::I32);
    let mut h = g.relu("stem", x);
    let mut skip = h;
    for (i, layer) in layers.iter().enumerate() {
        let name = format!("l{i}");
        h = match layer {
            Layer::Conv { ch } => {
                let out = g.conv2d(&name, h, *ch, 3, 1, 1);
                skip = out;
                out
            }
            Layer::Relu => g.relu(&name, h),
            Layer::BatchNorm => g.batch_norm(&name, h),
            Layer::Pool => {
                if g.value(h).shape.dim(2) >= 2 {
                    let out = g.max_pool(&name, h, 2, 2, 0);
                    skip = out;
                    out
                } else {
                    h
                }
            }
            Layer::Dropout => g.dropout(&name, h, 20),
            Layer::Residual => {
                if g.value(skip).shape == g.value(h).shape && skip != h {
                    g.add(&name, h, skip)
                } else {
                    h
                }
            }
        };
    }
    let gap = g.global_avg_pool("gap", h);
    let logits = g.dense("fc", gap, 10);
    let loss: ValueId = g.softmax_cross_entropy("loss", logits, labels);
    capuchin_graph::build_backward(&mut g, loss);
    g
}

fn policies(g: &Graph) -> Vec<Box<dyn MemoryPolicy>> {
    vec![
        Box::new(Capuchin::new()),
        Box::new(Capuchin::with_config(CapuchinConfig::swap_only())),
        Box::new(Capuchin::with_config(CapuchinConfig::recompute_only())),
        Box::new(Vdnn::from_graph(g)),
        Box::new(GradientCheckpointing::from_graph(g, CheckpointMode::Memory)),
        Box::new(GradientCheckpointing::from_graph(g, CheckpointMode::Speed)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn every_policy_is_clean_under_pressure(
        layers in prop::collection::vec(layer_strategy(), 2..16),
        budget_kb in 64u64..4096,
    ) {
        let g = build(&layers);
        let cfg = EngineConfig {
            spec: DeviceSpec::p100_pcie3().with_memory(budget_kb << 10),
            ..EngineConfig::default()
        };
        for policy in policies(&g) {
            let name = policy.name().to_owned();
            let mut eng = Engine::new(&g, cfg.clone(), policy);
            match eng.run(4) {
                Ok(stats) => {
                    prop_assert_eq!(stats.iters.len(), 4);
                    for it in &stats.iters {
                        // Accounting sanity on every completed iteration.
                        prop_assert!(it.ended_at >= it.started_at, "{name}");
                        prop_assert!(it.peak_mem <= cfg.spec.memory_bytes, "{name}");
                        prop_assert!(it.swap_in_bytes <= it.swap_out_bytes + it.swap_in_bytes);
                    }
                    // Iterations 2 and 3 are both steady-state for the
                    // static policies; they must be identical.
                    if name.starts_with("openai") || name == "vdnn" {
                        prop_assert_eq!(
                            stats.iters[2].wall(), stats.iters[3].wall(),
                            "{} not steady", name);
                    }
                }
                Err(ExecError::Oom { .. }) => {} // honest OOM is fine
                Err(other) => prop_assert!(false, "{name}: unexpected {other}"),
            }
        }
    }

    /// Capuchin with ample memory must behave exactly like no policy at
    /// all — byte-for-byte identical iteration stats.
    #[test]
    fn capuchin_is_invisible_without_pressure(
        layers in prop::collection::vec(layer_strategy(), 2..16),
    ) {
        let g = build(&layers);
        let cfg = EngineConfig::default(); // 16 GiB for a toy graph
        let mut a = Engine::new(&g, cfg.clone(), Box::new(capuchin_executor::TfOri::new()));
        let base = a.run(3).unwrap();
        let mut b = Engine::new(&g, cfg, Box::new(Capuchin::new()));
        let cap = b.run(3).unwrap();
        for (x, y) in base.iters.iter().zip(cap.iters.iter()) {
            prop_assert_eq!(x.wall(), y.wall());
            prop_assert_eq!(x.peak_mem, y.peak_mem);
            prop_assert_eq!(y.swap_out_bytes, 0);
            prop_assert_eq!(y.recompute_kernels, 0);
        }
    }
}
