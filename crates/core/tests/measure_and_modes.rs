//! Tests for the measured-execution profile (TAT) and Capuchin's
//! mode/plan lifecycle, observed through the policy's public state.

use capuchin::{Capuchin, CapuchinConfig, EvictMethod};
use capuchin_executor::{Engine, EngineConfig, TfOri};
use capuchin_models::ModelKind;
use capuchin_sim::DeviceSpec;

fn cfg(mem: u64) -> EngineConfig {
    EngineConfig {
        spec: DeviceSpec::p100_pcie3().with_memory(mem),
        ..EngineConfig::default()
    }
}

fn capuchin_after(mem: u64, iters: u64) -> (Engine<'static>, &'static capuchin_graph::Graph) {
    // Leak the graph so the engine can live for the test's duration; fine
    // in tests.
    let model = Box::leak(Box::new(ModelKind::ResNet50.build(8)));
    let mut eng = Engine::new(&model.graph, cfg(mem), Box::new(Capuchin::new()));
    eng.run(iters).expect("runs");
    (eng, &model.graph)
}

fn plan_of(eng: &Engine<'_>) -> capuchin::Plan {
    eng.policy()
        .as_any()
        .and_then(|a| a.downcast_ref::<Capuchin>())
        .expect("capuchin")
        .plan()
        .clone()
}

fn profile_of(eng: &Engine<'_>) -> capuchin::MeasuredProfile {
    eng.policy()
        .as_any()
        .and_then(|a| a.downcast_ref::<Capuchin>())
        .expect("capuchin")
        .profile()
        .clone()
}

#[test]
fn no_plan_before_measured_execution() {
    let (eng, _) = capuchin_after(600 << 20, 1); // only the warm-up iteration
    assert!(plan_of(&eng).is_empty());
    assert!(profile_of(&eng).seq.is_empty());
}

#[test]
fn profile_populated_after_measured_iteration() {
    let (eng, _) = capuchin_after(600 << 20, 2);
    let profile = profile_of(&eng);
    assert!(!profile.seq.is_empty());
    assert!(profile.required_saving > 0, "this budget forces evictions");
    assert!(profile.ideal_peak > 600 << 20, "ideal peak exceeds budget");
    // Ideal times are stall-corrected and monotonically ordered.
    for w in profile.seq.windows(2) {
        assert!(w[0].time <= w[1].time, "measured sequence out of order");
    }
    // Peak window is a valid interval.
    let (w0, w1) = profile.peak_window;
    assert!(w0 <= w1);
}

#[test]
fn plan_triggers_reference_measured_accesses() {
    let (eng, _) = capuchin_after(600 << 20, 3);
    let profile = profile_of(&eng);
    let plan = plan_of(&eng);
    assert!(!plan.is_empty());
    for &(key, count) in plan.evictions.keys() {
        assert!(
            profile.time_of(key, count).is_some(),
            "plan trigger {key}@{count} was never measured"
        );
    }
    // Every swap's in-trigger (if any) precedes its back-access in the
    // measured timeline.
    for (trigger, targets) in &plan.in_triggers {
        let t_trigger = profile.time_of(trigger.0, trigger.1).expect("measured");
        for target in targets {
            let entry = &plan.swaps[target];
            assert!(
                t_trigger <= entry.back_time,
                "in-trigger after back-access for {target}"
            );
        }
    }
    // Saving bookkeeping is self-consistent.
    assert_eq!(
        plan.planned_saving,
        plan.swap_saving + plan.recompute_saving
    );
}

#[test]
fn plan_methods_match_config() {
    let model = ModelKind::ResNet50.build(8);
    for (config, want_swap, want_rec) in [
        (CapuchinConfig::swap_only(), true, false),
        (CapuchinConfig::recompute_only(), false, true),
    ] {
        let mut eng = Engine::new(
            &model.graph,
            cfg(600 << 20),
            Box::new(Capuchin::with_config(config)),
        );
        eng.run(3).expect("runs");
        let plan = plan_of(&eng);
        let has_swap = plan.evictions.values().any(|m| *m == EvictMethod::Swap);
        let has_rec = plan
            .evictions
            .values()
            .any(|m| *m == EvictMethod::Recompute);
        assert_eq!(has_swap, want_swap, "{config:?}");
        assert_eq!(has_rec, want_rec, "{config:?}");
    }
}

#[test]
fn required_saving_matches_capacity_gap() {
    // required_saving ≈ ideal_peak − capacity (the sweep-based estimate).
    let (eng, _) = capuchin_after(600 << 20, 2);
    let profile = profile_of(&eng);
    let capacity = eng.spec().memory_bytes;
    let gap = profile.ideal_peak.saturating_sub(capacity);
    assert!(
        profile.required_saving >= gap,
        "saving {} < capacity gap {}",
        profile.required_saving,
        gap
    );
    assert!(
        profile.required_saving <= gap.max(capacity / 32) + capacity / 16,
        "saving {} wildly exceeds gap {}",
        profile.required_saving,
        gap
    );
}

#[test]
fn ideal_peak_matches_unconstrained_run() {
    // The sweep-computed ideal peak from a *constrained* measured run
    // should approximate the true peak of an unconstrained run.
    let model = ModelKind::ResNet50.build(8);
    let mut free = Engine::new(&model.graph, cfg(16 << 30), Box::new(TfOri::new()));
    let true_peak = free.run(2).unwrap().iters[1].peak_mem;

    let (eng, _) = capuchin_after(600 << 20, 2);
    let ideal = profile_of(&eng).ideal_peak;
    let ratio = ideal as f64 / true_peak as f64;
    assert!(
        (0.7..1.3).contains(&ratio),
        "ideal {ideal} vs true {true_peak} (ratio {ratio:.2})"
    );
}
