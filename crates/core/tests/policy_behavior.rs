//! End-to-end behaviour of the Capuchin policy on a real model under
//! memory oversubscription: measured execution, plan construction, guided
//! execution, feedback, and the ablation configurations.

use capuchin::{Capuchin, CapuchinConfig};
use capuchin_executor::{Engine, EngineConfig, ExecError, RunStats, TfOri};
use capuchin_models::ModelKind;
use capuchin_sim::DeviceSpec;

const MEM: u64 = 600 << 20; // 600 MiB: oversubscribed for ResNet-50 @ 8

fn cfg(mem: u64) -> EngineConfig {
    EngineConfig {
        spec: DeviceSpec::p100_pcie3().with_memory(mem),
        ..EngineConfig::default()
    }
}

fn run_capuchin(mem: u64, ccfg: CapuchinConfig, iters: u64) -> (RunStats, Capuchin) {
    let model = ModelKind::ResNet50.build(8);
    let mut eng = Engine::new(
        &model.graph,
        cfg(mem),
        Box::new(Capuchin::with_config(ccfg)),
    );
    let stats = eng
        .run(iters)
        .expect("capuchin must survive oversubscription");
    // Recover the policy for inspection by rebuilding — instead, expose
    // observable state through stats only in this test.
    drop(eng);
    (stats, Capuchin::with_config(ccfg))
}

#[test]
fn capuchin_rescues_oom_where_tf_ori_fails() {
    let model = ModelKind::ResNet50.build(8);
    let mut tf = Engine::new(&model.graph, cfg(MEM), Box::new(TfOri::new()));
    let err = tf.run(1).expect_err("600 MiB must OOM under tf-ori");
    assert!(matches!(err, ExecError::Oom { .. }));

    let mut cap = Engine::new(&model.graph, cfg(MEM), Box::new(Capuchin::new()));
    let stats = cap.run(6).expect("capuchin survives");
    assert_eq!(stats.iters.len(), 6);
}

#[test]
fn guided_execution_converges_to_no_passive_evictions() {
    let (stats, _) = run_capuchin(MEM, CapuchinConfig::default(), 10);
    // Iteration 1 is measured execution: passive evictions are expected.
    assert!(
        stats.iters[1].passive_evictions > 0,
        "measured execution should hit OOM at this budget"
    );
    // The policy stabilizes "usually within 50 iterations" (paper §6.3.2);
    // in the deterministic simulator a handful of refinement rounds do it.
    let last = stats.iters.last().unwrap();
    assert_eq!(
        last.passive_evictions, 0,
        "steady state must be fully plan-driven: {last:?}"
    );
    // Guided iterations must beat passive-mode (measured) iterations.
    assert!(
        last.wall() < stats.iters[1].wall(),
        "guided {} !< measured {}",
        last.wall(),
        stats.iters[1].wall()
    );
    // Memory management active: tensors moved or recomputed.
    assert!(last.swap_out_bytes > 0 || last.recompute_kernels > 0);
}

#[test]
fn guided_stalls_shrink_over_iterations() {
    let (stats, _) = run_capuchin(MEM, CapuchinConfig::default(), 10);
    let early = stats.iters[2].stall_time;
    let late = stats.iters.last().unwrap().stall_time;
    assert!(
        late <= early,
        "feedback should not increase stalls: early={early} late={late}"
    );
}

#[test]
fn swap_only_config_never_recomputes() {
    let (stats, _) = run_capuchin(MEM, CapuchinConfig::swap_only(), 8);
    let last = stats.iters.last().unwrap();
    assert_eq!(last.recompute_kernels, 0);
    assert!(last.swap_out_bytes > 0);
    assert_eq!(last.passive_evictions, 0);
}

#[test]
fn recompute_only_config_never_prefetches() {
    let (stats, _) = run_capuchin(MEM, CapuchinConfig::recompute_only(), 8);
    let last = stats.iters.last().unwrap();
    assert!(last.recompute_kernels > 0, "{last:?}");
    // No planned swaps; with a fully converged plan nothing pages in.
    assert_eq!(last.passive_evictions, 0, "{last:?}");
    assert_eq!(last.swap_in_bytes, 0, "{last:?}");
}

#[test]
fn oversubscription_overhead_is_bounded() {
    // At modest oversubscription Capuchin's slowdown must be small; the
    // paper reports <3% at +20% batch. Compare guided iterations at an
    // ~85% memory budget against unconstrained execution.
    let model = ModelKind::ResNet50.build(64);
    let mut free = Engine::new(&model.graph, cfg(8 << 30), Box::new(TfOri::new()));
    let free_stats = free.run(3).unwrap();
    let free_wall = free_stats.iters.last().unwrap().wall();

    // Oversubscribe the transient (non-weight) memory by 15%.
    let peak = free_stats.iters.last().unwrap().peak_mem;
    let weights = model.graph.param_count() * 4;
    let budget = weights + (peak - weights) * 85 / 100;
    let mut cap = Engine::new(&model.graph, cfg(budget), Box::new(Capuchin::new()));
    let cap_stats = cap.run(8).expect("capuchin at 85% budget");
    let cap_wall = cap_stats.iters.last().unwrap().wall();
    let ratio = cap_wall.as_secs_f64() / free_wall.as_secs_f64();
    assert!(
        ratio < 1.10,
        "15% oversubscription should cost <10%, got {ratio:.3}"
    );
}

#[test]
fn deeper_oversubscription_costs_more() {
    let (mild, _) = run_capuchin(700 << 20, CapuchinConfig::default(), 8);
    let (deep, _) = run_capuchin(450 << 20, CapuchinConfig::default(), 8);
    assert!(
        deep.iters.last().unwrap().wall() > mild.iters.last().unwrap().wall(),
        "more oversubscription must cost more time"
    );
}

#[test]
fn collective_recompute_does_not_slow_things_down() {
    let with = run_capuchin(
        500 << 20,
        CapuchinConfig {
            collective: true,
            ..CapuchinConfig::recompute_only()
        },
        8,
    )
    .0;
    let without = run_capuchin(
        500 << 20,
        CapuchinConfig {
            collective: false,
            ..CapuchinConfig::recompute_only()
        },
        8,
    )
    .0;
    let w = with.iters.last().unwrap();
    let wo = without.iters.last().unwrap();
    // CR trades memory for replay work; it must not *increase* replay
    // time materially (the win depends on how much slack memory exists).
    assert!(
        w.recompute_time.as_nanos() <= wo.recompute_time.as_nanos() * 11 / 10,
        "CR should not increase recompute work: with={} without={}",
        w.recompute_time,
        wo.recompute_time
    );
}

#[test]
fn bert_under_capuchin_survives_oversubscription() {
    let model = ModelKind::BertBase.build(4);
    let weights = model.graph.param_count() * 4;
    let mut free = Engine::new(&model.graph, cfg(16 << 30), Box::new(TfOri::new()));
    let peak = free.run(2).unwrap().iters.last().unwrap().peak_mem;
    // Weights are pinned; oversubscribe the transient portion to 80%.
    // (At batch 4 the 94 MiB MLM weight-gradient is nearly half of a
    // tighter transient budget, and no contiguous hole that large can be
    // carved out of a ~1 GiB arena — an honest fragmentation limit that
    // vanishes at the realistic batch sizes of the Table 2 experiments.)
    let budget = weights + (peak - weights) * 80 / 100;
    let mut tf = Engine::new(&model.graph, cfg(budget), Box::new(TfOri::new()));
    assert!(
        tf.run(1).is_err(),
        "80% transient budget must OOM under tf-ori"
    );
    let mut cap = Engine::new(&model.graph, cfg(budget), Box::new(Capuchin::new()));
    let stats = cap.run(8).expect("capuchin on BERT");
    let last = stats.iters.last().unwrap();
    // Steady state must be no worse than passive mode (the measured
    // iteration), and any residual passive churn must be a small fraction
    // of the transient footprint.
    assert!(last.wall() <= stats.iters[1].wall(), "{last:?}");
    assert!(last.passive_evict_bytes < (peak - weights) / 4, "{last:?}");
}
