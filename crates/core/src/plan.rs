//! The memory-management plan produced by the policy maker.
//!
//! A plan maps *specific tensor accesses* — `(tensor, access_count)` pairs,
//! exactly the trigger representation of paper §5.2 — to actions: evict by
//! swap, evict for recomputation, or prefetch a set of tensors
//! (in-triggers). Plans are serializable for inspection and experiment
//! artifacts.

use std::collections::{HashMap, HashSet};

use capuchin_sim::{Duration, Time};
use capuchin_tensor::TensorKey;
use serde::{Deserialize, Serialize};

/// How an evicted tensor is re-generated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EvictMethod {
    /// Copy out to host memory, prefetch back before the back-access.
    Swap,
    /// Drop and replay the producing op(s) at the back-access.
    Recompute,
}

/// Bookkeeping for one tensor chosen for swap.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SwapEntry {
    /// Access count of the evicted-access.
    pub evicted_count: u32,
    /// Access count of the back-access.
    pub back_count: u32,
    /// Ideal time of the back-access (measured).
    pub back_time: Time,
    /// Host-to-device transfer time for this tensor.
    pub swap_in_time: Duration,
    /// Lane-aware latest start for the prefetch: the PCIe lane is held
    /// exclusively per direction, so prefetches are scheduled backwards
    /// from the last back-access, each ending no later than the next one
    /// starts (§4.4).
    pub planned_start: Time,
    /// Free Time of the chosen pair; negative FT was accepted only by the
    /// hybrid phase.
    pub ft_ns: i64,
}

/// The full guided-execution plan.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Plan {
    /// `(tensor, access_count)` → eviction action.
    pub evictions: HashMap<(TensorKey, u32), EvictMethod>,
    /// `(tensor, access_count)` of the in-trigger → tensors to prefetch.
    pub in_triggers: HashMap<(TensorKey, u32), Vec<TensorKey>>,
    /// Per-swapped-tensor details (for feedback adjustment).
    pub swaps: HashMap<TensorKey, SwapEntry>,
    /// Extra prefetch lead accumulated by feedback, per tensor.
    pub lead: HashMap<TensorKey, Duration>,
    /// Tensors evicted for recomputation (collective-recompute keep set).
    pub recompute_keys: HashSet<TensorKey>,
    /// Total bytes the plan promises to save.
    pub planned_saving: u64,
    /// Bytes saved via swap.
    pub swap_saving: u64,
    /// Bytes saved via recomputation.
    pub recompute_saving: u64,
    /// Whether in-trigger placement models PCIe lane occupancy (our
    /// refinement) or uses the naive per-tensor estimate (the paper's
    /// §4.4 starting point, which feedback then adjusts).
    pub lane_aware: bool,
}

impl Plan {
    /// Number of planned evictions.
    pub fn len(&self) -> usize {
        self.evictions.len()
    }

    /// Whether the plan does nothing.
    pub fn is_empty(&self) -> bool {
        self.evictions.is_empty()
    }

    /// Human-readable one-line summary.
    pub fn summary(&self) -> String {
        format!(
            "{} evictions ({} swap / {} recompute), {:.1} MiB planned ({:.1} swap + {:.1} recompute)",
            self.len(),
            self.swaps.len(),
            self.recompute_keys.len(),
            self.planned_saving as f64 / (1 << 20) as f64,
            self.swap_saving as f64 / (1 << 20) as f64,
            self.recompute_saving as f64 / (1 << 20) as f64,
        )
    }
}
