//! # capuchin — tensor-based GPU memory management
//!
//! Reproduction of the core contribution of *"Capuchin: Tensor-based GPU
//! Memory Management for Deep Learning"* (Peng et al., ASPLOS 2020): a
//! memory manager that reduces the training footprint via tensor
//! eviction/prefetching and recomputation, driven entirely by the dynamic
//! tensor access pattern observed at runtime — no computation-graph
//! analysis, no layer-type heuristics.
//!
//! The pieces:
//!
//! * [`MeasuredProfile`] — the Tensor Access Tracker's record of one
//!   passive-mode iteration (ideal timestamps, lineage, memory profile);
//! * [`make_plan`] — the Policy Maker: Free-Time-ranked swap selection,
//!   then the hybrid swap/recompute phase with Memory-Saving-Per-Second
//!   bookkeeping (Algorithms 1 and 2);
//! * [`Capuchin`] — the [`MemoryPolicy`](capuchin_executor::MemoryPolicy)
//!   implementation orchestrating passive → measured → guided execution
//!   with feedback-driven refinement.
//!
//! ```
//! use capuchin::{Capuchin, CapuchinConfig};
//!
//! // Swap-only and recompute-only variants power the paper's Fig. 8
//! // breakdowns; the default enables the full hybrid policy.
//! let full = Capuchin::new();
//! let swap_only = Capuchin::with_config(CapuchinConfig::swap_only());
//! assert_eq!(full.plan().len(), 0); // no plan before measured execution
//! # let _ = (swap_only,);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod capuchin;
mod footprint;
mod measure;
mod plan;
mod planner;

pub use crate::capuchin::{Capuchin, CapuchinConfig, CapuchinSnapshot};
pub use crate::footprint::{
    bisect_batch, elastic_batches, measure_footprint, measure_forward_footprint,
    shrink_feasibility, FootprintEstimate, ShrinkPlan,
};
pub use crate::measure::{MeasuredAccess, MeasuredProfile, TensorInfo};
pub use crate::plan::{EvictMethod, Plan, SwapEntry};
pub use crate::planner::{make_plan, PlannerConfig};
