//! Footprint prediction and plan feasibility for admission control.
//!
//! A cluster scheduler admitting a training job needs two answers before
//! committing device memory (paper §4.2's measured execution, repurposed
//! at admission time):
//!
//! 1. *How much device memory will this job want?* — answered by running
//!    one measured iteration on an effectively unlimited device and
//!    reading the ideal live-memory peak.
//! 2. *Can Capuchin shrink it into a smaller budget, and at what cost?* —
//!    answered by asking the Policy Maker for a plan against the candidate
//!    budget and checking whether the planned saving covers the gap.

use capuchin_executor::{Engine, EngineConfig, ExecError};
use capuchin_graph::Graph;
use capuchin_sim::{DeviceSpec, Duration};

use crate::capuchin::Capuchin;
use crate::measure::MeasuredProfile;
use crate::plan::Plan;
use crate::planner::{make_plan, PlannerConfig};

/// Memory capacity used for the unconstrained measuring run: large enough
/// that no workload in this repository ever pages.
const UNLIMITED: u64 = 1 << 40;

/// What one measured iteration on an unlimited device revealed about a
/// job's memory appetite.
#[derive(Debug, Clone)]
pub struct FootprintEstimate {
    /// Device the measurement ran against (with its real capacity; only
    /// the capacity was overridden during measuring).
    pub spec: DeviceSpec,
    /// Peak live memory an unlimited device holds — the footprint the job
    /// needs to run without any memory management.
    pub ideal_peak: u64,
    /// Bytes of persistent weights: the un-shrinkable floor, pinned on
    /// the device for the whole job.
    pub weight_bytes: u64,
    /// Wall time of the measured (unconstrained) iteration.
    pub iter_wall: Duration,
    /// The full measured profile, reusable for shrink queries.
    pub profile: MeasuredProfile,
}

impl FootprintEstimate {
    /// Transient bytes of the measured peak: everything above the
    /// persistent-weight floor. This is the batch-scaled part of the
    /// footprint — activations, gradients, workspaces — and therefore
    /// the quantity a footprint predictor's batch coefficient tracks;
    /// the weight floor is batch-invariant.
    pub fn transient_bytes(&self) -> u64 {
        self.ideal_peak.saturating_sub(self.weight_bytes)
    }
}

/// The Policy Maker's verdict on fitting a job into a byte budget.
#[derive(Debug, Clone)]
pub struct ShrinkPlan {
    /// Bytes the plan must save for the job to fit the budget.
    pub required_saving: u64,
    /// Whether the planned saving covers the requirement.
    pub feasible: bool,
    /// Predicted per-iteration overhead: exposed transfer time of
    /// negative-FT swaps plus recomputation kernel time.
    pub predicted_overhead: Duration,
    /// The plan itself (empty when no saving is required).
    pub plan: Plan,
}

/// Measures a job's memory footprint by running warm-up plus one measured
/// iteration against `spec` with capacity overridden to be unlimited.
///
/// # Errors
///
/// Returns [`ExecError`] if the measuring run itself fails (it cannot
/// OOM, so any error indicates a malformed graph).
pub fn measure_footprint(graph: &Graph, spec: &DeviceSpec) -> Result<FootprintEstimate, ExecError> {
    let cfg = EngineConfig {
        spec: spec.clone().with_memory(UNLIMITED),
        ..EngineConfig::default()
    };
    let mut eng = Engine::new(graph, cfg, Box::new(Capuchin::new()));
    // Iteration 0 materializes weights; iteration 1 is measured execution.
    let stats = eng.run(2)?;
    let iter_wall = stats
        .try_last()
        .map(|it| it.wall())
        .unwrap_or(Duration::ZERO);
    let profile = eng
        .policy()
        .as_any()
        .and_then(|a| a.downcast_ref::<Capuchin>())
        .expect("engine was constructed with the Capuchin policy")
        .profile()
        .clone();
    let weight_bytes = profile
        .info
        .values()
        .filter(|i| i.persistent)
        .map(|i| i.size)
        .sum();
    Ok(FootprintEstimate {
        spec: spec.clone(),
        ideal_peak: profile.ideal_peak,
        weight_bytes,
        iter_wall,
        profile,
    })
}

/// Measures the *forward-only* footprint of a training graph — the
/// memory appetite of an inference job serving the same model. The
/// backward pass is dropped via [`Graph::forward_prefix`] before
/// measuring, so the estimate carries no gradient or backward-workspace
/// bytes; the caller layers request-scaled KV state on top of this base.
///
/// # Errors
///
/// Returns [`ExecError`] if the measuring run itself fails (it cannot
/// OOM, so any error indicates a malformed graph).
pub fn measure_forward_footprint(
    graph: &Graph,
    spec: &DeviceSpec,
) -> Result<FootprintEstimate, ExecError> {
    measure_footprint(&graph.forward_prefix(), spec)
}

/// Candidate batches for elastic re-batching, descending: the full batch,
/// then successive halvings, floored at `ceil(batch × min_fraction)` (the
/// floor itself is always the last candidate). Quantizing to a halving
/// ladder keeps the number of distinct footprint measurements per job
/// bounded at `log2(1/min_fraction) + 1` instead of one per integer batch.
///
/// `min_fraction` outside `(0, 1]` is clamped into range; a fraction of
/// `1.0` yields only the full batch (re-batching disabled for the job).
pub fn elastic_batches(batch: usize, min_fraction: f64) -> Vec<usize> {
    let batch = batch.max(1);
    let fraction = if min_fraction.is_finite() {
        min_fraction.clamp(f64::MIN_POSITIVE, 1.0)
    } else {
        1.0
    };
    let floor = ((batch as f64 * fraction).ceil() as usize).clamp(1, batch);
    let mut ladder = vec![batch];
    let mut b = batch / 2;
    while b > floor {
        ladder.push(b);
        b /= 2;
    }
    if *ladder.last().expect("ladder starts with batch") > floor {
        ladder.push(floor);
    }
    ladder
}

/// Bisects the largest candidate batch for which `fits` holds, assuming
/// the predicate is monotone (a batch that fits implies every smaller
/// candidate fits — footprints grow with batch). `candidates` must be
/// sorted descending, as [`elastic_batches`] produces them. Probes
/// `O(log n)` candidates, which matters because each probe is a measured
/// engine run at that batch.
pub fn bisect_batch(candidates: &[usize], mut fits: impl FnMut(usize) -> bool) -> Option<usize> {
    if candidates.is_empty() {
        return None;
    }
    // Invariant: everything before `lo` is known not to fit; everything
    // from `hi` on is unknown-or-fitting only once proven. Find the first
    // (largest) fitting index by bisection on the monotone boundary.
    let (mut lo, mut hi) = (0usize, candidates.len());
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if fits(candidates[mid]) {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    candidates.get(lo).copied()
}

/// Asks the Policy Maker whether `budget` bytes suffice for the measured
/// job, and at what predicted overhead.
pub fn shrink_feasibility(est: &FootprintEstimate, budget: u64, cfg: &PlannerConfig) -> ShrinkPlan {
    let required_saving = est.ideal_peak.saturating_sub(budget);
    if required_saving == 0 {
        return ShrinkPlan {
            required_saving: 0,
            feasible: true,
            predicted_overhead: Duration::ZERO,
            plan: Plan::default(),
        };
    }
    // Persistent weights cannot be shrunk away; below that floor (plus a
    // sliver of working memory) no plan helps.
    if budget <= est.weight_bytes {
        return ShrinkPlan {
            required_saving,
            feasible: false,
            predicted_overhead: Duration::ZERO,
            plan: Plan::default(),
        };
    }
    let mut profile = est.profile.clone();
    profile.required_saving = required_saving;
    let spec = est.spec.clone().with_memory(budget);
    let plan = make_plan(&profile, &spec, cfg);
    let feasible = plan.planned_saving >= required_saving;
    let exposed_ns: u64 = plan
        .swaps
        .values()
        .map(|s| u64::try_from(-s.ft_ns).unwrap_or(0))
        .sum();
    let recompute: Duration = plan
        .recompute_keys
        .iter()
        .filter_map(|k| profile.info.get(k))
        .map(|i| i.op_duration)
        .sum();
    ShrinkPlan {
        required_saving,
        feasible,
        predicted_overhead: Duration::from_nanos(exposed_ns) + recompute,
        plan,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use capuchin_models::ModelKind;

    #[test]
    fn footprint_matches_unconstrained_run() {
        let model = ModelKind::Vgg16.build(16);
        let est = measure_footprint(&model.graph, &DeviceSpec::p100_pcie3()).unwrap();
        assert!(est.ideal_peak > est.weight_bytes, "{est:?}");
        assert!(est.iter_wall > Duration::ZERO);
        // A budget at the ideal peak needs no plan.
        let fit = shrink_feasibility(&est, est.ideal_peak, &PlannerConfig::default());
        assert!(fit.feasible);
        assert!(fit.plan.is_empty());
    }

    #[test]
    fn forward_footprint_is_strictly_smaller() {
        let model = ModelKind::Vgg16.build(16);
        let spec = DeviceSpec::p100_pcie3();
        let full = measure_footprint(&model.graph, &spec).unwrap();
        let fwd = measure_forward_footprint(&model.graph, &spec).unwrap();
        // Same weights, but no gradients or backward workspace — the
        // forward-only peak sits strictly below the training peak.
        assert_eq!(fwd.weight_bytes, full.weight_bytes);
        assert!(fwd.ideal_peak < full.ideal_peak, "{fwd:?} vs {full:?}");
        assert!(fwd.iter_wall > Duration::ZERO);
        assert!(fwd.iter_wall < full.iter_wall);
    }

    #[test]
    fn elastic_ladder_halves_down_to_the_floor() {
        assert_eq!(elastic_batches(256, 0.25), vec![256, 128, 64]);
        assert_eq!(elastic_batches(256, 0.20), vec![256, 128, 64, 52]);
        assert_eq!(elastic_batches(48, 0.25), vec![48, 24, 12]);
        // A fraction of 1.0 disables shrinking.
        assert_eq!(elastic_batches(64, 1.0), vec![64]);
        // The floor never drops below 1 and the ladder never goes above
        // the batch, whatever the fraction.
        assert_eq!(elastic_batches(3, 0.01), vec![3, 1]);
        assert_eq!(elastic_batches(1, 0.5), vec![1]);
        assert_eq!(elastic_batches(8, f64::NAN), vec![8]);
    }

    #[test]
    fn bisect_batch_finds_largest_fitting_candidate() {
        let ladder = [256usize, 128, 64, 52];
        assert_eq!(bisect_batch(&ladder, |b| b <= 300), Some(256));
        assert_eq!(bisect_batch(&ladder, |b| b <= 128), Some(128));
        assert_eq!(bisect_batch(&ladder, |b| b <= 60), Some(52));
        assert_eq!(bisect_batch(&ladder, |_| false), None);
        assert_eq!(bisect_batch(&[], |_| true), None);
        // Probe count stays logarithmic: each probe is an engine run.
        let mut probes = 0;
        bisect_batch(&ladder, |b| {
            probes += 1;
            b <= 64
        });
        assert!(probes <= 3, "{probes} probes for 4 candidates");
    }

    #[test]
    fn shrink_is_feasible_at_mild_pressure_not_below_weights() {
        let model = ModelKind::Vgg16.build(16);
        let est = measure_footprint(&model.graph, &DeviceSpec::p100_pcie3()).unwrap();
        // 90% of the transient footprint: Capuchin shrinks this easily.
        let transient = est.ideal_peak - est.weight_bytes;
        let mild = est.weight_bytes + transient * 9 / 10;
        let shrunk = shrink_feasibility(&est, mild, &PlannerConfig::default());
        assert!(shrunk.feasible, "{shrunk:?}");
        assert!(!shrunk.plan.is_empty());
        // At or below the weight floor nothing helps.
        let hopeless = shrink_feasibility(&est, est.weight_bytes, &PlannerConfig::default());
        assert!(!hopeless.feasible);
    }
}
