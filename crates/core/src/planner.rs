//! The Policy Maker: turns a measured profile into a guided-execution plan.
//!
//! Implements the paper's §4.5 selection procedure:
//!
//! 1. **Candidates** — tensors accessed more than once whose reuse interval
//!    overlaps the peak-memory period.
//! 2. **Swap phase** — rank candidate access pairs by *Free Time*
//!    `FT = SwapInStartTime − SwapOutEndTime` (Eq. 1) and take zero-overhead
//!    swaps (FT ≥ 0) from the top until the required saving is met.
//! 3. **Hybrid phase** (Algorithm 1) — for the remainder, compare each
//!    candidate's residual swap overhead (−FT) against its recomputation
//!    overhead and pick the cheaper, maintaining the *Memory Saving Per
//!    Second* bookkeeping of Algorithm 2: once a tensor is confirmed for
//!    recomputation it disappears as a recompute *source* for every other
//!    candidate, lengthening their chains (the `srcs`/`rp_time`/`ext_time`
//!    updates).
//! 4. **In-triggers** — for each swap, walk the measured access sequence
//!    backwards from the back-access to the latest access that precedes
//!    `back_access_time − SwapInTime − lead` (§4.4); that access becomes
//!    the prefetch trigger.

use std::collections::{BTreeMap, HashSet};

use capuchin_sim::{CopyDir, DeviceSpec, Duration, Time, TransferModel};
use capuchin_tensor::TensorKey;

use crate::measure::MeasuredProfile;
use crate::plan::{EvictMethod, Plan, SwapEntry};

/// Planner knobs (ablation switches for the Fig. 8 breakdowns).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlannerConfig {
    /// Allow swap evictions.
    pub enable_swap: bool,
    /// Lane-aware in-trigger placement (see [`Plan::lane_aware`]).
    pub lane_aware: bool,
    /// Allow recomputation evictions.
    pub enable_recompute: bool,
    /// Fraction of the observed peak that defines the peak-memory window.
    pub peak_threshold: f64,
    /// Multiplier on the measured required saving (headroom).
    pub savings_margin: f64,
    /// DELTA-style candidate ordering (arXiv:2203.15980): instead of the
    /// paper's swaps-first two-phase selection, every step picks the
    /// globally cheapest remaining candidate by priced overhead per byte
    /// saved — swap and recompute candidates interleave in one ranking.
    /// Costs come from the same [`TransferModel`] either way, so the two
    /// orderings differ only when PCIe congestion (lane violations) makes
    /// the greedy swaps-first order pay for transfers a joint ordering
    /// would have recomputed around.
    pub delta_interleave: bool,
}

impl Default for PlannerConfig {
    fn default() -> PlannerConfig {
        PlannerConfig {
            enable_swap: true,
            lane_aware: true,
            enable_recompute: true,
            peak_threshold: 0.80,
            savings_margin: 1.05,
            delta_interleave: false,
        }
    }
}

#[derive(Debug, Clone)]
struct Candidate {
    key: TensorKey,
    evicted_count: u32,
    back_count: u32,
    /// Ideal end time of the evicted-access kernel.
    t1_end: Time,
    /// Ideal start time of the back-access kernel.
    t2_start: Time,
    size: u64,
    /// Free Time in signed nanoseconds (negative = exposed transfer).
    ft_ns: i64,
    /// Recompute bookkeeping (Algorithm 2 state).
    srcs: HashSet<TensorKey>,
    rp_time: Duration,
    ext_time: Duration,
    recomputable: bool,
}

impl Candidate {
    fn recompute_overhead(&self) -> Duration {
        self.rp_time + self.ext_time
    }
}

/// Builds a plan from the measured profile.
pub fn make_plan(profile: &MeasuredProfile, spec: &DeviceSpec, cfg: &PlannerConfig) -> Plan {
    // Swap costs come from the same TransferModel the engine's lanes
    // execute with — the planner holds no private bandwidth constants, so
    // single-GPU and cluster runs price a swap identically.
    let model = TransferModel::for_device(spec);
    let mut plan = Plan {
        lane_aware: cfg.lane_aware,
        ..Plan::default()
    };
    let mut needed = scaled_saving(profile.required_saving, cfg.savings_margin);
    if needed <= 0 {
        return plan; // nothing to do: no triggers either
    }

    // ------------------------------------------------------------------
    // Candidate generation: best-FT access pair per tensor, restricted to
    // pairs overlapping the peak window.
    // ------------------------------------------------------------------
    let candidate_keys: HashSet<TensorKey> = profile
        .accesses_of
        .keys()
        .copied()
        .filter(|k| {
            let info = &profile.info[k];
            !info.persistent && profile.accesses_of[k].len() >= 2
        })
        .collect();

    let mut candidates: Vec<Candidate> = Vec::new();
    let mut ordered_keys: Vec<TensorKey> = candidate_keys.iter().copied().collect();
    ordered_keys.sort();
    for &key in &ordered_keys {
        let info = &profile.info[&key];
        let out_time = model.time(info.size, CopyDir::DeviceToHost);
        let in_time = model.time(info.size, CopyDir::HostToDevice);
        let mut best: Option<Candidate> = None;
        for (c1, c2, t1_end, t2_start) in profile.pairs_of(key) {
            if !profile.overlaps_peak(t1_end, t2_start) {
                continue;
            }
            // FT = (back_access − SwapInTime) − (evicted_access + SwapOutTime).
            let ft_ns = t2_start.as_nanos() as i64
                - in_time.as_nanos() as i64
                - (t1_end.as_nanos() as i64 + out_time.as_nanos() as i64);
            let cand = Candidate {
                key,
                evicted_count: c1,
                back_count: c2,
                t1_end,
                t2_start,
                size: info.size,
                ft_ns,
                srcs: HashSet::new(),
                rp_time: Duration::ZERO,
                ext_time: Duration::ZERO,
                recomputable: info.recomputable,
            };
            if best.as_ref().map(|b| cand.ft_ns > b.ft_ns).unwrap_or(true) {
                best = Some(cand);
            }
        }
        if let Some(c) = best {
            candidates.push(c);
        }
    }
    // Rank by FT descending; ties by size descending (bigger saving
    // first), then by key for full determinism.
    candidates.sort_by(|a, b| {
        b.ft_ns
            .cmp(&a.ft_ns)
            .then(b.size.cmp(&a.size))
            .then(a.key.cmp(&b.key))
    });

    if cfg.delta_interleave {
        delta_select(&mut plan, profile, &model, cfg, candidates, needed);
        schedule_in_triggers(&mut plan, profile);
        return plan;
    }

    // ------------------------------------------------------------------
    // Phase 1: zero-overhead swaps from the top of the FT ranking —
    // accepted only while the *lane schedule* stays feasible, i.e. every
    // prefetch can still complete before its back-access without starting
    // before its own eviction copy has finished. This is the paper's
    // "swap is the first choice until we cannot choose an in-trigger to
    // perfectly hide the prefetching overhead" (§4.5), with the exclusive
    // per-direction PCIe lane made explicit.
    // ------------------------------------------------------------------
    let mut accepted: Vec<LaneItem> = Vec::new();
    let mut rest = Vec::new();
    for cand in candidates {
        let item = LaneItem::of(&cand, &model);
        if cfg.enable_swap
            && cand.ft_ns >= 0
            && needed > 0
            && lane_violation(&accepted, &item) == Duration::ZERO
        {
            needed -= cand.size as i128;
            accepted.push(item);
            confirm_swap(&mut plan, profile, &model, &cand);
        } else {
            rest.push(cand);
        }
    }
    if needed <= 0 || rest.is_empty() {
        schedule_in_triggers(&mut plan, profile);
        return plan;
    }

    // ------------------------------------------------------------------
    // Phase 2: hybrid (Algorithm 1) with recompute-source bookkeeping
    // (Algorithm 2).
    // ------------------------------------------------------------------
    // Initialize recompute chains assuming all still-unchosen candidates
    // are resident.
    let remaining_keys: HashSet<TensorKey> = rest.iter().map(|c| c.key).collect();
    for cand in &mut rest {
        match init_recompute(profile, cand, &remaining_keys) {
            Some((srcs, time)) => {
                cand.srcs = srcs;
                cand.rp_time = time;
            }
            None => cand.recomputable = false,
        }
    }

    // Confirmed recompute targets, with their (evolving) source sets.
    let mut recomps: Vec<(TensorKey, HashSet<TensorKey>, Duration)> = Vec::new();

    let mut queue = rest;
    while needed > 0 && !queue.is_empty() {
        // Candidates stay ranked by FT; take the best head-of-line.
        let cand = queue.remove(0);
        let swap_over = if cfg.enable_swap {
            // Residual swap overhead: any exposed transfer time (−FT)
            // plus the lane-schedule violation the swap would introduce.
            let item = LaneItem::of(&cand, &model);
            let exposed = Duration::from_nanos((-cand.ft_ns).max(0) as u64);
            Some(exposed + lane_violation(&accepted, &item))
        } else {
            None
        };
        let rec_over = if cfg.enable_recompute && cand.recomputable {
            Some(cand.recompute_overhead())
        } else {
            None
        };
        match (swap_over, rec_over) {
            (None, None) => continue,
            (Some(_), None) => {
                needed -= cand.size as i128;
                accepted.push(LaneItem::of(&cand, &model));
                confirm_swap(&mut plan, profile, &model, &cand);
            }
            (s, Some(r)) if s.is_none() || r <= s.unwrap() => {
                needed -= cand.size as i128;
                confirm_recompute(&mut plan, &cand, &mut recomps, &mut queue);
            }
            _ => {
                needed -= cand.size as i128;
                accepted.push(LaneItem::of(&cand, &model));
                confirm_swap(&mut plan, profile, &model, &cand);
            }
        }
    }
    schedule_in_triggers(&mut plan, profile);
    plan
}

/// DELTA-style joint selection (arXiv:2203.15980): one ranking instead of
/// the paper's two phases. Every step re-prices each remaining candidate —
/// the cheaper of its residual swap overhead (exposed transfer plus the
/// lane violation it would add to the already-accepted schedule) and its
/// recompute chain — and confirms the candidate with the lowest overhead
/// per byte saved. Re-pricing each round is what makes the ordering
/// *joint*: as the PCIe lanes congest, swap overheads grow and the
/// selection shifts to recomputation for exactly the tensors whose
/// transfers no longer hide, instead of committing to every zero-FT swap
/// up front. All arithmetic is integer (nanoseconds, permille-scaled per
/// byte) with size/key tie-breaks, so the plan is byte-deterministic.
fn delta_select(
    plan: &mut Plan,
    profile: &MeasuredProfile,
    model: &TransferModel,
    cfg: &PlannerConfig,
    mut queue: Vec<Candidate>,
    mut needed: i128,
) {
    // No swaps-first phase shrinks the pool, so recompute chains are
    // initialized over the full candidate set (Algorithm 2 still adjusts
    // them as tensors are confirmed).
    let all_keys: HashSet<TensorKey> = queue.iter().map(|c| c.key).collect();
    for cand in &mut queue {
        match init_recompute(profile, cand, &all_keys) {
            Some((srcs, time)) => {
                cand.srcs = srcs;
                cand.rp_time = time;
            }
            None => cand.recomputable = false,
        }
    }
    let mut accepted: Vec<LaneItem> = Vec::new();
    let mut recomps: Vec<(TensorKey, HashSet<TensorKey>, Duration)> = Vec::new();
    while needed > 0 && !queue.is_empty() {
        let mut best: Option<(u128, u64, TensorKey, usize, bool)> = None;
        for (idx, cand) in queue.iter().enumerate() {
            let swap_over = if cfg.enable_swap {
                let item = LaneItem::of(cand, model);
                let exposed = Duration::from_nanos((-cand.ft_ns).max(0) as u64);
                Some(exposed + lane_violation(&accepted, &item))
            } else {
                None
            };
            let rec_over = if cfg.enable_recompute && cand.recomputable {
                Some(cand.recompute_overhead())
            } else {
                None
            };
            // Ties prefer recomputation, matching the hybrid phase.
            let (cost, use_swap) = match (swap_over, rec_over) {
                (None, None) => continue,
                (Some(s), None) => (s, true),
                (None, Some(r)) => (r, false),
                (Some(s), Some(r)) => {
                    if r <= s {
                        (r, false)
                    } else {
                        (s, true)
                    }
                }
            };
            let per_byte = cost.as_nanos() as u128 * 1_000 / u128::from(cand.size.max(1));
            let better = match &best {
                None => true,
                Some((bpb, bsize, bkey, _, _)) => {
                    (per_byte, std::cmp::Reverse(cand.size), cand.key)
                        < (*bpb, std::cmp::Reverse(*bsize), *bkey)
                }
            };
            if better {
                best = Some((per_byte, cand.size, cand.key, idx, use_swap));
            }
        }
        let Some((_, _, _, idx, use_swap)) = best else {
            break; // nothing selectable remains (all disabled/unrecomputable)
        };
        let cand = queue.remove(idx);
        needed -= cand.size as i128;
        if use_swap {
            accepted.push(LaneItem::of(&cand, model));
            confirm_swap(plan, profile, model, &cand);
        } else {
            confirm_recompute(plan, &cand, &mut recomps, &mut queue);
        }
    }
}

/// Headroom-scaled saving target, `required × margin`, in exact
/// fixed-point (permille) integer math with a u128 intermediate. The old
/// `(required as f64 * margin) as i64` silently lost precision above
/// 2^53 bytes and saturated near `i64::MAX` for extreme budgets.
fn scaled_saving(required: u64, margin: f64) -> i128 {
    let permille = (margin * 1000.0).round().max(0.0) as u128;
    let scaled = (required as u128).saturating_mul(permille) / 1000;
    i128::try_from(scaled).unwrap_or(i128::MAX)
}

/// One swap in the tentative PCIe lane schedule.
#[derive(Debug, Clone, Copy)]
struct LaneItem {
    key: TensorKey,
    /// Eviction copy may start here (end of the evicted-access kernel).
    t1_end: Time,
    /// Prefetch must complete here (start of the back-access kernel).
    t2_start: Time,
    out_time: Duration,
    in_time: Duration,
}

impl LaneItem {
    fn of(cand: &Candidate, model: &TransferModel) -> LaneItem {
        LaneItem {
            key: cand.key,
            t1_end: cand.t1_end,
            t2_start: cand.t2_start,
            out_time: model.time(cand.size, CopyDir::DeviceToHost),
            in_time: model.time(cand.size, CopyDir::HostToDevice),
        }
    }
}

/// Simulates both PCIe directions for `accepted ∪ {cand}` and returns the
/// worst amount by which some prefetch must start before its data has even
/// finished swapping out (zero = perfectly hideable).
fn lane_violation(accepted: &[LaneItem], cand: &LaneItem) -> Duration {
    let mut items: Vec<LaneItem> = accepted.to_vec();
    items.push(*cand);
    // Device-to-host lane: FIFO in eviction order. Ordered structures and
    // key tie-breaks throughout (DESIGN §6): equal-timestamp candidates
    // must schedule identically across runs.
    let mut out_end: BTreeMap<TensorKey, Time> = BTreeMap::new();
    items.sort_by_key(|i| (i.t1_end, i.key));
    let mut lane = Time::ZERO;
    for i in &items {
        let start = i.t1_end.max(lane);
        lane = start + i.out_time;
        out_end.insert(i.key, lane);
    }
    // Host-to-device lane: latest feasible schedule, laid out backwards.
    items.sort_by_key(|i| (std::cmp::Reverse(i.t2_start), i.key));
    let mut worst = Duration::ZERO;
    let mut lane_free: Option<Time> = None;
    for i in &items {
        let latest_end = match lane_free {
            Some(t) => i.t2_start.min(t),
            None => i.t2_start,
        };
        let start = latest_end.saturating_sub(i.in_time);
        let ready = out_end[&i.key];
        if ready > start {
            worst = worst.max(ready - start);
        }
        lane_free = Some(start);
    }
    worst
}

fn confirm_swap(
    plan: &mut Plan,
    profile: &MeasuredProfile,
    model: &TransferModel,
    cand: &Candidate,
) {
    let in_time = model.time(cand.size, CopyDir::HostToDevice);
    plan.evictions
        .insert((cand.key, cand.evicted_count), EvictMethod::Swap);
    plan.swaps.insert(
        cand.key,
        SwapEntry {
            evicted_count: cand.evicted_count,
            back_count: cand.back_count,
            back_time: cand.t2_start,
            swap_in_time: in_time,
            planned_start: cand.t2_start.saturating_sub(in_time),
            ft_ns: cand.ft_ns,
        },
    );
    plan.planned_saving += cand.size;
    plan.swap_saving += cand.size;
    let _ = profile; // triggers are installed lane-aware at the end
}

/// Computes lane-aware prefetch start times and (re)installs every
/// in-trigger. Prefetches share the host-to-device lane exclusively, so
/// they are laid out backwards from the latest back-access: each transfer
/// must finish before both its own back-access and the next transfer's
/// start.
pub fn schedule_in_triggers(plan: &mut Plan, profile: &MeasuredProfile) {
    let mut order: Vec<TensorKey> = plan.swaps.keys().copied().collect();
    order.sort_by_key(|k| (std::cmp::Reverse(plan.swaps[k].back_time), *k));
    let mut lane_free: Option<Time> = None;
    for key in order {
        let entry = plan.swaps.get_mut(&key).expect("key from plan");
        let latest_end = match lane_free {
            Some(t) if plan.lane_aware => entry.back_time.min(t),
            _ => entry.back_time,
        };
        entry.planned_start = latest_end.saturating_sub(entry.swap_in_time);
        lane_free = Some(entry.planned_start);
    }
    let mut keys: Vec<TensorKey> = plan.swaps.keys().copied().collect();
    keys.sort();
    for key in keys {
        install_in_trigger(plan, profile, key);
    }
}

/// (Re)installs the prefetch trigger for a swapped tensor, honouring its
/// accumulated feedback lead.
pub fn install_in_trigger(plan: &mut Plan, profile: &MeasuredProfile, key: TensorKey) {
    // Remove any previous trigger pointing at `key`.
    for targets in plan.in_triggers.values_mut() {
        targets.retain(|&t| t != key);
    }
    plan.in_triggers.retain(|_, v| !v.is_empty());

    let entry = &plan.swaps[&key];
    let lead = plan.lead.get(&key).copied().unwrap_or(Duration::ZERO);
    let target_time = entry.planned_start.saturating_sub(lead);

    // Latest access that (a) precedes the target time and (b) follows the
    // tensor's own evicted-access.
    let evicted_idx = profile.accesses_of[&key]
        .iter()
        .map(|&i| &profile.seq[i])
        .position(|a| a.count == entry.evicted_count)
        .map(|pos| profile.accesses_of[&key][pos])
        .unwrap_or(0);
    let mut chosen: Option<(TensorKey, u32)> = None;
    for (idx, a) in profile.seq.iter().enumerate() {
        if idx <= evicted_idx {
            continue;
        }
        if a.time > target_time {
            break;
        }
        if a.key == key {
            continue;
        }
        chosen = Some((a.key, a.count));
    }
    if let Some(trigger) = chosen {
        plan.in_triggers.entry(trigger).or_default().push(key);
    }
    // No valid trigger: the back-access will page the tensor in on demand.
}

fn confirm_recompute(
    plan: &mut Plan,
    cand: &Candidate,
    recomps: &mut Vec<(TensorKey, HashSet<TensorKey>, Duration)>,
    queue: &mut [Candidate],
) {
    plan.evictions
        .insert((cand.key, cand.evicted_count), EvictMethod::Recompute);
    plan.recompute_keys.insert(cand.key);
    plan.planned_saving += cand.size;
    plan.recompute_saving += cand.size;

    // Algorithm 2: the confirmed tensor stops being a valid source.
    let mut ext_ct: u32 = 1;
    for (_, srcs, _) in recomps.iter_mut() {
        if srcs.remove(&cand.key) {
            srcs.extend(cand.srcs.iter().copied());
            ext_ct += 1;
        }
    }
    recomps.push((cand.key, cand.srcs.clone(), cand.rp_time));

    for other in queue.iter_mut() {
        if other.srcs.remove(&cand.key) {
            other.srcs.extend(cand.srcs.iter().copied());
            other.rp_time += cand.rp_time;
            other.ext_time = Duration::ZERO;
            for (_, srcs, _) in recomps.iter() {
                if srcs.contains(&other.key) {
                    other.ext_time += other.rp_time;
                }
            }
        }
        if cand.srcs.contains(&other.key) {
            other.ext_time = other.rp_time.mul_f64(f64::from(ext_ct));
        }
    }
}

/// Walks the lineage of `cand` to find its recompute sources and replay
/// time, treating persistent tensors, tensors still alive at the
/// back-access, and other candidates as available (§4.4).
fn init_recompute(
    profile: &MeasuredProfile,
    cand: &Candidate,
    candidate_keys: &HashSet<TensorKey>,
) -> Option<(HashSet<TensorKey>, Duration)> {
    let mut srcs = HashSet::new();
    let mut time = Duration::ZERO;
    let mut stack = vec![cand.key];
    let mut visited = HashSet::new();
    while let Some(v) = stack.pop() {
        if !visited.insert(v) {
            continue;
        }
        let info = profile.info.get(&v)?;
        if v != cand.key {
            if info.persistent {
                continue;
            }
            // A lineage node helps only while it is still live at the
            // back-access; a dead node — even another candidate — must be
            // replayed (the runtime walks through dead intermediates too).
            if info.last_access > cand.t2_start {
                if candidate_keys.contains(&v) {
                    srcs.insert(v); // assumed in memory (Algorithm 2 adjusts)
                }
                continue;
            }
        }
        if !info.recomputable {
            return None; // chain bottoms out at a graph input
        }
        time += info.op_duration;
        for &i in &info.inputs {
            stack.push(i);
        }
    }
    Some((srcs, time))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::measure::{MeasuredAccess, TensorInfo};
    use capuchin_graph::OpId;
    use capuchin_tensor::AccessKind;

    const MB: u64 = 1 << 20;

    /// One synthetic tensor: (key, size, inputs, op_duration_us,
    /// access_times_us).
    type TensorRow<'a> = (u64, u64, &'a [u64], u64, &'a [u64]);

    /// Builds a synthetic measured profile.
    fn profile(tensors: &[TensorRow<'_>], required_saving: u64) -> MeasuredProfile {
        let mut p = MeasuredProfile::default();
        let mut events: Vec<(u64, TensorKey, u32)> = Vec::new();
        for &(id, size, inputs, op_us, times) in tensors {
            let key = TensorKey(id);
            p.info.insert(
                key,
                TensorInfo {
                    size,
                    inputs: inputs.iter().map(|&i| TensorKey(i)).collect(),
                    recomputable: true,
                    persistent: false,
                    op_duration: Duration::from_micros(op_us),
                    last_access: Time::from_micros(*times.last().unwrap()),
                    name: format!("t{id}"),
                },
            );
            for (i, &t) in times.iter().enumerate() {
                events.push((t, key, i as u32 + 1));
            }
        }
        events.sort();
        for (t, key, count) in events {
            let idx = p.seq.len();
            p.seq.push(MeasuredAccess {
                key,
                count,
                kind: if count == 1 {
                    AccessKind::Produce
                } else {
                    AccessKind::Read
                },
                op: OpId(0),
                time: Time::from_micros(t),
                end: Time::from_micros(t),
                mem_in_use: 100,
            });
            p.accesses_of.entry(key).or_default().push(idx);
        }
        p.required_saving = required_saving;
        p.peak_mem = 100;
        // Whole iteration counts as peak so every pair qualifies.
        p.peak_window = (Time::ZERO, Time::from_micros(10_000_000));
        p
    }

    fn spec() -> DeviceSpec {
        // Round numbers: 10 GB/s both directions, no copy overhead.
        DeviceSpec {
            pcie_d2h_bw: 10.0e9,
            pcie_h2d_bw: 10.0e9,
            copy_overhead: Duration::ZERO,
            ..DeviceSpec::p100_pcie3()
        }
    }

    #[test]
    fn empty_plan_when_nothing_required() {
        let p = profile(&[(1, 64 * MB, &[], 100, &[0, 900_000])], 0);
        let plan = make_plan(&p, &spec(), &PlannerConfig::default());
        assert!(plan.is_empty());
    }

    #[test]
    fn phase1_prefers_longest_free_time() {
        // Both 64 MiB (swap ~6.4 ms each way); t1 has a 900 ms gap
        // (FT >> 0), t2 a 14 ms gap (FT barely > 0 = 1.2ms).
        let p = profile(
            &[
                (1, 64 * MB, &[], 100, &[0, 900_000]),
                (2, 64 * MB, &[], 100, &[1_000, 15_000]),
            ],
            64 * MB,
        );
        let cfg = PlannerConfig {
            savings_margin: 1.0,
            ..PlannerConfig::default()
        };
        let plan = make_plan(&p, &spec(), &cfg);
        assert_eq!(plan.swaps.len(), 1);
        assert!(plan.swaps.contains_key(&TensorKey(1)), "{plan:?}");
        assert_eq!(
            plan.evictions[&(TensorKey(1), 1)],
            crate::plan::EvictMethod::Swap
        );
    }

    #[test]
    fn scaled_saving_is_exact_at_extreme_budgets() {
        // Multi-TiB: exact permille arithmetic, no f64 rounding.
        let four_tib = 4u64 << 40;
        assert_eq!(
            scaled_saving(four_tib, 1.05),
            four_tib as i128 * 1050 / 1000
        );
        // Above 2^53 bytes the old f64 product dropped the low bits
        // entirely (here: the +12345).
        let huge = (1u64 << 60) + 12345;
        assert_eq!(scaled_saving(huge, 1.0), huge as i128);
        assert!((huge as f64) as u64 != huge, "f64 cannot represent this");
        // Near u64::MAX the old cast saturated at i64::MAX; the u128
        // intermediate keeps the true value.
        assert_eq!(
            scaled_saving(u64::MAX, 2.0),
            (u64::MAX as u128 * 2000 / 1000) as i128
        );
        assert!(scaled_saving(u64::MAX, 2.0) > i64::MAX as i128);
        // Degenerate margins clamp to zero instead of wrapping.
        assert_eq!(scaled_saving(u64::MAX, -1.0), 0);
        assert_eq!(scaled_saving(u64::MAX, f64::NAN), 0);
    }

    #[test]
    fn multi_tib_required_saving_plans_every_candidate() {
        // A saving target far beyond what the candidates can cover must
        // consume the whole ranking without wrapping into "satisfied".
        let p = profile(
            &[
                (1, 64 * MB, &[], 100, &[0, 900_000]),
                (2, 64 * MB, &[], 100, &[1_000, 800_000]),
            ],
            4 << 40,
        );
        let plan = make_plan(&p, &spec(), &PlannerConfig::default());
        assert_eq!(plan.planned_saving, 128 * MB, "{plan:?}");
    }

    #[test]
    fn equal_timestamp_lane_items_order_by_key() {
        // Two identical-size items with identical timestamps: the lane
        // verdict must not depend on insertion order.
        let spec = spec();
        let mk = |id: u64| LaneItem {
            key: TensorKey(id),
            t1_end: Time::from_micros(100),
            t2_start: Time::from_micros(50_000),
            out_time: Duration::from_micros(6_400),
            in_time: Duration::from_micros(6_400),
        };
        let (a, b) = (mk(1), mk(2));
        assert_eq!(lane_violation(&[a], &b), lane_violation(&[b], &a));
        let _ = spec;
    }

    #[test]
    fn pairs_outside_peak_window_are_not_candidates() {
        let mut p = profile(&[(1, 64 * MB, &[], 100, &[0, 900_000])], 64 * MB);
        // Peak window far away from the tensor's interval.
        p.peak_window = (Time::from_micros(2_000_000), Time::from_micros(3_000_000));
        let plan = make_plan(&p, &spec(), &PlannerConfig::default());
        assert!(plan.is_empty());
    }

    #[test]
    fn hybrid_picks_recompute_when_swap_exposed_and_replay_cheap() {
        // 256 MiB tensor with only a 10 ms gap: swap needs ~51 ms of
        // transfer, FT ≈ -41 ms. Recomputing costs 200 us. The hybrid
        // phase must choose recomputation.
        let p = profile(
            &[
                (0, MB, &[], 50, &[0, 9_000_000]), // alive parent (source)
                (1, 256 * MB, &[0], 200, &[1_000, 11_000]),
            ],
            256 * MB,
        );
        let plan = make_plan(&p, &spec(), &PlannerConfig::default());
        assert!(plan.recompute_keys.contains(&TensorKey(1)), "{plan:?}");
        assert_eq!(plan.recompute_saving, 256 * MB);
    }

    #[test]
    fn hybrid_picks_swap_when_recompute_costlier() {
        // Same exposed tensor, but replaying it costs 80 ms > 41 ms of
        // exposed swap time: swap wins.
        let p = profile(
            &[
                (0, MB, &[], 50, &[0, 9_000_000]),
                (1, 256 * MB, &[0], 80_000, &[1_000, 11_000]),
            ],
            256 * MB,
        );
        let plan = make_plan(&p, &spec(), &PlannerConfig::default());
        assert!(plan.swaps.contains_key(&TensorKey(1)), "{plan:?}");
        assert!(plan.recompute_keys.is_empty());
    }

    #[test]
    fn recompute_only_config_never_swaps() {
        let p = profile(
            &[
                (0, MB, &[], 50, &[0, 9_000_000]),
                (1, 64 * MB, &[0], 100, &[1_000, 900_000]),
            ],
            64 * MB,
        );
        let cfg = PlannerConfig {
            enable_swap: false,
            ..PlannerConfig::default()
        };
        let plan = make_plan(&p, &spec(), &cfg);
        assert!(plan.swaps.is_empty());
        assert!(plan.recompute_keys.contains(&TensorKey(1)));
    }

    #[test]
    fn algorithm2_source_update_lengthens_dependent_chains() {
        // Paper's example: lineage T1 -> T2 -> T3 -> T4, all short-gap so
        // swap is hopeless; T3 dies early (last access before the others'
        // back-accesses), so T4's initial sources are {T2} and T2's {T1}.
        // Savings require all three of T1, T2, T4; after T2 is confirmed
        // for recomputation it stops being a source, so T4's chain grows.
        let p = profile(
            &[
                (1, 512 * MB, &[], 1_000, &[0, 20_000]),
                (2, 512 * MB, &[1], 1_000, &[1_000, 21_000]),
                (3, 8 * MB, &[2], 10, &[2_000, 3_000]), // dead early
                (4, 512 * MB, &[3], 1_000, &[3_000, 22_000]),
            ],
            3 * 512 * MB,
        );
        let cfg = PlannerConfig {
            enable_swap: false,
            savings_margin: 1.0,
            ..PlannerConfig::default()
        };
        let plan = make_plan(&p, &spec(), &cfg);
        // All three big tensors must be recompute-planned.
        for id in [1u64, 2, 4] {
            assert!(
                plan.recompute_keys.contains(&TensorKey(id)),
                "t{id} missing from {plan:?}"
            );
        }
        // t3 (highest FT, tiny) may legitimately be chosen as well.
        assert!(plan.recompute_saving >= 3 * 512 * MB);
    }

    #[test]
    fn in_trigger_lands_before_swap_in_start() {
        // Tensor 1 swapped with back-access at 900 ms, swap-in ~6.5 ms.
        // Accesses of tensor 2 at 100..800 ms provide trigger points.
        let p = profile(
            &[
                (1, 64 * MB, &[], 100, &[0, 900_000]),
                (
                    2,
                    MB,
                    &[],
                    10,
                    &[100_000, 300_000, 600_000, 880_000, 899_000],
                ),
            ],
            64 * MB,
        );
        let plan = make_plan(&p, &spec(), &PlannerConfig::default());
        let (trigger, targets) = plan
            .in_triggers
            .iter()
            .find(|(_, v)| v.contains(&TensorKey(1)))
            .expect("in-trigger installed");
        assert_eq!(targets, &vec![TensorKey(1)]);
        // The latest access before 900ms - 6.5ms(swap) is t2's 880ms one
        // (count 4).
        assert_eq!(*trigger, (TensorKey(2), 4));
    }

    #[test]
    fn feedback_lead_moves_trigger_earlier() {
        let p = profile(
            &[
                (1, 64 * MB, &[], 100, &[0, 900_000]),
                (
                    2,
                    MB,
                    &[],
                    10,
                    &[100_000, 300_000, 600_000, 880_000, 899_000],
                ),
            ],
            64 * MB,
        );
        let mut plan = make_plan(&p, &spec(), &PlannerConfig::default());
        // A huge lead pushes the trigger to an earlier access of t2.
        plan.lead.insert(TensorKey(1), Duration::from_millis(500));
        install_in_trigger(&mut plan, &p, TensorKey(1));
        let (trigger, _) = plan
            .in_triggers
            .iter()
            .find(|(_, v)| v.contains(&TensorKey(1)))
            .expect("in-trigger installed");
        assert_eq!(*trigger, (TensorKey(2), 2), "moved to the 300 ms access");
    }

    #[test]
    fn delta_picks_recompute_when_exposed_swap_costlier() {
        // Same scenario as the hybrid test: 256 MiB with a 10 ms gap
        // (exposed swap ≈ 41 ms) against a 200 us replay. The joint
        // ordering must reach the same verdict as the hybrid phase.
        let p = profile(
            &[
                (0, MB, &[], 50, &[0, 9_000_000]),
                (1, 256 * MB, &[0], 200, &[1_000, 11_000]),
            ],
            256 * MB,
        );
        let cfg = PlannerConfig {
            delta_interleave: true,
            ..PlannerConfig::default()
        };
        let plan = make_plan(&p, &spec(), &cfg);
        assert!(plan.recompute_keys.contains(&TensorKey(1)), "{plan:?}");
        assert_eq!(plan.recompute_saving, 256 * MB);
    }

    #[test]
    fn delta_keeps_free_swaps_when_lane_is_idle() {
        // A 900 ms reuse gap hides the 64 MiB transfer entirely (cost 0
        // per byte); replaying it costs 80 ms. Uncontended, the joint
        // ordering agrees with swaps-first.
        let p = profile(
            &[
                (0, MB, &[], 50, &[0, 9_000_000]),
                (1, 64 * MB, &[0], 80_000, &[1_000, 900_000]),
            ],
            64 * MB,
        );
        let cfg = PlannerConfig {
            delta_interleave: true,
            ..PlannerConfig::default()
        };
        let plan = make_plan(&p, &spec(), &cfg);
        assert!(plan.swaps.contains_key(&TensorKey(1)), "{plan:?}");
        assert!(plan.recompute_keys.is_empty());
    }

    #[test]
    fn delta_diverges_from_swaps_first_under_lane_saturation() {
        // Three 256 MiB tensors with back-accesses packed into an 80 ms
        // window: each swap alone has FT > 0 (gap ≈ 60 ms vs ≈ 54 ms of
        // transfer), but the shared PCIe lanes cannot carry all three
        // (25.6 ms per direction each), so later prefetches violate the
        // lane schedule. A 500 us replay is far cheaper than the
        // violation. Swaps-first commits the zero-violation prefix
        // greedily; the joint ordering recomputes the congested tensors
        // instead.
        let p = profile(
            &[
                (0, MB, &[], 50, &[0, 9_000_000]), // alive source
                (1, 256 * MB, &[0], 500, &[1_000, 60_000]),
                (2, 256 * MB, &[0], 500, &[2_000, 70_000]),
                (3, 256 * MB, &[0], 500, &[3_000, 80_000]),
            ],
            3 * 256 * MB,
        );
        let base = make_plan(&p, &spec(), &PlannerConfig::default());
        let delta = make_plan(
            &p,
            &spec(),
            &PlannerConfig {
                delta_interleave: true,
                ..PlannerConfig::default()
            },
        );
        // Both orderings must cover the saving.
        assert!(base.planned_saving >= 3 * 256 * MB, "{base:?}");
        assert!(delta.planned_saving >= 3 * 256 * MB, "{delta:?}");
        // The orderings choose different swap/recompute splits: FT-ranked
        // head-of-line processing keeps the *longest-gap* congested swap,
        // the joint ordering keeps whichever swap is cheapest per byte
        // after the lane fills.
        let base_swapped: Vec<TensorKey> = base.swaps.keys().copied().collect();
        let delta_swapped: Vec<TensorKey> = delta.swaps.keys().copied().collect();
        assert_ne!(
            base_swapped, delta_swapped,
            "orderings agreed despite saturation: {delta:?}"
        );
        // Determinism: planning twice yields the identical plan.
        let again = make_plan(
            &p,
            &spec(),
            &PlannerConfig {
                delta_interleave: true,
                ..PlannerConfig::default()
            },
        );
        assert_eq!(delta.swaps, again.swaps);
        assert_eq!(delta.recompute_keys, again.recompute_keys);
    }

    #[test]
    fn non_recomputable_chain_falls_back_to_swap() {
        // Tensor whose lineage bottoms at a non-recomputable input.
        let mut p = profile(
            &[
                (0, MB, &[], 50, &[0, 2_000]), // dies before back-access
                (1, 256 * MB, &[0], 200, &[1_000, 11_000]),
            ],
            256 * MB,
        );
        p.info.get_mut(&TensorKey(0)).unwrap().recomputable = false;
        let plan = make_plan(&p, &spec(), &PlannerConfig::default());
        assert!(plan.swaps.contains_key(&TensorKey(1)), "{plan:?}");
        assert!(plan.recompute_keys.is_empty());
    }
}
