//! The Capuchin memory policy: passive mode, measured execution, policy
//! making, and guided execution with feedback.
//!
//! Lifecycle over training iterations (paper §4.2):
//!
//! * **iteration 0** — warm-up: weights materialize; passive mode handles
//!   any OOM (on-demand synchronous eviction, Fig. 6);
//! * **iteration 1** — *measured execution*: still passive, but every
//!   tensor access is recorded with ideal timestamps and lineage;
//! * **end of iteration 1** — the Policy Maker turns the profile into a
//!   [`Plan`] (FT-ranked swaps, then the hybrid swap/recompute phase);
//! * **iterations 2+** — *guided execution*: accesses matching the plan
//!   trigger proactive eviction, prefetch (in-triggers), or release-for-
//!   recompute; passive mode remains as a safety net, and feedback
//!   (late-prefetch waits, residual passive evictions) refines the plan
//!   between iterations.

use capuchin_executor::{AccessEvent, Engine, MemoryPolicy, PolicySnapshot};
use capuchin_sim::Duration;
use capuchin_tensor::TensorKey;

use crate::measure::MeasuredProfile;
use crate::plan::{EvictMethod, Plan};
use crate::planner::{install_in_trigger, make_plan, schedule_in_triggers, PlannerConfig};

/// Capuchin configuration; the switches correspond to the paper's
/// breakdown experiments (Fig. 8).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CapuchinConfig {
    /// Allow swap evictions (ATP swap path).
    pub enable_swap: bool,
    /// Allow recomputation evictions.
    pub enable_recompute: bool,
    /// Feedback-driven in-trigger adjustment (FA in Fig. 8a).
    pub feedback: bool,
    /// Lane-aware in-trigger placement (our refinement over the paper's
    /// naive per-tensor estimate; disable to reproduce the paper's FA
    /// breakdown).
    pub lane_aware: bool,
    /// Ablation: couple planned evictions to computation (synchronize the
    /// compute stream on each copy-out, vDNN-style) instead of the
    /// decoupled delay-sync-at-OOM of §5.3.
    pub coupled_swap: bool,
    /// Collective recomputation (CR in Fig. 8b).
    pub collective: bool,
    /// Fraction of the swap time by which a late prefetch is moved
    /// earlier per feedback round (the paper uses 5%).
    pub lead_step: f64,
    /// Keep a collective-recompute intermediate only if at least this
    /// fraction of device memory is free.
    pub keep_reserve: f64,
    /// Planner knobs.
    pub peak_threshold: f64,
    /// Headroom multiplier on the measured required saving.
    pub savings_margin: f64,
    /// Which iteration to measure (after weights have materialized).
    pub measure_iteration: u64,
    /// DELTA-style joint swap/recompute ordering
    /// ([`PlannerConfig::delta_interleave`]). The policy then reports
    /// itself as `delta`: same measured/guided lifecycle, different
    /// Policy Maker ordering.
    pub delta_interleave: bool,
}

impl Default for CapuchinConfig {
    fn default() -> CapuchinConfig {
        CapuchinConfig {
            enable_swap: true,
            enable_recompute: true,
            feedback: true,
            lane_aware: true,
            coupled_swap: false,
            collective: true,
            lead_step: 0.05,
            keep_reserve: 0.05,
            peak_threshold: 0.80,
            savings_margin: 1.05,
            measure_iteration: 1,
            delta_interleave: false,
        }
    }
}

impl CapuchinConfig {
    /// Swap-only configuration (Fig. 8a's "ATP+DS" variants).
    pub fn swap_only() -> CapuchinConfig {
        CapuchinConfig {
            enable_recompute: false,
            ..CapuchinConfig::default()
        }
    }

    /// Recompute-only configuration (Fig. 8b's "ATP" variants).
    pub fn recompute_only() -> CapuchinConfig {
        CapuchinConfig {
            enable_swap: false,
            ..CapuchinConfig::default()
        }
    }

    /// DELTA-style configuration (arXiv:2203.15980): identical lifecycle,
    /// but the Policy Maker interleaves swap and recompute candidates by
    /// priced overhead per byte instead of taking zero-overhead swaps
    /// first.
    pub fn delta() -> CapuchinConfig {
        CapuchinConfig {
            delta_interleave: true,
            ..CapuchinConfig::default()
        }
    }

    fn planner(&self) -> PlannerConfig {
        PlannerConfig {
            enable_swap: self.enable_swap,
            lane_aware: self.lane_aware,
            enable_recompute: self.enable_recompute,
            peak_threshold: self.peak_threshold,
            savings_margin: self.savings_margin,
            delta_interleave: self.delta_interleave,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    Passive,
    Measuring,
    Guided,
}

/// The Capuchin memory manager.
///
/// # Examples
///
/// ```
/// use capuchin::Capuchin;
/// use capuchin_executor::{Engine, EngineConfig};
/// use capuchin_models::ModelKind;
/// use capuchin_sim::DeviceSpec;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let model = ModelKind::ResNet50.build(8);
/// let cfg = EngineConfig {
///     spec: DeviceSpec::p100_pcie3().with_memory(600 << 20),
///     ..EngineConfig::default()
/// };
/// let mut engine = Engine::new(&model.graph, cfg, Box::new(Capuchin::new()));
/// engine.run(4)?; // would OOM under TfOri at this memory budget
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct Capuchin {
    cfg: CapuchinConfig,
    mode: Option<Mode>,
    profile: MeasuredProfile,
    plan: Plan,
    /// Extra saving demanded by refinement rounds (bytes passively
    /// evicted during guided execution).
    extra_saving: u64,
    /// Bounded number of re-planning rounds.
    replans: u32,
    /// Iterations executed so far (policy stability diagnostics).
    planned_at_iter: Option<u64>,
    /// Residual passive-eviction bytes observed under the current plan.
    last_residual: Option<u64>,
    /// Previous plan, for reverting when a refinement makes things worse.
    prev_plan: Option<(Plan, u64)>,
    /// Set when refinement has converged (or been reverted); no more
    /// re-planning.
    refinement_done: bool,
    /// Wall time of the measured (passive) iteration — the bar any plan
    /// must beat.
    measured_wall: Option<capuchin_sim::Duration>,
    /// Best guided iteration so far: (wall, plan, extra_saving).
    best: Option<(capuchin_sim::Duration, Plan, u64)>,
}

/// A resumable checkpoint of the Capuchin policy, produced by
/// [`MemoryPolicy::snapshot`] and carried inside an
/// [`capuchin_executor::EngineSnapshot`].
///
/// It holds the guided-execution [`Plan`], the [`MeasuredProfile`] (the
/// tensor-access track the plan was derived from), and the feedback /
/// refinement cursor, so a preempted job resumes guided execution exactly
/// where it stopped — no re-measuring, no re-planning.
#[derive(Debug, Clone)]
pub struct CapuchinSnapshot {
    state: Capuchin,
}

impl CapuchinSnapshot {
    /// The plan the resumed policy will execute under.
    pub fn plan(&self) -> &Plan {
        &self.state.plan
    }

    /// The measured profile (TAT) backing the plan.
    pub fn profile(&self) -> &MeasuredProfile {
        &self.state.profile
    }
}

impl Capuchin {
    /// Creates Capuchin with default configuration.
    pub fn new() -> Capuchin {
        Capuchin::with_config(CapuchinConfig::default())
    }

    /// Creates the DELTA variant ([`CapuchinConfig::delta`]): the same
    /// measured/guided lifecycle with the jointly-ordered Policy Maker.
    pub fn delta() -> Capuchin {
        Capuchin::with_config(CapuchinConfig::delta())
    }

    /// Stats/cache name: `delta` when the joint ordering is active, else
    /// `capuchin` — the two produce different plans and must never share
    /// a validation-cache entry.
    fn policy_name(&self) -> &'static str {
        if self.cfg.delta_interleave {
            "delta"
        } else {
            "capuchin"
        }
    }

    /// Creates Capuchin with an explicit configuration.
    pub fn with_config(cfg: CapuchinConfig) -> Capuchin {
        Capuchin {
            cfg,
            mode: None,
            profile: MeasuredProfile::default(),
            plan: Plan::default(),
            extra_saving: 0,
            replans: 0,
            planned_at_iter: None,
            last_residual: None,
            prev_plan: None,
            refinement_done: false,
            measured_wall: None,
            best: None,
        }
    }

    /// The current plan (empty before measured execution completes).
    pub fn plan(&self) -> &Plan {
        &self.plan
    }

    /// The measured profile (empty before measured execution).
    pub fn profile(&self) -> &MeasuredProfile {
        &self.profile
    }

    /// Passive mode (paper Fig. 6): on OOM, walk the tensor access list
    /// from the beginning and synchronously evict unpinned tensors until
    /// the allocation can succeed.
    fn passive_evict(&self, engine: &mut Engine<'_>, need: u64) -> bool {
        // First try an approximate-size match (paper Fig. 6: "look for one
        // or multiple tensors with an approximate size"): evicting a single
        // resident tensor at least as large as the request frees one
        // *contiguous* hole the allocation is guaranteed to fit in, which
        // defeats fragmentation that piecemeal eviction cannot.
        let size_match = engine
            .registry()
            .iter()
            .filter(|t| {
                t.status == capuchin_tensor::TensorStatus::In
                    && !t.meta.persistent
                    && t.device.is_some()
                    && t.size_bytes() >= need
                    && !engine.pinned().contains(&t.key())
            })
            .min_by_key(|t| (t.size_bytes(), t.key()))
            .map(|t| t.key());
        if let Some(key) = size_match {
            if self.evict_one(engine, key) && engine.device().can_alloc(need) {
                return true;
            }
        }
        let keys: Vec<TensorKey> = engine.access_log().iter().map(|a| a.key).collect();
        let mut evicted_any = false;
        let mut seen = std::collections::HashSet::new();
        for key in keys {
            if !seen.insert(key) || engine.pinned().contains(&key) {
                continue;
            }
            let evicted = self.evict_one(engine, key);
            if evicted {
                evicted_any = true;
                if engine.device().can_alloc(need) {
                    return true;
                }
            }
        }
        // Fragmentation defence: everything from the access list is gone
        // but no hole is big enough. Grow the largest free region by
        // evicting the allocations adjacent to it until the request fits.
        while engine.device().free_total() >= need && !engine.device().can_alloc(need) {
            if !self.grow_largest_hole(engine) {
                break;
            }
            evicted_any = true;
            if engine.device().can_alloc(need) {
                return true;
            }
        }
        evicted_any
    }

    /// Evicts one tensor bordering a free region so the region coalesces
    /// outward, trying regions largest-first. Returns `false` when no
    /// region has an evictable neighbour.
    fn grow_largest_hole(&self, engine: &mut Engine<'_>) -> bool {
        for (offset, size) in engine.device().free_regions() {
            let neighbors = [
                engine.device().neighbor_at(offset + size),
                engine.device().neighbor_before(offset),
            ];
            for id in neighbors.into_iter().flatten() {
                let key = engine
                    .registry()
                    .iter()
                    .find(|t| t.device.map(|a| a.id() == id).unwrap_or(false))
                    .map(|t| t.key());
                if let Some(key) = key {
                    if engine.pinned().contains(&key) {
                        continue;
                    }
                    if self.evict_one(engine, key) || engine.cancel_swap_in(key) {
                        return true;
                    }
                }
            }
        }
        false
    }

    /// Evicts one tensor: recompute-planned tensors (e.g. collectively-kept
    /// intermediates) are released for free — the dynamic "otherwise, its
    /// memory will be released" of §5.3 — while everything else pays for a
    /// synchronous PCIe copy.
    fn evict_one(&self, engine: &mut Engine<'_>, key: TensorKey) -> bool {
        if self.plan.recompute_keys.contains(&key) {
            let now = engine.now();
            let released = engine.release_for_recompute_at(key, now);
            if released {
                engine.process_matured_frees();
            }
            released
        } else {
            engine.swap_out_sync(key)
        }
    }
}

impl MemoryPolicy for Capuchin {
    fn name(&self) -> &str {
        self.policy_name()
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }

    fn snapshot(&self) -> Option<PolicySnapshot> {
        Some(PolicySnapshot::new(
            self.policy_name(),
            CapuchinSnapshot {
                state: self.clone(),
            },
        ))
    }

    fn restore(&mut self, snapshot: PolicySnapshot) -> bool {
        match snapshot.downcast::<CapuchinSnapshot>() {
            Ok(snap) => {
                *self = snap.state;
                true
            }
            Err(_) => false,
        }
    }

    fn on_iteration_start(&mut self, _engine: &mut Engine<'_>, iter: u64) {
        // A policy that has never measured but starts past the measure
        // iteration was restored across a batch change
        // (`Engine::restore_rebatched` drops the old-batch plan): measure
        // at the first iteration it sees, or guided mode would run an
        // empty plan forever.
        let measure_now = iter == self.cfg.measure_iteration
            || (iter > self.cfg.measure_iteration && self.planned_at_iter.is_none());
        self.mode = Some(if iter < self.cfg.measure_iteration {
            Mode::Passive
        } else if measure_now {
            self.profile.clear();
            Mode::Measuring
        } else {
            Mode::Guided
        });
    }

    fn post_access(&mut self, engine: &mut Engine<'_>, ev: &AccessEvent) {
        match self.mode {
            Some(Mode::Measuring) => self.profile.record(engine, ev),
            Some(Mode::Guided) => {
                // Planned eviction at this exact (tensor, count) access?
                match self.plan.evictions.get(&(ev.key, ev.count)) {
                    Some(EvictMethod::Swap) => {
                        if self.cfg.coupled_swap {
                            engine.swap_out_coupled(ev.key, ev.end);
                        } else {
                            engine.swap_out_async(ev.key, ev.end);
                        }
                    }
                    Some(EvictMethod::Recompute) => {
                        engine.release_for_recompute_at(ev.key, ev.end);
                    }
                    None => {}
                }
                // Prefetches triggered by this access.
                if let Some(targets) = self.plan.in_triggers.get(&(ev.key, ev.count)).cloned() {
                    for target in targets {
                        // A failed prefetch is recovered by passive mode at
                        // the back-access; never fatal here.
                        match engine.swap_in_async(target, ev.start) {
                            Ok(_) | Err(_) => {}
                        }
                    }
                }
            }
            _ => {}
        }
    }

    fn on_alloc_failure(&mut self, engine: &mut Engine<'_>, need: u64) -> bool {
        self.passive_evict(engine, need)
    }

    fn on_iteration_end(&mut self, engine: &mut Engine<'_>, iter: u64) {
        match self.mode {
            Some(Mode::Measuring) => {
                self.profile.finalize(engine, self.cfg.peak_threshold);
                self.plan = make_plan(&self.profile, engine.spec(), &self.cfg.planner());
                self.planned_at_iter = Some(iter);
                self.measured_wall = Some(engine.iter_stats().wall());
            }
            Some(Mode::Guided) => {
                // Feedback 1: prefetches that arrived late move their
                // in-trigger earlier by `lead_step` of the swap time.
                if self.cfg.feedback {
                    // `swapin_waits` is a BTreeMap, so iteration order is
                    // already deterministic (sorted by key).
                    let late: Vec<TensorKey> = engine
                        .swapin_waits()
                        .keys()
                        .copied()
                        .filter(|k| self.plan.swaps.contains_key(k))
                        .collect();
                    for key in late {
                        let step = self.plan.swaps[&key]
                            .swap_in_time
                            .mul_f64(self.cfg.lead_step);
                        let lead = self.plan.lead.entry(key).or_insert(Duration::ZERO);
                        *lead += step;
                        install_in_trigger(&mut self.plan, &self.profile, key);
                    }
                }
                // Feedback 2: residual passive evictions mean the plan
                // saves too little; demand more and re-plan — hill-climbing
                // with revert, so an over-correction that makes the
                // residual *grow* is rolled back instead of compounding.
                let residual = engine.iter_stats().passive_evict_bytes;
                let wall = engine.iter_stats().wall();
                // Track the best plan seen so far by wall time.
                if self
                    .best
                    .as_ref()
                    .map(|(w, _, _)| wall < *w)
                    .unwrap_or(true)
                {
                    self.best = Some((wall, self.plan.clone(), self.extra_saving));
                }
                if !self.refinement_done && self.planned_at_iter.is_some() {
                    let worse_residual =
                        matches!(self.last_residual, Some(prev) if residual >= prev);
                    if residual == 0 || self.replans >= 8 || worse_residual {
                        // Converged (or no longer improving): settle on the
                        // best plan observed. If even that never beat plain
                        // passive mode, run passive (empty plan).
                        self.refinement_done = true;
                        if let Some((best_wall, plan, extra)) = self.best.take() {
                            if self.measured_wall.map(|m| best_wall < m).unwrap_or(true) {
                                self.plan = plan;
                                self.extra_saving = extra;
                            } else {
                                self.plan = Plan::default();
                            }
                        }
                    } else {
                        self.prev_plan = Some((self.plan.clone(), self.extra_saving));
                        self.last_residual = Some(residual);
                        // Clamped step: a huge residual (fragmentation
                        // thrash) must not blow the target up in one jump.
                        let step = residual.min((self.profile.required_saving / 4).max(1 << 28));
                        self.extra_saving += step;
                        self.replans += 1;
                        let mut profile = self.profile.clone();
                        profile.required_saving += self.extra_saving;
                        let lead = std::mem::take(&mut self.plan.lead);
                        self.plan = make_plan(&profile, engine.spec(), &self.cfg.planner());
                        self.plan.lead = lead;
                        schedule_in_triggers(&mut self.plan, &self.profile);
                    }
                }
            }
            _ => {}
        }
    }

    fn keep_recompute_intermediate(
        &mut self,
        engine: &Engine<'_>,
        key: TensorKey,
        _target: TensorKey,
    ) -> bool {
        if !self.cfg.collective || !self.plan.recompute_keys.contains(&key) {
            return false;
        }
        // Keep only while memory is comfortable (paper §5.3: "T2 will be
        // still kept if the memory is enough; otherwise released").
        let reserve = (engine.spec().memory_bytes as f64 * self.cfg.keep_reserve) as u64;
        engine.device().free_total() >= reserve
    }
}
