//! The Tensor Access Tracker's measured-execution profile.
//!
//! During *measured execution* (the first full training iteration, run in
//! passive mode) Capuchin records every tensor access with its GPU-timeline
//! timestamp, the producing op's duration, the live-memory level, and each
//! tensor's lineage (paper §4.2, §5.2). Passive-mode stall time is
//! subtracted to recover the *ideal* timestamps — the times accesses would
//! occur with infinite memory — which all policy arithmetic uses.

use std::collections::HashMap;

use capuchin_executor::{AccessEvent, Engine};
use capuchin_graph::OpId;
use capuchin_sim::{Duration, Time};
use capuchin_tensor::{AccessKind, TensorKey};
use serde::{Deserialize, Serialize};

/// One access in the measured sequence, with stall-corrected timestamps.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MeasuredAccess {
    /// Which tensor.
    pub key: TensorKey,
    /// Access counter value (1 = produce).
    pub count: u32,
    /// Read or produce.
    pub kind: AccessKind,
    /// Op performing the access.
    pub op: OpId,
    /// Ideal access time (kernel start for reads, kernel end for
    /// produces), with accumulated passive-mode stall subtracted.
    pub time: Time,
    /// Ideal kernel end time.
    pub end: Time,
    /// Device bytes in use when the access was issued.
    pub mem_in_use: u64,
}

/// Per-tensor facts snapshotted from the registry before the measured
/// iteration's state is swept.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TensorInfo {
    /// Tensor size in bytes.
    pub size: u64,
    /// Lineage: inputs of the producing op.
    pub inputs: Vec<TensorKey>,
    /// Whether lineage replay can regenerate it.
    pub recomputable: bool,
    /// Whether it is a persistent weight.
    pub persistent: bool,
    /// Producing op's (ideal) kernel duration, for recompute costing.
    pub op_duration: Duration,
    /// Ideal time of the tensor's last access in the iteration.
    pub last_access: Time,
    /// Human-readable name.
    pub name: String,
}

/// The complete measured profile of one iteration.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct MeasuredProfile {
    /// The access sequence in issue order.
    pub seq: Vec<MeasuredAccess>,
    /// Per-tensor access indices into `seq`.
    pub accesses_of: HashMap<TensorKey, Vec<usize>>,
    /// Per-tensor facts.
    pub info: HashMap<TensorKey, TensorInfo>,
    /// Total bytes the passive mode had to evict — the memory saving the
    /// plan must achieve (paper §4.5).
    pub required_saving: u64,
    /// Peak live memory observed.
    pub peak_mem: u64,
    /// Peak live memory an infinitely large device would have held.
    pub ideal_peak: u64,
    /// Time window during which memory was above the peak threshold.
    pub peak_window: (Time, Time),
}

impl MeasuredProfile {
    /// Records one access during measured execution.
    pub fn record(&mut self, engine: &Engine<'_>, ev: &AccessEvent) {
        let stall = engine.stall_total();
        let idx = self.seq.len();
        self.seq.push(MeasuredAccess {
            key: ev.key,
            count: ev.count,
            kind: ev.kind,
            op: ev.op,
            time: ev.start.saturating_sub(stall),
            end: ev.end.saturating_sub(stall),
            mem_in_use: engine.device().in_use(),
        });
        self.accesses_of.entry(ev.key).or_default().push(idx);
    }

    /// Finalizes the profile at the end of the measured iteration:
    /// snapshots tensor facts from the registry and computes the peak
    /// window.
    pub fn finalize(&mut self, engine: &Engine<'_>, peak_threshold: f64) {
        // Tensor facts, including producing-op durations recovered from
        // the produce accesses (output end − input start of the same op).
        let mut produce_dur: HashMap<TensorKey, Duration> = HashMap::new();
        let mut op_start: HashMap<OpId, Time> = HashMap::new();
        for a in &self.seq {
            match a.kind {
                AccessKind::Read => {
                    let e = op_start.entry(a.op).or_insert(a.time);
                    *e = (*e).min(a.time);
                }
                AccessKind::Produce => {
                    let start = op_start.get(&a.op).copied().unwrap_or(a.time);
                    produce_dur.insert(a.key, a.end.saturating_since(start));
                }
            }
        }
        for t in engine.registry().iter() {
            let key = t.key();
            let last_access = self
                .accesses_of
                .get(&key)
                .and_then(|v| v.last())
                .map(|&i| self.seq[i].time)
                .unwrap_or(Time::ZERO);
            self.info.insert(
                key,
                TensorInfo {
                    size: t.size_bytes(),
                    inputs: t.meta.inputs.clone(),
                    recomputable: t.meta.recomputable,
                    persistent: t.meta.persistent,
                    op_duration: produce_dur.get(&key).copied().unwrap_or(Duration::ZERO),
                    last_access,
                    name: t.meta.name.clone(),
                },
            );
        }

        // Required saving: the ideal live-memory peak (what an infinite
        // device would hold, from first to last access of every tensor)
        // versus the real capacity. Passive-eviction byte counts
        // overestimate badly at deep oversubscription because the same
        // tensor can be paged in and out repeatedly.
        let mut events: Vec<(Time, i64)> = Vec::new();
        let mut baseline: i64 = 0;
        for (key, info) in &self.info {
            if info.persistent {
                baseline += info.size as i64;
                continue;
            }
            let Some(ids) = self.accesses_of.get(key) else {
                continue;
            };
            let first = self.seq[*ids.first().expect("non-empty")].time;
            let last = self.seq[*ids.last().expect("non-empty")].end;
            events.push((first, info.size as i64));
            events.push((last, -(info.size as i64)));
        }
        events.sort();
        let mut live = baseline;
        let mut ideal_peak = baseline;
        for (_, delta) in events {
            live += delta;
            ideal_peak = ideal_peak.max(live);
        }
        self.ideal_peak = ideal_peak.max(0) as u64;
        self.required_saving = self
            .ideal_peak
            .saturating_sub(engine.spec().memory_bytes)
            .max(if engine.iter_stats().passive_evict_bytes > 0 {
                // Passive mode fired, so *some* saving is definitely needed
                // even if the sweep says otherwise (workspace, alignment,
                // fragmentation slop).
                engine.spec().memory_bytes / 64
            } else {
                0
            });
        self.peak_mem = self.seq.iter().map(|a| a.mem_in_use).max().unwrap_or(0);
        let threshold = (self.peak_mem as f64 * peak_threshold) as u64;
        let mut w0 = None;
        let mut w1 = Time::ZERO;
        for a in &self.seq {
            if a.mem_in_use >= threshold {
                w0.get_or_insert(a.time);
                w1 = w1.max(a.time);
            }
        }
        self.peak_window = (w0.unwrap_or(Time::ZERO), w1);
    }

    /// The ideal time of access `(key, count)`, if it was measured.
    pub fn time_of(&self, key: TensorKey, count: u32) -> Option<Time> {
        self.accesses_of
            .get(&key)?
            .iter()
            .map(|&i| &self.seq[i])
            .find(|a| a.count == count)
            .map(|a| a.time)
    }

    /// Consecutive access pairs of a tensor as `(evicted_count,
    /// back_count, evicted_end_time, back_start_time)`.
    pub fn pairs_of(&self, key: TensorKey) -> Vec<(u32, u32, Time, Time)> {
        let Some(ids) = self.accesses_of.get(&key) else {
            return Vec::new();
        };
        ids.windows(2)
            .map(|w| {
                let a = &self.seq[w[0]];
                let b = &self.seq[w[1]];
                (a.count, b.count, a.end, b.time)
            })
            .collect()
    }

    /// Whether the interval `(t1, t2)` overlaps the peak-memory window.
    pub fn overlaps_peak(&self, t1: Time, t2: Time) -> bool {
        let (w0, w1) = self.peak_window;
        t1 < w1 && t2 > w0
    }

    /// Resets the profile for re-measurement.
    pub fn clear(&mut self) {
        *self = MeasuredProfile::default();
    }
}
