//! Gang-scheduling and interconnect invariants:
//!
//! 1. **All-or-nothing gangs** — a job either holds its full gang width
//!    (distinct GPUs) or nothing; no partial gang is ever visible in the
//!    final stats, and per-GPU reservation peaks never exceed capacity
//!    at any simulated instant (reservations are granted atomically by
//!    the single-threaded event loop).
//! 2. **No reservation deadlock** — every run terminates with every job
//!    in a terminal outcome: Completed, or Rejected (gang wider than the
//!    cluster, or a per-replica minimum wider than a device). With
//!    preemption off and validated replays, nothing is Aborted, Starved
//!    or stuck Preempted.
//! 3. **Determinism** — same workload, same configuration → byte-identical
//!    cluster-stats JSON, gangs and fabric included.
//! 4. **No-contention limit** — an [`InterconnectSpec::unconstrained`]
//!    fabric (infinite bandwidth, zero overhead) reproduces the
//!    interconnect-off timings exactly, job by job: the fabric model adds
//!    nothing but the queueing it exists to model.

use capuchin_cluster::{
    AdmissionMode, Cluster, ClusterConfig, JobOutcome, JobPolicy, JobSpec, StrategyKind,
};
use capuchin_models::ModelKind;
use capuchin_sim::{DeviceSpec, InterconnectSpec};
use proptest::prelude::*;

/// Small-footprint menu so each case's measuring runs stay fast. Gang
/// widths up to 4 against 2–3 GPU clusters exercise both placement and
/// the too-wide rejection path.
const MENU: &[(ModelKind, usize)] = &[(ModelKind::ResNet50, 16), (ModelKind::DenseNet121, 16)];

fn jobs_from(picks: Vec<(usize, u64, u32, u64, usize)>) -> Vec<JobSpec> {
    picks
        .into_iter()
        .enumerate()
        .map(|(i, (menu, iters, priority, slot, gang))| {
            let (model, batch) = MENU[menu % MENU.len()];
            JobSpec {
                name: format!("job{i:02}"),
                model,
                batch,
                gpus: gang,
                policy: JobPolicy::TfOri,
                iters: 2 + iters,
                priority,
                arrival_time: slot as f64 * 0.05,
                elastic: false,
                ..JobSpec::default()
            }
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn gangs_are_atomic_deadlock_free_and_deterministic(
        picks in prop::collection::vec(
            (0usize..2, 0u64..3, 0u32..3, 0u64..6, 1usize..5),
            1..5,
        ),
        gpus in 2usize..4,
        fifo in prop_oneof![Just(true), Just(false)],
        shared_fabric in prop_oneof![Just(true), Just(false)],
    ) {
        let jobs = jobs_from(picks);
        let cfg = |ic: Option<InterconnectSpec>| {
            ClusterConfig::builder()
                .gpus(gpus)
                .spec(DeviceSpec::p100_pcie3().with_memory(3 << 29)) // 1.5 GiB
                .admission(AdmissionMode::TfOri)
                .strategy(if fifo {
                    StrategyKind::FifoFirstFit
                } else {
                    StrategyKind::BestFit
                })
                .aging_rate(0.1)
                .validate_iters(3)
                .interconnect(ic)
                .build()
                .expect("valid config")
        };
        let fabric = shared_fabric.then(InterconnectSpec::pcie_shared);
        let a = Cluster::new(cfg(fabric.clone())).run(&jobs);
        let b = Cluster::new(cfg(fabric)).run(&jobs);

        // (3) Determinism: byte-identical stats JSON.
        prop_assert_eq!(a.to_json(), b.to_json());

        // (1) All-or-nothing gangs on distinct devices; no over-commit.
        for j in &a.jobs {
            prop_assert!(
                j.gpus_used.is_empty() || j.gpus_used.len() == j.replicas,
                "{} holds a partial gang: {:?} of {}",
                j.name, j.gpus_used, j.replicas
            );
            let mut distinct = j.gpus_used.clone();
            distinct.sort_unstable();
            distinct.dedup();
            prop_assert_eq!(distinct.len(), j.gpus_used.len(), "duplicate GPU in a gang");
        }
        for g in &a.per_gpu {
            prop_assert!(
                g.peak_reserved_bytes <= g.capacity,
                "gpu {} over-committed: peak {} > capacity {}",
                g.gpu, g.peak_reserved_bytes, g.capacity
            );
        }

        // (2) Termination in a terminal outcome; too-wide gangs rejected.
        prop_assert_eq!(a.midrun_oom_aborts, 0);
        for (j, spec) in a.jobs.iter().zip(jobs.iter()) {
            prop_assert!(
                matches!(j.outcome, JobOutcome::Completed | JobOutcome::Rejected),
                "{} ended {:?}; gang scheduling must terminate every job",
                j.name, j.outcome
            );
            if spec.gpus > gpus {
                prop_assert_eq!(j.outcome, JobOutcome::Rejected, "{}", &j.name);
            }
        }
    }

    /// (4) The unconstrained fabric is the identity: routing traffic over
    /// infinite bandwidth must reproduce the interconnect-off timings
    /// exactly for every job — singles and gangs alike.
    #[test]
    fn unconstrained_fabric_reproduces_off_timings(
        picks in prop::collection::vec(
            (0usize..2, 0u64..3, 0u32..3, 0u64..6, 1usize..3),
            1..4,
        ),
        fifo in prop_oneof![Just(true), Just(false)],
    ) {
        let jobs = jobs_from(picks);
        let cfg = |ic: Option<InterconnectSpec>| {
            ClusterConfig::builder()
                .gpus(2)
                .spec(DeviceSpec::p100_pcie3().with_memory(3 << 29))
                .admission(AdmissionMode::TfOri)
                .strategy(if fifo {
                    StrategyKind::FifoFirstFit
                } else {
                    StrategyKind::BestFit
                })
                .aging_rate(0.1)
                .validate_iters(3)
                .interconnect(ic)
                .build()
                .expect("valid config")
        };
        let off = Cluster::new(cfg(None)).run(&jobs);
        let free = Cluster::new(cfg(Some(InterconnectSpec::unconstrained()))).run(&jobs);
        prop_assert_eq!(off.makespan, free.makespan);
        for (a, b) in off.jobs.iter().zip(free.jobs.iter()) {
            prop_assert_eq!(&a.outcome, &b.outcome, "{}: outcome drifted", &a.name);
            prop_assert_eq!(a.jct, b.jct, "{}: jct drifted", &a.name);
            prop_assert_eq!(a.queueing_delay, b.queueing_delay, "{}", &a.name);
            prop_assert_eq!(a.mean_iter, b.mean_iter, "{}", &a.name);
            prop_assert_eq!(&a.gpus_used, &b.gpus_used, "{}: placement drifted", &a.name);
        }
    }
}
