//! Scale-path invariants: the incremental headroom index and the indexed
//! strategy picks must be *byte-identical* to the brute-force re-scan
//! they replaced, on arbitrary reservation histories.
//!
//! 1. **Index = scan** — after any interleaving of reserve / partial
//!    release / full release (preempt) / regrow mutations, every
//!    [`GpuPool`] query (max, first-at-least, count-at-least, domain
//!    search) answers exactly what a linear scan answers.
//! 2. **Pick = brute pick** — for arbitrary candidate sets (singles and
//!    gangs, random priorities, arrivals and failed budgets) both
//!    [`FifoFirstFit`] and [`BestFit`] return the same `(job, gang)`
//!    through the indexed [`PlacementStrategy::pick`] as through the
//!    retained [`PlacementStrategy::pick_brute`] reference.
//! 3. **Eligible-subset feed** — [`BestFit`] declares itself
//!    order-insensitive, which lets the cluster feed `pick` only the
//!    candidates whose fit threshold clears the best headroom (a
//!    threshold-index range). Feeding that subset, in threshold order,
//!    must reproduce the full-queue pick exactly.
//! 4. **Same-seed determinism at scale** — a 64-GPU / 2k-job mixed
//!    workload over every scheduling feature produces byte-identical
//!    stats JSON run to run.

use capuchin_cluster::{
    threshold_fits, AdmissionMode, BestFit, CandidateJob, Cluster, ClusterConfig, FifoFirstFit,
    GpuPool, PlacementStrategy, StrategyKind,
};
use capuchin_sim::Time;
use proptest::prelude::*;

/// Candidate knobs: `(priority, arrival slot, gang width, full-need
/// eighths, min-need eighths, failed-budget eighths)`. Eighths are scaled
/// against the capacity menu below so thresholds land on, above and below
/// real headroom values.
type CandKnobs = (u32, u64, usize, u8, u8, Option<u8>);

const CAPS: &[u64] = &[64, 96, 128];

fn build_pool(caps: &[u64], domains: &[usize]) -> GpuPool {
    GpuPool::new(caps.to_vec(), domains.to_vec())
}

fn candidates_from(knobs: &[CandKnobs]) -> Vec<CandidateJob> {
    knobs
        .iter()
        .enumerate()
        .map(|(i, &(priority, slot, gpus, full8, min8, failed8))| {
            let full_need = 16 * full8 as u64;
            CandidateJob {
                job: i,
                arrival: Time::from_micros(slot * 250_000),
                priority,
                gpus,
                full_need,
                // The cluster invariant: min never exceeds full.
                min_need: (16 * min8 as u64).min(full_need),
                failed_budget: failed8.map(|f| 16 * f as u64),
                boost_permille: 0,
            }
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn indexed_queries_and_picks_match_brute_scan(
        shape in prop::collection::vec((0usize..CAPS.len(), 0usize..4), 1..20),
        // Each mutation is (device, new reservation in eighths of its
        // capacity): `0/8` is a full release (the preemption / completion
        // shape), climbing values are regrows, descending values are
        // partial releases — together an arbitrary interleaving.
        muts in prop::collection::vec((0usize..32, 0u8..9), 0..40),
        knobs in prop::collection::vec(
            // The last knob folds `Option` into an integer (0 = no
            // failed budget) — the vendored proptest has no option
            // combinator.
            (0u32..4, 0u64..8, 1usize..5, 0u8..9, 0u8..9, (0u8..10).prop_map(|v| v.checked_sub(1))),
            0..8,
        ),
        aging in prop_oneof![Just(0.0), Just(0.1), Just(1.0)],
        now_slot in 0u64..16,
    ) {
        let caps: Vec<u64> = shape.iter().map(|&(c, _)| CAPS[c]).collect();
        let domains: Vec<usize> = shape.iter().map(|&(_, d)| d).collect();
        let mut pool = build_pool(&caps, &domains);
        let mut shadow: Vec<u64> = vec![0; caps.len()];

        // (1) Replay the mutation history, diffing every query against
        // the shadow scan after each step.
        for &(g, eighths) in &muts {
            let g = g % caps.len();
            let reserved = caps[g] * eighths as u64 / 8;
            shadow[g] = reserved;
            pool.set_reserved(g, reserved);

            let head = |g: usize| caps[g] - shadow[g];
            let brute_max = (0..caps.len()).map(head).max().unwrap_or(0);
            prop_assert_eq!(pool.max_headroom(), brute_max);
            for t in [0u64, 1, 16, 48, 64, 96, 128, 129] {
                let fitting: Vec<usize> = (0..caps.len()).filter(|&i| head(i) >= t).collect();
                prop_assert_eq!(
                    pool.first_at_least(0, t),
                    fitting.first().copied(),
                    "first_at_least(0, {})", t
                );
                for limit in [0usize, 1, 2, caps.len() + 1] {
                    prop_assert_eq!(
                        pool.count_at_least(t, limit),
                        fitting.len().min(limit),
                        "count_at_least({}, {})", t, limit
                    );
                }
                let ndomains = domains.iter().max().map_or(0, |&d| d + 1);
                let brute_dom = (0..ndomains)
                    .find(|&d| (0..caps.len()).any(|i| domains[i] == d && head(i) >= t));
                prop_assert_eq!(
                    pool.next_domain_at_least(0, t),
                    brute_dom,
                    "next_domain_at_least(0, {})", t
                );
            }
        }

        // (2) Indexed pick == brute pick, for both strategies, on the
        // final pool state.
        let pending = candidates_from(&knobs);
        let views = pool.views();
        let now = Time::from_micros(now_slot * 500_000);
        let fifo = FifoFirstFit;
        let best = BestFit { aging_rate: aging };
        for strategy in [&fifo as &dyn PlacementStrategy, &best] {
            let indexed = strategy.pick(&mut pending.iter().copied(), &pool, now);
            let brute = strategy.pick_brute(&pending, &views, now, &threshold_fits);
            prop_assert_eq!(
                indexed.clone(), brute,
                "{}: indexed pick diverged from brute scan", strategy.name()
            );
            // Picks are pure: the same inputs reproduce the same answer
            // (what makes the cluster's generation-keyed memoization of
            // single-candidate ladder probes sound).
            let again = strategy.pick(&mut pending.iter().copied(), &pool, now);
            prop_assert_eq!(indexed, again, "{}: pick is not a pure function", strategy.name());
        }

        // (3) The eligible-subset feed: exactly what the cluster's
        // threshold index hands an order-insensitive strategy — only
        // candidates whose threshold clears the best headroom, ordered
        // by (threshold, queue position) instead of queue position.
        prop_assert!(best.order_insensitive());
        let cap = pool.max_headroom();
        let mut eligible: Vec<(u64, usize)> = pending
            .iter()
            .filter_map(|c| c.fit_threshold().filter(|&t| t <= cap).map(|t| (t, c.job)))
            .collect();
        eligible.sort_unstable();
        let full = best.pick(&mut pending.iter().copied(), &pool, now);
        let subset = best.pick(
            &mut eligible.iter().map(|&(_, j)| pending[j]),
            &pool,
            now,
        );
        prop_assert_eq!(full, subset, "eligible-subset pick diverged from full-queue pick");
    }
}

/// (4) Same-seed determinism at the smoke scenario's scale, with every
/// scheduling feature on: the settle fast paths (fit floor, threshold
/// index, ladder memo) must not perturb a single byte of the stats JSON.
#[test]
fn same_seed_mixed_scale_run_is_byte_identical() {
    let jobs = capuchin_cluster::synthetic_mixed_jobs(2_000, 64, 7, 0.02);
    let cfg = || {
        ClusterConfig::builder()
            .gpus(64)
            .strategy(StrategyKind::BestFit)
            .admission(AdmissionMode::TfOri)
            .preemption(true)
            .elastic(true)
            .build()
            .expect("valid scale config")
    };
    let a = Cluster::new(cfg()).run(&jobs);
    let b = Cluster::new(cfg()).run(&jobs);
    assert_eq!(a.to_json(), b.to_json());
    assert!(
        a.jobs.len() == 2_000,
        "every submitted job must appear in the stats"
    );
}
