//! Predictive-admission properties (the safety story of the footprint
//! predictor PR):
//!
//! 1. **No over-commit, even under-shooting** — warm-key jobs admitted
//!    from a fitted prediction (including flat fits queried far from the
//!    fitted batch, which under-shoot badly under tf-ori admission)
//!    never push any GPU past capacity at any simulated instant.
//! 2. **Mispredictions recover** — a job whose prediction is caught
//!    under-shooting at an iteration boundary is checkpoint-preempted,
//!    re-admitted with measured needs, and still completes; its
//!    provenance flips to `measured` and the re-measurement runs are
//!    billed to it.
//! 3. **Warm keys are validation-free** — any job that finishes with
//!    `predicted` provenance was charged zero validation-engine runs,
//!    and per-job `admission_validations` still sums to the controller
//!    total.
//! 4. **`predictive off` is inert** — same seed, predictor disabled
//!    (whatever the margin/min-samples knobs say) ⇒ stats JSON
//!    byte-identical to the default builder's, and the predictor
//!    counters stay zero.

use capuchin_cluster::{
    synthetic_jobs, AdmissionMode, Cluster, ClusterConfig, JobPolicy, JobSpec, StrategyKind,
};
use capuchin_models::ModelKind;
use capuchin_sim::DeviceSpec;
use proptest::prelude::*;

/// One (model, policy, class) family per case so keys actually go warm;
/// the batch menu spans 3× so flat single-sample fits queried at the far
/// end under-shoot past the +15% safety margin under tf-ori admission.
const BATCHES: &[usize] = &[16, 32, 48];

fn family_jobs(picks: &[(usize, u64, u32)]) -> Vec<JobSpec> {
    picks
        .iter()
        .enumerate()
        .map(|(i, &(batch, iters, priority))| JobSpec {
            name: format!("fam{i:02}"),
            model: ModelKind::ResNet50,
            batch: BATCHES[batch % BATCHES.len()],
            gpus: 1,
            policy: JobPolicy::TfOri,
            iters: 1 + iters,
            priority,
            // Wide spacing: early jobs complete (feeding the predictor)
            // before later arrivals query it, so warm-key admissions
            // actually occur across the sample space.
            arrival_time: i as f64 * 400.0,
            elastic: false,
            ..JobSpec::default()
        })
        .collect()
}

fn predictive_cluster(gpus: usize, capacity: u64) -> ClusterConfig {
    ClusterConfig::builder()
        .gpus(gpus)
        .spec(DeviceSpec::p100_pcie3().with_memory(capacity))
        // tf-ori admission requires the slack-padded true peak, so a
        // flat fit queried at 3× the fitted batch is guaranteed to
        // under-shoot — the recovery path is exercised, not just coded.
        .admission(AdmissionMode::TfOri)
        .strategy(StrategyKind::FifoFirstFit)
        .predictive(true)
        .min_samples(1)
        .build()
        .expect("cluster config")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn predicted_admissions_never_overcommit_and_recover(
        picks in prop::collection::vec((0usize..3, 0u64..3, 0u32..3), 2..5),
        gpus in 1usize..3,
    ) {
        let jobs = family_jobs(&picks);
        let mut cluster = Cluster::new(predictive_cluster(gpus, 16 << 30));
        let stats = cluster.run(&jobs);

        // (1) No over-commit at any simulated instant, on any GPU, even
        // when a warm-key grant came from an under-shooting prediction.
        for g in &stats.per_gpu {
            prop_assert!(
                g.peak_reserved_bytes <= g.capacity,
                "gpu {} over-committed: peak {} > capacity {}",
                g.gpu, g.peak_reserved_bytes, g.capacity
            );
        }

        // (2) Capacity is generous (16 GiB), so every job — mispredicted
        // or not — must run to completion; recovery never strands a job.
        prop_assert_eq!(stats.completed, stats.submitted, "a job failed to complete");
        for j in &stats.jobs {
            if j.mispredict_recoveries > 0 {
                prop_assert_eq!(
                    j.admission_source.as_str(), "measured",
                    "job {} recovered but kept predicted provenance", j.name
                );
                prop_assert!(
                    j.admission_validations > 0,
                    "job {} re-measured for free", j.name
                );
                prop_assert!(
                    j.prediction_error_permille > 0,
                    "job {} recovered from a zero-error prediction", j.name
                );
            }
        }

        // (3) Warm-key grants that held are validation-free, and every
        // engine run the controller performed is billed to exactly one
        // job — the predictor cannot leak unattributed measurements.
        for j in &stats.jobs {
            if j.admission_source == "predicted" {
                prop_assert_eq!(
                    j.admission_validations, 0,
                    "predicted job {} charged a validation run", j.name
                );
                prop_assert!(j.predicted_bytes > 0, "predicted job {} granted 0 bytes", j.name);
            }
        }
        let billed: u64 = stats.jobs.iter().map(|j| j.admission_validations).sum();
        prop_assert_eq!(
            billed, cluster.validation_runs(),
            "per-job admission_validations must sum to the controller total"
        );

        // The first arrival always finds a cold key; later same-batch or
        // warm-key arrivals must have consulted the predictor.
        prop_assert!(stats.predictor_misses >= 1, "seed arrival never missed");
        prop_assert_eq!(
            stats.predictor_hits + stats.predictor_misses,
            stats.submitted as u64,
            "every arrival of a predictable measured policy consults the predictor"
        );

        // Determinism: same workload, same config ⇒ byte-identical JSON.
        let again = Cluster::new(predictive_cluster(gpus, 16 << 30)).run(&jobs);
        prop_assert_eq!(stats.to_json(), again.to_json());
    }

    #[test]
    fn predictive_off_is_inert_whatever_the_knobs_say(
        n in 2usize..6,
        seed in 0u64..4,
        margin in 1000u64..3000,
        min_samples in 1u64..8,
    ) {
        // (4) With the predictor disabled, the margin and sample knobs
        // are dead weight: stats are byte-identical to the default
        // builder's on the same seed, and no predictor counter moves.
        let jobs = synthetic_jobs(n, seed, 1.0);
        let base = ClusterConfig::builder()
            .gpus(2)
            .build()
            .expect("base config");
        let off = ClusterConfig::builder()
            .gpus(2)
            .predictive(false)
            .safety_margin_permille(margin)
            .min_samples(min_samples)
            .build()
            .expect("off config");
        let want = Cluster::new(base).run(&jobs);
        let got = Cluster::new(off).run(&jobs);
        prop_assert_eq!(want.to_json(), got.to_json());
        prop_assert_eq!(got.predictor_hits, 0);
        prop_assert_eq!(got.predictor_misses, 0);
        prop_assert_eq!(got.mispredict_recoveries, 0);
    }
}
