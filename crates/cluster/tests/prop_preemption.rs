//! Checkpoint-preemption invariants (the cluster-level counterpart of
//! `crates/core/tests/snapshot_resume.rs`, which proves the engine-level
//! half: a resumed run replays the exact per-iteration signature of an
//! uninterrupted one):
//!
//! 1. **No over-commit** — with preemption enabled, the sum of
//!    reservations on a GPU never exceeds its capacity at any simulated
//!    instant, even while checkpoint/restore copies are in flight.
//! 2. **Determinism** — preemption-enabled runs are byte-identical for
//!    the same workload.
//! 3. **Conservative fallback** — when no preemption fires, the
//!    preemption-enabled run is byte-identical to the disabled one; and
//!    the disabled run never preempts.
//! 4. **Resume completeness** — a preempted job either resumed and
//!    completed or is still checkpoint-resumable at drain (never aborted,
//!    never silently starved), and every preemption's PCIe
//!    checkpoint/restore cost is visible in its accounting.

use capuchin_cluster::{
    AdmissionMode, Cluster, ClusterConfig, JobOutcome, JobPolicy, JobSpec, StrategyKind,
};
use capuchin_models::ModelKind;
use capuchin_sim::{DeviceSpec, Duration};
use proptest::prelude::*;

/// Small-footprint menu so measuring/validation runs stay fast; devices
/// are sized (1–1.5 GiB) so only one job fits at a time and priority
/// inversions force preemption decisions.
const MENU: &[(ModelKind, usize)] = &[(ModelKind::ResNet50, 16), (ModelKind::DenseNet121, 16)];

fn jobs_from(picks: Vec<(usize, u64, u32, u64)>) -> Vec<JobSpec> {
    picks
        .into_iter()
        .enumerate()
        .map(|(i, (menu, iters, priority, slot))| {
            let (model, batch) = MENU[menu % MENU.len()];
            JobSpec {
                name: format!("job{i:02}"),
                model,
                batch,
                gpus: 1,
                policy: JobPolicy::TfOri,
                iters: 1 + iters,
                priority,
                arrival_time: slot as f64 * 0.07,
                elastic: false,
                ..JobSpec::default()
            }
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn preemption_is_safe_deterministic_and_resumable(
        picks in prop::collection::vec(
            (0usize..2, 1u64..6, 0u32..8, 0u64..8),
            2..5,
        ),
        gpus in 1usize..3,
        capacity_gib_halves in 2u64..4, // 1.0, 1.5 GiB
    ) {
        let jobs = jobs_from(picks);
        let cfg = |preemption: bool| {
            ClusterConfig::builder()
                .gpus(gpus)
                .spec(DeviceSpec::p100_pcie3().with_memory(capacity_gib_halves << 29))
                .admission(AdmissionMode::TfOri)
                .strategy(StrategyKind::BestFit)
                .aging_rate(1.0) // waiting high-priority jobs overtake quickly
                .validate_iters(3)
                .preemption(preemption)
                .build()
                .expect("valid config")
        };
        let on = Cluster::new(cfg(true)).run(&jobs);
        let on_again = Cluster::new(cfg(true)).run(&jobs);
        let off = Cluster::new(cfg(false)).run(&jobs);

        // (2) Determinism with preemption enabled.
        prop_assert_eq!(on.to_json(), on_again.to_json());

        // (1) No over-commit at any simulated instant, on any GPU.
        for g in &on.per_gpu {
            prop_assert!(
                g.peak_reserved_bytes <= g.capacity,
                "gpu {} over-committed: peak {} > capacity {}",
                g.gpu, g.peak_reserved_bytes, g.capacity
            );
        }

        // (3) Disabled runs never preempt; and when the enabled run never
        // needed to preempt either, the two are byte-identical.
        prop_assert_eq!(off.preemptions, 0);
        prop_assert!(off.jobs.iter().all(|j| j.preemptions == 0));
        if on.preemptions == 0 {
            prop_assert_eq!(on.to_json(), off.to_json());
        }

        // Admission decisions are orthogonal to preemption: the measured
        // footprints and the rejection set must match exactly.
        for (a, b) in on.jobs.iter().zip(off.jobs.iter()) {
            prop_assert_eq!(a.footprint_bytes, b.footprint_bytes);
            prop_assert_eq!(
                a.outcome == JobOutcome::Rejected,
                b.outcome == JobOutcome::Rejected
            );
        }

        // (4) Preempted jobs resume and complete (or stay resumable);
        // the checkpoint/restore PCIe time is accounted on their clock.
        prop_assert_eq!(on.midrun_oom_aborts, 0);
        for j in &on.jobs {
            if j.preemptions == 0 {
                prop_assert_eq!(j.wasted_work, Duration::ZERO);
                prop_assert_eq!(j.checkpoint_overhead, Duration::ZERO);
                continue;
            }
            prop_assert!(j.checkpoint_overhead > Duration::ZERO);
            match j.outcome {
                JobOutcome::Completed => {
                    prop_assert!(j.resume_latency > Duration::ZERO);
                }
                JobOutcome::Preempted => {} // drained while checkpointed
                other => prop_assert!(
                    false,
                    "preempted job {} ended {:?}; must complete or stay resumable",
                    j.name, other
                ),
            }
        }
    }
}
