//! Elastic re-batching invariants (the property-level counterpart of the
//! `cluster_elastic` bench):
//!
//! 1. **No over-commit** — with elastic re-batching on and any mix of
//!    elastic and rigid jobs, the sum of reservations on a GPU never
//!    exceeds its capacity at any simulated instant, including through
//!    re-grow checkpoint/restore copy windows (the new reservation is
//!    claimed before the copy starts).
//! 2. **Exact sample preservation** — every completed job, elastic or
//!    not, processed exactly `batch × iters` training samples: shrinking
//!    the batch extends the iteration count, and the final reduced-batch
//!    iteration is partial when the remainder demands it.
//! 3. **Rigid jobs are untouchable** — a job not marked `elastic` never
//!    re-batches, under any configuration.
//! 4. **The flag alone is inert** — with no elastic jobs in the
//!    workload, an elastic-on run is byte-identical to an elastic-off
//!    run: the second admission pass and the re-grow check change
//!    nothing unless a job opted in.
//! 5. **Determinism** — elastic runs of the same workload are
//!    byte-identical.

use capuchin_cluster::{
    AdmissionMode, Cluster, ClusterConfig, JobOutcome, JobPolicy, JobSpec, StrategyKind,
};
use capuchin_models::ModelKind;
use capuchin_sim::DeviceSpec;
use proptest::prelude::*;

/// Small-footprint menu so each case's measuring runs stay fast; batches
/// are chosen against sub-sized devices (1–2 GiB) so elastic jobs really
/// do arrive into clusters with no full-batch headroom.
const MENU: &[(ModelKind, usize)] = &[
    (ModelKind::ResNet50, 16),
    (ModelKind::DenseNet121, 16),
    (ModelKind::ResNet50, 32),
];

fn jobs_from(picks: Vec<(usize, u64, u64, bool)>) -> Vec<JobSpec> {
    picks
        .into_iter()
        .enumerate()
        .map(|(i, (menu, iters, slot, elastic))| {
            let (model, batch) = MENU[menu % MENU.len()];
            JobSpec {
                name: format!("job{i:02}"),
                model,
                batch,
                gpus: 1,
                policy: JobPolicy::TfOri,
                iters: 1 + iters,
                priority: 0,
                arrival_time: slot as f64 * 0.05,
                elastic,
                ..JobSpec::default()
            }
        })
        .collect()
}

fn cfg(gpus: usize, capacity: u64, elastic: bool, capuchin: bool) -> ClusterConfig {
    ClusterConfig::builder()
        .gpus(gpus)
        .spec(DeviceSpec::p100_pcie3().with_memory(capacity))
        .admission(if capuchin {
            AdmissionMode::Capuchin
        } else {
            AdmissionMode::TfOri
        })
        .strategy(StrategyKind::FifoFirstFit)
        .aging_rate(0.1)
        .validate_iters(3)
        .elastic(elastic)
        .min_batch_fraction(0.25)
        .build()
        .expect("valid config")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// (1) + (2) + (3) + (5) under a random mix of elastic and rigid
    /// jobs on undersized devices.
    #[test]
    fn elastic_preserves_samples_and_never_overcommits(
        picks in prop::collection::vec(
            (0usize..3, 0u64..3, 0u64..8, prop_oneof![Just(true), Just(false)]),
            1..5,
        ),
        gpus in 1usize..3,
        capacity_gib_halves in 2u64..5, // 1.0, 1.5, 2.0 GiB
        capuchin_admission in prop_oneof![Just(true), Just(false)],
    ) {
        let jobs = jobs_from(picks);
        let capacity = capacity_gib_halves << 29;
        let a = Cluster::new(cfg(gpus, capacity, true, capuchin_admission)).run(&jobs);
        let b = Cluster::new(cfg(gpus, capacity, true, capuchin_admission)).run(&jobs);

        // (5) Determinism: byte-identical stats JSON.
        prop_assert_eq!(a.to_json(), b.to_json());

        // (1) No over-commit at any simulated instant, on any GPU.
        for g in &a.per_gpu {
            prop_assert!(
                g.peak_reserved_bytes <= g.capacity,
                "gpu {} over-committed: peak {} > capacity {}",
                g.gpu, g.peak_reserved_bytes, g.capacity
            );
        }

        // Elastic admission must never create mid-run aborts: shrunk
        // batches are re-validated exactly like full ones.
        prop_assert_eq!(a.midrun_oom_aborts, 0);

        for (j, spec) in a.jobs.iter().zip(jobs.iter()) {
            // (2) Exact sample preservation for every completed job.
            if j.outcome == JobOutcome::Completed {
                prop_assert_eq!(
                    j.samples_preserved,
                    spec.batch as u64 * spec.iters,
                    "{}: trained a different sample count than the spec asked",
                    &j.name
                );
            }
            // (3) Rigid jobs never re-batch.
            if !spec.elastic {
                prop_assert_eq!(j.rebatches, 0, "{}: rigid job re-batched", &j.name);
            }
        }
    }

    /// (4) With no elastic jobs in the workload, turning the cluster
    /// flag on changes nothing — byte for byte.
    #[test]
    fn elastic_flag_is_inert_without_elastic_jobs(
        picks in prop::collection::vec(
            (0usize..3, 0u64..3, 0u64..8, Just(false)),
            1..5,
        ),
        gpus in 1usize..3,
        capacity_gib_halves in 2u64..5,
        capuchin_admission in prop_oneof![Just(true), Just(false)],
    ) {
        let jobs = jobs_from(picks);
        let capacity = capacity_gib_halves << 29;
        let off = Cluster::new(cfg(gpus, capacity, false, capuchin_admission)).run(&jobs);
        let on = Cluster::new(cfg(gpus, capacity, true, capuchin_admission)).run(&jobs);
        prop_assert_eq!(off.to_json(), on.to_json());
        prop_assert_eq!(on.rebatches, 0);
    }
}
