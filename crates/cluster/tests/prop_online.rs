//! Online-core invariants: the incremental API ([`Cluster::submit`] /
//! [`Cluster::step`] / [`Cluster::advance_to`] / [`Cluster::status`] /
//! [`Cluster::drain`]) is observation, not perturbation.
//!
//! 1. **Batch equivalence** — any interleaving of submissions, partial
//!    advances, single steps and status probes that honours arrival
//!    order (a job is submitted before the clock passes its arrival)
//!    produces final stats **byte-identical** to `Cluster::run` on the
//!    same spec sequence. The online core *is* the batch loop, sliced.
//! 2. **Status coherence** — every mid-run snapshot is internally
//!    consistent (progress never exceeds the target, terminal states
//!    agree with final outcomes).
//! 3. **Cancel semantics** — cancelling a never-admitted queued job
//!    refunds nothing (it held nothing) and records `Cancelled`,
//!    distinct from `Rejected` and `Aborted`; cancelling a running job
//!    releases its reservation immediately, so a queued successor is
//!    placed in the same settle pass.

use capuchin_cluster::{
    AdmissionMode, CancelError, Cluster, ClusterConfig, JobOutcome, JobPolicy, JobSpec, JobState,
    StrategyKind,
};
use capuchin_models::ModelKind;
use capuchin_sim::{DeviceSpec, Duration, Time};
use proptest::prelude::*;

/// Small-footprint menu so admission measuring runs stay fast; paired
/// with 1–2 GiB devices it still exercises queueing and rejection.
const MENU: &[(ModelKind, usize)] = &[
    (ModelKind::ResNet50, 16),
    (ModelKind::DenseNet121, 16),
    (ModelKind::ResNet50, 32),
];

fn jobs_from(picks: &[(usize, u64, u64, u8)]) -> Vec<JobSpec> {
    picks
        .iter()
        .enumerate()
        .map(|(i, &(menu, iters, slot, _))| {
            let (model, batch) = MENU[menu % MENU.len()];
            JobSpec {
                name: format!("job{i:02}"),
                model,
                batch,
                gpus: 1,
                policy: JobPolicy::TfOri,
                iters: 1 + iters,
                priority: 0,
                arrival_time: slot as f64 * 0.05,
                elastic: false,
                ..JobSpec::default()
            }
        })
        .collect()
}

fn cfg(gpus: usize, capacity: u64, capuchin: bool) -> ClusterConfig {
    ClusterConfig::builder()
        .gpus(gpus)
        .spec(DeviceSpec::p100_pcie3().with_memory(capacity))
        .admission(if capuchin {
            AdmissionMode::Capuchin
        } else {
            AdmissionMode::TfOri
        })
        .strategy(StrategyKind::FifoFirstFit)
        .aging_rate(0.1)
        .build()
        .expect("valid config")
}

/// The arrival instant [`Cluster::submit`] derives from a spec.
fn arrival_of(spec: &JobSpec) -> Time {
    Time::ZERO + Duration::from_secs_f64(spec.arrival_time.max(0.0))
}

/// A status probe that must never perturb the run, and must always be
/// internally coherent.
fn probe(cluster: &Cluster, id: usize, submitted: usize) {
    if id >= submitted {
        assert!(cluster.status(id).is_none(), "status invented job {id}");
        return;
    }
    let st = cluster.status(id).expect("submitted job has a status");
    assert_eq!(st.id, id as u64);
    assert!(st.samples_done <= st.samples_total, "{st:?}");
    if st.state == JobState::Running {
        assert!(!st.gpus.is_empty(), "a running job holds devices: {st:?}");
    }
    if st.gpus.is_empty() {
        assert_eq!(st.reserved_bytes, 0, "a placeless job reserves nothing");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// (1) + (2): an arbitrary interleaving of submit / advance_to /
    /// step / status drains to stats byte-identical to the batch run.
    #[test]
    fn online_interleaving_matches_batch_run(
        picks in prop::collection::vec(
            // (menu, iters, arrival slot, pre-submit advance percent)
            (0usize..3, 0u64..3, 0u64..8, 0u8..100),
            1..5,
        ),
        bursts in prop::collection::vec((0usize..24, 0usize..6), 0..6),
        gpus in 1usize..3,
        capacity_gib_halves in 2u64..5, // 1.0, 1.5, 2.0 GiB
        capuchin_admission in prop_oneof![Just(true), Just(false)],
    ) {
        let specs = jobs_from(&picks);
        let capacity = capacity_gib_halves << 29;
        let expected = Cluster::new(cfg(gpus, capacity, capuchin_admission))
            .run(&specs)
            .to_json();

        let mut cluster = Cluster::new(cfg(gpus, capacity, capuchin_admission));
        for (i, spec) in specs.iter().enumerate() {
            // Advance part of the way towards the earliest unsubmitted
            // arrival — strictly before it, so no arrival is clamped and
            // no same-instant event is processed out of batch order.
            let min_ns = specs[i..]
                .iter()
                .map(|s| arrival_of(s).as_nanos())
                .min()
                .unwrap();
            let pct = u64::from(picks[i].3);
            if min_ns > 0 && pct > 0 {
                cluster.advance_to(Time::from_nanos(min_ns * pct / 100));
            }
            prop_assert_eq!(cluster.submit(spec), i, "ids are the submission order");
            probe(&cluster, i / 2, i + 1);
        }
        for &(steps, probe_id) in &bursts {
            for _ in 0..steps {
                if !cluster.step() {
                    break;
                }
            }
            probe(&cluster, probe_id, specs.len());
        }
        cluster.drain();
        prop_assert!(!cluster.has_work(), "drain left live events behind");
        prop_assert!(!cluster.step(), "an idle cluster has nothing to step");

        let stats = cluster.stats();
        prop_assert_eq!(stats.to_json(), expected);

        // (2) Terminal statuses agree with the final outcomes.
        for (i, j) in stats.jobs.iter().enumerate() {
            let st = cluster.status(i).expect("status after drain");
            let want = match j.outcome {
                JobOutcome::Completed => JobState::Completed,
                JobOutcome::Rejected => JobState::Rejected,
                JobOutcome::Cancelled => JobState::Cancelled,
                JobOutcome::Aborted => JobState::Aborted,
                JobOutcome::Starved => JobState::Queued,
                JobOutcome::Preempted => JobState::Preempted,
            };
            prop_assert_eq!(st.state, want, "job {} outcome {:?}", i, j.outcome);
            prop_assert!(st.state.is_terminal() || j.outcome == JobOutcome::Starved);
        }
    }
}

/// Two VGG16@48 jobs cannot co-reside on a 6 GiB device (each needs
/// more than half), so the second queues behind the first — the shape
/// both cancel tests below build on.
fn contended() -> (ClusterConfig, JobSpec, JobSpec) {
    let job = |name: &str, iters: u64| JobSpec {
        name: name.to_owned(),
        model: ModelKind::Vgg16,
        batch: 48,
        gpus: 1,
        policy: JobPolicy::TfOri,
        iters,
        priority: 0,
        arrival_time: 0.0,
        elastic: false,
        ..JobSpec::default()
    };
    let cfg = ClusterConfig::builder()
        .gpus(1)
        .spec(DeviceSpec::p100_pcie3().with_memory(6 << 30))
        .admission(AdmissionMode::TfOri)
        .strategy(StrategyKind::FifoFirstFit)
        .preemption(false)
        .build()
        .expect("valid config");
    (cfg, job("front", 40), job("waiter", 4))
}

/// (3) Cancelling a queued job that was never admitted refunds nothing
/// and records `Cancelled` — not `Rejected`, not `Aborted`.
#[test]
fn cancel_mid_queue_refunds_nothing() {
    let (cfg, front, waiter) = contended();
    let mut cluster = Cluster::new(cfg);
    let a = cluster.submit(&front);
    let b = cluster.submit(&waiter);

    // Process both arrivals: `front` becomes resident, `waiter` queues.
    cluster.advance_to(Time::ZERO + Duration::from_millis(1));
    assert_eq!(cluster.status(a).unwrap().state, JobState::Running);
    let queued = cluster.status(b).unwrap();
    assert_eq!(queued.state, JobState::Queued);
    assert_eq!(queued.reserved_bytes, 0, "a queued job reserves nothing");
    let front_reserved = cluster.status(a).unwrap().reserved_bytes;
    assert!(front_reserved > 0);

    cluster.cancel(b).expect("cancel a queued job");
    assert_eq!(cluster.status(b).unwrap().state, JobState::Cancelled);
    // Nothing was refunded because nothing was held: the resident job's
    // reservation is exactly what it was.
    assert_eq!(cluster.status(a).unwrap().reserved_bytes, front_reserved);

    // Cancel is not idempotent-silent: the job is terminal now.
    assert_eq!(cluster.cancel(b), Err(CancelError::Terminal(b)));
    assert_eq!(cluster.cancel(99), Err(CancelError::UnknownJob(99)));

    cluster.drain();
    let stats = cluster.stats();
    assert_eq!(stats.jobs[a].outcome, JobOutcome::Completed);
    assert_eq!(stats.jobs[b].outcome, JobOutcome::Cancelled);
    assert_ne!(stats.jobs[b].outcome, JobOutcome::Rejected);
    assert_eq!(stats.jobs[b].samples_preserved, 0);
    assert_eq!(stats.completed, 1);
    assert_eq!(stats.cancelled, 1);
}

/// (3) Cancelling a running job releases its reservation in the same
/// settle pass: the queued successor is admitted immediately, not at
/// the next event.
#[test]
fn cancel_while_running_releases_the_gpu() {
    let (cfg, front, waiter) = contended();
    let mut cluster = Cluster::new(cfg);
    let a = cluster.submit(&front);
    let b = cluster.submit(&waiter);

    // Let `front` run a few iterations so the cancel is genuinely
    // mid-flight, with partial progress on the books.
    cluster.advance_to(Time::ZERO + Duration::from_millis(1));
    while cluster.status(a).unwrap().iters_done < 2 && cluster.step() {}
    let running = cluster.status(a).unwrap();
    assert_eq!(running.state, JobState::Running);
    assert!(running.iters_done >= 2);
    assert_eq!(cluster.status(b).unwrap().state, JobState::Queued);

    cluster.cancel(a).expect("cancel a running job");
    assert_eq!(cluster.status(a).unwrap().state, JobState::Cancelled);
    assert_eq!(cluster.status(a).unwrap().reserved_bytes, 0);
    // The settle pass inside cancel placed the waiter on the freed GPU.
    assert_eq!(cluster.status(b).unwrap().state, JobState::Running);

    cluster.drain();
    let stats = cluster.stats();
    assert_eq!(stats.jobs[a].outcome, JobOutcome::Cancelled);
    assert_ne!(stats.jobs[a].outcome, JobOutcome::Aborted);
    assert_eq!(stats.jobs[b].outcome, JobOutcome::Completed);
    assert_eq!(stats.completed, 1);
    assert_eq!(stats.cancelled, 1);
}
