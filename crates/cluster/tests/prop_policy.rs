//! Policy-registry properties (the safety story of the descriptor
//! dispatch PR):
//!
//! 1. **No over-commit, any policy mix** — a workload mixing every
//!    registry policy (tf-ori, capuchin, dtr, delta) on one cluster
//!    never reserves past a GPU's capacity at any simulated instant.
//! 2. **Heuristic admission is measurement-free** — an all-DTR workload
//!    leaves the validation cache cold and charges zero validation runs
//!    to every job: heuristic-class policies admit from the footprint
//!    estimate alone.
//! 3. **Determinism** — same seed, same config ⇒ byte-identical stats
//!    JSON, for any policy mix.
//! 4. **Legacy byte-identity** — the tf-ori/capuchin workloads the
//!    pre-registry scheduler ran produce byte-identical stats today
//!    (fixtures captured from the release binary one commit before the
//!    registry landed; only the schema version and the three counters
//!    this PR added are stripped before comparing).

use capuchin_cluster::{
    synthetic_jobs, AdmissionMode, Cluster, ClusterConfig, ClusterStats, CostClass, JobPolicy,
    JobSpec, StrategyKind, REGISTRY,
};
use capuchin_models::ModelKind;
use capuchin_sim::DeviceSpec;
use proptest::prelude::*;

/// Small-footprint menu so each case's measuring runs stay fast; batches
/// are chosen against sub-sized devices (1–2 GiB) so all admission paths
/// (as-is, shrunk, rejected) appear across the sample space.
const MENU: &[(ModelKind, usize)] = &[
    (ModelKind::ResNet50, 16),
    (ModelKind::DenseNet121, 16),
    (ModelKind::ResNet50, 32),
];

fn jobs_from(picks: Vec<(usize, u64, u32, u64, usize)>) -> Vec<JobSpec> {
    picks
        .into_iter()
        .enumerate()
        .map(|(i, (menu, iters, priority, slot, policy))| {
            let (model, batch) = MENU[menu % MENU.len()];
            JobSpec {
                name: format!("job{i:02}"),
                model,
                batch,
                gpus: 1,
                policy: REGISTRY[policy % REGISTRY.len()].policy,
                iters: 1 + iters,
                priority,
                arrival_time: slot as f64 * 0.05,
                elastic: false,
                ..JobSpec::default()
            }
        })
        .collect()
}

fn small_cluster(gpus: usize, capacity: u64) -> ClusterConfig {
    ClusterConfig::builder()
        .gpus(gpus)
        .spec(DeviceSpec::p100_pcie3().with_memory(capacity))
        .admission(AdmissionMode::Capuchin)
        .strategy(StrategyKind::FifoFirstFit)
        .build()
        .expect("cluster config")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn mixed_policy_workloads_never_overcommit_and_are_deterministic(
        picks in prop::collection::vec(
            (0usize..3, 0u64..3, 0u32..3, 0u64..8, 0usize..4),
            1..5,
        ),
        gpus in 1usize..3,
        capacity_gib_halves in 2u64..5, // 1.0, 1.5, 2.0 GiB
    ) {
        let jobs = jobs_from(picks);
        let capacity = capacity_gib_halves << 29;
        let mut cluster = Cluster::new(small_cluster(gpus, capacity));
        let stats = cluster.run(&jobs);

        // (1) No over-commit at any simulated instant, on any GPU,
        // whatever the policy mix — heuristic grants included.
        for g in &stats.per_gpu {
            prop_assert!(
                g.peak_reserved_bytes <= g.capacity,
                "gpu {} over-committed: peak {} > capacity {}",
                g.gpu, g.peak_reserved_bytes, g.capacity
            );
        }

        // (2b) Validation attribution is complete: every engine run the
        // controller performed is billed to exactly one job.
        let billed: u64 = stats.jobs.iter().map(|j| j.admission_validations).sum();
        prop_assert_eq!(
            billed, cluster.validation_runs(),
            "per-job admission_validations must sum to the controller total"
        );

        // (3) Same workload, same config: byte-identical stats.
        let again = Cluster::new(small_cluster(gpus, capacity)).run(&jobs);
        prop_assert_eq!(stats.to_json(), again.to_json());
    }

    #[test]
    fn heuristic_policies_admit_without_measured_validation(
        picks in prop::collection::vec(
            (0usize..3, 0u64..3, 0u32..3, 0u64..8, 0usize..4),
            1..4,
        ),
        gpus in 1usize..3,
    ) {
        // Same workload shape, every job forced onto the heuristic-class
        // policy (DTR). Validation replay must never run: the cache
        // stays cold and no job is charged a validation.
        let mut jobs = jobs_from(picks);
        for j in &mut jobs {
            j.policy = JobPolicy::Dtr;
        }
        prop_assert_eq!(
            JobPolicy::Dtr.descriptor().cost_class,
            CostClass::Heuristic
        );
        let mut cluster = Cluster::new(small_cluster(gpus, 3 << 29));
        let stats = cluster.run(&jobs);
        prop_assert_eq!(cluster.validation_cache_len(), 0, "validation cache warmed");
        prop_assert_eq!(cluster.validation_runs(), 0, "validation engine ran");
        for j in &stats.jobs {
            prop_assert_eq!(
                j.admission_validations, 0,
                "job {} charged a measured validation", j.name
            );
        }
    }
}

/// Strips `keys` from every object in the tree, recursively.
fn strip_keys(v: &mut serde_json::Value, keys: &[&str]) {
    match v {
        serde_json::Value::Object(entries) => {
            entries.retain(|(k, _)| !keys.contains(&k.as_str()));
            for (_, val) in entries.iter_mut() {
                strip_keys(val, keys);
            }
        }
        serde_json::Value::Array(items) => {
            for item in items.iter_mut() {
                strip_keys(item, keys);
            }
        }
        _ => {}
    }
}

/// (4) Byte-identity with the pre-registry scheduler, modulo the fields
/// this PR introduced (stripped from both sides symmetrically).
fn assert_matches_fixture(fixture: &str, stats: &ClusterStats) {
    let path = format!("{}/tests/fixtures/{fixture}", env!("CARGO_MANIFEST_DIR"));
    let want = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read fixture {path}: {e}"));
    let stripped = [
        "schema_version",
        "recompute_time",
        "evictions",
        "admission_validations",
        // Schema-5 predictive-admission fields. All are identically
        // zero / "measured" in these predictive-off runs, but the
        // fixtures predate the fields entirely.
        "admission_source",
        "predicted_bytes",
        "prediction_error_permille",
        "mispredict_recoveries",
        "predictor_hits",
        "predictor_misses",
    ];
    let mut want: serde_json::Value = serde_json::from_str(&want).expect("fixture parses");
    let mut got: serde_json::Value = serde_json::from_str(&stats.to_json()).expect("stats parse");
    strip_keys(&mut want, &stripped);
    strip_keys(&mut got, &stripped);
    assert!(
        got == want,
        "same-seed run diverged from pre-registry fixture {fixture}"
    );
}

#[test]
fn legacy_workload_matches_prerefactor_fixture() {
    // `capuchin-cli cluster --synthetic 10 --seed 7 --gpus 4` defaults.
    let jobs = synthetic_jobs(10, 7, 2.0);
    let cfg = ClusterConfig::builder()
        .gpus(4)
        .spec(DeviceSpec::p100_pcie3().with_memory(16 << 30))
        .admission(AdmissionMode::Capuchin)
        .strategy(StrategyKind::FifoFirstFit)
        .aging_rate(0.1)
        .build()
        .expect("cluster config");
    let stats = Cluster::new(cfg).run(&jobs);
    assert_matches_fixture("prerefactor_synthetic10_seed7.json", &stats);
}

#[test]
fn legacy_pcie_workload_matches_prerefactor_fixture() {
    // Same, with `--preemption on --elastic on --interconnect pcie`.
    let jobs = synthetic_jobs(8, 3, 2.0);
    let cfg = ClusterConfig::builder()
        .gpus(4)
        .spec(DeviceSpec::p100_pcie3().with_memory(16 << 30))
        .admission(AdmissionMode::Capuchin)
        .strategy(StrategyKind::FifoFirstFit)
        .aging_rate(0.1)
        .preemption(true)
        .elastic(true)
        .interconnect(capuchin_sim::InterconnectSpec::parse("pcie").expect("pcie spec"))
        .build()
        .expect("cluster config");
    let stats = Cluster::new(cfg).run(&jobs);
    assert_matches_fixture("prerefactor_synthetic8_seed3_pcie.json", &stats);
}
