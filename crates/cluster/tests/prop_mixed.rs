//! Mixed-workload (training + inference) invariants — the property-level
//! counterpart of the `cluster_mixed` bench:
//!
//! 1. **No over-commit through KV growth** — per-request KV reservations
//!    climb and drain with every serving round, through burst-absorption
//!    shrinks and re-grows; the sum of reservations on a GPU never
//!    exceeds its capacity at any simulated instant.
//! 2. **Inference is never checkpoint-preempted mid-request** — the
//!    preemption picker only ever victimizes training jobs, under any
//!    priority mix and any SLO-awareness setting.
//! 3. **Training-only workloads are untouched** — with no inference job
//!    submitted, SLO-aware scheduling is byte-identical to SLO-blind:
//!    the boost is identically zero and the serving loop never runs.
//! 4. **Determinism** — mixed runs of the same workload are
//!    byte-identical, across the SLO-aware and SLO-blind settings alike.

use capuchin_cluster::{
    AdmissionMode, Cluster, ClusterConfig, JobOutcome, JobPolicy, JobSpec, StrategyKind,
};
use capuchin_models::ModelKind;
use capuchin_sim::DeviceSpec;
use proptest::prelude::*;

/// Small-footprint menu so each case's measuring runs stay fast; devices
/// are undersized (2–3 GiB) so KV growth genuinely competes with
/// training reservations for headroom.
const MENU: &[(ModelKind, usize)] = &[
    (ModelKind::ResNet50, 16),
    (ModelKind::DenseNet121, 16),
    (ModelKind::ResNet50, 32),
];

/// Training picks: `(menu, iters, arrival slot, elastic)`.
fn training_from(picks: Vec<(usize, u64, u64, bool)>) -> Vec<JobSpec> {
    picks
        .into_iter()
        .enumerate()
        .map(|(i, (menu, iters, slot, elastic))| {
            let (model, batch) = MENU[menu % MENU.len()];
            JobSpec {
                name: format!("train{i:02}"),
                model,
                batch,
                gpus: 1,
                policy: JobPolicy::TfOri,
                iters: 1 + iters,
                priority: 1,
                arrival_time: slot as f64 * 0.05,
                elastic,
                ..JobSpec::default()
            }
        })
        .collect()
}

/// Inference picks: `(menu, rate step, slot, requests, kv eighth-GiB,
/// max inflight)`.
fn inference_from(picks: Vec<(usize, u64, u64, u64, u64, usize)>) -> Vec<JobSpec> {
    picks
        .into_iter()
        .enumerate()
        .map(|(i, (menu, rate, slot, requests, kv8, inflight))| {
            let (model, batch) = MENU[menu % MENU.len()];
            JobSpec {
                name: format!("serve{i:02}"),
                model,
                batch,
                gpus: 1,
                policy: JobPolicy::TfOri,
                iters: 1,
                priority: 0,
                arrival_time: 0.1 + slot as f64 * 0.05,
                elastic: false,
                ..JobSpec::default()
            }
            .into_inference(
                2.0 + rate as f64 * 4.0,
                250.0,
                4 + requests,
                (1 + kv8) << 27, // 128 MiB – 512 MiB per request
                1 + inflight,
            )
        })
        .collect()
}

fn cfg(gpus: usize, capacity: u64, slo_aware: bool, elastic: bool) -> ClusterConfig {
    ClusterConfig::builder()
        .gpus(gpus)
        .spec(DeviceSpec::p100_pcie3().with_memory(capacity))
        .admission(AdmissionMode::TfOri)
        .strategy(StrategyKind::BestFit)
        .aging_rate(0.1)
        .validate_iters(3)
        .preemption(true)
        .elastic(elastic)
        .min_batch_fraction(0.25)
        .slo_aware(slo_aware)
        .build()
        .expect("valid config")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// (1) + (2) + (4) under a random mix of training (elastic and
    /// rigid) and inference jobs on undersized devices, with and without
    /// SLO-awareness.
    #[test]
    fn mixed_runs_never_overcommit_and_never_preempt_inference(
        training in prop::collection::vec(
            (0usize..3, 0u64..3, 0u64..8, prop_oneof![Just(true), Just(false)]),
            1..4,
        ),
        inference in prop::collection::vec(
            (0usize..3, 0u64..3, 0u64..8, 0u64..12, 0u64..4, 0usize..4),
            1..3,
        ),
        gpus in 1usize..3,
        capacity_gib_quarters in 8u64..13, // 2.0 – 3.0 GiB
        slo_aware in prop_oneof![Just(true), Just(false)],
    ) {
        let mut jobs = training_from(training);
        jobs.extend(inference_from(inference));
        let capacity = capacity_gib_quarters << 28;
        let a = Cluster::new(cfg(gpus, capacity, slo_aware, true)).run(&jobs);
        let b = Cluster::new(cfg(gpus, capacity, slo_aware, true)).run(&jobs);

        // (4) Determinism: byte-identical stats JSON.
        prop_assert_eq!(a.to_json(), b.to_json());

        // (1) No over-commit at any simulated instant, on any GPU —
        // including through KV climbs and burst-absorption windows.
        for g in &a.per_gpu {
            prop_assert!(
                g.peak_reserved_bytes <= g.capacity,
                "gpu {} over-committed: peak {} > capacity {}",
                g.gpu, g.peak_reserved_bytes, g.capacity
            );
        }

        for (j, spec) in a.jobs.iter().zip(jobs.iter()) {
            if !spec.is_inference() {
                continue;
            }
            // (2) Inference is never checkpoint-preempted.
            prop_assert_eq!(
                j.preemptions, 0,
                "{}: inference job was checkpoint-preempted", &j.name
            );
            // Inference never re-batches either: the ladder is a
            // training-only mechanism.
            prop_assert_eq!(j.rebatches, 0, "{}: inference job re-batched", &j.name);
            // A completed serving job served its whole request budget,
            // and every served request has a recorded latency.
            if j.outcome == JobOutcome::Completed {
                prop_assert_eq!(j.requests_served, spec.requests, "{}", &j.name);
                prop_assert!(j.slo_misses <= j.requests_served, "{}", &j.name);
            }
        }
    }

    /// (3) With no inference job in the workload, the SLO-aware flag is
    /// inert: byte-for-byte identical stats, zero request counters.
    #[test]
    fn slo_awareness_is_inert_without_inference_jobs(
        training in prop::collection::vec(
            (0usize..3, 0u64..3, 0u64..8, prop_oneof![Just(true), Just(false)]),
            1..5,
        ),
        gpus in 1usize..3,
        capacity_gib_quarters in 8u64..13,
        elastic in prop_oneof![Just(true), Just(false)],
    ) {
        let jobs = training_from(training);
        let capacity = capacity_gib_quarters << 28;
        let aware = Cluster::new(cfg(gpus, capacity, true, elastic)).run(&jobs);
        let blind = Cluster::new(cfg(gpus, capacity, false, elastic)).run(&jobs);
        prop_assert_eq!(aware.to_json(), blind.to_json());
        prop_assert_eq!(aware.requests_served, 0);
        prop_assert_eq!(aware.slo_misses, 0);
        prop_assert_eq!(aware.slo_attainment_permille, 1000);
        prop_assert_eq!(aware.burst_shrinks, 0);
        prop_assert_eq!(aware.burst_cycles, 0);
    }
}
