//! Per-tensor transfer-replay invariants for the unified transfer layer:
//!
//! 1. **Unconstrained fabric is free** — with infinite bandwidth and zero
//!    overhead, no replayed transfer ever waits, no job is charged any
//!    `comm_delay`, and the per-job stats are byte-identical to an
//!    interconnect-off run: the per-tensor path adds observability, not
//!    cost.
//! 2. **Trace ⇄ link reconciliation** — the old iteration-granularity
//!    accounting charged each iteration's `swap_bytes × k` lump to the
//!    link; the per-tensor replay must reproduce those totals
//!    byte-for-byte: for every fabric lane, the sum of traced record
//!    bytes equals [`LinkStats::bytes`] and the record count equals
//!    [`LinkStats::transfers`].
//! 3. **No over-charging** — on a constrained fabric, per-job `comm_delay`
//!    decomposes exactly into its records' `charge` fields, and the total
//!    charged delay per link never exceeds the wall-clock time the link
//!    was actually busy (queueing charges are deduplicated across waiters
//!    sharing one busy period).

use std::collections::HashMap;

use capuchin_cluster::{Cluster, ClusterConfig, ClusterTransfer, JobPolicy, JobSpec};
use capuchin_models::ModelKind;
use capuchin_sim::{Duration, InterconnectSpec, LinkStats};
use proptest::prelude::*;

/// Heavy jobs on the default 16 GB P100 so Capuchin plans actually swap
/// and the replay timeline is non-trivial.
const MENU: &[(ModelKind, usize)] = &[(ModelKind::Vgg16, 320), (ModelKind::ResNet50, 256)];

fn jobs_from(picks: Vec<(usize, u64, u64, usize)>) -> Vec<JobSpec> {
    picks
        .into_iter()
        .enumerate()
        .map(|(i, (menu, iters, slot, gang))| {
            let (model, batch) = MENU[menu % MENU.len()];
            JobSpec {
                name: format!("job{i:02}"),
                model,
                batch,
                gpus: gang,
                policy: JobPolicy::Capuchin,
                iters: 2 + iters,
                priority: 0,
                arrival_time: slot as f64 * 0.1,
                elastic: false,
                ..JobSpec::default()
            }
        })
        .collect()
}

fn cfg(gpus: usize, ic: Option<InterconnectSpec>) -> ClusterConfig {
    ClusterConfig::builder()
        .gpus(gpus)
        .interconnect(ic)
        .build()
        .expect("valid config")
}

/// Sums traced bytes / counts / charges per lane name.
fn per_link(trace: &[ClusterTransfer]) -> HashMap<&str, (u64, u64, Duration)> {
    let mut by: HashMap<&str, (u64, u64, Duration)> = HashMap::new();
    for t in trace {
        let e = by.entry(t.link.as_str()).or_default();
        e.0 += t.bytes;
        e.1 += 1;
        e.2 += t.charge;
    }
    by
}

fn reconcile(trace: &[ClusterTransfer], links: &[LinkStats]) {
    let by = per_link(trace);
    for l in links {
        let (bytes, count, _) = by.get(l.link.as_str()).copied().unwrap_or_default();
        prop_assert_eq!(
            bytes,
            l.bytes,
            "link {}: traced bytes disagree with lane accounting",
            &l.link
        );
        prop_assert_eq!(count, l.transfers, "link {}: record count drifted", &l.link);
    }
    // Every traced record must name a real lane.
    for t in trace {
        prop_assert!(
            links.iter().any(|l| l.link == t.link),
            "record {} names unknown link {}",
            &t.label,
            &t.link
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// (1) + (2) on an unconstrained fabric: zero waits, zero charges,
    /// per-job stats byte-identical to the fabric-free run, and the trace
    /// reconciles with the lane totals.
    #[test]
    fn unconstrained_replay_is_free_and_reconciles(
        picks in prop::collection::vec((0usize..2, 0u64..3, 0u64..4, 1usize..3), 1..4),
        gpus in 2usize..4,
    ) {
        let jobs = jobs_from(picks);
        let off = Cluster::new(cfg(gpus, None)).run(&jobs);
        let (free, trace) = Cluster::new(cfg(gpus, Some(InterconnectSpec::unconstrained())))
            .run_traced(&jobs);

        // Per-job stats byte-identical to the old accounting's off run.
        let off_jobs = serde_json::to_string(&off.jobs).expect("serialize");
        let free_jobs = serde_json::to_string(&free.jobs).expect("serialize");
        prop_assert_eq!(off_jobs, free_jobs);
        prop_assert_eq!(off.makespan, free.makespan);

        for t in &trace {
            prop_assert_eq!(t.wait, Duration::ZERO, "{} waited on infinite bandwidth", &t.label);
            prop_assert_eq!(t.charge, Duration::ZERO, "{} charged on infinite bandwidth", &t.label);
            prop_assert!(t.start >= t.want && t.end >= t.start, "{}: time ran backwards", &t.label);
        }
        for j in &free.jobs {
            prop_assert_eq!(j.comm_delay, Duration::ZERO, "{}", &j.name);
        }
        reconcile(&trace, &free.links);
    }

    /// (2) + (3) on a constrained shared-PCIe fabric: the trace still
    /// reconciles byte-for-byte, per-job `comm_delay` decomposes exactly
    /// into per-record charges, and no link is charged for more than its
    /// wall-clock occupancy.
    #[test]
    fn constrained_charges_decompose_and_never_exceed_occupancy(
        picks in prop::collection::vec((0usize..2, 0u64..3, 0u64..4, 1usize..3), 1..4),
        gpus in 2usize..4,
    ) {
        let jobs = jobs_from(picks);
        let (stats, trace) = Cluster::new(cfg(gpus, Some(InterconnectSpec::pcie_shared())))
            .run_traced(&jobs);

        reconcile(&trace, &stats.links);

        // Per-job decomposition: comm_delay == Σ charge of its records.
        for j in &stats.jobs {
            let charged: Duration = trace
                .iter()
                .filter(|t| t.job == j.name)
                .map(|t| t.charge)
                .sum();
            prop_assert_eq!(
                charged,
                j.comm_delay,
                "{}: comm_delay does not decompose into per-tensor charges",
                &j.name
            );
        }

        // Per-link: total charged delay never exceeds wall-clock busy time.
        let by = per_link(&trace);
        for l in &stats.links {
            let (_, _, charged) = by.get(l.link.as_str()).copied().unwrap_or_default();
            prop_assert!(
                charged <= l.busy,
                "link {}: charged {:?} exceeds occupancy {:?}",
                &l.link, charged, l.busy
            );
        }

        // Records are well-formed on a constrained lane too.
        for t in &trace {
            prop_assert!(t.start >= t.want && t.end >= t.start, "{}", &t.label);
            prop_assert!(t.charge <= t.wait, "{}: charged more than it waited", &t.label);
        }
    }
}
