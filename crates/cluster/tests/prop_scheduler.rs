//! Scheduler safety and determinism properties (mirrors
//! `crates/core/tests/determinism.rs` at the cluster level):
//!
//! 1. **No over-commit** — under any job set, strategy, and admission
//!    mode, the sum of reservations on a GPU never exceeds its capacity
//!    at any simulated instant (the per-GPU peak is tracked at every
//!    reservation change, so `peak ≤ capacity` is exactly that claim).
//! 2. **Determinism** — two runs of the same workload under the same
//!    configuration produce byte-identical cluster-stats JSON.

use capuchin_cluster::{
    AdmissionMode, Cluster, ClusterConfig, JobOutcome, JobPolicy, JobSpec, StrategyKind,
};
use capuchin_models::ModelKind;
use capuchin_sim::DeviceSpec;
use proptest::prelude::*;

/// Small-footprint menu so each case's measuring runs stay fast; batches
/// are chosen against sub-sized devices (1–2 GiB) so all admission paths
/// (as-is, shrunk, rejected) appear across the sample space.
const MENU: &[(ModelKind, usize)] = &[
    (ModelKind::ResNet50, 16),
    (ModelKind::DenseNet121, 16),
    (ModelKind::ResNet50, 32),
];

fn jobs_from(picks: Vec<(usize, u64, u32, u64, bool)>) -> Vec<JobSpec> {
    picks
        .into_iter()
        .enumerate()
        .map(|(i, (menu, iters, priority, slot, cap))| {
            let (model, batch) = MENU[menu % MENU.len()];
            JobSpec {
                name: format!("job{i:02}"),
                model,
                batch,
                gpus: 1,
                policy: if cap {
                    JobPolicy::Capuchin
                } else {
                    JobPolicy::TfOri
                },
                iters: 1 + iters,
                priority,
                arrival_time: slot as f64 * 0.05,
                elastic: false,
                ..JobSpec::default()
            }
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn never_overcommits_and_is_deterministic(
        picks in prop::collection::vec(
            (0usize..3, 0u64..3, 0u32..3, 0u64..8, prop_oneof![Just(true), Just(false)]),
            1..5,
        ),
        gpus in 1usize..3,
        capacity_gib_halves in 2u64..5, // 1.0, 1.5, 2.0 GiB
        fifo in prop_oneof![Just(true), Just(false)],
        capuchin_admission in prop_oneof![Just(true), Just(false)],
    ) {
        let jobs = jobs_from(picks);
        let cfg = || {
            ClusterConfig::builder()
                .gpus(gpus)
                .spec(DeviceSpec::p100_pcie3().with_memory(capacity_gib_halves << 29))
                .admission(if capuchin_admission {
                    AdmissionMode::Capuchin
                } else {
                    AdmissionMode::TfOri
                })
                .strategy(if fifo {
                    StrategyKind::FifoFirstFit
                } else {
                    StrategyKind::BestFit
                })
                .aging_rate(0.1)
                .validate_iters(3)
                .build()
                .expect("valid config")
        };
        let a = Cluster::new(cfg()).run(&jobs);
        let b = Cluster::new(cfg()).run(&jobs);

        // (b) Determinism: byte-identical stats JSON.
        prop_assert_eq!(a.to_json(), b.to_json());

        // (a) No over-commit at any simulated instant, on any GPU.
        for g in &a.per_gpu {
            prop_assert!(
                g.peak_reserved_bytes <= g.capacity,
                "gpu {} over-committed: peak {} > capacity {}",
                g.gpu, g.peak_reserved_bytes, g.capacity
            );
        }

        // Sanity: admitted jobs never abort mid-run, every job has an
        // outcome, and reservations stay within one device.
        prop_assert_eq!(a.midrun_oom_aborts, 0);
        prop_assert_eq!(a.submitted, jobs.len());
        let completed = a.jobs.iter().filter(|j| j.outcome == JobOutcome::Completed).count();
        prop_assert_eq!(completed, a.completed);
        for j in &a.jobs {
            prop_assert!(j.reserved_bytes <= capacity_gib_halves << 29);
            if j.outcome == JobOutcome::Rejected {
                prop_assert!(j.gpus_used.is_empty());
            }
        }
    }
}
