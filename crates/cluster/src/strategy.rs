//! Pluggable placement strategies.
//!
//! A strategy looks at the waiting queue and the current per-GPU
//! reservations and names the next (job, GPU) pairing — or `None` when
//! nothing placeable exists. The cluster core owns admission and
//! reservation bookkeeping; strategies only order the search.

use capuchin_sim::Time;

/// A waiting job as the strategy sees it.
#[derive(Debug, Clone, Copy)]
pub struct CandidateJob {
    /// Job index in the cluster's submission order.
    pub job: usize,
    /// When the job arrived (for FIFO order and priority aging).
    pub arrival: Time,
    /// Static priority from the job spec.
    pub priority: u32,
    /// Ideal-peak reservation (no management overhead).
    pub full_need: u64,
    /// Smallest admissible reservation (equals `full_need` under tf-ori
    /// admission).
    pub min_need: u64,
    /// Largest budget at which a validation run has already failed; the
    /// cluster refuses to retry at or below it.
    pub failed_budget: Option<u64>,
}

/// A GPU as the strategy sees it.
#[derive(Debug, Clone, Copy)]
pub struct GpuView {
    /// Device index.
    pub idx: usize,
    /// Total device memory.
    pub capacity: u64,
    /// Bytes currently reserved by resident jobs.
    pub reserved: u64,
}

impl GpuView {
    /// Unreserved bytes.
    pub fn headroom(&self) -> u64 {
        self.capacity.saturating_sub(self.reserved)
    }
}

/// Placement test the cluster supplies: can this job be admitted to this
/// GPU right now (headroom covers `min_need`, above any failed budget)?
pub type FitsFn<'a> = dyn Fn(&CandidateJob, &GpuView) -> bool + 'a;

/// A placement strategy over one scheduling instant.
pub trait PlacementStrategy: std::fmt::Debug {
    /// Stats/CLI name.
    fn name(&self) -> &'static str;

    /// Picks the next `(job, gpu)` pairing, or `None` to wait.
    fn pick(
        &self,
        pending: &[CandidateJob],
        gpus: &[GpuView],
        now: Time,
        fits: &FitsFn<'_>,
    ) -> Option<(usize, usize)>;
}

/// Strict arrival order with head-of-line blocking: only the oldest
/// waiting job is considered, placed on the first GPU it fits.
#[derive(Debug, Clone, Copy, Default)]
pub struct FifoFirstFit;

impl PlacementStrategy for FifoFirstFit {
    fn name(&self) -> &'static str {
        "fifo-first-fit"
    }

    fn pick(
        &self,
        pending: &[CandidateJob],
        gpus: &[GpuView],
        _now: Time,
        fits: &FitsFn<'_>,
    ) -> Option<(usize, usize)> {
        let head = pending.first()?;
        gpus.iter()
            .find(|g| fits(head, g))
            .map(|g| (head.job, g.idx))
    }
}

/// Best-fit memory bin-packing with priority aging: jobs are ranked by
/// `priority + aging_rate × wait_seconds` (ties broken by arrival, then
/// submission order), and each is placed on the fitting GPU that leaves
/// the least leftover headroom.
#[derive(Debug, Clone, Copy)]
pub struct BestFit {
    /// Effective-priority points gained per second of waiting. Guarantees
    /// low-priority jobs eventually overtake a stream of urgent arrivals.
    pub aging_rate: f64,
}

impl Default for BestFit {
    fn default() -> BestFit {
        BestFit { aging_rate: 0.1 }
    }
}

impl PlacementStrategy for BestFit {
    fn name(&self) -> &'static str {
        "best-fit"
    }

    fn pick(
        &self,
        pending: &[CandidateJob],
        gpus: &[GpuView],
        now: Time,
        fits: &FitsFn<'_>,
    ) -> Option<(usize, usize)> {
        let mut order: Vec<&CandidateJob> = pending.iter().collect();
        order.sort_by(|a, b| {
            let ea =
                a.priority as f64 + self.aging_rate * now.saturating_since(a.arrival).as_secs_f64();
            let eb =
                b.priority as f64 + self.aging_rate * now.saturating_since(b.arrival).as_secs_f64();
            eb.partial_cmp(&ea)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.arrival.cmp(&b.arrival))
                .then(a.job.cmp(&b.job))
        });
        for cand in order {
            let best = gpus.iter().filter(|g| fits(cand, g)).min_by_key(|g| {
                // Leftover headroom after granting min(headroom, full).
                let grant = g.headroom().min(cand.full_need);
                (g.headroom() - grant, g.idx)
            });
            if let Some(g) = best {
                return Some((cand.job, g.idx));
            }
        }
        None
    }
}

/// Strategy selector for CLI parsing and construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StrategyKind {
    /// [`FifoFirstFit`].
    FifoFirstFit,
    /// [`BestFit`].
    BestFit,
}

impl StrategyKind {
    /// Parses a CLI name.
    ///
    /// # Errors
    ///
    /// Returns a message listing the accepted names.
    pub fn parse(s: &str) -> Result<StrategyKind, String> {
        match s {
            "fifo" | "fifo-first-fit" => Ok(StrategyKind::FifoFirstFit),
            "best-fit" | "bestfit" => Ok(StrategyKind::BestFit),
            other => Err(format!(
                "unknown strategy `{other}` (expected fifo or best-fit)"
            )),
        }
    }

    /// Builds the strategy, with `aging_rate` applied to best-fit.
    pub fn build(self, aging_rate: f64) -> Box<dyn PlacementStrategy> {
        match self {
            StrategyKind::FifoFirstFit => Box::new(FifoFirstFit),
            StrategyKind::BestFit => Box::new(BestFit { aging_rate }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cand(job: usize, arrival_us: u64, priority: u32, need: u64) -> CandidateJob {
        CandidateJob {
            job,
            arrival: Time::from_micros(arrival_us),
            priority,
            full_need: need,
            min_need: need,
            failed_budget: None,
        }
    }

    fn gpu(idx: usize, capacity: u64, reserved: u64) -> GpuView {
        GpuView {
            idx,
            capacity,
            reserved,
        }
    }

    fn headroom_fits(c: &CandidateJob, g: &GpuView) -> bool {
        g.headroom() >= c.min_need
    }

    #[test]
    fn fifo_blocks_behind_head_of_line() {
        let pending = [cand(0, 0, 0, 100), cand(1, 1, 5, 10)];
        let gpus = [gpu(0, 50, 0)];
        // Head needs 100, only 50 free: FIFO waits even though job 1 fits.
        assert_eq!(
            FifoFirstFit.pick(&pending, &gpus, Time::ZERO, &headroom_fits),
            None
        );
        let roomy = [gpu(0, 40, 0), gpu(1, 200, 0)];
        assert_eq!(
            FifoFirstFit.pick(&pending, &roomy, Time::ZERO, &headroom_fits),
            Some((0, 1))
        );
    }

    #[test]
    fn best_fit_minimizes_leftover_and_respects_priority() {
        let pending = [cand(0, 0, 0, 100), cand(1, 1, 5, 10)];
        let gpus = [gpu(0, 50, 0), gpu(1, 12, 0)];
        // Priority 5 job goes first, onto the tighter GPU (leftover 2
        // beats leftover 40).
        assert_eq!(
            BestFit::default().pick(&pending, &gpus, Time::ZERO, &headroom_fits),
            Some((1, 1))
        );
    }

    #[test]
    fn aging_protects_old_jobs_from_fresh_urgent_arrivals() {
        // Priority-0 job waiting since t=0; priority-3 job arrives at t=5s.
        let pending = [cand(0, 0, 0, 10), cand(1, 5_000_000, 3, 10)];
        let gpus = [gpu(0, 10, 0)];
        let now = Time::from_micros(6_000_000);
        // Without aging, raw priority wins.
        let no_aging = BestFit { aging_rate: 0.0 };
        assert_eq!(
            no_aging.pick(&pending, &gpus, now, &headroom_fits),
            Some((1, 0))
        );
        // With aging, six seconds of waiting outweigh the newcomer's
        // priority edge (6.0 effective vs 3.0 + 1s).
        let aged = BestFit { aging_rate: 1.0 };
        assert_eq!(
            aged.pick(&pending, &gpus, now, &headroom_fits),
            Some((0, 0))
        );
    }
}
