//! Pluggable placement strategies.
//!
//! A strategy looks at the waiting queue and the current per-GPU
//! reservations and names the next placement: a job plus the full set of
//! GPUs its gang occupies — or `None` when nothing placeable exists. The
//! cluster core owns admission and reservation bookkeeping; strategies
//! only order the search. Returning the whole GPU set at once is what
//! makes gang reservation atomic: the cluster grants every listed GPU in
//! one step of its single-threaded event loop, so a gang can never hold a
//! partial reservation that deadlocks against another job.

use capuchin_sim::Time;

/// A waiting job as the strategy sees it.
#[derive(Debug, Clone, Copy)]
pub struct CandidateJob {
    /// Job index in the cluster's submission order.
    pub job: usize,
    /// When the job arrived (for FIFO order and priority aging).
    pub arrival: Time,
    /// Static priority from the job spec.
    pub priority: u32,
    /// GPUs the gang needs at once (1 for a single-device job).
    pub gpus: usize,
    /// Ideal-peak reservation *per replica* (no management overhead).
    pub full_need: u64,
    /// Smallest admissible per-replica reservation (equals `full_need`
    /// under tf-ori admission).
    pub min_need: u64,
    /// Largest budget at which a validation run has already failed; the
    /// cluster refuses to retry at or below it.
    pub failed_budget: Option<u64>,
}

/// A GPU as the strategy sees it.
#[derive(Debug, Clone, Copy)]
pub struct GpuView {
    /// Device index.
    pub idx: usize,
    /// Link domain the device belongs to. Gangs placed inside one domain
    /// allreduce over a private peer lane instead of the shared host
    /// link; with no interconnect model every GPU is its own domain.
    pub domain: usize,
    /// Total device memory.
    pub capacity: u64,
    /// Bytes currently reserved by resident jobs.
    pub reserved: u64,
}

impl GpuView {
    /// Unreserved bytes.
    pub fn headroom(&self) -> u64 {
        self.capacity.saturating_sub(self.reserved)
    }
}

/// Placement test the cluster supplies: can one replica of this job be
/// admitted to this GPU right now (headroom covers `min_need`, above any
/// failed budget)?
pub type FitsFn<'a> = dyn Fn(&CandidateJob, &GpuView) -> bool + 'a;

/// A placement strategy over one scheduling instant.
pub trait PlacementStrategy: std::fmt::Debug {
    /// Stats/CLI name.
    fn name(&self) -> &'static str;

    /// Picks the next placement: `(job, gpus)` with exactly the job's
    /// gang width of distinct fitting GPUs, or `None` to wait. The
    /// cluster reserves every returned GPU atomically — all or none.
    fn pick(
        &self,
        pending: &[CandidateJob],
        gpus: &[GpuView],
        now: Time,
        fits: &FitsFn<'_>,
    ) -> Option<(usize, Vec<usize>)>;
}

/// Strict arrival order with head-of-line blocking: only the oldest
/// waiting job is considered, placed on the first GPUs it fits (index
/// order). A gang waits until its full width fits at once.
#[derive(Debug, Clone, Copy, Default)]
pub struct FifoFirstFit;

impl PlacementStrategy for FifoFirstFit {
    fn name(&self) -> &'static str {
        "fifo-first-fit"
    }

    fn pick(
        &self,
        pending: &[CandidateJob],
        gpus: &[GpuView],
        _now: Time,
        fits: &FitsFn<'_>,
    ) -> Option<(usize, Vec<usize>)> {
        let head = pending.first()?;
        let take: Vec<usize> = gpus
            .iter()
            .filter(|g| fits(head, g))
            .take(head.gpus.max(1))
            .map(|g| g.idx)
            .collect();
        (take.len() == head.gpus.max(1)).then_some((head.job, take))
    }
}

/// Best-fit memory bin-packing with priority aging: jobs are ranked by
/// `priority + aging_rate × wait_seconds` (ties broken by arrival, then
/// submission order), and each is placed on the fitting GPU subset that
/// leaves the least leftover headroom. Gangs prefer a subset inside one
/// link domain — a same-domain gang allreduces over its private peer lane
/// instead of loading the shared host link — falling back to the tightest
/// cross-domain subset when no single domain has the width.
#[derive(Debug, Clone, Copy)]
pub struct BestFit {
    /// Effective-priority points gained per second of waiting. Guarantees
    /// low-priority jobs eventually overtake a stream of urgent arrivals.
    pub aging_rate: f64,
}

impl Default for BestFit {
    fn default() -> BestFit {
        BestFit { aging_rate: 0.1 }
    }
}

/// Leftover headroom on `g` after granting `min(headroom, full_need)`.
fn leftover(g: &GpuView, cand: &CandidateJob) -> u64 {
    let h = g.headroom();
    h - h.min(cand.full_need)
}

impl PlacementStrategy for BestFit {
    fn name(&self) -> &'static str {
        "best-fit"
    }

    fn pick(
        &self,
        pending: &[CandidateJob],
        gpus: &[GpuView],
        now: Time,
        fits: &FitsFn<'_>,
    ) -> Option<(usize, Vec<usize>)> {
        let mut order: Vec<&CandidateJob> = pending.iter().collect();
        order.sort_by(|a, b| {
            let ea =
                a.priority as f64 + self.aging_rate * now.saturating_since(a.arrival).as_secs_f64();
            let eb =
                b.priority as f64 + self.aging_rate * now.saturating_since(b.arrival).as_secs_f64();
            eb.partial_cmp(&ea)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.arrival.cmp(&b.arrival))
                .then(a.job.cmp(&b.job))
        });
        for cand in order {
            let k = cand.gpus.max(1);
            let mut fitting: Vec<&GpuView> = gpus.iter().filter(|g| fits(cand, g)).collect();
            if fitting.len() < k {
                continue;
            }
            // Tightest-first within equal domains: best-fit per device.
            fitting.sort_by_key(|g| (leftover(g, cand), g.idx));
            // Prefer a gang entirely inside one link domain. Among
            // domains wide enough, take the one whose k tightest GPUs
            // leave the least total headroom (ties: lowest domain).
            let mut domains: Vec<usize> = fitting.iter().map(|g| g.domain).collect();
            domains.sort_unstable();
            domains.dedup();
            let best_domain = domains
                .into_iter()
                .filter_map(|d| {
                    let members: Vec<&&GpuView> =
                        fitting.iter().filter(|g| g.domain == d).take(k).collect();
                    (members.len() == k).then(|| {
                        let total: u64 = members.iter().map(|g| leftover(g, cand)).sum();
                        (total, d, members.iter().map(|g| g.idx).collect::<Vec<_>>())
                    })
                })
                .min_by_key(|(total, d, _)| (*total, *d));
            if let Some((_, _, idxs)) = best_domain {
                return Some((cand.job, idxs));
            }
            // No single domain is wide enough: tightest k GPUs anywhere.
            return Some((cand.job, fitting[..k].iter().map(|g| g.idx).collect()));
        }
        None
    }
}

/// Strategy selector for CLI parsing and construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StrategyKind {
    /// [`FifoFirstFit`].
    FifoFirstFit,
    /// [`BestFit`].
    BestFit,
}

impl StrategyKind {
    /// Accepted [`std::str::FromStr`] spellings, canonical first.
    pub const ACCEPTED: &'static [&'static str] =
        &["fifo", "best-fit", "fifo-first-fit", "bestfit"];

    /// CLI/stats name (matches the built strategy's
    /// [`PlacementStrategy::name`]).
    pub fn name(self) -> &'static str {
        match self {
            StrategyKind::FifoFirstFit => "fifo-first-fit",
            StrategyKind::BestFit => "best-fit",
        }
    }

    /// Builds the strategy, with `aging_rate` applied to best-fit.
    pub fn build(self, aging_rate: f64) -> Box<dyn PlacementStrategy> {
        match self {
            StrategyKind::FifoFirstFit => Box::new(FifoFirstFit),
            StrategyKind::BestFit => Box::new(BestFit { aging_rate }),
        }
    }
}

impl std::fmt::Display for StrategyKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for StrategyKind {
    type Err = crate::parse::ParseEnumError;

    fn from_str(s: &str) -> Result<StrategyKind, crate::parse::ParseEnumError> {
        match s {
            "fifo" | "fifo-first-fit" => Ok(StrategyKind::FifoFirstFit),
            "best-fit" | "bestfit" => Ok(StrategyKind::BestFit),
            other => Err(crate::parse::ParseEnumError::unknown(
                "placement strategy",
                other,
                Self::ACCEPTED,
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cand(job: usize, arrival_us: u64, priority: u32, need: u64) -> CandidateJob {
        CandidateJob {
            job,
            arrival: Time::from_micros(arrival_us),
            priority,
            gpus: 1,
            full_need: need,
            min_need: need,
            failed_budget: None,
        }
    }

    fn gang(job: usize, gpus: usize, need: u64) -> CandidateJob {
        CandidateJob {
            gpus,
            ..cand(job, 0, 0, need)
        }
    }

    fn gpu(idx: usize, capacity: u64, reserved: u64) -> GpuView {
        GpuView {
            idx,
            domain: idx,
            capacity,
            reserved,
        }
    }

    fn headroom_fits(c: &CandidateJob, g: &GpuView) -> bool {
        g.headroom() >= c.min_need
    }

    #[test]
    fn fifo_blocks_behind_head_of_line() {
        let pending = [cand(0, 0, 0, 100), cand(1, 1, 5, 10)];
        let gpus = [gpu(0, 50, 0)];
        // Head needs 100, only 50 free: FIFO waits even though job 1 fits.
        assert_eq!(
            FifoFirstFit.pick(&pending, &gpus, Time::ZERO, &headroom_fits),
            None
        );
        let roomy = [gpu(0, 40, 0), gpu(1, 200, 0)];
        assert_eq!(
            FifoFirstFit.pick(&pending, &roomy, Time::ZERO, &headroom_fits),
            Some((0, vec![1]))
        );
    }

    #[test]
    fn fifo_gang_waits_for_full_width() {
        let pending = [gang(0, 2, 100)];
        // Only one GPU fits: the gang blocks rather than taking half.
        let tight = [gpu(0, 150, 0), gpu(1, 50, 0)];
        assert_eq!(
            FifoFirstFit.pick(&pending, &tight, Time::ZERO, &headroom_fits),
            None
        );
        let roomy = [gpu(0, 150, 0), gpu(1, 50, 0), gpu(2, 150, 0)];
        assert_eq!(
            FifoFirstFit.pick(&pending, &roomy, Time::ZERO, &headroom_fits),
            Some((0, vec![0, 2]))
        );
    }

    #[test]
    fn best_fit_minimizes_leftover_and_respects_priority() {
        let pending = [cand(0, 0, 0, 100), cand(1, 1, 5, 10)];
        let gpus = [gpu(0, 50, 0), gpu(1, 12, 0)];
        // Priority 5 job goes first, onto the tighter GPU (leftover 2
        // beats leftover 40).
        assert_eq!(
            BestFit::default().pick(&pending, &gpus, Time::ZERO, &headroom_fits),
            Some((1, vec![1]))
        );
    }

    #[test]
    fn best_fit_prefers_same_domain_gangs() {
        let pending = [gang(0, 2, 100)];
        // Domain 0 = {0, 1}, domain 1 = {2, 3}. GPUs 1 and 2 are the two
        // tightest, but they span domains; GPUs 2 and 3 share domain 1.
        let mk = |idx, domain, cap| GpuView {
            idx,
            domain,
            capacity: cap,
            reserved: 0,
        };
        let gpus = [mk(0, 0, 400), mk(1, 0, 110), mk(2, 1, 105), mk(3, 1, 300)];
        assert_eq!(
            BestFit::default().pick(&pending, &gpus, Time::ZERO, &headroom_fits),
            Some((0, vec![2, 3]))
        );
        // When no domain holds the full width, fall back to the tightest
        // GPUs anywhere.
        let split = [mk(0, 0, 110), mk(1, 1, 105), mk(2, 2, 300)];
        assert_eq!(
            BestFit::default().pick(&pending, &split, Time::ZERO, &headroom_fits),
            Some((0, vec![1, 0]))
        );
    }

    #[test]
    fn strategy_kind_round_trips_through_fromstr_and_display() {
        for k in [StrategyKind::FifoFirstFit, StrategyKind::BestFit] {
            assert_eq!(k.to_string().parse::<StrategyKind>(), Ok(k));
            assert_eq!(k.build(0.1).name(), k.name());
        }
        assert_eq!("fifo".parse(), Ok(StrategyKind::FifoFirstFit));
        assert_eq!("bestfit".parse(), Ok(StrategyKind::BestFit));
        let err = "random".parse::<StrategyKind>().unwrap_err();
        assert!(err.to_string().contains("fifo, best-fit"), "{err}");
    }

    #[test]
    fn aging_protects_old_jobs_from_fresh_urgent_arrivals() {
        // Priority-0 job waiting since t=0; priority-3 job arrives at t=5s.
        let pending = [cand(0, 0, 0, 10), cand(1, 5_000_000, 3, 10)];
        let gpus = [gpu(0, 10, 0)];
        let now = Time::from_micros(6_000_000);
        // Without aging, raw priority wins.
        let no_aging = BestFit { aging_rate: 0.0 };
        assert_eq!(
            no_aging.pick(&pending, &gpus, now, &headroom_fits),
            Some((1, vec![0]))
        );
        // With aging, six seconds of waiting outweigh the newcomer's
        // priority edge (6.0 effective vs 3.0 + 1s).
        let aged = BestFit { aging_rate: 1.0 };
        assert_eq!(
            aged.pick(&pending, &gpus, now, &headroom_fits),
            Some((0, vec![0]))
        );
    }
}
