//! Pluggable placement strategies.
//!
//! A strategy looks at the waiting queue and the current per-GPU
//! reservations and names the next placement: a job plus the full set of
//! GPUs its gang occupies — or `None` when nothing placeable exists. The
//! cluster core owns admission and reservation bookkeeping; strategies
//! only order the search. Returning the whole GPU set at once is what
//! makes gang reservation atomic: the cluster grants every listed GPU in
//! one step of its single-threaded event loop, so a gang can never hold a
//! partial reservation that deadlocks against another job.
//!
//! The live [`PlacementStrategy::pick`] path probes the [`GpuPool`]
//! headroom index (O(log gpus) per device query) and reads candidates
//! lazily from an iterator, so FIFO never materializes the whole queue.
//! The pre-index brute-force scan survives as
//! [`PlacementStrategy::pick_brute`]; `prop_scale` proves both paths pick
//! byte-identical placements on arbitrary reservation histories.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use capuchin_sim::{Duration, Time};

use crate::headroom::GpuPool;

/// A waiting job as the strategy sees it.
#[derive(Debug, Clone, Copy)]
pub struct CandidateJob {
    /// Job index in the cluster's submission order.
    pub job: usize,
    /// When the job arrived (for FIFO order and priority aging).
    pub arrival: Time,
    /// Static priority from the job spec.
    pub priority: u32,
    /// GPUs the gang needs at once (1 for a single-device job).
    pub gpus: usize,
    /// Ideal-peak reservation *per replica* (no management overhead).
    pub full_need: u64,
    /// Smallest admissible per-replica reservation (equals `full_need`
    /// under tf-ori admission).
    pub min_need: u64,
    /// Largest budget at which a validation run has already failed; the
    /// cluster refuses to retry at or below it.
    pub failed_budget: Option<u64>,
    /// SLO-slack boost in permille priority points (see
    /// [`slo_boost_permille`]); 0 for training jobs and under SLO-blind
    /// scheduling. Added on top of the aged effective priority.
    pub boost_permille: u64,
}

impl CandidateJob {
    /// Minimum headroom a GPU must expose for one replica of this job, or
    /// `None` when no headroom suffices (a validation already failed at or
    /// above `full_need`, so every grant the cluster could make —
    /// `min(headroom, full_need)` — is refused).
    ///
    /// The cluster's fit predicate is `headroom >= min_need` and
    /// `min(headroom, full_need) > failed_budget`; both clauses are
    /// monotone in headroom, which is what lets the [`GpuPool`] index
    /// answer placement with threshold queries instead of per-GPU scans.
    pub fn fit_threshold(&self) -> Option<u64> {
        match self.failed_budget {
            Some(fb) if fb >= self.full_need => None,
            Some(fb) => Some(self.min_need.max(fb + 1)),
            None => Some(self.min_need),
        }
    }
}

/// A GPU as the brute-force reference path sees it.
#[derive(Debug, Clone, Copy)]
pub struct GpuView {
    /// Device index.
    pub idx: usize,
    /// Link domain the device belongs to. Gangs placed inside one domain
    /// allreduce over a private peer lane instead of the shared host
    /// link; with no interconnect model every GPU is its own domain.
    pub domain: usize,
    /// Total device memory.
    pub capacity: u64,
    /// Bytes currently reserved by resident jobs.
    pub reserved: u64,
}

impl GpuView {
    /// Unreserved bytes.
    pub fn headroom(&self) -> u64 {
        self.capacity.saturating_sub(self.reserved)
    }
}

/// Placement test the brute-force reference path uses: can one replica of
/// this job be admitted to this GPU right now? The canonical predicate is
/// [`threshold_fits`].
pub type FitsFn<'a> = dyn Fn(&CandidateJob, &GpuView) -> bool + 'a;

/// The cluster's canonical fit predicate, phrased over a [`GpuView`]:
/// headroom clears [`CandidateJob::fit_threshold`].
pub fn threshold_fits(cand: &CandidateJob, gpu: &GpuView) -> bool {
    cand.fit_threshold().is_some_and(|t| gpu.headroom() >= t)
}

/// Permille fixed-point aging rate: `0.1` points/second becomes `100`.
/// Mirrors the planner's permille margin scaling so effective priorities
/// compare in exact integer arithmetic on every platform.
pub fn aging_permille(aging_rate: f64) -> u64 {
    (aging_rate * 1000.0).round().max(0.0) as u64
}

/// Effective priority in permille fixed point:
/// `priority × 1000 + aging_permille × waited_seconds`, computed exactly
/// over nanoseconds in u128 so comparisons are total and
/// platform-independent (the old `f64` compare could tie-break
/// differently across platforms once waits grew large).
pub fn effective_priority_permille(priority: u32, aging_permille: u64, waited: Duration) -> u128 {
    let aged = (aging_permille as u128).saturating_mul(waited.as_nanos() as u128) / 1_000_000_000;
    (priority as u128) * 1000 + aged
}

/// SLO-slack priority boost in permille fixed point: the fraction of its
/// latency SLO the oldest pending request has already burned, capped at
/// two full priority points. `boost = min(waited × 1000 / slo, 2000)`,
/// computed exactly over integer nanoseconds in u128 — so an inference
/// job whose oldest request has consumed its whole SLO outranks a
/// same-priority training job by one point, and the cap keeps a deeply
/// late job from starving everything above it forever (aging still
/// resolves those). Returns 0 when `slo_ns` is 0 (training jobs) or no
/// request waits.
pub fn slo_boost_permille(slo_ns: u64, oldest_wait_ns: u64) -> u64 {
    if slo_ns == 0 || oldest_wait_ns == 0 {
        return 0;
    }
    ((oldest_wait_ns as u128 * 1000 / slo_ns as u128).min(2000)) as u64
}

/// A placement strategy over one scheduling instant.
pub trait PlacementStrategy: std::fmt::Debug {
    /// Stats/CLI name.
    fn name(&self) -> &'static str;

    /// `true` when [`PlacementStrategy::pick`]'s result is invariant to
    /// the candidates' arrival order *and* to dropping candidates whose
    /// [`CandidateJob::fit_threshold`] is `None` or exceeds every
    /// device's headroom (such candidates can never be picked). The
    /// cluster then feeds `pick` an indexed eligible subset of the queue
    /// instead of scanning the whole backlog per probe. Strategies with
    /// positional semantics (FIFO's head-of-line blocking) must leave
    /// this `false`.
    fn order_insensitive(&self) -> bool {
        false
    }

    /// Picks the next placement: `(job, gpus)` with exactly the job's
    /// gang width of distinct fitting GPUs, or `None` to wait. The
    /// cluster reserves every returned GPU atomically — all or none.
    ///
    /// Candidates arrive in queue order; strategies that only look at the
    /// head (FIFO) never advance the iterator further, so a long backlog
    /// costs nothing to probe.
    fn pick(
        &self,
        queue: &mut dyn Iterator<Item = CandidateJob>,
        pool: &GpuPool,
        now: Time,
    ) -> Option<(usize, Vec<usize>)>;

    /// Reference implementation of [`PlacementStrategy::pick`] that
    /// re-scans every GPU per probe — the pre-index algorithm, retained
    /// so `prop_scale` can prove the indexed path byte-identical.
    fn pick_brute(
        &self,
        pending: &[CandidateJob],
        gpus: &[GpuView],
        now: Time,
        fits: &FitsFn<'_>,
    ) -> Option<(usize, Vec<usize>)>;
}

/// Strict arrival order with head-of-line blocking: only the oldest
/// waiting job is considered, placed on the first GPUs it fits (index
/// order). A gang waits until its full width fits at once.
#[derive(Debug, Clone, Copy, Default)]
pub struct FifoFirstFit;

impl PlacementStrategy for FifoFirstFit {
    fn name(&self) -> &'static str {
        "fifo-first-fit"
    }

    fn pick(
        &self,
        queue: &mut dyn Iterator<Item = CandidateJob>,
        pool: &GpuPool,
        _now: Time,
    ) -> Option<(usize, Vec<usize>)> {
        let head = queue.next()?;
        let threshold = head.fit_threshold()?;
        let take = pool.first_fit(threshold, head.gpus.max(1))?;
        Some((head.job, take))
    }

    fn pick_brute(
        &self,
        pending: &[CandidateJob],
        gpus: &[GpuView],
        _now: Time,
        fits: &FitsFn<'_>,
    ) -> Option<(usize, Vec<usize>)> {
        let head = pending.first()?;
        let take: Vec<usize> = gpus
            .iter()
            .filter(|g| fits(head, g))
            .take(head.gpus.max(1))
            .map(|g| g.idx)
            .collect();
        (take.len() == head.gpus.max(1)).then_some((head.job, take))
    }
}

/// Best-fit memory bin-packing with priority aging: jobs are ranked by
/// `priority + aging_rate × wait_seconds` plus any SLO-slack boost
/// ([`slo_boost_permille`]) in permille fixed point (ties broken by raw
/// priority, then arrival, then submission order), and each
/// is placed on the fitting GPU subset that leaves the least leftover
/// headroom. Gangs prefer a subset inside one link domain — a same-domain
/// gang allreduces over its private peer lane instead of loading the
/// shared host link — falling back to the tightest cross-domain subset
/// when no single domain has the width.
#[derive(Debug, Clone, Copy)]
pub struct BestFit {
    /// Effective-priority points gained per second of waiting, rounded to
    /// permille internally. Guarantees low-priority jobs eventually
    /// overtake a stream of urgent arrivals.
    pub aging_rate: f64,
}

impl Default for BestFit {
    fn default() -> BestFit {
        BestFit { aging_rate: 0.1 }
    }
}

/// Leftover headroom after granting `min(headroom, full_need)`.
fn leftover(headroom: u64, full_need: u64) -> u64 {
    headroom - headroom.min(full_need)
}

/// Max-heap rank key of one best-fit candidate: `(effective priority,
/// raw priority, earliest arrival, lowest job index)` — descending
/// effective priority with every tie broken, so the key order is total
/// and heap pops reproduce the full-sort order exactly.
type RankKey = (u128, u32, Reverse<u64>, Reverse<usize>);

impl BestFit {
    /// Candidates sorted by descending effective priority.
    fn ranked(
        &self,
        queue: &mut dyn Iterator<Item = CandidateJob>,
        now: Time,
    ) -> Vec<CandidateJob> {
        let permille = aging_permille(self.aging_rate);
        let mut order: Vec<CandidateJob> = queue.collect();
        order.sort_by(|a, b| {
            let ea =
                effective_priority_permille(a.priority, permille, now.saturating_since(a.arrival))
                    + a.boost_permille as u128;
            let eb =
                effective_priority_permille(b.priority, permille, now.saturating_since(b.arrival))
                    + b.boost_permille as u128;
            eb.cmp(&ea)
                .then(b.priority.cmp(&a.priority))
                .then(a.arrival.cmp(&b.arrival))
                .then(a.job.cmp(&b.job))
        });
        order
    }
}

impl PlacementStrategy for BestFit {
    fn name(&self) -> &'static str {
        "best-fit"
    }

    /// Ranking is a total order (the job index breaks every tie) and
    /// unfittable candidates are skipped wholesale, so candidate order
    /// and pre-filtering cannot change the pick.
    fn order_insensitive(&self) -> bool {
        true
    }

    fn pick(
        &self,
        queue: &mut dyn Iterator<Item = CandidateJob>,
        pool: &GpuPool,
        now: Time,
    ) -> Option<(usize, Vec<usize>)> {
        let permille = aging_permille(self.aging_rate);
        let cap = pool.max_headroom();
        // Keep only candidates whose threshold clears *some* device (the
        // rest are unconditionally skipped below anyway), with the rank
        // key computed once per candidate. The heap pops them lazily in
        // exactly `ranked` order — rank keys are unique (the job index
        // breaks every tie) — so the common cases are cheap: a no-fit
        // probe is one O(queue) scan with no sort, and a first-candidate
        // hit is a heapify plus a single pop.
        let mut cands: Vec<(u64, CandidateJob)> = Vec::new();
        let mut order: Vec<(RankKey, usize)> = Vec::new();
        for cand in queue {
            let Some(threshold) = cand.fit_threshold() else {
                continue;
            };
            if threshold > cap {
                continue;
            }
            let eff = effective_priority_permille(
                cand.priority,
                permille,
                now.saturating_since(cand.arrival),
            ) + cand.boost_permille as u128;
            let key = (
                eff,
                cand.priority,
                Reverse(cand.arrival.as_nanos()),
                Reverse(cand.job),
            );
            order.push((key, cands.len()));
            cands.push((threshold, cand));
        }
        let mut ranked = BinaryHeap::from(order);
        while let Some((_, i)) = ranked.pop() {
            let (threshold, cand) = cands[i];
            let k = cand.gpus.max(1);
            // Enumerate fitting GPUs domain by domain, skipping domains
            // whose best device falls short. Each domain's k tightest
            // members compete for the same-domain preference; all fitting
            // devices feed the cross-domain fallback.
            let mut fitting: Vec<(u64, usize)> = Vec::new();
            let mut best: Option<(u64, usize, Vec<usize>)> = None;
            let mut next = 0;
            while let Some(d) = pool.next_domain_at_least(next, threshold) {
                next = d + 1;
                let mut members: Vec<(u64, usize)> = pool
                    .domain_members(d)
                    .iter()
                    .filter_map(|&g| {
                        let h = pool.headroom(g);
                        (h >= threshold).then(|| (leftover(h, cand.full_need), g))
                    })
                    .collect();
                members.sort_unstable();
                if members.len() >= k {
                    let total: u64 = members[..k].iter().map(|&(l, _)| l).sum();
                    if best
                        .as_ref()
                        .is_none_or(|&(bt, bd, _)| (total, d) < (bt, bd))
                    {
                        best = Some((total, d, members[..k].iter().map(|&(_, g)| g).collect()));
                    }
                }
                fitting.append(&mut members);
            }
            if let Some((_, _, idxs)) = best {
                return Some((cand.job, idxs));
            }
            if fitting.len() >= k {
                // No single domain is wide enough: tightest k anywhere.
                fitting.sort_unstable();
                return Some((cand.job, fitting[..k].iter().map(|&(_, g)| g).collect()));
            }
        }
        None
    }

    fn pick_brute(
        &self,
        pending: &[CandidateJob],
        gpus: &[GpuView],
        now: Time,
        fits: &FitsFn<'_>,
    ) -> Option<(usize, Vec<usize>)> {
        let mut queue = pending.iter().copied();
        for cand in self.ranked(&mut queue, now) {
            let k = cand.gpus.max(1);
            let mut fitting: Vec<&GpuView> = gpus.iter().filter(|g| fits(&cand, g)).collect();
            if fitting.len() < k {
                continue;
            }
            // Tightest-first within equal domains: best-fit per device.
            fitting.sort_by_key(|g| (leftover(g.headroom(), cand.full_need), g.idx));
            // Prefer a gang entirely inside one link domain. Among
            // domains wide enough, take the one whose k tightest GPUs
            // leave the least total headroom (ties: lowest domain).
            let mut domains: Vec<usize> = fitting.iter().map(|g| g.domain).collect();
            domains.sort_unstable();
            domains.dedup();
            let best_domain = domains
                .into_iter()
                .filter_map(|d| {
                    let members: Vec<&&GpuView> =
                        fitting.iter().filter(|g| g.domain == d).take(k).collect();
                    (members.len() == k).then(|| {
                        let total: u64 = members
                            .iter()
                            .map(|g| leftover(g.headroom(), cand.full_need))
                            .sum();
                        (total, d, members.iter().map(|g| g.idx).collect::<Vec<_>>())
                    })
                })
                .min_by_key(|(total, d, _)| (*total, *d));
            if let Some((_, _, idxs)) = best_domain {
                return Some((cand.job, idxs));
            }
            // No single domain is wide enough: tightest k GPUs anywhere.
            return Some((cand.job, fitting[..k].iter().map(|g| g.idx).collect()));
        }
        None
    }
}

/// Strategy selector for CLI parsing and construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StrategyKind {
    /// [`FifoFirstFit`].
    FifoFirstFit,
    /// [`BestFit`].
    BestFit,
}

impl StrategyKind {
    /// Accepted [`std::str::FromStr`] spellings, canonical first.
    pub const ACCEPTED: &'static [&'static str] =
        &["fifo", "best-fit", "fifo-first-fit", "bestfit"];

    /// CLI/stats name (matches the built strategy's
    /// [`PlacementStrategy::name`]).
    pub fn name(self) -> &'static str {
        match self {
            StrategyKind::FifoFirstFit => "fifo-first-fit",
            StrategyKind::BestFit => "best-fit",
        }
    }

    /// Builds the strategy, with `aging_rate` applied to best-fit.
    pub fn build(self, aging_rate: f64) -> Box<dyn PlacementStrategy> {
        match self {
            StrategyKind::FifoFirstFit => Box::new(FifoFirstFit),
            StrategyKind::BestFit => Box::new(BestFit { aging_rate }),
        }
    }
}

impl std::fmt::Display for StrategyKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for StrategyKind {
    type Err = crate::parse::ParseEnumError;

    fn from_str(s: &str) -> Result<StrategyKind, crate::parse::ParseEnumError> {
        match s {
            "fifo" | "fifo-first-fit" => Ok(StrategyKind::FifoFirstFit),
            "best-fit" | "bestfit" => Ok(StrategyKind::BestFit),
            other => Err(crate::parse::ParseEnumError::unknown(
                "placement strategy",
                other,
                Self::ACCEPTED,
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cand(job: usize, arrival_us: u64, priority: u32, need: u64) -> CandidateJob {
        CandidateJob {
            job,
            arrival: Time::from_micros(arrival_us),
            priority,
            gpus: 1,
            full_need: need,
            min_need: need,
            failed_budget: None,
            boost_permille: 0,
        }
    }

    fn gang(job: usize, gpus: usize, need: u64) -> CandidateJob {
        CandidateJob {
            gpus,
            ..cand(job, 0, 0, need)
        }
    }

    fn gpu(idx: usize, capacity: u64, reserved: u64) -> GpuView {
        GpuView {
            idx,
            domain: idx,
            capacity,
            reserved,
        }
    }

    fn pool_of(gpus: &[GpuView]) -> GpuPool {
        let mut p = GpuPool::new(
            gpus.iter().map(|g| g.capacity).collect(),
            gpus.iter().map(|g| g.domain).collect(),
        );
        for g in gpus {
            p.set_reserved(g.idx, g.reserved);
        }
        p
    }

    /// Runs the indexed pick and asserts it matches the brute reference.
    fn pick_both(
        strategy: &dyn PlacementStrategy,
        pending: &[CandidateJob],
        gpus: &[GpuView],
        now: Time,
    ) -> Option<(usize, Vec<usize>)> {
        let indexed = strategy.pick(&mut pending.iter().copied(), &pool_of(gpus), now);
        let brute = strategy.pick_brute(pending, gpus, now, &threshold_fits);
        assert_eq!(indexed, brute, "indexed pick diverged from brute scan");
        indexed
    }

    #[test]
    fn fifo_blocks_behind_head_of_line() {
        let pending = [cand(0, 0, 0, 100), cand(1, 1, 5, 10)];
        let gpus = [gpu(0, 50, 0)];
        // Head needs 100, only 50 free: FIFO waits even though job 1 fits.
        assert_eq!(pick_both(&FifoFirstFit, &pending, &gpus, Time::ZERO), None);
        let roomy = [gpu(0, 40, 0), gpu(1, 200, 0)];
        assert_eq!(
            pick_both(&FifoFirstFit, &pending, &roomy, Time::ZERO),
            Some((0, vec![1]))
        );
    }

    #[test]
    fn fifo_gang_waits_for_full_width() {
        let pending = [gang(0, 2, 100)];
        // Only one GPU fits: the gang blocks rather than taking half.
        let tight = [gpu(0, 150, 0), gpu(1, 50, 0)];
        assert_eq!(pick_both(&FifoFirstFit, &pending, &tight, Time::ZERO), None);
        let roomy = [gpu(0, 150, 0), gpu(1, 50, 0), gpu(2, 150, 0)];
        assert_eq!(
            pick_both(&FifoFirstFit, &pending, &roomy, Time::ZERO),
            Some((0, vec![0, 2]))
        );
    }

    #[test]
    fn best_fit_minimizes_leftover_and_respects_priority() {
        let pending = [cand(0, 0, 0, 100), cand(1, 1, 5, 10)];
        let gpus = [gpu(0, 50, 0), gpu(1, 12, 0)];
        // Priority 5 job goes first, onto the tighter GPU (leftover 2
        // beats leftover 40).
        assert_eq!(
            pick_both(&BestFit::default(), &pending, &gpus, Time::ZERO),
            Some((1, vec![1]))
        );
    }

    #[test]
    fn best_fit_prefers_same_domain_gangs() {
        let pending = [gang(0, 2, 100)];
        // Domain 0 = {0, 1}, domain 1 = {2, 3}. GPUs 1 and 2 are the two
        // tightest, but they span domains; GPUs 2 and 3 share domain 1.
        let mk = |idx, domain, cap| GpuView {
            idx,
            domain,
            capacity: cap,
            reserved: 0,
        };
        let gpus = [mk(0, 0, 400), mk(1, 0, 110), mk(2, 1, 105), mk(3, 1, 300)];
        assert_eq!(
            pick_both(&BestFit::default(), &pending, &gpus, Time::ZERO),
            Some((0, vec![2, 3]))
        );
        // When no domain holds the full width, fall back to the tightest
        // GPUs anywhere.
        let split = [mk(0, 0, 110), mk(1, 1, 105), mk(2, 2, 300)];
        assert_eq!(
            pick_both(&BestFit::default(), &pending, &split, Time::ZERO),
            Some((0, vec![1, 0]))
        );
    }

    #[test]
    fn failed_budget_blocks_and_unblocks_through_threshold() {
        // Validation failed at 40 with full need 100: only headroom > 40
        // qualifies, and a failure at or above full need blocks entirely.
        let mut c = cand(0, 0, 0, 100);
        c.min_need = 30;
        c.failed_budget = Some(40);
        assert_eq!(c.fit_threshold(), Some(41));
        let gpus = [gpu(0, 40, 0), gpu(1, 41, 0)];
        assert_eq!(
            pick_both(&FifoFirstFit, &[c], &gpus, Time::ZERO),
            Some((0, vec![1]))
        );
        c.failed_budget = Some(100);
        assert_eq!(c.fit_threshold(), None);
        assert_eq!(pick_both(&FifoFirstFit, &[c], &gpus, Time::ZERO), None);
    }

    #[test]
    fn strategy_kind_round_trips_through_fromstr_and_display() {
        for k in [StrategyKind::FifoFirstFit, StrategyKind::BestFit] {
            assert_eq!(k.to_string().parse::<StrategyKind>(), Ok(k));
            assert_eq!(k.build(0.1).name(), k.name());
        }
        assert_eq!("fifo".parse(), Ok(StrategyKind::FifoFirstFit));
        assert_eq!("bestfit".parse(), Ok(StrategyKind::BestFit));
        let err = "random".parse::<StrategyKind>().unwrap_err();
        assert!(err.to_string().contains("fifo, best-fit"), "{err}");
    }

    #[test]
    fn aging_protects_old_jobs_from_fresh_urgent_arrivals() {
        // Priority-0 job waiting since t=0; priority-3 job arrives at t=5s.
        let pending = [cand(0, 0, 0, 10), cand(1, 5_000_000, 3, 10)];
        let gpus = [gpu(0, 10, 0)];
        let now = Time::from_micros(6_000_000);
        // Without aging, raw priority wins.
        let no_aging = BestFit { aging_rate: 0.0 };
        assert_eq!(
            pick_both(&no_aging, &pending, &gpus, now),
            Some((1, vec![0]))
        );
        // With aging, six seconds of waiting outweigh the newcomer's
        // priority edge (6000 permille effective vs 3000 + 1s aging).
        let aged = BestFit { aging_rate: 1.0 };
        assert_eq!(pick_both(&aged, &pending, &gpus, now), Some((0, vec![0])));
    }

    #[test]
    fn slo_boost_outranks_equal_priority_and_is_capped() {
        // No SLO or no waiting request: no boost.
        assert_eq!(slo_boost_permille(0, 1_000_000), 0);
        assert_eq!(slo_boost_permille(1_000_000, 0), 0);
        // Half the SLO burned = half a priority point; fully burned = one.
        assert_eq!(slo_boost_permille(200_000_000, 100_000_000), 500);
        assert_eq!(slo_boost_permille(200_000_000, 200_000_000), 1000);
        // Capped at two points even when hopelessly late, and exact in
        // u128 at extreme waits.
        assert_eq!(slo_boost_permille(1, u64::MAX), 2000);
        // A boosted candidate outranks an equal-priority unboosted one on
        // both strategy paths...
        let mut boosted = cand(0, 0, 1, 10);
        boosted.boost_permille = 500;
        let pending = [cand(1, 0, 1, 10), boosted];
        let gpus = [gpu(0, 10, 0)];
        assert_eq!(
            pick_both(&BestFit::default(), &pending, &gpus, Time::ZERO),
            Some((0, vec![0]))
        );
        // ...but never outranks strictly higher static priority by more
        // than its capped two points.
        let urgent = [cand(1, 0, 4, 10), boosted];
        assert_eq!(
            pick_both(&BestFit::default(), &urgent, &gpus, Time::ZERO),
            Some((1, vec![0]))
        );
    }

    #[test]
    fn effective_priority_is_exact_integer_permille() {
        // 0.1/s aging over 6 seconds = 600 permille, computed exactly.
        assert_eq!(aging_permille(0.1), 100);
        assert_eq!(
            effective_priority_permille(2, 100, Duration::from_micros(6_000_000)),
            2_600
        );
        // Sub-permille remainders truncate deterministically.
        assert_eq!(
            effective_priority_permille(0, 100, Duration::from_nanos(19)),
            0
        );
        // Extreme waits stay exact in u128 instead of losing precision.
        assert_eq!(
            effective_priority_permille(u32::MAX, u64::MAX, Duration::from_nanos(u64::MAX)),
            u32::MAX as u128 * 1000 + (u64::MAX as u128 * u64::MAX as u128) / 1_000_000_000
        );
    }
}
