//! Cluster run statistics, serialized to JSON for reports and benches.
//!
//! Everything here is `Vec`-based and insertion-ordered so that the same
//! simulation always renders byte-identical JSON.

use capuchin_sim::{CopyDir, Duration, LinkStats, Time};
use serde::{Deserialize, Serialize};

/// Version stamp of the stats JSON schema, serialized as the first field
/// of [`ClusterStats`] so protocol clients can detect drift before
/// interpreting anything else.
///
/// History: version 1 is the implicit, unversioned schema of the first
/// five PRs; version 2 added this field itself, the
/// [`JobOutcome::Cancelled`] outcome, and the [`ClusterStats::cancelled`]
/// counter, and nothing else; version 3 added the mixed-workload fields —
/// per-job [`JobStats::requests_served`] / [`JobStats::slo_misses`] /
/// [`JobStats::p50_latency`] / [`JobStats::p99_latency`] /
/// [`JobStats::burst_shrinks`] and cluster-wide
/// [`ClusterStats::requests_served`] / [`ClusterStats::slo_misses`] /
/// [`ClusterStats::slo_attainment_permille`] /
/// [`ClusterStats::burst_shrinks`] / [`ClusterStats::burst_cycles`];
/// version 4 added the per-job memory-management cost counters —
/// [`JobStats::recompute_time`] / [`JobStats::evictions`] /
/// [`JobStats::admission_validations`] — and nothing else;
/// version 5 added the predictive-admission fields — per-job
/// [`JobStats::admission_source`] / [`JobStats::predicted_bytes`] /
/// [`JobStats::prediction_error_permille`] /
/// [`JobStats::mispredict_recoveries`], cluster-wide
/// [`ClusterStats::mispredict_recoveries`] /
/// [`ClusterStats::predictor_hits`] / [`ClusterStats::predictor_misses`],
/// and the [`JobStatus::admission_source`] live field — and nothing else.
/// Bump it whenever
/// a field is added, removed, renamed, or its meaning changes — the serve
/// smoke test pins the daemon and the client to the same number.
pub const STATS_SCHEMA_VERSION: u32 = 5;

/// One entry of the cluster's unified transfer trace: a replayed swap
/// transfer, a gang allreduce, or a checkpoint/restore copy, resolved on
/// a shared fabric lane. Returned by [`crate::Cluster::run_traced`] as a
/// side-channel — it is *not* part of [`ClusterStats`], so the stats JSON
/// stays byte-identical to fabric-free runs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterTransfer {
    /// Job the traffic belongs to (spec name).
    pub job: String,
    /// Iteration index the traffic settled at (`u64::MAX` for
    /// checkpoint/restore copies, which happen between iterations).
    pub iter: u64,
    /// What moved: the engine's per-tensor label (`prefetch:<t>`,
    /// `swapout:<t>`, …) for replayed swaps, `allreduce`, `checkpoint`, or
    /// `restore`.
    pub label: String,
    /// Fabric lane that served the transfer (`host` or `peer<d>`).
    pub link: String,
    /// Transfer direction.
    pub dir: CopyDir,
    /// Payload size (all replicas' bytes).
    pub bytes: u64,
    /// Instant the transfer wanted the lane (its replayed submission
    /// time, minus any accumulated feedback lead).
    pub want: Time,
    /// First byte on the wire.
    pub start: Time,
    /// Last byte delivered.
    pub end: Time,
    /// Time spent queued behind other traffic (`start − want`).
    pub wait: Duration,
    /// Contribution to the job's `comm_delay` (deduplicated against other
    /// waiters in the same busy period; zero for allreduce and
    /// checkpoint/restore copies, which are charged to their own
    /// counters).
    pub charge: Duration,
    /// Feedback lead applied to this transfer's want (paper §4.4: a
    /// stretched prefetch moves its in-trigger earlier on later
    /// iterations).
    pub lead: Duration,
}

impl ClusterTransfer {
    /// Stretch factor: observed latency (want → end) over pure wire time.
    /// `1.0` means the transfer never waited.
    pub fn stretch(&self) -> f64 {
        let service = self.end.saturating_since(self.start).as_secs_f64();
        if service == 0.0 {
            return 1.0;
        }
        self.end.saturating_since(self.want).as_secs_f64() / service
    }
}

/// How one job's stay in the cluster ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum JobOutcome {
    /// Ran to completion.
    Completed,
    /// Rejected at admission: even the minimum budget exceeds a bare GPU.
    Rejected,
    /// Still waiting when the simulation drained (validation kept failing
    /// or no strategy pick ever materialized).
    Starved,
    /// Checkpointed out by a preemption and never resumed before the
    /// simulation drained; its state is still resumable on the host.
    Preempted,
    /// Aborted mid-run: the replay state became unusable (an empty wall
    /// trace slipped past admission). Counted in `midrun_oom_aborts`.
    Aborted,
    /// Cancelled through the online API ([`crate::Cluster::cancel`])
    /// before it could complete. A never-admitted queued job that is
    /// cancelled refunds nothing — it held no reservation to begin with —
    /// and is *not* a rejection (admission never refused it) nor an abort
    /// (its replay state never became unusable).
    Cancelled,
}

/// A job's position in its lifecycle, as reported by
/// [`crate::Cluster::status`]. Unlike [`JobOutcome`] — which is derived
/// once, at stats time, and has a `Starved` catch-all for jobs the run
/// left behind — this is a live view that changes as events process.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum JobState {
    /// Waiting for placement (or for its arrival time to come up).
    Queued,
    /// Holding its gang and iterating.
    Running,
    /// Checkpointed to the host (or mid-checkpoint-copy), resumable.
    Preempted,
    /// Ran to completion.
    Completed,
    /// Refused at admission.
    Rejected,
    /// Evicted mid-run with unusable replay state.
    Aborted,
    /// Cancelled through the online API.
    Cancelled,
}

impl JobState {
    /// Whether the job can make no further progress (terminal states
    /// reject [`crate::Cluster::cancel`]).
    pub fn is_terminal(self) -> bool {
        matches!(
            self,
            JobState::Completed | JobState::Rejected | JobState::Aborted | JobState::Cancelled
        )
    }
}

/// Live per-job snapshot returned by [`crate::Cluster::status`]: enough
/// for a wire client to render progress without waiting for final stats.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct JobStatus {
    /// Submission index (the [`crate::JobId`] value).
    pub id: u64,
    /// Job name from the spec.
    pub name: String,
    /// Lifecycle position right now.
    pub state: JobState,
    /// Completed iterations.
    pub iters_done: u64,
    /// Samples trained so far.
    pub samples_done: u64,
    /// Samples the job must train in total (`batch × iters`).
    pub samples_total: u64,
    /// Global batch currently in effect (elastic jobs may run reduced).
    pub cur_batch: usize,
    /// Gang width from the spec.
    pub replicas: usize,
    /// GPUs currently held (empty while queued or checkpointed).
    pub gpus: Vec<usize>,
    /// Per-replica reservation in bytes (zero while queued).
    pub reserved_bytes: u64,
    /// Checkpoint-preemptions suffered so far.
    pub preemptions: u64,
    /// Elastic batch changes so far.
    pub rebatches: u64,
    /// Where the job's admission budgets came from
    /// ([`crate::AdmissionSource::name`]): `measured`, `heuristic`, or
    /// `predicted`.
    pub admission_source: String,
}

/// One lifecycle transition, recorded by the online core in occurrence
/// order. The log is a side-channel like the transfer trace — it never
/// feeds back into [`ClusterStats`], so the stats JSON stays
/// byte-identical whether or not anyone reads it. `capuchin-serve`
/// streams these to subscribers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobEvent {
    /// Instant on the simulated clock the transition happened.
    pub t: Time,
    /// Submission index of the job.
    pub job: u64,
    /// Job name from the spec (denormalized so stream consumers need no
    /// id → name lookup).
    pub name: String,
    /// What happened.
    pub kind: JobEventKind,
}

/// The lifecycle transitions the online core records.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum JobEventKind {
    /// The job entered the cluster ([`crate::Cluster::submit`]).
    Submitted,
    /// Admission refused the job (no bare GPU can host a replica).
    Rejected,
    /// Placement granted the job its gang.
    Admitted {
        /// GPUs granted, in placement order.
        gpus: Vec<usize>,
        /// Global batch admitted at (may be elastically reduced).
        batch: usize,
        /// Per-replica reservation in bytes.
        reserved: u64,
    },
    /// An iteration's compute and boundary communication both drained.
    IterationDone {
        /// Completed-iteration count after this one.
        iter: u64,
        /// Samples trained so far.
        samples_done: u64,
    },
    /// The job's checkpoint copy drained; it is back in the queue.
    Preempted,
    /// The job's restore copy drained; it iterates again.
    Resumed,
    /// An elastic batch change took effect.
    Rebatched {
        /// The new global batch.
        batch: usize,
    },
    /// An inference request arrived and joined the job's request queue.
    RequestArrived,
    /// An inference request was served at a round boundary.
    RequestServed {
        /// Arrival-to-served latency on the simulated clock.
        latency: Duration,
    },
    /// A served request's latency exceeded the job's SLO (always preceded
    /// by the matching [`JobEventKind::RequestServed`]).
    SloMissed {
        /// Arrival-to-served latency on the simulated clock.
        latency: Duration,
    },
    /// The job trained all its samples.
    Completed,
    /// The job was evicted mid-run with unusable replay state.
    Aborted,
    /// The job was cancelled through the online API.
    Cancelled,
}

impl JobEventKind {
    /// Lowercase wire name, stable across schema versions.
    pub fn name(&self) -> &'static str {
        match self {
            JobEventKind::Submitted => "submitted",
            JobEventKind::Rejected => "rejected",
            JobEventKind::Admitted { .. } => "admitted",
            JobEventKind::IterationDone { .. } => "iteration",
            JobEventKind::Preempted => "preempted",
            JobEventKind::Resumed => "resumed",
            JobEventKind::Rebatched { .. } => "rebatched",
            JobEventKind::RequestArrived => "request_arrived",
            JobEventKind::RequestServed { .. } => "request_served",
            JobEventKind::SloMissed { .. } => "slo_missed",
            JobEventKind::Completed => "completed",
            JobEventKind::Aborted => "aborted",
            JobEventKind::Cancelled => "cancelled",
        }
    }
}

/// Per-job accounting.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct JobStats {
    /// Job name from the spec.
    pub name: String,
    /// Model name.
    pub model: String,
    /// Mini-batch size.
    pub batch: usize,
    /// Requested policy name.
    pub policy: String,
    /// How the job ended.
    pub outcome: JobOutcome,
    /// Data-parallel replicas the spec asked for (1 = single-device).
    pub replicas: usize,
    /// GPUs the job last held — the full gang, in placement order; empty
    /// if it never placed. Always 0 or exactly `replicas` entries: gangs
    /// are granted all-or-nothing.
    pub gpus_used: Vec<usize>,
    /// Whether admission granted less than the ideal peak (a Capuchin
    /// plan shrank the footprint to fit).
    pub shrunk: bool,
    /// Bytes reserved on the device for the job's lifetime.
    pub reserved_bytes: u64,
    /// Ideal-peak footprint from the measured iteration.
    pub footprint_bytes: u64,
    /// Arrival on the simulated clock.
    pub arrival: Duration,
    /// Arrival → placement delay (zero for rejected jobs).
    pub queueing_delay: Duration,
    /// Arrival → completion (job completion time; zero for rejected jobs).
    pub jct: Duration,
    /// Mean per-iteration wall time actually experienced on the cluster,
    /// including contention slowdown.
    pub mean_iter: Duration,
    /// Times this job was checkpoint-preempted.
    pub preemptions: u64,
    /// In-flight iteration time discarded by preemptions (checkpoints
    /// capture completed-iteration boundaries only).
    pub wasted_work: Duration,
    /// Total checkpoint-completion → resumed-iteration-start time.
    pub resume_latency: Duration,
    /// PCIe checkpoint (device-to-host) + restore (host-to-device) copy
    /// time charged to this job's clock.
    pub checkpoint_overhead: Duration,
    /// Total gradient-allreduce time charged at iteration barriers (zero
    /// for single-GPU jobs and with the interconnect model off).
    pub allreduce_time: Duration,
    /// Extra delay from queueing behind other jobs' traffic on the shared
    /// interconnect (swap-replay and checkpoint queueing; zero with the
    /// interconnect model off).
    pub comm_delay: Duration,
    /// Elastic batch changes (shrinks at admission plus every mid-run
    /// shrink or re-grow). Zero for rigid jobs and with elastic
    /// re-batching off.
    pub rebatches: u64,
    /// Wall time the job spent training below its requested batch size.
    pub elastic_time_at_reduced_batch: Duration,
    /// Training samples actually processed. For every completed job —
    /// elastic or not — this equals `batch × iters` from the spec: elastic
    /// re-batching extends the iteration count so total samples trained is
    /// preserved exactly.
    pub samples_preserved: u64,
    /// Inference requests served (zero for training jobs).
    pub requests_served: u64,
    /// Served requests whose arrival-to-served latency exceeded the SLO.
    pub slo_misses: u64,
    /// Median request latency (nearest-rank over integer nanoseconds;
    /// zero when no requests were served).
    pub p50_latency: Duration,
    /// 99th-percentile request latency (nearest-rank over integer
    /// nanoseconds; zero when no requests were served).
    pub p99_latency: Duration,
    /// Times this *training* job shrank its batch mid-run specifically to
    /// absorb an inference KV burst (a subset of `rebatches`).
    pub burst_shrinks: u64,
    /// Kernel time spent regenerating released tensors, summed over the
    /// replay iterations the job consumed (accumulated as integer
    /// nanoseconds; rendered as seconds only at serialization).
    pub recompute_time: Duration,
    /// Reactive (allocation-pressure) evictions summed over the replay
    /// iterations the job consumed.
    pub evictions: u64,
    /// Validation engine runs this job's admission triggered. Cache-hit
    /// admissions charge nothing; heuristic-class policies (e.g. `dtr`)
    /// are zero by construction, and so are warm-key predicted
    /// admissions — unless a mispredict forced a measured re-admission,
    /// whose runs bill this job (keeping the per-job sum equal to the
    /// controller total).
    pub admission_validations: u64,
    /// Where the admission budgets came from
    /// ([`crate::AdmissionSource::name`]): `measured`, `heuristic`, or
    /// `predicted`. A predicted job that was re-admitted after a
    /// mispredict (or engine-validated by an elastic batch change)
    /// reports the stronger `measured` provenance it ended with.
    pub admission_source: String,
    /// Margin-padded predicted full reservation the job was admitted on
    /// (zero unless admitted `predicted`).
    pub predicted_bytes: u64,
    /// Regression error at first verification:
    /// `|raw prediction − measured full| × 1000 / measured full`, before
    /// the safety margin (zero for unverified or non-predicted jobs).
    pub prediction_error_permille: u64,
    /// Checkpoint-preemption recoveries forced by an under-shooting
    /// prediction (a subset of `preemptions`).
    pub mispredict_recoveries: u64,
}

/// Per-GPU accounting.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GpuStats {
    /// Device index.
    pub gpu: usize,
    /// Total device memory.
    pub capacity: u64,
    /// Highest concurrent reservation observed.
    pub peak_reserved_bytes: u64,
    /// Time-weighted mean of reserved/capacity over the makespan.
    pub mean_utilization: f64,
    /// Jobs that ran (to completion) on this device.
    pub jobs_hosted: usize,
}

/// Whole-run accounting.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ClusterStats {
    /// Stats schema version, always [`STATS_SCHEMA_VERSION`]. First field
    /// so clients can check it before interpreting the rest.
    pub schema_version: u32,
    /// Number of simulated GPUs.
    pub gpus: usize,
    /// Admission mode name.
    pub admission: String,
    /// Placement strategy name.
    pub strategy: String,
    /// Jobs submitted.
    pub submitted: usize,
    /// Jobs that ran to completion.
    pub completed: usize,
    /// Jobs cancelled through [`crate::Cluster::cancel`] before reaching
    /// any other terminal state.
    pub cancelled: usize,
    /// Admission-time OOM rejections.
    pub oom_rejections: usize,
    /// Jobs that aborted mid-run (unusable replay state). Validation at
    /// the granted budget plus empty-trace rejection makes this zero in
    /// practice; counted from actual outcomes to keep the claim honest.
    pub midrun_oom_aborts: usize,
    /// Total checkpoint-preemptions across all jobs.
    pub preemptions: usize,
    /// Total elastic batch changes across all jobs (see
    /// [`JobStats::rebatches`]).
    pub rebatches: usize,
    /// Total inference requests served across all jobs.
    pub requests_served: u64,
    /// Total served requests that missed their SLO.
    pub slo_misses: u64,
    /// SLO attainment in permille fixed point:
    /// `(requests_served − slo_misses) × 1000 / requests_served`,
    /// computed in exact integer arithmetic; 1000 when no requests were
    /// served (vacuously attained).
    pub slo_attainment_permille: u64,
    /// Total burst-absorption shrinks across all training jobs (see
    /// [`JobStats::burst_shrinks`]).
    pub burst_shrinks: u64,
    /// Completed burst-absorption cycles: a training job that shrank for
    /// an inference burst later re-grew its batch after the burst
    /// drained.
    pub burst_cycles: u64,
    /// Total mispredict-forced recoveries across all jobs (see
    /// [`JobStats::mispredict_recoveries`]).
    pub mispredict_recoveries: u64,
    /// Predictable arrivals admitted on a warm predictor key — with zero
    /// validation engine runs. Always zero with predictive mode off.
    pub predictor_hits: u64,
    /// Predictable arrivals whose key was cold (fell back to measured
    /// admission, which later feeds the store). Always zero with
    /// predictive mode off.
    pub predictor_misses: u64,
    /// First arrival → last completion.
    pub makespan: Duration,
    /// Total training samples processed divided by the makespan.
    pub aggregate_samples_per_sec: f64,
    /// Mean queueing delay over completed jobs.
    pub mean_queueing_delay: Duration,
    /// Mean job completion time over completed jobs.
    pub mean_jct: Duration,
    /// Interconnect model name (`off` when traffic is not modelled).
    pub interconnect: String,
    /// Per-link traffic accounting (empty with the interconnect off).
    pub links: Vec<LinkStats>,
    /// Per-device accounting, indexed by GPU.
    pub per_gpu: Vec<GpuStats>,
    /// Per-job accounting, in submission order.
    pub jobs: Vec<JobStats>,
}

impl ClusterStats {
    /// Renders the stats as pretty JSON (deterministic byte-for-byte for
    /// identical runs).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("cluster stats serialize")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_render_deterministically() {
        let stats = ClusterStats {
            schema_version: STATS_SCHEMA_VERSION,
            gpus: 2,
            admission: "capuchin-admission".into(),
            strategy: "best-fit".into(),
            submitted: 1,
            completed: 1,
            cancelled: 0,
            oom_rejections: 0,
            midrun_oom_aborts: 0,
            preemptions: 0,
            rebatches: 2,
            requests_served: 0,
            slo_misses: 0,
            slo_attainment_permille: 1000,
            burst_shrinks: 0,
            burst_cycles: 0,
            mispredict_recoveries: 0,
            predictor_hits: 2,
            predictor_misses: 1,
            makespan: Duration::from_millis(12),
            aggregate_samples_per_sec: 1234.5,
            mean_queueing_delay: Duration::from_micros(3),
            mean_jct: Duration::from_millis(12),
            interconnect: "pcie-shared".into(),
            links: vec![LinkStats {
                link: "host".into(),
                busy: Duration::from_millis(2),
                bytes: 1 << 30,
                transfers: 9,
            }],
            per_gpu: vec![GpuStats {
                gpu: 0,
                capacity: 16 << 30,
                peak_reserved_bytes: 8 << 30,
                mean_utilization: 0.5,
                jobs_hosted: 1,
            }],
            jobs: vec![JobStats {
                name: "job00".into(),
                model: "vgg16".into(),
                batch: 32,
                policy: "capuchin".into(),
                outcome: JobOutcome::Completed,
                replicas: 1,
                gpus_used: vec![0],
                shrunk: true,
                reserved_bytes: 8 << 30,
                footprint_bytes: 10 << 30,
                arrival: Duration::ZERO,
                queueing_delay: Duration::from_micros(3),
                jct: Duration::from_millis(12),
                mean_iter: Duration::from_millis(4),
                preemptions: 1,
                wasted_work: Duration::from_millis(1),
                resume_latency: Duration::from_millis(2),
                checkpoint_overhead: Duration::from_micros(700),
                allreduce_time: Duration::ZERO,
                comm_delay: Duration::from_micros(40),
                rebatches: 2,
                elastic_time_at_reduced_batch: Duration::from_millis(6),
                samples_preserved: 32 * 3,
                requests_served: 0,
                slo_misses: 0,
                p50_latency: Duration::ZERO,
                p99_latency: Duration::ZERO,
                burst_shrinks: 0,
                recompute_time: Duration::from_millis(5),
                evictions: 3,
                admission_validations: 7,
                admission_source: "predicted".into(),
                predicted_bytes: 9 << 30,
                prediction_error_permille: 12,
                mispredict_recoveries: 0,
            }],
        };
        let a = stats.to_json();
        let b = stats.clone().to_json();
        assert_eq!(a, b);
        assert!(a.contains("\"oom_rejections\": 0"), "{a}");
        assert!(a.contains("\"admission_validations\": 7"), "{a}");
        assert!(a.contains("\"admission_source\": \"predicted\""), "{a}");
        assert!(a.contains("\"predictor_hits\": 2"), "{a}");
    }
}
