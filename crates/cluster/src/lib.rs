//! # capuchin-cluster — memory-aware multi-job GPU cluster scheduling
//!
//! Capuchin (Peng et al., ASPLOS 2020) manages one job's memory on one
//! GPU. This crate asks the cluster-level question: if the scheduler
//! *knows* a job's footprint can be shrunk by swap/recompute plans, how
//! many more jobs fit on a fleet of GPUs?
//!
//! Three layers:
//!
//! * **Admission** ([`Admission`]) — before placement, each job runs one
//!   measured iteration on an unconstrained simulated device
//!   ([`capuchin::measure_footprint`]); the controller derives the ideal
//!   peak (`full`) and, under [`AdmissionMode::Capuchin`], the smallest
//!   plannable budget (`min`). Jobs whose `min` exceeds a bare GPU are
//!   rejected (admission-time OOM); shrunk admissions are re-validated by
//!   an actual engine run at the granted budget, which is what makes
//!   mid-run OOM aborts impossible for admitted jobs.
//! * **Placement** ([`PlacementStrategy`]) — pluggable ordering of the
//!   waiting queue against per-GPU headroom: strict [`FifoFirstFit`] and
//!   [`BestFit`] memory bin-packing with priority aging. A job with
//!   [`JobSpec::gpus`]` = k > 1` is a data-parallel *gang*: admission
//!   measures the per-replica footprint (at batch `batch / k`) and the
//!   strategy names a complete `k`-GPU subset, granted atomically — all
//!   or none, preferring one link domain so the gang's gradient allreduce
//!   rides a private peer lane.
//! * **Simulation** ([`Cluster`]) — one deterministic event clock replays
//!   validated per-iteration wall times with a contention model that
//!   re-prices in-flight iterations at every residency change, and
//!   produces [`ClusterStats`] (queueing delay, JCT, rejections,
//!   makespan, aggregate samples/sec, per-GPU utilization, per-link
//!   traffic) whose JSON is byte-identical across same-workload runs.
//!   With [`ClusterConfig::interconnect`] set, all copy traffic — the
//!   per-tensor swap timeline each job recorded during validation, gang
//!   allreduces
//!   (`2·(k−1)/k ×` gradient bytes per replica, ring schedule), and
//!   checkpoint/restore copies — routes over a shared finite-bandwidth
//!   fabric ([`capuchin_sim::Interconnect`]), so concurrent transfers
//!   queue and stretch co-resident iterations instead of overlapping for
//!   free. With [`ClusterConfig::preemption`] on, a
//!   high-effective-priority arrival that fits nowhere
//!   checkpoint-preempts the lowest-priority resident job (a gang is
//!   evicted whole or not at all) — its replay state is copied to the
//!   host, its reservations are released, and it resumes later from the
//!   saved iteration (the cluster-level mirror of
//!   [`capuchin_executor::Engine::snapshot`]). With
//!   [`ClusterConfig::elastic`] on, a job marked [`JobSpec::elastic`] that
//!   fits nowhere at its full batch is admitted at a reduced batch
//!   (bisected down a halving ladder, floored at
//!   [`ClusterConfig::min_batch_fraction`]) with its iteration count
//!   extended so total samples trained is preserved exactly, and re-grows
//!   toward the full batch at completed-iteration boundaries when
//!   headroom frees up — paying the same checkpoint/restore copy costs
//!   preemption models.
//!
//! The simulation core is **online**: [`Cluster::submit`],
//! [`Cluster::cancel`], [`Cluster::step`]/[`Cluster::advance_to`],
//! [`Cluster::status`] and [`Cluster::drain`] let a driver feed jobs in
//! over time and observe lifecycle events ([`JobEvent`]) as they happen —
//! `capuchin-serve` builds a streaming TCP daemon on exactly this API.
//! [`Cluster::run`]/[`Cluster::run_traced`] are thin batch wrappers
//! (submit everything, drain to idle) and produce byte-identical JSON to
//! any interleaving of the online calls with the same submission
//! sequence.
//!
//! Configurations are built with [`ClusterConfig::builder`], which
//! validates every knob up front ([`ConfigError`]):
//!
//! ```
//! use capuchin_cluster::{synthetic_jobs, Cluster, ClusterConfig};
//!
//! let cfg = ClusterConfig::builder()
//!     .gpus(2)
//!     .elastic(true)
//!     .min_batch_fraction(0.25)
//!     .build()
//!     .unwrap();
//! let jobs = synthetic_jobs(3, 1, 0.5);
//! let stats = Cluster::new(cfg).run(&jobs);
//! assert_eq!(stats.submitted, 3);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod admission;
pub mod cluster;
pub mod headroom;
pub mod job;
pub mod parse;
pub mod policy;
pub mod predict;
pub mod stats;
pub mod strategy;

pub use crate::admission::{
    min_feasible_budget, Admission, AdmissionDecision, AdmissionMode, AdmissionSource, JobNeeds,
    ReplayIter, ReplayTransfer,
};
pub use crate::cluster::{
    CancelError, Cluster, ClusterConfig, ClusterConfigBuilder, ConfigError, JobId,
};
pub use crate::headroom::GpuPool;
pub use crate::job::{
    load_jobs, parse_memory, synthetic_jobs, synthetic_mixed_jobs, JobFileError, JobPolicy,
    JobSpec, PredictFeatures,
};
pub use crate::parse::{parse_on_off, ParseEnumError};
pub use crate::policy::{CostClass, PolicyDescriptor, REGISTRY};
pub use crate::predict::{FootprintPredictor, FootprintSample, PredictKey, PredictedFootprint};
pub use crate::stats::{
    ClusterStats, ClusterTransfer, GpuStats, JobEvent, JobEventKind, JobOutcome, JobState,
    JobStats, JobStatus, STATS_SCHEMA_VERSION,
};
pub use crate::strategy::{
    aging_permille, effective_priority_permille, threshold_fits, BestFit, CandidateJob,
    FifoFirstFit, FitsFn, GpuView, PlacementStrategy, StrategyKind,
};
