//! Footprint prediction: admission without a measured iteration.
//!
//! Every measured admission pays at least one real measuring run
//! (`capuchin::measure_footprint`) and — under Capuchin admission — a
//! bisection of validation engine runs. The per-shape caches collapse
//! that cost *within* a shape, but a cold shape always pays, and the
//! online daemon (`capuchin-serve`) sees a stream of cold shapes. This
//! module learns from completed runs instead: a deterministic,
//! integer-arithmetic regression store keyed on
//! `(model family, policy, class)` that fits per-feature byte
//! coefficients from measured needs, so a warm key admits on
//! `prediction × safety_margin` with **zero** engine work (following
//! "Accurate GPU Memory Prediction for Deep Learning Jobs through
//! Dynamic Analysis", arXiv:2504.03887).
//!
//! # Features and coefficients
//!
//! A job's admission features are `(batch, gpus, kv_bytes_per_request)`
//! ([`crate::JobSpec::predict_features`]). Two of the three coefficients
//! are *structural* — exact by construction, nothing to fit:
//!
//! * **gpus** — a data-parallel gang splits the batch evenly and every
//!   replica's footprint is identical, so the gpus coefficient is the
//!   exact per-replica-batch fold `replica_batch = ceil(batch / gpus)`;
//! * **kv_bytes_per_request** — serving-round KV state is priced
//!   structurally at admission (`max_inflight × kv` on top of the base
//!   forward needs), so its coefficient is exactly 1 byte per licensed
//!   byte.
//!
//! That leaves the **batch** coefficient, the one that actually varies
//! by model family: each target (full need, min need, ideal peak,
//! weight floor, iteration wall) is fitted as an integer least-squares
//! line over `(replica_batch → target)` samples. Weights come out with
//! slope ≈ 0 (batch-invariant floor); transients come out with the
//! per-sample activation cost ([`FootprintEstimate::transient_bytes`]
//! divided by batch is the quantity the slope estimates).
//!
//! # Determinism
//!
//! All sums and the closed-form slope/intercept solution are exact
//! integer arithmetic (`u128`/`i128` accumulators, round-to-nearest
//! division) — same observation sequence ⇒ bit-identical coefficients
//! on every platform. No floats anywhere in the fit or the prediction.
//!
//! # Fallback ladder
//!
//! A prediction is a bet, so the cluster backs it with a ladder:
//! cold key → measured admission (and the completion feeds this store);
//! warm key → predicted admission, *verified against the true profile
//! at the job's first iteration boundary* (the first real iteration
//! exposes the true footprint in a live system — the reconciliation
//! measuring run stands in for that observation and is **not** a
//! validation engine run); under-shoot → checkpoint-preempt the job and
//! re-admit it through the measured path (`mispredict_recoveries`).
//! Over-shoot merely wastes the margin. The store deliberately dares to
//! extrapolate beyond the observed batch range — the recovery ladder is
//! what makes that safe.

use std::collections::BTreeMap;

use capuchin::FootprintEstimate;
use capuchin_models::ModelKind;
use capuchin_sim::Duration;

use crate::job::{JobClass, JobPolicy, JobSpec};

/// A predictor key: model family, policy spelling, and whether the job
/// is inference-class (forward-only footprints differ from training
/// footprints of the same model, and needs differ per policy class).
pub type PredictKey = (ModelKind, &'static str, bool);

/// The predictor key for a job spec.
pub fn key_of(spec: &JobSpec) -> PredictKey {
    (
        spec.model,
        spec.policy.descriptor().name,
        spec.class == JobClass::Inference,
    )
}

/// The predictor key for explicit parts (used by tests and tools).
pub fn key_for(model: ModelKind, policy: JobPolicy, class: JobClass) -> PredictKey {
    (
        model,
        policy.descriptor().name,
        class == JobClass::Inference,
    )
}

/// One completed run's measured ground truth, fed to the store.
#[derive(Debug, Clone, Copy)]
pub struct FootprintSample {
    /// Per-replica batch the run was measured at.
    pub replica_batch: u64,
    /// Measured full reservation (slack-padded ideal peak).
    pub full: u64,
    /// Measured/derived minimum feasible reservation.
    pub min: u64,
    /// Measured ideal live-memory peak.
    pub ideal_peak: u64,
    /// Measured persistent-weight floor.
    pub weight_bytes: u64,
    /// Measured uncontended iteration wall time.
    pub iter_wall: Duration,
}

/// A warm key's answer: the same shape of numbers a measuring run would
/// produce, derived purely from the fitted coefficients.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PredictedFootprint {
    /// Predicted full reservation.
    pub full: u64,
    /// Predicted minimum reservation (clamped into `1..=full`).
    pub min: u64,
    /// Predicted ideal peak.
    pub ideal_peak: u64,
    /// Predicted persistent-weight floor (clamped to `<= ideal_peak`).
    pub weight_bytes: u64,
    /// Predicted iteration wall (floored at 1 ns — a zero-time
    /// iteration would collapse the replay clock).
    pub iter_wall: Duration,
}

impl PredictedFootprint {
    /// Scales the *budget* targets (`full`, `min`) by a safety margin in
    /// permille (1150 ⇒ +15%), in u128 arithmetic. The physical targets
    /// (peak, weights, wall) are left untouched — the margin is slack on
    /// the reservation, not a claim that the model grew.
    pub fn with_margin(self, permille: u64) -> PredictedFootprint {
        let scale = |v: u64| -> u64 {
            let scaled = (v as u128).saturating_mul(permille as u128) / 1000;
            u64::try_from(scaled).unwrap_or(u64::MAX)
        };
        PredictedFootprint {
            full: scale(self.full),
            min: scale(self.min).min(scale(self.full)),
            ..self
        }
    }
}

/// Indices into a key's per-target accumulator array.
const T_FULL: usize = 0;
const T_MIN: usize = 1;
const T_PEAK: usize = 2;
const T_WEIGHT: usize = 3;
const T_WALL: usize = 4;
const TARGETS: usize = 5;

/// Running sums for one regression target (`y` against the shared `x`).
#[derive(Debug, Clone, Copy, Default)]
struct LinSums {
    sum_y: u128,
    sum_xy: u128,
}

/// Per-key accumulators: shared feature sums plus one [`LinSums`] per
/// target. Closed-form least squares needs only these five numbers per
/// target, so observation is O(1) and the store never holds raw samples.
#[derive(Debug, Clone, Copy, Default)]
struct KeyFit {
    n: u64,
    sum_x: u128,
    sum_xx: u128,
    targets: [LinSums; TARGETS],
}

/// Round-to-nearest signed integer division (ties away from zero).
/// Plain `/` truncates toward zero, which would bias every fitted
/// coefficient low; admission budgets care about that bias.
fn round_div(num: i128, den: i128) -> i128 {
    debug_assert!(den != 0);
    let q = num / den;
    let r = num % den;
    if 2 * r.abs() >= den.abs() {
        q + if (num < 0) == (den < 0) { 1 } else { -1 }
    } else {
        q
    }
}

impl KeyFit {
    fn observe(&mut self, x: u64, ys: [u64; TARGETS]) {
        self.n += 1;
        self.sum_x += x as u128;
        self.sum_xx += (x as u128) * (x as u128);
        for (t, y) in ys.into_iter().enumerate() {
            self.targets[t].sum_y += y as u128;
            self.targets[t].sum_xy += (x as u128) * (y as u128);
        }
    }

    /// Least-squares `(intercept, slope)` for target `t`. With a single
    /// distinct `x` the slope denominator is zero: the fit degenerates
    /// to a flat line at the mean (the only unbiased answer available).
    fn fit(&self, t: usize) -> (i128, i128) {
        let n = self.n as i128;
        let sx = self.sum_x as i128;
        let sxx = self.sum_xx as i128;
        let sy = self.targets[t].sum_y as i128;
        let sxy = self.targets[t].sum_xy as i128;
        let den = n * sxx - sx * sx;
        let slope = if den == 0 {
            0
        } else {
            round_div(n * sxy - sx * sy, den)
        };
        let intercept = round_div(sy - slope * sx, n);
        (intercept, slope)
    }

    fn predict_target(&self, t: usize, x: u64) -> u64 {
        let (a, b) = self.fit(t);
        let y = a + b * (x as i128);
        u64::try_from(y.max(0)).unwrap_or(u64::MAX)
    }
}

/// The regression store. Lives on the [`Cluster`](crate::Cluster)
/// alongside the estimate caches and — like them — survives
/// [`reset`](crate::Cluster::reset), so predictor state persists across
/// online submissions for the lifetime of a `capuchin-serve` daemon:
/// the longer the daemon runs, the more admissions are free.
#[derive(Debug, Clone, Default)]
pub struct FootprintPredictor {
    keys: BTreeMap<PredictKey, KeyFit>,
    observed: u64,
}

impl FootprintPredictor {
    /// Creates an empty (all-cold) store.
    pub fn new() -> FootprintPredictor {
        FootprintPredictor::default()
    }

    /// Feeds one completed run's measured ground truth into the key's
    /// accumulators. O(log keys) + O(1); never discards history.
    pub fn observe(&mut self, key: PredictKey, sample: FootprintSample) {
        self.observed += 1;
        self.keys.entry(key).or_default().observe(
            sample.replica_batch,
            [
                sample.full,
                sample.min,
                sample.ideal_peak,
                sample.weight_bytes,
                sample.iter_wall.as_nanos(),
            ],
        );
    }

    /// Samples observed for `key` (0 when the key is unknown).
    pub fn samples(&self, key: &PredictKey) -> u64 {
        self.keys.get(key).map_or(0, |k| k.n)
    }

    /// Distinct keys with at least one observation.
    pub fn keys(&self) -> usize {
        self.keys.len()
    }

    /// Total observations ever fed, across all keys.
    pub fn observations(&self) -> u64 {
        self.observed
    }

    /// Predicts the footprint of `key` at `replica_batch`, or `None`
    /// while the key is cold (fewer than `min_samples` observations).
    /// The raw prediction carries no safety margin — callers layer
    /// [`PredictedFootprint::with_margin`] on top.
    pub fn predict(
        &self,
        key: &PredictKey,
        replica_batch: u64,
        min_samples: u64,
    ) -> Option<PredictedFootprint> {
        let fit = self.keys.get(key)?;
        if fit.n < min_samples.max(1) {
            return None;
        }
        let weight_raw = fit.predict_target(T_WEIGHT, replica_batch);
        let ideal_peak = fit.predict_target(T_PEAK, replica_batch).max(weight_raw);
        let full = fit.predict_target(T_FULL, replica_batch).max(weight_raw);
        let min = fit.predict_target(T_MIN, replica_batch).clamp(1, full);
        Some(PredictedFootprint {
            full,
            min,
            ideal_peak,
            weight_bytes: weight_raw.min(ideal_peak),
            iter_wall: Duration::from_nanos(fit.predict_target(T_WALL, replica_batch).max(1)),
        })
    }
}

/// A measured estimate plus derived needs, repackaged as the sample the
/// store consumes (the glue the cluster uses when a measured run
/// completes).
pub fn sample_from(
    est: &FootprintEstimate,
    full: u64,
    min: u64,
    replica_batch: u64,
) -> FootprintSample {
    FootprintSample {
        replica_batch,
        full,
        min,
        ideal_peak: est.ideal_peak,
        weight_bytes: est.weight_bytes,
        iter_wall: est.iter_wall,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const KEY: PredictKey = (ModelKind::ResNet50, "capuchin", false);

    fn linear_sample(x: u64) -> FootprintSample {
        // Exact lines: full = 1000 + 70x, min = 400 + 30x, peak = 900 +
        // 65x, weights flat 400, wall = 50 + 3x ns.
        FootprintSample {
            replica_batch: x,
            full: 1000 + 70 * x,
            min: 400 + 30 * x,
            ideal_peak: 900 + 65 * x,
            weight_bytes: 400,
            iter_wall: Duration::from_nanos(50 + 3 * x),
        }
    }

    #[test]
    fn exact_linear_data_is_recovered_and_extrapolated() {
        let mut p = FootprintPredictor::new();
        for x in [8, 16, 32] {
            p.observe(KEY, linear_sample(x));
        }
        let got = p.predict(&KEY, 64, 3).expect("warm key");
        assert_eq!(got.full, 1000 + 70 * 64);
        assert_eq!(got.min, 400 + 30 * 64);
        assert_eq!(got.ideal_peak, 900 + 65 * 64);
        assert_eq!(got.weight_bytes, 400, "flat target fits slope 0");
        assert_eq!(got.iter_wall, Duration::from_nanos(50 + 3 * 64));
    }

    #[test]
    fn cold_keys_and_under_sampled_keys_return_none() {
        let mut p = FootprintPredictor::new();
        assert!(p.predict(&KEY, 16, 1).is_none(), "unknown key");
        p.observe(KEY, linear_sample(16));
        p.observe(KEY, linear_sample(32));
        assert!(p.predict(&KEY, 16, 3).is_none(), "below min_samples");
        assert!(p.predict(&KEY, 16, 2).is_some());
        // min_samples of 0 still requires one observation.
        let other = (ModelKind::Vgg16, "capuchin", false);
        assert!(p.predict(&other, 16, 0).is_none());
        assert_eq!(p.samples(&KEY), 2);
        assert_eq!(p.keys(), 1);
        assert_eq!(p.observations(), 2);
    }

    #[test]
    fn single_batch_keys_predict_the_mean_flat() {
        let mut p = FootprintPredictor::new();
        p.observe(KEY, linear_sample(16));
        p.observe(KEY, linear_sample(16));
        let at_16 = p.predict(&KEY, 16, 2).unwrap();
        let at_128 = p.predict(&KEY, 128, 2).unwrap();
        // Degenerate fit: slope 0, so the batch-128 "prediction" is the
        // batch-16 mean — a deliberate under-shoot the recovery ladder
        // (not the fit) is responsible for surviving.
        assert_eq!(at_16.full, linear_sample(16).full);
        assert_eq!(at_128.full, at_16.full);
    }

    #[test]
    fn margin_scales_budgets_only_in_integer_permille() {
        let raw = PredictedFootprint {
            full: 1000,
            min: 500,
            ideal_peak: 970,
            weight_bytes: 400,
            iter_wall: Duration::from_nanos(77),
        };
        let padded = raw.with_margin(1150);
        assert_eq!(padded.full, 1150);
        assert_eq!(padded.min, 575);
        assert_eq!(padded.ideal_peak, 970, "physical targets untouched");
        assert_eq!(padded.weight_bytes, 400);
        assert_eq!(padded.iter_wall, raw.iter_wall);
        // A margin of exactly 1000 is the identity.
        assert_eq!(raw.with_margin(1000), raw);
    }

    #[test]
    fn fits_are_deterministic_across_instances() {
        let feed = |p: &mut FootprintPredictor| {
            for x in [4, 8, 12, 24, 48] {
                p.observe(KEY, linear_sample(x));
            }
        };
        let (mut a, mut b) = (FootprintPredictor::new(), FootprintPredictor::new());
        feed(&mut a);
        feed(&mut b);
        for rb in [1u64, 7, 100, 4096] {
            assert_eq!(a.predict(&KEY, rb, 5), b.predict(&KEY, rb, 5));
        }
    }

    #[test]
    fn round_div_rounds_to_nearest() {
        assert_eq!(round_div(7, 2), 4);
        assert_eq!(round_div(-7, 2), -4);
        assert_eq!(round_div(6, 4), 2);
        assert_eq!(round_div(5, 4), 1);
        assert_eq!(round_div(10, 5), 2);
        assert_eq!(round_div(-10, 4), -3);
    }
}
