//! Job descriptions: the unit of work the cluster schedules.

use capuchin_models::ModelKind;
use serde::{Deserialize, Serialize};

use crate::parse::ParseEnumError;

/// The memory policy a job requests for its own execution. Jobs admitted
/// *shrunk* run under the plan-capable policy their registry row's
/// `shrunk_runs_as` names (a plan is what makes the smaller budget
/// viable). Per-policy facts — spellings, admission cost class,
/// constructors — live in [`crate::policy::REGISTRY`]; this enum only
/// enumerates the variants.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum JobPolicy {
    /// Framework-default behavior: no memory management, OOM on overflow.
    TfOri,
    /// Capuchin's swap/recompute management (measured, planned).
    Capuchin,
    /// Dynamic Tensor Rematerialization: online evict-by-`h-DTR`, no
    /// measured iteration — admitted on the footprint estimate alone.
    Dtr,
    /// DELTA-style planning: Capuchin's measured profile with swap and
    /// recompute candidates interleaved by priced cost instead of
    /// swaps-first.
    Delta,
}

impl JobPolicy {
    /// Accepted [`std::str::FromStr`] spellings, derived from the
    /// registry (canonical spelling first within each policy).
    pub const ACCEPTED: &'static [&'static str] = &crate::policy::ACCEPTED_SPELLINGS;

    /// CLI/stats name (the registry row's canonical spelling).
    pub fn name(self) -> &'static str {
        self.descriptor().name
    }
}

impl std::fmt::Display for JobPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for JobPolicy {
    type Err = ParseEnumError;

    fn from_str(s: &str) -> Result<JobPolicy, ParseEnumError> {
        crate::policy::REGISTRY
            .iter()
            .find(|d| d.accepted.contains(&s))
            .map(|d| d.policy)
            .ok_or_else(|| ParseEnumError::unknown("job policy", s, Self::ACCEPTED))
    }
}

// Hand-written (the derive would only accept variant names): job files
// written before the registry existed spell policies as the wire variant
// name (`"TfOri"`), new files may use the canonical CLI spelling
// (`"tf-ori"`) — both parse arms come from the registry.
impl serde::Deserialize for JobPolicy {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let s = v
            .as_str()
            .ok_or_else(|| serde::Error::custom("expected a string for `JobPolicy`"))?;
        crate::policy::REGISTRY
            .iter()
            .find(|d| d.wire == s || d.accepted.contains(&s))
            .map(|d| d.policy)
            .ok_or_else(|| serde::Error::custom("unknown or malformed variant of `JobPolicy`"))
    }
}

/// What kind of work a job is: throughput-oriented training or
/// latency-sensitive inference serving.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum JobClass {
    /// Forward + backward, a fixed iteration count, throughput-metric.
    /// Workload files written before job classes existed parse as this.
    Training,
    /// Forward-only serving: a request-arrival process instead of fixed
    /// iterations, a per-request latency SLO, and KV-cache-like state
    /// that grows with concurrent in-flight requests.
    Inference,
}

impl JobClass {
    /// CLI/stats name.
    pub fn name(self) -> &'static str {
        match self {
            JobClass::Training => "training",
            JobClass::Inference => "inference",
        }
    }
}

impl std::fmt::Display for JobClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One training job submitted to the cluster.
///
/// `gpus > 1` makes the job a data-parallel *gang*: `gpus` replicas, each
/// training the per-replica slice `batch / gpus` of the mini-batch, are
/// admitted to `gpus` devices atomically (all or none) and synchronize
/// gradients with a ring allreduce at every iteration boundary.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct JobSpec {
    /// Display name, unique per workload.
    pub name: String,
    /// Which model to train.
    pub model: ModelKind,
    /// Global mini-batch size (split evenly across the gang's replicas).
    pub batch: usize,
    /// Data-parallel replicas: the number of GPUs the job needs at once.
    /// 1 is an ordinary single-device job.
    pub gpus: usize,
    /// Requested execution policy.
    pub policy: JobPolicy,
    /// Training iterations to run.
    pub iters: u64,
    /// Scheduling priority (higher = more urgent; best-fit placement
    /// ages it while the job waits).
    pub priority: u32,
    /// Submission time in seconds on the simulated cluster clock.
    pub arrival_time: f64,
    /// Whether the cluster may elastically re-batch this job: admit it at
    /// a reduced batch when the full batch fits nowhere (extending its
    /// iteration count so total samples trained is preserved) and re-grow
    /// the batch when headroom frees up. Takes effect only when the
    /// cluster itself runs with elastic re-batching enabled. Workload
    /// files written before this field existed parse as `false`.
    pub elastic: bool,
    /// Job class. Workload files written before inference jobs existed
    /// parse as [`JobClass::Training`].
    pub class: JobClass,
    /// Inference only: mean request arrival rate in requests per second
    /// (arrivals are Poisson with deterministic seeded jitter). Ignored
    /// for training jobs.
    pub request_rate: f64,
    /// Inference only: per-request latency SLO in milliseconds, measured
    /// arrival-to-served on the simulated clock. Ignored for training.
    pub slo_ms: f64,
    /// Inference only: total requests the job serves before completing
    /// (the inference analogue of `iters`). Ignored for training.
    pub requests: u64,
    /// Inference only: KV-cache-like bytes reserved per in-flight request
    /// on every device the job holds; grows and shrinks with concurrency
    /// and is priced through admission so the headroom index always sees
    /// it. Ignored for training.
    pub kv_bytes_per_request: u64,
    /// Inference only: the most requests the job will batch into one
    /// serving round (and thus the most KV growth admission prices).
    /// Clamped to at least 1 at runtime. Ignored for training.
    pub max_inflight: usize,
}

/// A neutral single-GPU training job — the base for struct-update
/// construction in tests and code-built workloads, mirroring the
/// parse-time defaults of the optional fields.
impl Default for JobSpec {
    fn default() -> JobSpec {
        JobSpec {
            name: String::new(),
            model: ModelKind::Vgg16,
            batch: 1,
            gpus: 1,
            policy: JobPolicy::Capuchin,
            iters: 1,
            priority: 0,
            arrival_time: 0.0,
            elastic: false,
            class: JobClass::Training,
            request_rate: 0.0,
            slo_ms: 0.0,
            requests: 0,
            kv_bytes_per_request: 0,
            max_inflight: 4,
        }
    }
}

impl JobSpec {
    /// The mini-batch slice each replica trains: `batch / gpus`, rounded
    /// up and never below 1.
    pub fn replica_batch(&self) -> usize {
        self.batch.div_ceil(self.gpus.max(1)).max(1)
    }

    /// The per-replica slice of an elastically reduced global batch `b`.
    pub fn replica_batch_at(&self, b: usize) -> usize {
        b.div_ceil(self.gpus.max(1)).max(1)
    }

    /// Marks the job elastic (builder-style, for workloads written in
    /// code).
    pub fn with_elastic(mut self) -> JobSpec {
        self.elastic = true;
        self
    }

    /// Whether this is an inference-serving job.
    pub fn is_inference(&self) -> bool {
        self.class == JobClass::Inference
    }

    /// The admission feature vector the footprint predictor consumes:
    /// `(batch, gpus, kv_bytes_per_request)`. The gpus coefficient is
    /// structural (identical replicas at the per-replica batch slice),
    /// as is the KV coefficient (priced per licensed slot at admission);
    /// the batch coefficient is the one the regression fits. See
    /// [`crate::predict`].
    pub fn predict_features(&self) -> PredictFeatures {
        PredictFeatures {
            batch: self.batch.max(1) as u64,
            gpus: self.gpus.max(1) as u64,
            kv_bytes_per_request: if self.is_inference() {
                self.kv_bytes_per_request
            } else {
                0
            },
        }
    }

    /// The KV bytes one fully licensed serving round can pin per replica:
    /// `max_inflight × kv_bytes_per_request`, the exact structural term
    /// admission adds on top of the base forward needs. Zero for
    /// training jobs.
    pub fn kv_round_bytes(&self) -> u64 {
        if !self.is_inference() {
            return 0;
        }
        (self.max_inflight.max(1) as u64).saturating_mul(self.kv_bytes_per_request)
    }

    /// The SLO in integer nanoseconds (0 for training jobs or a
    /// non-positive/non-finite `slo_ms`); all latency comparisons happen
    /// in this integer space.
    pub fn slo_nanos(&self) -> u64 {
        if self.class != JobClass::Inference || !self.slo_ms.is_finite() || self.slo_ms <= 0.0 {
            return 0;
        }
        (self.slo_ms * 1_000_000.0) as u64
    }

    /// Converts the job into an inference job (builder-style, for
    /// workloads written in code): forward-only serving of `requests`
    /// Poisson arrivals at `request_rate` req/s under an `slo_ms`
    /// millisecond latency SLO, with `kv_bytes_per_request` of growing
    /// KV state and at most `max_inflight` requests per serving round.
    pub fn into_inference(
        mut self,
        request_rate: f64,
        slo_ms: f64,
        requests: u64,
        kv_bytes_per_request: u64,
        max_inflight: usize,
    ) -> JobSpec {
        self.class = JobClass::Inference;
        self.elastic = false;
        self.request_rate = request_rate;
        self.slo_ms = slo_ms;
        self.requests = requests;
        self.kv_bytes_per_request = kv_bytes_per_request;
        self.max_inflight = max_inflight;
        self
    }
}

/// The per-job feature vector of predictive admission: the three knobs
/// a submitter controls that move the footprint. Everything else the
/// predictor needs (model family, policy, class) is part of the key,
/// not the features.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PredictFeatures {
    /// Global mini-batch size (≥ 1).
    pub batch: u64,
    /// Gang width (≥ 1); folds into the per-replica batch exactly.
    pub gpus: u64,
    /// Per-request KV bytes (0 for training jobs); priced per licensed
    /// slot exactly.
    pub kv_bytes_per_request: u64,
}

impl PredictFeatures {
    /// The fitted feature: the per-replica batch slice, `ceil(batch /
    /// gpus)`, never below 1.
    pub fn replica_batch(&self) -> u64 {
        self.batch.div_ceil(self.gpus.max(1)).max(1)
    }
}

// Hand-written so `gpus` defaults to 1, `elastic` to false, and the
// inference fields to training-shaped defaults: workload files written
// before gangs, elastic re-batching, or job classes existed omit the
// keys and must keep parsing byte-identically. (The vendored serde
// derive has no `#[serde(default)]`.)
impl serde::Deserialize for JobSpec {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        use serde::de::field;
        Ok(JobSpec {
            name: String::from_value(field(v, "name")?)?,
            model: ModelKind::from_value(field(v, "model")?)?,
            batch: usize::from_value(field(v, "batch")?)?,
            gpus: match v.get("gpus") {
                Some(g) => usize::from_value(g)?,
                None => 1,
            },
            policy: JobPolicy::from_value(field(v, "policy")?)?,
            iters: u64::from_value(field(v, "iters")?)?,
            priority: u32::from_value(field(v, "priority")?)?,
            arrival_time: f64::from_value(field(v, "arrival_time")?)?,
            elastic: match v.get("elastic") {
                Some(e) => bool::from_value(e)?,
                None => false,
            },
            class: match v.get("class") {
                Some(c) => JobClass::from_value(c)?,
                None => JobClass::Training,
            },
            request_rate: match v.get("request_rate") {
                Some(r) => f64::from_value(r)?,
                None => 0.0,
            },
            slo_ms: match v.get("slo_ms") {
                Some(s) => f64::from_value(s)?,
                None => 0.0,
            },
            requests: match v.get("requests") {
                Some(r) => u64::from_value(r)?,
                None => 0,
            },
            kv_bytes_per_request: match v.get("kv_bytes_per_request") {
                Some(k) => u64::from_value(k)?,
                None => 0,
            },
            max_inflight: match v.get("max_inflight") {
                Some(m) => usize::from_value(m)?,
                None => 4,
            },
        })
    }
}

/// Why a workload file was rejected.
#[derive(Debug, Clone, PartialEq)]
pub enum JobFileError {
    /// The file is not a JSON array of job objects.
    Parse(String),
    /// The file parsed but contains no jobs.
    Empty,
    /// A job asked for zero GPUs — a gang of nothing can never run.
    ZeroGpus {
        /// Name of the offending job.
        job: String,
    },
    /// A job's gang is wider than the cluster and could never be placed.
    GangTooLarge {
        /// Name of the offending job.
        job: String,
        /// GPUs the job asked for.
        gpus: usize,
        /// GPUs the cluster has.
        cluster: usize,
    },
    /// An elastic gang's batch floor (`batch × min_batch_fraction`) is
    /// narrower than the gang itself, which would drive the per-replica
    /// batch below one sample — the replica clamp would then silently
    /// train *more* samples than the job asked for.
    ElasticFloorTooSmall {
        /// Name of the offending job.
        job: String,
        /// The elastic batch floor (`ceil(batch × min_batch_fraction)`).
        floor: usize,
        /// Replicas the floor must still cover with ≥ 1 sample each.
        gpus: usize,
    },
    /// An inference job's latency SLO is zero, negative, or not finite —
    /// every request would count as missed (or none could ever miss).
    BadSlo {
        /// Name of the offending job.
        job: String,
        /// The rejected SLO value, in milliseconds.
        slo_ms: f64,
    },
    /// An inference job's request rate is zero, negative, or not finite —
    /// no arrival process can be derived from it.
    BadRequestRate {
        /// Name of the offending job.
        job: String,
        /// The rejected rate, in requests per second.
        rate: f64,
    },
    /// An inference job asked to serve zero requests: it would hold its
    /// reservation forever without ever completing.
    ZeroRequests {
        /// Name of the offending job.
        job: String,
    },
    /// A job asked for both `"class": "Inference"` and `"elastic": true`.
    /// Inference jobs absorb load through KV concurrency, not batch
    /// re-sizing; the elastic ladder only applies to training.
    ElasticInference {
        /// Name of the offending job.
        job: String,
    },
    /// An inference gang is wider than one interconnect link domain.
    /// Serving rounds synchronize across the gang every round, so
    /// crossing a domain boundary would put the inter-domain hop on every
    /// request's critical path.
    InferenceGangTooWide {
        /// Name of the offending job.
        job: String,
        /// GPUs the job asked for.
        gpus: usize,
        /// Widest link domain the cluster offers.
        domain: usize,
    },
}

impl std::fmt::Display for JobFileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JobFileError::Parse(msg) => write!(f, "invalid job file: {msg}"),
            JobFileError::Empty => write!(f, "job file contains no jobs"),
            JobFileError::ZeroGpus { job } => {
                write!(f, "job `{job}` requests 0 GPUs; a gang needs at least 1")
            }
            JobFileError::GangTooLarge { job, gpus, cluster } => write!(
                f,
                "job `{job}` requests a {gpus}-GPU gang but the cluster has only {cluster} GPUs"
            ),
            JobFileError::ElasticFloorTooSmall { job, floor, gpus } => write!(
                f,
                "elastic job `{job}`: the minimum-batch floor {floor} cannot cover \
                 {gpus} replicas with at least 1 sample each (raise --min-batch-frac \
                 or shrink the gang)"
            ),
            JobFileError::BadSlo { job, slo_ms } => write!(
                f,
                "inference job `{job}`: slo_ms must be a positive finite number of \
                 milliseconds, got {slo_ms}"
            ),
            JobFileError::BadRequestRate { job, rate } => write!(
                f,
                "inference job `{job}`: request_rate must be a positive finite number \
                 of requests per second, got {rate}"
            ),
            JobFileError::ZeroRequests { job } => write!(
                f,
                "inference job `{job}`: requests must be at least 1 (the job \
                 completes after serving them all)"
            ),
            JobFileError::ElasticInference { job } => write!(
                f,
                "inference job `{job}` cannot be elastic: set \"elastic\": false \
                 (inference absorbs load through max_inflight concurrency, not \
                 batch re-sizing)"
            ),
            JobFileError::InferenceGangTooWide { job, gpus, domain } => write!(
                f,
                "inference job `{job}` requests a {gpus}-GPU gang but the widest \
                 interconnect link domain has {domain} GPUs; inference gangs must \
                 fit one domain so no request crosses the inter-domain hop"
            ),
        }
    }
}

impl std::error::Error for JobFileError {}

/// Parses a workload file — a JSON array of [`JobSpec`] objects — and
/// validates every gang against a cluster of `cluster_gpus` devices whose
/// elastic batch floor is `min_batch_fraction` (pass the cluster's
/// configured fraction; it only constrains jobs marked `"elastic": true`)
/// and whose widest interconnect link domain spans `link_domain_gpus`
/// devices (pass `cluster_gpus` for a flat interconnect; it only
/// constrains inference gangs). A missing `"gpus"` key means a single-GPU
/// job; a missing `"elastic"` key means a rigid one; a missing `"class"`
/// key means a training job, so pre-existing workload files keep parsing
/// byte-identically.
///
/// # Errors
///
/// [`JobFileError::Parse`] on malformed JSON or a bad job shape,
/// [`JobFileError::Empty`] on an empty array,
/// [`JobFileError::ZeroGpus`] / [`JobFileError::GangTooLarge`] for gang
/// sizes that could never be placed,
/// [`JobFileError::ElasticFloorTooSmall`] for elastic gangs whose batch
/// floor would drive the per-replica batch below 1, and
/// [`JobFileError::BadSlo`] / [`JobFileError::BadRequestRate`] /
/// [`JobFileError::ZeroRequests`] / [`JobFileError::ElasticInference`] /
/// [`JobFileError::InferenceGangTooWide`] for inference jobs whose
/// arrival process, SLO, or gang shape could never be served (all caught
/// here, at parse time, instead of surfacing as a late scheduler panic).
pub fn load_jobs(
    json: &str,
    cluster_gpus: usize,
    min_batch_fraction: f64,
    link_domain_gpus: usize,
) -> Result<Vec<JobSpec>, JobFileError> {
    let jobs: Vec<JobSpec> =
        serde_json::from_str(json).map_err(|e| JobFileError::Parse(e.to_string()))?;
    if jobs.is_empty() {
        return Err(JobFileError::Empty);
    }
    for job in &jobs {
        if job.gpus == 0 {
            return Err(JobFileError::ZeroGpus {
                job: job.name.clone(),
            });
        }
        if job.gpus > cluster_gpus {
            return Err(JobFileError::GangTooLarge {
                job: job.name.clone(),
                gpus: job.gpus,
                cluster: cluster_gpus,
            });
        }
        if job.elastic {
            let floor = *capuchin::elastic_batches(job.batch, min_batch_fraction)
                .last()
                .expect("ladder is never empty");
            if floor < job.gpus {
                return Err(JobFileError::ElasticFloorTooSmall {
                    job: job.name.clone(),
                    floor,
                    gpus: job.gpus,
                });
            }
        }
        if job.is_inference() {
            if !job.slo_ms.is_finite() || job.slo_ms <= 0.0 {
                return Err(JobFileError::BadSlo {
                    job: job.name.clone(),
                    slo_ms: job.slo_ms,
                });
            }
            if !job.request_rate.is_finite() || job.request_rate <= 0.0 {
                return Err(JobFileError::BadRequestRate {
                    job: job.name.clone(),
                    rate: job.request_rate,
                });
            }
            if job.requests == 0 {
                return Err(JobFileError::ZeroRequests {
                    job: job.name.clone(),
                });
            }
            if job.elastic {
                return Err(JobFileError::ElasticInference {
                    job: job.name.clone(),
                });
            }
            if job.gpus > link_domain_gpus {
                return Err(JobFileError::InferenceGangTooWide {
                    job: job.name.clone(),
                    gpus: job.gpus,
                    domain: link_domain_gpus,
                });
            }
        }
    }
    Ok(jobs)
}

/// Parses a human-style memory size: `16GiB`, `800 MiB`, `64KiB`, `2gb`,
/// or raw bytes. Binary suffixes (KiB/MiB/GiB) are powers of 1024;
/// decimal suffixes (kb/mb/gb) are powers of 1000. Case-insensitive,
/// embedded whitespace tolerated.
///
/// # Errors
///
/// Returns a message naming the offending input when it is not a
/// positive size.
pub fn parse_memory(s: &str) -> Result<u64, String> {
    let compact: String = s.chars().filter(|c| !c.is_whitespace()).collect();
    let lower = compact.to_lowercase();
    let (num, mult) = if let Some(n) = lower.strip_suffix("gib") {
        (n, 1u64 << 30)
    } else if let Some(n) = lower.strip_suffix("mib") {
        (n, 1u64 << 20)
    } else if let Some(n) = lower.strip_suffix("kib") {
        (n, 1u64 << 10)
    } else if let Some(n) = lower.strip_suffix("gb") {
        (n, 1_000_000_000)
    } else if let Some(n) = lower.strip_suffix("mb") {
        (n, 1_000_000)
    } else if let Some(n) = lower.strip_suffix("kb") {
        (n, 1_000)
    } else {
        (lower.as_str(), 1)
    };
    let v: f64 = num.parse().map_err(|_| {
        format!(
            "invalid memory size `{s}` (expected e.g. 16GiB, 800 MiB, 64KiB, 2gb, or raw bytes)"
        )
    })?;
    if !v.is_finite() || v <= 0.0 {
        return Err(format!("memory size `{s}` must be a positive number"));
    }
    Ok((v * mult as f64) as u64)
}

/// A deterministic splitmix64 generator for synthetic workloads.
#[derive(Debug, Clone)]
pub(crate) struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    pub(crate) fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    pub(crate) fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    pub(crate) fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }

    /// Uniform float in `[0, 1)`.
    pub(crate) fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// The synthetic workload menu: mixes comfortable footprints with jobs
/// that oversubscribe a 16 GiB device (which tf-ori admission must
/// reject but Capuchin admission can shrink).
const MENU: &[(ModelKind, &[usize])] = &[
    (ModelKind::Vgg16, &[64, 128, 208, 256, 320]),
    (ModelKind::ResNet50, &[32, 64, 128, 256]),
    (ModelKind::InceptionV3, &[32, 64, 128]),
    (ModelKind::DenseNet121, &[32, 64]),
];

/// Generates `n` jobs with Poisson arrivals (inverse-CDF exponential
/// inter-arrival times, mean `mean_interarrival_secs`) from a fixed seed.
/// Identical `(n, seed, mean)` always produce an identical workload.
pub fn synthetic_jobs(n: usize, seed: u64, mean_interarrival_secs: f64) -> Vec<JobSpec> {
    let mut rng = SplitMix64::new(seed);
    let mut clock = 0.0f64;
    (0..n)
        .map(|i| {
            // Exponential inter-arrival via inverse CDF; clamp the unit
            // sample away from 0 so ln() stays finite.
            let u = rng.unit_f64().max(1e-12);
            clock += -u.ln() * mean_interarrival_secs;
            let (model, batches) = MENU[rng.below(MENU.len() as u64) as usize];
            let batch = batches[rng.below(batches.len() as u64) as usize];
            JobSpec {
                name: format!("job{i:02}"),
                model,
                batch,
                gpus: 1,
                policy: if rng.below(5) == 0 {
                    JobPolicy::TfOri
                } else {
                    JobPolicy::Capuchin
                },
                iters: 3 + rng.below(6),
                priority: rng.below(3) as u32,
                arrival_time: clock,
                elastic: false,
                class: JobClass::Training,
                request_rate: 0.0,
                slo_ms: 0.0,
                requests: 0,
                kv_bytes_per_request: 0,
                max_inflight: 4,
            }
        })
        .collect()
}

/// The mixed-workload batch menu for scale benchmarking. Deliberately
/// small: gang widths halve a large global batch back onto the same
/// per-replica batches the singles use, so admission measuring collapses
/// onto a handful of cached `(model, replica batch)` runs even at 100k
/// jobs.
const MIXED_BATCHES: &[usize] = &[32, 64, 128];

/// Models drawn by [`synthetic_mixed_jobs`] — the cheaper half of the
/// paper's zoo, keeping one-time graph builds small next to the
/// scheduling work a scale run is meant to measure.
const MIXED_MODELS: &[ModelKind] = &[
    ModelKind::Vgg16,
    ModelKind::ResNet50,
    ModelKind::InceptionV3,
    ModelKind::DenseNet121,
];

/// Generates `n` jobs of mixed shape for scale benchmarking: roughly 70%
/// rigid single-GPU jobs, 15% data-parallel gangs (width 2, or 4 when the
/// cluster has at least 4 devices), and 15% elastic single-GPU jobs, with
/// Poisson arrivals at mean `mean_interarrival_secs` and priorities 0–3.
/// Mostly `tf-ori` policy with a Capuchin minority, mirroring a fleet
/// where a few jobs opt into memory management. Identical
/// `(n, cluster_gpus, seed, mean)` always produce an identical workload;
/// every gang fits a `cluster_gpus`-wide cluster.
pub fn synthetic_mixed_jobs(
    n: usize,
    cluster_gpus: usize,
    seed: u64,
    mean_interarrival_secs: f64,
) -> Vec<JobSpec> {
    let mut rng = SplitMix64::new(seed);
    let mut clock = 0.0f64;
    (0..n)
        .map(|i| {
            let u = rng.unit_f64().max(1e-12);
            clock += -u.ln() * mean_interarrival_secs;
            let model = MIXED_MODELS[rng.below(MIXED_MODELS.len() as u64) as usize];
            let class = rng.below(100);
            let (gpus, batch, elastic) = if class < 70 || cluster_gpus < 2 {
                (1, MIXED_BATCHES[rng.below(3) as usize], false)
            } else if class < 85 {
                // Gangs: width 2 at global batch 64/128 (replica batch
                // 32/64), width 4 at 128 (replica batch 32).
                if cluster_gpus >= 4 && rng.below(2) == 0 {
                    (4, 128, false)
                } else {
                    (2, if rng.below(2) == 0 { 64 } else { 128 }, false)
                }
            } else {
                // Elastic singles at the top batch: the halving ladder
                // lands back on the smaller menu batches.
                (1, 128, true)
            };
            JobSpec {
                name: format!("mix{i:05}"),
                model,
                batch,
                gpus,
                policy: if rng.below(5) == 0 {
                    JobPolicy::Capuchin
                } else {
                    JobPolicy::TfOri
                },
                iters: 6 + rng.below(5),
                priority: rng.below(4) as u32,
                arrival_time: clock,
                elastic,
                class: JobClass::Training,
                request_rate: 0.0,
                slo_ms: 0.0,
                requests: 0,
                kv_bytes_per_request: 0,
                max_inflight: 4,
            }
        })
        .collect()
}

/// Inference batch/model menu: small replica batches so forward-only
/// footprints stay modest and the KV growth is what exercises headroom.
const INFER_MODELS: &[(ModelKind, usize)] = &[
    (ModelKind::ResNet50, 32),
    (ModelKind::InceptionV3, 32),
    (ModelKind::DenseNet121, 32),
];

/// Generates `n` inference-serving jobs with Poisson job arrivals (mean
/// `mean_interarrival_secs`) from a fixed seed. Each job serves a burst
/// of requests at `request_rate` req/s under a few-hundred-millisecond
/// SLO, holding KV-cache state per in-flight request. Identical
/// `(n, seed, mean, request_rate)` always produce an identical workload;
/// every job is a single-GPU job so it fits any link domain.
pub fn synthetic_inference_jobs(
    n: usize,
    seed: u64,
    mean_interarrival_secs: f64,
    request_rate: f64,
) -> Vec<JobSpec> {
    let mut rng = SplitMix64::new(seed);
    let mut clock = 0.0f64;
    (0..n)
        .map(|i| {
            let u = rng.unit_f64().max(1e-12);
            clock += -u.ln() * mean_interarrival_secs;
            let (model, batch) = INFER_MODELS[rng.below(INFER_MODELS.len() as u64) as usize];
            JobSpec {
                name: format!("inf{i:03}"),
                model,
                batch,
                gpus: 1,
                policy: JobPolicy::Capuchin,
                iters: 1,
                priority: 1 + rng.below(2) as u32,
                arrival_time: clock,
                elastic: false,
                class: JobClass::Inference,
                request_rate,
                slo_ms: 200.0 + 100.0 * rng.below(4) as f64,
                requests: 24 + rng.below(25),
                kv_bytes_per_request: (192 + 64 * rng.below(4)) << 20,
                max_inflight: 2 + rng.below(3) as usize,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_sizes_parse() {
        assert_eq!(parse_memory("16GiB"), Ok(16 << 30));
        assert_eq!(parse_memory("16 GiB"), Ok(16 << 30));
        assert_eq!(parse_memory("800MiB"), Ok(800 << 20));
        assert_eq!(parse_memory("64KiB"), Ok(64 << 10));
        assert_eq!(parse_memory("2gb"), Ok(2_000_000_000));
        assert_eq!(parse_memory("1 kb"), Ok(1_000));
        assert_eq!(parse_memory("12345"), Ok(12_345));
        assert_eq!(parse_memory("1.5GiB"), Ok(3 << 29));
    }

    #[test]
    fn memory_size_errors_name_the_input() {
        let err = parse_memory("lots").unwrap_err();
        assert!(err.contains("`lots`"), "{err}");
        assert!(parse_memory("-5GiB").is_err());
        assert!(parse_memory("0").is_err());
        assert!(parse_memory("").is_err());
    }

    #[test]
    fn synthetic_workloads_are_deterministic() {
        let a = synthetic_jobs(16, 1, 2.0);
        let b = synthetic_jobs(16, 1, 2.0);
        assert_eq!(
            serde_json::to_string(&a).unwrap(),
            serde_json::to_string(&b).unwrap()
        );
        // Arrivals are sorted and strictly advancing.
        for w in a.windows(2) {
            assert!(w[0].arrival_time <= w[1].arrival_time);
        }
        // A different seed gives a different workload.
        let c = synthetic_jobs(16, 2, 2.0);
        assert_ne!(
            serde_json::to_string(&a).unwrap(),
            serde_json::to_string(&c).unwrap()
        );
    }

    #[test]
    fn mixed_workloads_are_deterministic_and_well_shaped() {
        let a = synthetic_mixed_jobs(300, 8, 3, 0.5);
        let b = synthetic_mixed_jobs(300, 8, 3, 0.5);
        assert_eq!(
            serde_json::to_string(&a).unwrap(),
            serde_json::to_string(&b).unwrap()
        );
        for w in a.windows(2) {
            assert!(w[0].arrival_time <= w[1].arrival_time);
        }
        // All three classes appear, every gang fits the cluster, and the
        // shape menu stays small (the scale bench depends on admission
        // caching collapsing the distinct (model, replica batch) pairs).
        assert!(a.iter().any(|j| j.gpus > 1));
        assert!(a.iter().any(|j| j.elastic));
        assert!(a.iter().any(|j| j.gpus == 1 && !j.elastic));
        assert!(a.iter().all(|j| j.gpus >= 1 && j.gpus <= 8));
        assert!(a.iter().all(|j| j.iters >= 6));
        let shapes: std::collections::BTreeSet<_> =
            a.iter().map(|j| (j.model, j.replica_batch())).collect();
        assert!(shapes.len() <= MIXED_MODELS.len() * MIXED_BATCHES.len());
        // A 1-GPU cluster degrades to singles only.
        assert!(synthetic_mixed_jobs(100, 1, 3, 0.5)
            .iter()
            .all(|j| j.gpus == 1));
    }

    #[test]
    fn job_files_round_trip() {
        let jobs = synthetic_jobs(4, 7, 1.0);
        let json = serde_json::to_string_pretty(&jobs).unwrap();
        let back = load_jobs(&json, 4, 0.25, 4).unwrap();
        assert_eq!(
            serde_json::to_string(&jobs).unwrap(),
            serde_json::to_string(&back).unwrap()
        );
        assert_eq!(load_jobs("[]", 4, 0.25, 4), Err(JobFileError::Empty));
        assert!(matches!(
            load_jobs("not json", 4, 0.25, 4),
            Err(JobFileError::Parse(_))
        ));
    }

    #[test]
    fn missing_gpus_key_means_single_gpu() {
        // A pre-gang workload file: no "gpus" key anywhere.
        let json = r#"[{
            "name": "legacy", "model": "ResNet50", "batch": 64,
            "policy": "Capuchin", "iters": 3, "priority": 0,
            "arrival_time": 0.0
        }]"#;
        let jobs = load_jobs(json, 2, 0.25, 2).unwrap();
        assert_eq!(jobs[0].gpus, 1);
        assert_eq!(jobs[0].replica_batch(), 64);
        // ...and no "elastic" key means a rigid job.
        assert!(!jobs[0].elastic);
        // ...and no "class" key means a training job with inert
        // inference fields.
        assert_eq!(jobs[0].class, JobClass::Training);
        assert!(!jobs[0].is_inference());
        assert_eq!(jobs[0].slo_nanos(), 0);
    }

    #[test]
    fn bad_gang_sizes_are_rejected_at_parse_time() {
        let gang = |gpus: usize| {
            format!(
                r#"[{{"name": "g", "model": "Vgg16", "batch": 128, "gpus": {gpus},
                     "policy": "Capuchin", "iters": 2, "priority": 0,
                     "arrival_time": 0.0}}]"#
            )
        };
        assert_eq!(
            load_jobs(&gang(0), 4, 0.25, 4),
            Err(JobFileError::ZeroGpus { job: "g".into() })
        );
        assert_eq!(
            load_jobs(&gang(8), 4, 0.25, 4),
            Err(JobFileError::GangTooLarge {
                job: "g".into(),
                gpus: 8,
                cluster: 4
            })
        );
        let err = load_jobs(&gang(8), 4, 0.25, 4).unwrap_err().to_string();
        assert!(
            err.contains("8-GPU gang") && err.contains("4 GPUs"),
            "{err}"
        );
        assert_eq!(load_jobs(&gang(4), 4, 0.25, 4).unwrap()[0].gpus, 4);
    }

    #[test]
    fn elastic_jobs_parse_and_bad_floors_are_rejected() {
        let elastic = |batch: usize, gpus: usize| {
            format!(
                r#"[{{"name": "e", "model": "Vgg16", "batch": {batch}, "gpus": {gpus},
                     "policy": "Capuchin", "iters": 2, "priority": 0,
                     "arrival_time": 0.0, "elastic": true}}]"#
            )
        };
        let jobs = load_jobs(&elastic(128, 4), 4, 0.25, 4).unwrap();
        assert!(jobs[0].elastic);
        assert_eq!(jobs[0].replica_batch_at(32), 8);
        // floor = ceil(8 × 0.25) = 2 < 4 replicas: caught at parse time.
        let err = load_jobs(&elastic(8, 4), 4, 0.25, 4).unwrap_err();
        assert_eq!(
            err,
            JobFileError::ElasticFloorTooSmall {
                job: "e".into(),
                floor: 2,
                gpus: 4
            }
        );
        assert!(err.to_string().contains("--min-batch-frac"), "{err}");
        // The same shape is fine when rigid: the floor never applies.
        let rigid = elastic(8, 4).replace(r#""elastic": true"#, r#""elastic": false"#);
        assert!(load_jobs(&rigid, 4, 0.25, 4).is_ok());
    }

    #[test]
    fn inference_jobs_parse_and_bad_shapes_are_rejected() {
        let infer = |extra: &str| {
            format!(
                r#"[{{"name": "s", "model": "ResNet50", "batch": 32,
                     "policy": "Capuchin", "iters": 1, "priority": 1,
                     "arrival_time": 0.0, "class": "Inference",
                     "request_rate": 10.0, "slo_ms": 250.0,
                     "requests": 40, "kv_bytes_per_request": 268435456
                     {extra}}}]"#
            )
        };
        let jobs = load_jobs(&infer(""), 4, 0.25, 2).unwrap();
        assert!(jobs[0].is_inference());
        assert_eq!(jobs[0].slo_nanos(), 250_000_000);
        assert_eq!(jobs[0].max_inflight, 4); // defaulted
                                             // Overrides of keys already in the base document are spelled as
                                             // replacements (the parser keeps the first occurrence of a key).
        let with = |key: &str, val: &str| {
            let base = infer("");
            let start = base.find(&format!("\"{key}\"")).expect("key present");
            let end = base[start..]
                .find([',', '}'])
                .map(|i| start + i)
                .expect("value terminator");
            format!("{}\"{key}\": {val}{}", &base[..start], &base[end..])
        };
        assert_eq!(
            load_jobs(&with("slo_ms", "0.0"), 4, 0.25, 2),
            Err(JobFileError::BadSlo {
                job: "s".into(),
                slo_ms: 0.0
            })
        );
        assert!(matches!(
            load_jobs(&with("slo_ms", "-5.0"), 4, 0.25, 2),
            Err(JobFileError::BadSlo { .. })
        ));
        assert_eq!(
            load_jobs(&with("request_rate", "0.0"), 4, 0.25, 2),
            Err(JobFileError::BadRequestRate {
                job: "s".into(),
                rate: 0.0
            })
        );
        assert_eq!(
            load_jobs(&with("requests", "0"), 4, 0.25, 2),
            Err(JobFileError::ZeroRequests { job: "s".into() })
        );
        assert_eq!(
            load_jobs(&infer(r#", "elastic": true"#), 4, 0.25, 2),
            Err(JobFileError::ElasticInference { job: "s".into() })
        );
        // A 4-wide inference gang is fine on a flat 4-GPU cluster but not
        // when the widest link domain holds only 2 devices.
        assert_eq!(
            load_jobs(&infer(r#", "gpus": 4"#), 4, 0.25, 2),
            Err(JobFileError::InferenceGangTooWide {
                job: "s".into(),
                gpus: 4,
                domain: 2
            })
        );
        assert!(load_jobs(&infer(r#", "gpus": 4"#), 4, 0.25, 4).is_ok());
        // The same width is fine for training: only inference rounds put
        // the inter-domain hop on a latency-critical path.
        let training = infer(r#", "gpus": 4"#).replace(r#""class": "Inference","#, "");
        assert!(load_jobs(&training, 4, 0.25, 2).is_ok());
        // Every error message names the job and the accepted shape.
        for bad in [
            with("slo_ms", "0.0"),
            with("request_rate", "0.0"),
            with("requests", "0"),
            infer(r#", "elastic": true"#),
            infer(r#", "gpus": 4"#),
        ] {
            let msg = load_jobs(&bad, 4, 0.25, 2).unwrap_err().to_string();
            assert!(msg.contains("`s`"), "{msg}");
        }
    }

    #[test]
    fn synthetic_inference_workloads_are_deterministic_and_valid() {
        let a = synthetic_inference_jobs(12, 9, 1.0, 8.0);
        let b = synthetic_inference_jobs(12, 9, 1.0, 8.0);
        assert_eq!(
            serde_json::to_string(&a).unwrap(),
            serde_json::to_string(&b).unwrap()
        );
        assert!(a.iter().all(|j| j.is_inference()));
        // The generated workload round-trips through the strict parser.
        let json = serde_json::to_string(&a).unwrap();
        assert!(load_jobs(&json, 4, 0.25, 1).is_ok());
        for w in a.windows(2) {
            assert!(w[0].arrival_time <= w[1].arrival_time);
        }
    }

    #[test]
    fn policy_round_trips_through_fromstr_and_display() {
        for d in crate::policy::REGISTRY {
            let p = d.policy;
            assert_eq!(p.to_string().parse::<JobPolicy>(), Ok(p));
            assert!(JobPolicy::ACCEPTED.contains(&p.name()));
            for spelling in d.accepted {
                assert_eq!(spelling.parse::<JobPolicy>(), Ok(p));
            }
        }
        let err = "keras".parse::<JobPolicy>().unwrap_err();
        assert!(
            err.to_string().contains("tf-ori, capuchin, dtr, delta"),
            "{err}"
        );
    }

    #[test]
    fn policy_round_trips_through_job_file_wire_and_canonical_spellings() {
        for d in crate::policy::REGISTRY {
            // Serialize still emits the wire variant name…
            let json = serde_json::to_string(&d.policy).unwrap();
            assert_eq!(json, format!("{:?}", d.wire));
            // …and job-file parsing accepts both the wire name and the
            // canonical CLI spelling.
            for spelling in [d.wire, d.name] {
                let v = serde_json::from_str(&format!("{spelling:?}")).unwrap();
                assert_eq!(JobPolicy::from_value(&v).unwrap(), d.policy);
            }
        }
        let bad = serde_json::from_str("\"keras\"").unwrap();
        assert!(JobPolicy::from_value(&bad).is_err());
    }

    #[test]
    fn replica_batch_splits_evenly_and_rounds_up() {
        let mut spec = synthetic_jobs(1, 1, 1.0).remove(0);
        spec.batch = 128;
        spec.gpus = 4;
        assert_eq!(spec.replica_batch(), 32);
        spec.gpus = 3;
        assert_eq!(spec.replica_batch(), 43);
        spec.batch = 1;
        spec.gpus = 4;
        assert_eq!(spec.replica_batch(), 1);
    }
}
