//! Job descriptions: the unit of work the cluster schedules.

use capuchin_models::ModelKind;
use serde::{Deserialize, Serialize};

/// The memory policy a job requests for its own execution. Jobs admitted
/// *shrunk* always run under Capuchin regardless (a plan is what makes
/// the smaller budget viable).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum JobPolicy {
    /// Framework-default behavior: no memory management, OOM on overflow.
    TfOri,
    /// Capuchin's swap/recompute management.
    Capuchin,
}

impl JobPolicy {
    /// CLI/stats name.
    pub fn name(self) -> &'static str {
        match self {
            JobPolicy::TfOri => "tf-ori",
            JobPolicy::Capuchin => "capuchin",
        }
    }
}

/// One training job submitted to the cluster.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct JobSpec {
    /// Display name, unique per workload.
    pub name: String,
    /// Which model to train.
    pub model: ModelKind,
    /// Mini-batch size.
    pub batch: usize,
    /// Requested execution policy.
    pub policy: JobPolicy,
    /// Training iterations to run.
    pub iters: u64,
    /// Scheduling priority (higher = more urgent; best-fit placement
    /// ages it while the job waits).
    pub priority: u32,
    /// Submission time in seconds on the simulated cluster clock.
    pub arrival_time: f64,
}

/// Parses a workload file: a JSON array of [`JobSpec`] objects.
///
/// # Errors
///
/// Returns a human-readable message on malformed JSON or a bad job shape.
pub fn load_jobs(json: &str) -> Result<Vec<JobSpec>, String> {
    let jobs: Vec<JobSpec> =
        serde_json::from_str(json).map_err(|e| format!("invalid job file: {e}"))?;
    if jobs.is_empty() {
        return Err("job file contains no jobs".to_owned());
    }
    Ok(jobs)
}

/// Parses a human-style memory size: `16GiB`, `800 MiB`, `64KiB`, `2gb`,
/// or raw bytes. Binary suffixes (KiB/MiB/GiB) are powers of 1024;
/// decimal suffixes (kb/mb/gb) are powers of 1000. Case-insensitive,
/// embedded whitespace tolerated.
///
/// # Errors
///
/// Returns a message naming the offending input when it is not a
/// positive size.
pub fn parse_memory(s: &str) -> Result<u64, String> {
    let compact: String = s.chars().filter(|c| !c.is_whitespace()).collect();
    let lower = compact.to_lowercase();
    let (num, mult) = if let Some(n) = lower.strip_suffix("gib") {
        (n, 1u64 << 30)
    } else if let Some(n) = lower.strip_suffix("mib") {
        (n, 1u64 << 20)
    } else if let Some(n) = lower.strip_suffix("kib") {
        (n, 1u64 << 10)
    } else if let Some(n) = lower.strip_suffix("gb") {
        (n, 1_000_000_000)
    } else if let Some(n) = lower.strip_suffix("mb") {
        (n, 1_000_000)
    } else if let Some(n) = lower.strip_suffix("kb") {
        (n, 1_000)
    } else {
        (lower.as_str(), 1)
    };
    let v: f64 = num.parse().map_err(|_| {
        format!(
            "invalid memory size `{s}` (expected e.g. 16GiB, 800 MiB, 64KiB, 2gb, or raw bytes)"
        )
    })?;
    if !v.is_finite() || v <= 0.0 {
        return Err(format!("memory size `{s}` must be a positive number"));
    }
    Ok((v * mult as f64) as u64)
}

/// A deterministic splitmix64 generator for synthetic workloads.
#[derive(Debug, Clone)]
pub(crate) struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    pub(crate) fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    pub(crate) fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    pub(crate) fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }

    /// Uniform float in `[0, 1)`.
    pub(crate) fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// The synthetic workload menu: mixes comfortable footprints with jobs
/// that oversubscribe a 16 GiB device (which tf-ori admission must
/// reject but Capuchin admission can shrink).
const MENU: &[(ModelKind, &[usize])] = &[
    (ModelKind::Vgg16, &[64, 128, 208, 256, 320]),
    (ModelKind::ResNet50, &[32, 64, 128, 256]),
    (ModelKind::InceptionV3, &[32, 64, 128]),
    (ModelKind::DenseNet121, &[32, 64]),
];

/// Generates `n` jobs with Poisson arrivals (inverse-CDF exponential
/// inter-arrival times, mean `mean_interarrival_secs`) from a fixed seed.
/// Identical `(n, seed, mean)` always produce an identical workload.
pub fn synthetic_jobs(n: usize, seed: u64, mean_interarrival_secs: f64) -> Vec<JobSpec> {
    let mut rng = SplitMix64::new(seed);
    let mut clock = 0.0f64;
    (0..n)
        .map(|i| {
            // Exponential inter-arrival via inverse CDF; clamp the unit
            // sample away from 0 so ln() stays finite.
            let u = rng.unit_f64().max(1e-12);
            clock += -u.ln() * mean_interarrival_secs;
            let (model, batches) = MENU[rng.below(MENU.len() as u64) as usize];
            let batch = batches[rng.below(batches.len() as u64) as usize];
            JobSpec {
                name: format!("job{i:02}"),
                model,
                batch,
                policy: if rng.below(5) == 0 {
                    JobPolicy::TfOri
                } else {
                    JobPolicy::Capuchin
                },
                iters: 3 + rng.below(6),
                priority: rng.below(3) as u32,
                arrival_time: clock,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_sizes_parse() {
        assert_eq!(parse_memory("16GiB"), Ok(16 << 30));
        assert_eq!(parse_memory("16 GiB"), Ok(16 << 30));
        assert_eq!(parse_memory("800MiB"), Ok(800 << 20));
        assert_eq!(parse_memory("64KiB"), Ok(64 << 10));
        assert_eq!(parse_memory("2gb"), Ok(2_000_000_000));
        assert_eq!(parse_memory("1 kb"), Ok(1_000));
        assert_eq!(parse_memory("12345"), Ok(12_345));
        assert_eq!(parse_memory("1.5GiB"), Ok(3 << 29));
    }

    #[test]
    fn memory_size_errors_name_the_input() {
        let err = parse_memory("lots").unwrap_err();
        assert!(err.contains("`lots`"), "{err}");
        assert!(parse_memory("-5GiB").is_err());
        assert!(parse_memory("0").is_err());
        assert!(parse_memory("").is_err());
    }

    #[test]
    fn synthetic_workloads_are_deterministic() {
        let a = synthetic_jobs(16, 1, 2.0);
        let b = synthetic_jobs(16, 1, 2.0);
        assert_eq!(
            serde_json::to_string(&a).unwrap(),
            serde_json::to_string(&b).unwrap()
        );
        // Arrivals are sorted and strictly advancing.
        for w in a.windows(2) {
            assert!(w[0].arrival_time <= w[1].arrival_time);
        }
        // A different seed gives a different workload.
        let c = synthetic_jobs(16, 2, 2.0);
        assert_ne!(
            serde_json::to_string(&a).unwrap(),
            serde_json::to_string(&c).unwrap()
        );
    }

    #[test]
    fn job_files_round_trip() {
        let jobs = synthetic_jobs(4, 7, 1.0);
        let json = serde_json::to_string_pretty(&jobs).unwrap();
        let back = load_jobs(&json).unwrap();
        assert_eq!(
            serde_json::to_string(&jobs).unwrap(),
            serde_json::to_string(&back).unwrap()
        );
        assert!(load_jobs("[]").is_err());
        assert!(load_jobs("not json").is_err());
    }
}
