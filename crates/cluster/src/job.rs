//! Job descriptions: the unit of work the cluster schedules.

use capuchin_models::ModelKind;
use serde::{Deserialize, Serialize};

use crate::parse::ParseEnumError;

/// The memory policy a job requests for its own execution. Jobs admitted
/// *shrunk* always run under Capuchin regardless (a plan is what makes
/// the smaller budget viable).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum JobPolicy {
    /// Framework-default behavior: no memory management, OOM on overflow.
    TfOri,
    /// Capuchin's swap/recompute management.
    Capuchin,
}

impl JobPolicy {
    /// Accepted [`std::str::FromStr`] spellings, canonical first.
    pub const ACCEPTED: &'static [&'static str] = &["tf-ori", "capuchin"];

    /// CLI/stats name.
    pub fn name(self) -> &'static str {
        match self {
            JobPolicy::TfOri => "tf-ori",
            JobPolicy::Capuchin => "capuchin",
        }
    }
}

impl std::fmt::Display for JobPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for JobPolicy {
    type Err = ParseEnumError;

    fn from_str(s: &str) -> Result<JobPolicy, ParseEnumError> {
        match s {
            "tf-ori" => Ok(JobPolicy::TfOri),
            "capuchin" => Ok(JobPolicy::Capuchin),
            other => Err(ParseEnumError::unknown("job policy", other, Self::ACCEPTED)),
        }
    }
}

/// One training job submitted to the cluster.
///
/// `gpus > 1` makes the job a data-parallel *gang*: `gpus` replicas, each
/// training the per-replica slice `batch / gpus` of the mini-batch, are
/// admitted to `gpus` devices atomically (all or none) and synchronize
/// gradients with a ring allreduce at every iteration boundary.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct JobSpec {
    /// Display name, unique per workload.
    pub name: String,
    /// Which model to train.
    pub model: ModelKind,
    /// Global mini-batch size (split evenly across the gang's replicas).
    pub batch: usize,
    /// Data-parallel replicas: the number of GPUs the job needs at once.
    /// 1 is an ordinary single-device job.
    pub gpus: usize,
    /// Requested execution policy.
    pub policy: JobPolicy,
    /// Training iterations to run.
    pub iters: u64,
    /// Scheduling priority (higher = more urgent; best-fit placement
    /// ages it while the job waits).
    pub priority: u32,
    /// Submission time in seconds on the simulated cluster clock.
    pub arrival_time: f64,
    /// Whether the cluster may elastically re-batch this job: admit it at
    /// a reduced batch when the full batch fits nowhere (extending its
    /// iteration count so total samples trained is preserved) and re-grow
    /// the batch when headroom frees up. Takes effect only when the
    /// cluster itself runs with elastic re-batching enabled. Workload
    /// files written before this field existed parse as `false`.
    pub elastic: bool,
}

impl JobSpec {
    /// The mini-batch slice each replica trains: `batch / gpus`, rounded
    /// up and never below 1.
    pub fn replica_batch(&self) -> usize {
        self.batch.div_ceil(self.gpus.max(1)).max(1)
    }

    /// The per-replica slice of an elastically reduced global batch `b`.
    pub fn replica_batch_at(&self, b: usize) -> usize {
        b.div_ceil(self.gpus.max(1)).max(1)
    }

    /// Marks the job elastic (builder-style, for workloads written in
    /// code).
    pub fn with_elastic(mut self) -> JobSpec {
        self.elastic = true;
        self
    }
}

// Hand-written so `gpus` defaults to 1 and `elastic` to false: workload
// files written before gangs (or elastic re-batching) existed omit the
// keys and must keep parsing byte-identically. (The vendored serde derive
// has no `#[serde(default)]`.)
impl serde::Deserialize for JobSpec {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        use serde::de::field;
        Ok(JobSpec {
            name: String::from_value(field(v, "name")?)?,
            model: ModelKind::from_value(field(v, "model")?)?,
            batch: usize::from_value(field(v, "batch")?)?,
            gpus: match v.get("gpus") {
                Some(g) => usize::from_value(g)?,
                None => 1,
            },
            policy: JobPolicy::from_value(field(v, "policy")?)?,
            iters: u64::from_value(field(v, "iters")?)?,
            priority: u32::from_value(field(v, "priority")?)?,
            arrival_time: f64::from_value(field(v, "arrival_time")?)?,
            elastic: match v.get("elastic") {
                Some(e) => bool::from_value(e)?,
                None => false,
            },
        })
    }
}

/// Why a workload file was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobFileError {
    /// The file is not a JSON array of job objects.
    Parse(String),
    /// The file parsed but contains no jobs.
    Empty,
    /// A job asked for zero GPUs — a gang of nothing can never run.
    ZeroGpus {
        /// Name of the offending job.
        job: String,
    },
    /// A job's gang is wider than the cluster and could never be placed.
    GangTooLarge {
        /// Name of the offending job.
        job: String,
        /// GPUs the job asked for.
        gpus: usize,
        /// GPUs the cluster has.
        cluster: usize,
    },
    /// An elastic gang's batch floor (`batch × min_batch_fraction`) is
    /// narrower than the gang itself, which would drive the per-replica
    /// batch below one sample — the replica clamp would then silently
    /// train *more* samples than the job asked for.
    ElasticFloorTooSmall {
        /// Name of the offending job.
        job: String,
        /// The elastic batch floor (`ceil(batch × min_batch_fraction)`).
        floor: usize,
        /// Replicas the floor must still cover with ≥ 1 sample each.
        gpus: usize,
    },
}

impl std::fmt::Display for JobFileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JobFileError::Parse(msg) => write!(f, "invalid job file: {msg}"),
            JobFileError::Empty => write!(f, "job file contains no jobs"),
            JobFileError::ZeroGpus { job } => {
                write!(f, "job `{job}` requests 0 GPUs; a gang needs at least 1")
            }
            JobFileError::GangTooLarge { job, gpus, cluster } => write!(
                f,
                "job `{job}` requests a {gpus}-GPU gang but the cluster has only {cluster} GPUs"
            ),
            JobFileError::ElasticFloorTooSmall { job, floor, gpus } => write!(
                f,
                "elastic job `{job}`: the minimum-batch floor {floor} cannot cover \
                 {gpus} replicas with at least 1 sample each (raise --min-batch-frac \
                 or shrink the gang)"
            ),
        }
    }
}

impl std::error::Error for JobFileError {}

/// Parses a workload file — a JSON array of [`JobSpec`] objects — and
/// validates every gang against a cluster of `cluster_gpus` devices whose
/// elastic batch floor is `min_batch_fraction` (pass the cluster's
/// configured fraction; it only constrains jobs marked `"elastic": true`).
/// A missing `"gpus"` key means a single-GPU job; a missing `"elastic"`
/// key means a rigid one, so pre-existing workload files keep parsing
/// byte-identically.
///
/// # Errors
///
/// [`JobFileError::Parse`] on malformed JSON or a bad job shape,
/// [`JobFileError::Empty`] on an empty array,
/// [`JobFileError::ZeroGpus`] / [`JobFileError::GangTooLarge`] for gang
/// sizes that could never be placed, and
/// [`JobFileError::ElasticFloorTooSmall`] for elastic gangs whose batch
/// floor would drive the per-replica batch below 1 (all caught here, at
/// parse time, instead of surfacing as a late scheduler panic).
pub fn load_jobs(
    json: &str,
    cluster_gpus: usize,
    min_batch_fraction: f64,
) -> Result<Vec<JobSpec>, JobFileError> {
    let jobs: Vec<JobSpec> =
        serde_json::from_str(json).map_err(|e| JobFileError::Parse(e.to_string()))?;
    if jobs.is_empty() {
        return Err(JobFileError::Empty);
    }
    for job in &jobs {
        if job.gpus == 0 {
            return Err(JobFileError::ZeroGpus {
                job: job.name.clone(),
            });
        }
        if job.gpus > cluster_gpus {
            return Err(JobFileError::GangTooLarge {
                job: job.name.clone(),
                gpus: job.gpus,
                cluster: cluster_gpus,
            });
        }
        if job.elastic {
            let floor = *capuchin::elastic_batches(job.batch, min_batch_fraction)
                .last()
                .expect("ladder is never empty");
            if floor < job.gpus {
                return Err(JobFileError::ElasticFloorTooSmall {
                    job: job.name.clone(),
                    floor,
                    gpus: job.gpus,
                });
            }
        }
    }
    Ok(jobs)
}

/// Parses a human-style memory size: `16GiB`, `800 MiB`, `64KiB`, `2gb`,
/// or raw bytes. Binary suffixes (KiB/MiB/GiB) are powers of 1024;
/// decimal suffixes (kb/mb/gb) are powers of 1000. Case-insensitive,
/// embedded whitespace tolerated.
///
/// # Errors
///
/// Returns a message naming the offending input when it is not a
/// positive size.
pub fn parse_memory(s: &str) -> Result<u64, String> {
    let compact: String = s.chars().filter(|c| !c.is_whitespace()).collect();
    let lower = compact.to_lowercase();
    let (num, mult) = if let Some(n) = lower.strip_suffix("gib") {
        (n, 1u64 << 30)
    } else if let Some(n) = lower.strip_suffix("mib") {
        (n, 1u64 << 20)
    } else if let Some(n) = lower.strip_suffix("kib") {
        (n, 1u64 << 10)
    } else if let Some(n) = lower.strip_suffix("gb") {
        (n, 1_000_000_000)
    } else if let Some(n) = lower.strip_suffix("mb") {
        (n, 1_000_000)
    } else if let Some(n) = lower.strip_suffix("kb") {
        (n, 1_000)
    } else {
        (lower.as_str(), 1)
    };
    let v: f64 = num.parse().map_err(|_| {
        format!(
            "invalid memory size `{s}` (expected e.g. 16GiB, 800 MiB, 64KiB, 2gb, or raw bytes)"
        )
    })?;
    if !v.is_finite() || v <= 0.0 {
        return Err(format!("memory size `{s}` must be a positive number"));
    }
    Ok((v * mult as f64) as u64)
}

/// A deterministic splitmix64 generator for synthetic workloads.
#[derive(Debug, Clone)]
pub(crate) struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    pub(crate) fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    pub(crate) fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    pub(crate) fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }

    /// Uniform float in `[0, 1)`.
    pub(crate) fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// The synthetic workload menu: mixes comfortable footprints with jobs
/// that oversubscribe a 16 GiB device (which tf-ori admission must
/// reject but Capuchin admission can shrink).
const MENU: &[(ModelKind, &[usize])] = &[
    (ModelKind::Vgg16, &[64, 128, 208, 256, 320]),
    (ModelKind::ResNet50, &[32, 64, 128, 256]),
    (ModelKind::InceptionV3, &[32, 64, 128]),
    (ModelKind::DenseNet121, &[32, 64]),
];

/// Generates `n` jobs with Poisson arrivals (inverse-CDF exponential
/// inter-arrival times, mean `mean_interarrival_secs`) from a fixed seed.
/// Identical `(n, seed, mean)` always produce an identical workload.
pub fn synthetic_jobs(n: usize, seed: u64, mean_interarrival_secs: f64) -> Vec<JobSpec> {
    let mut rng = SplitMix64::new(seed);
    let mut clock = 0.0f64;
    (0..n)
        .map(|i| {
            // Exponential inter-arrival via inverse CDF; clamp the unit
            // sample away from 0 so ln() stays finite.
            let u = rng.unit_f64().max(1e-12);
            clock += -u.ln() * mean_interarrival_secs;
            let (model, batches) = MENU[rng.below(MENU.len() as u64) as usize];
            let batch = batches[rng.below(batches.len() as u64) as usize];
            JobSpec {
                name: format!("job{i:02}"),
                model,
                batch,
                gpus: 1,
                policy: if rng.below(5) == 0 {
                    JobPolicy::TfOri
                } else {
                    JobPolicy::Capuchin
                },
                iters: 3 + rng.below(6),
                priority: rng.below(3) as u32,
                arrival_time: clock,
                elastic: false,
            }
        })
        .collect()
}

/// The mixed-workload batch menu for scale benchmarking. Deliberately
/// small: gang widths halve a large global batch back onto the same
/// per-replica batches the singles use, so admission measuring collapses
/// onto a handful of cached `(model, replica batch)` runs even at 100k
/// jobs.
const MIXED_BATCHES: &[usize] = &[32, 64, 128];

/// Models drawn by [`synthetic_mixed_jobs`] — the cheaper half of the
/// paper's zoo, keeping one-time graph builds small next to the
/// scheduling work a scale run is meant to measure.
const MIXED_MODELS: &[ModelKind] = &[
    ModelKind::Vgg16,
    ModelKind::ResNet50,
    ModelKind::InceptionV3,
    ModelKind::DenseNet121,
];

/// Generates `n` jobs of mixed shape for scale benchmarking: roughly 70%
/// rigid single-GPU jobs, 15% data-parallel gangs (width 2, or 4 when the
/// cluster has at least 4 devices), and 15% elastic single-GPU jobs, with
/// Poisson arrivals at mean `mean_interarrival_secs` and priorities 0–3.
/// Mostly `tf-ori` policy with a Capuchin minority, mirroring a fleet
/// where a few jobs opt into memory management. Identical
/// `(n, cluster_gpus, seed, mean)` always produce an identical workload;
/// every gang fits a `cluster_gpus`-wide cluster.
pub fn synthetic_mixed_jobs(
    n: usize,
    cluster_gpus: usize,
    seed: u64,
    mean_interarrival_secs: f64,
) -> Vec<JobSpec> {
    let mut rng = SplitMix64::new(seed);
    let mut clock = 0.0f64;
    (0..n)
        .map(|i| {
            let u = rng.unit_f64().max(1e-12);
            clock += -u.ln() * mean_interarrival_secs;
            let model = MIXED_MODELS[rng.below(MIXED_MODELS.len() as u64) as usize];
            let class = rng.below(100);
            let (gpus, batch, elastic) = if class < 70 || cluster_gpus < 2 {
                (1, MIXED_BATCHES[rng.below(3) as usize], false)
            } else if class < 85 {
                // Gangs: width 2 at global batch 64/128 (replica batch
                // 32/64), width 4 at 128 (replica batch 32).
                if cluster_gpus >= 4 && rng.below(2) == 0 {
                    (4, 128, false)
                } else {
                    (2, if rng.below(2) == 0 { 64 } else { 128 }, false)
                }
            } else {
                // Elastic singles at the top batch: the halving ladder
                // lands back on the smaller menu batches.
                (1, 128, true)
            };
            JobSpec {
                name: format!("mix{i:05}"),
                model,
                batch,
                gpus,
                policy: if rng.below(5) == 0 {
                    JobPolicy::Capuchin
                } else {
                    JobPolicy::TfOri
                },
                iters: 6 + rng.below(5),
                priority: rng.below(4) as u32,
                arrival_time: clock,
                elastic,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_sizes_parse() {
        assert_eq!(parse_memory("16GiB"), Ok(16 << 30));
        assert_eq!(parse_memory("16 GiB"), Ok(16 << 30));
        assert_eq!(parse_memory("800MiB"), Ok(800 << 20));
        assert_eq!(parse_memory("64KiB"), Ok(64 << 10));
        assert_eq!(parse_memory("2gb"), Ok(2_000_000_000));
        assert_eq!(parse_memory("1 kb"), Ok(1_000));
        assert_eq!(parse_memory("12345"), Ok(12_345));
        assert_eq!(parse_memory("1.5GiB"), Ok(3 << 29));
    }

    #[test]
    fn memory_size_errors_name_the_input() {
        let err = parse_memory("lots").unwrap_err();
        assert!(err.contains("`lots`"), "{err}");
        assert!(parse_memory("-5GiB").is_err());
        assert!(parse_memory("0").is_err());
        assert!(parse_memory("").is_err());
    }

    #[test]
    fn synthetic_workloads_are_deterministic() {
        let a = synthetic_jobs(16, 1, 2.0);
        let b = synthetic_jobs(16, 1, 2.0);
        assert_eq!(
            serde_json::to_string(&a).unwrap(),
            serde_json::to_string(&b).unwrap()
        );
        // Arrivals are sorted and strictly advancing.
        for w in a.windows(2) {
            assert!(w[0].arrival_time <= w[1].arrival_time);
        }
        // A different seed gives a different workload.
        let c = synthetic_jobs(16, 2, 2.0);
        assert_ne!(
            serde_json::to_string(&a).unwrap(),
            serde_json::to_string(&c).unwrap()
        );
    }

    #[test]
    fn mixed_workloads_are_deterministic_and_well_shaped() {
        let a = synthetic_mixed_jobs(300, 8, 3, 0.5);
        let b = synthetic_mixed_jobs(300, 8, 3, 0.5);
        assert_eq!(
            serde_json::to_string(&a).unwrap(),
            serde_json::to_string(&b).unwrap()
        );
        for w in a.windows(2) {
            assert!(w[0].arrival_time <= w[1].arrival_time);
        }
        // All three classes appear, every gang fits the cluster, and the
        // shape menu stays small (the scale bench depends on admission
        // caching collapsing the distinct (model, replica batch) pairs).
        assert!(a.iter().any(|j| j.gpus > 1));
        assert!(a.iter().any(|j| j.elastic));
        assert!(a.iter().any(|j| j.gpus == 1 && !j.elastic));
        assert!(a.iter().all(|j| j.gpus >= 1 && j.gpus <= 8));
        assert!(a.iter().all(|j| j.iters >= 6));
        let shapes: std::collections::BTreeSet<_> =
            a.iter().map(|j| (j.model, j.replica_batch())).collect();
        assert!(shapes.len() <= MIXED_MODELS.len() * MIXED_BATCHES.len());
        // A 1-GPU cluster degrades to singles only.
        assert!(synthetic_mixed_jobs(100, 1, 3, 0.5)
            .iter()
            .all(|j| j.gpus == 1));
    }

    #[test]
    fn job_files_round_trip() {
        let jobs = synthetic_jobs(4, 7, 1.0);
        let json = serde_json::to_string_pretty(&jobs).unwrap();
        let back = load_jobs(&json, 4, 0.25).unwrap();
        assert_eq!(
            serde_json::to_string(&jobs).unwrap(),
            serde_json::to_string(&back).unwrap()
        );
        assert_eq!(load_jobs("[]", 4, 0.25), Err(JobFileError::Empty));
        assert!(matches!(
            load_jobs("not json", 4, 0.25),
            Err(JobFileError::Parse(_))
        ));
    }

    #[test]
    fn missing_gpus_key_means_single_gpu() {
        // A pre-gang workload file: no "gpus" key anywhere.
        let json = r#"[{
            "name": "legacy", "model": "ResNet50", "batch": 64,
            "policy": "Capuchin", "iters": 3, "priority": 0,
            "arrival_time": 0.0
        }]"#;
        let jobs = load_jobs(json, 2, 0.25).unwrap();
        assert_eq!(jobs[0].gpus, 1);
        assert_eq!(jobs[0].replica_batch(), 64);
        // ...and no "elastic" key means a rigid job.
        assert!(!jobs[0].elastic);
    }

    #[test]
    fn bad_gang_sizes_are_rejected_at_parse_time() {
        let gang = |gpus: usize| {
            format!(
                r#"[{{"name": "g", "model": "Vgg16", "batch": 128, "gpus": {gpus},
                     "policy": "Capuchin", "iters": 2, "priority": 0,
                     "arrival_time": 0.0}}]"#
            )
        };
        assert_eq!(
            load_jobs(&gang(0), 4, 0.25),
            Err(JobFileError::ZeroGpus { job: "g".into() })
        );
        assert_eq!(
            load_jobs(&gang(8), 4, 0.25),
            Err(JobFileError::GangTooLarge {
                job: "g".into(),
                gpus: 8,
                cluster: 4
            })
        );
        let err = load_jobs(&gang(8), 4, 0.25).unwrap_err().to_string();
        assert!(
            err.contains("8-GPU gang") && err.contains("4 GPUs"),
            "{err}"
        );
        assert_eq!(load_jobs(&gang(4), 4, 0.25).unwrap()[0].gpus, 4);
    }

    #[test]
    fn elastic_jobs_parse_and_bad_floors_are_rejected() {
        let elastic = |batch: usize, gpus: usize| {
            format!(
                r#"[{{"name": "e", "model": "Vgg16", "batch": {batch}, "gpus": {gpus},
                     "policy": "Capuchin", "iters": 2, "priority": 0,
                     "arrival_time": 0.0, "elastic": true}}]"#
            )
        };
        let jobs = load_jobs(&elastic(128, 4), 4, 0.25).unwrap();
        assert!(jobs[0].elastic);
        assert_eq!(jobs[0].replica_batch_at(32), 8);
        // floor = ceil(8 × 0.25) = 2 < 4 replicas: caught at parse time.
        let err = load_jobs(&elastic(8, 4), 4, 0.25).unwrap_err();
        assert_eq!(
            err,
            JobFileError::ElasticFloorTooSmall {
                job: "e".into(),
                floor: 2,
                gpus: 4
            }
        );
        assert!(err.to_string().contains("--min-batch-frac"), "{err}");
        // The same shape is fine when rigid: the floor never applies.
        let rigid = elastic(8, 4).replace(r#""elastic": true"#, r#""elastic": false"#);
        assert!(load_jobs(&rigid, 4, 0.25).is_ok());
    }

    #[test]
    fn policy_round_trips_through_fromstr_and_display() {
        for p in [JobPolicy::TfOri, JobPolicy::Capuchin] {
            assert_eq!(p.to_string().parse::<JobPolicy>(), Ok(p));
            assert!(JobPolicy::ACCEPTED.contains(&p.name()));
        }
        let err = "keras".parse::<JobPolicy>().unwrap_err();
        assert!(err.to_string().contains("tf-ori, capuchin"), "{err}");
    }

    #[test]
    fn replica_batch_splits_evenly_and_rounds_up() {
        let mut spec = synthetic_jobs(1, 1, 1.0).remove(0);
        spec.batch = 128;
        spec.gpus = 4;
        assert_eq!(spec.replica_batch(), 32);
        spec.gpus = 3;
        assert_eq!(spec.replica_batch(), 43);
        spec.batch = 1;
        spec.gpus = 4;
        assert_eq!(spec.replica_batch(), 1);
    }
}
