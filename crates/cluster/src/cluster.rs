//! The cluster simulation: N GPUs, one deterministic event clock.
//!
//! # Model
//!
//! * Each GPU is a byte-granular reservation ledger. A job holds one
//!   reservation (granted at admission) for its entire stay; there is no
//!   mid-run growth, because Capuchin's plan keeps the footprint under
//!   the granted budget.
//! * Job execution is replayed, not re-simulated: admission validates the
//!   granted budget with a real engine run and the cluster replays the
//!   recorded per-iteration wall times on its own clock. When a job's
//!   validation run is shorter than the job, the final (steady-state)
//!   wall time repeats.
//! * Co-located jobs slow each other down: an iteration started while
//!   `k` jobs are resident on the GPU takes `k×` its recorded wall time
//!   (a deliberately simple contention model — compute is time-sliced,
//!   memory is partitioned). In-flight iterations keep their scheduled
//!   end when residency changes.
//! * Footprint measurement happens off the critical path (think: a
//!   profiling sidecar), so admission consumes no simulated time.
//!
//! # Determinism
//!
//! Events are ordered by `(time, submission sequence)`; all caches are
//! `BTreeMap`s; the waiting queue is a plain `Vec` in arrival order.
//! Two runs over the same workload produce byte-identical stats JSON.

use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap};

use capuchin::{measure_footprint, FootprintEstimate};
use capuchin_sim::{DeviceSpec, Duration, Time};

use crate::admission::{Admission, AdmissionMode, JobNeeds};
use crate::job::JobSpec;
use crate::stats::{ClusterStats, GpuStats, JobOutcome, JobStats};
use crate::strategy::{CandidateJob, GpuView, StrategyKind};

/// Cluster shape and scheduling knobs.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Number of identical GPUs.
    pub gpus: usize,
    /// Device model for every GPU.
    pub spec: DeviceSpec,
    /// Admission mode.
    pub admission: AdmissionMode,
    /// Placement strategy.
    pub strategy: StrategyKind,
    /// Priority-aging rate for best-fit placement (points per waiting
    /// second).
    pub aging_rate: f64,
    /// Engine iterations per admission validation run (clamped to the
    /// job's own iteration count; at least 2 so Capuchin completes
    /// measured execution).
    pub validate_iters: u64,
}

impl Default for ClusterConfig {
    fn default() -> ClusterConfig {
        ClusterConfig {
            gpus: 4,
            spec: DeviceSpec::p100_pcie3(),
            admission: AdmissionMode::Capuchin,
            strategy: StrategyKind::FifoFirstFit,
            aging_rate: 0.1,
            validate_iters: 6,
        }
    }
}

/// Per-job simulation state.
#[derive(Debug)]
struct JobRun {
    spec: JobSpec,
    arrival: Time,
    needs: JobNeeds,
    footprint: u64,
    /// Largest budget a validation run failed at (never retried at or
    /// below this).
    failed_budget: Option<u64>,
    rejected: bool,
    gpu: Option<usize>,
    reserved: u64,
    shrunk: bool,
    admitted_at: Option<Time>,
    finished_at: Option<Time>,
    walls: Vec<Duration>,
    iters_done: u64,
}

/// Per-GPU reservation ledger with a byte-time integral for utilization.
#[derive(Debug)]
struct GpuState {
    capacity: u64,
    reserved: u64,
    resident: Vec<usize>,
    peak: u64,
    byte_ns: u128,
    last_touch: Time,
    hosted: usize,
}

impl GpuState {
    fn new(capacity: u64) -> GpuState {
        GpuState {
            capacity,
            reserved: 0,
            resident: Vec::new(),
            peak: 0,
            byte_ns: 0,
            last_touch: Time::ZERO,
            hosted: 0,
        }
    }

    /// Accumulates the byte-time integral up to `now`.
    fn touch(&mut self, now: Time) {
        let span = now.saturating_since(self.last_touch).as_nanos() as u128;
        self.byte_ns += self.reserved as u128 * span;
        self.last_touch = now;
    }
}

const EV_ARRIVE: u8 = 0;
const EV_ITER_END: u8 = 1;

/// Event queue entry: `(time ns, sequence, kind, job)` under `Reverse`
/// for min-heap order. The sequence number breaks time ties
/// deterministically.
type Event = Reverse<(u64, u64, u8, usize)>;

/// Validation-cache key: `(model name, batch, budget, policy, shrunk,
/// iters)`.
type ValidationKey = (String, usize, u64, &'static str, bool, u64);

/// The cluster scheduler.
#[derive(Debug)]
pub struct Cluster {
    cfg: ClusterConfig,
    admission: Admission,
    /// Measured footprints and derived admission budgets keyed by
    /// `(model name, batch)` — jobs sharing a workload share one
    /// measuring run and one bisection.
    estimates: BTreeMap<(String, usize), (FootprintEstimate, JobNeeds)>,
    /// Validation outcomes: `Some` holds the per-iteration walls, `None`
    /// records a failed run.
    validations: BTreeMap<ValidationKey, Option<Vec<Duration>>>,
}

impl Cluster {
    /// Creates a cluster.
    pub fn new(cfg: ClusterConfig) -> Cluster {
        let mut admission = Admission::new(cfg.admission);
        admission.validate_iters = cfg.validate_iters.max(2);
        Cluster {
            cfg,
            admission,
            estimates: BTreeMap::new(),
            validations: BTreeMap::new(),
        }
    }

    fn estimate(&mut self, spec: &JobSpec) -> (FootprintEstimate, JobNeeds) {
        let key = (spec.model.name().to_owned(), spec.batch);
        if let Some(cached) = self.estimates.get(&key) {
            return cached.clone();
        }
        let model = spec.model.build(spec.batch);
        let est = measure_footprint(&model.graph, &self.cfg.spec)
            .expect("unconstrained measuring run cannot OOM");
        let needs = self.admission.needs(&model.graph, &est);
        self.estimates.insert(key, (est.clone(), needs));
        (est, needs)
    }

    fn validated_walls(
        &mut self,
        spec: &JobSpec,
        budget: u64,
        shrunk: bool,
    ) -> Option<Vec<Duration>> {
        let iters = spec.iters.min(self.cfg.validate_iters).max(2);
        let key = (
            spec.model.name().to_owned(),
            spec.batch,
            budget,
            spec.policy.name(),
            shrunk,
            iters,
        );
        if let Some(cached) = self.validations.get(&key) {
            return cached.clone();
        }
        let model = spec.model.build(spec.batch);
        let walls = self
            .admission
            .validate(
                &model.graph,
                &self.cfg.spec,
                budget,
                spec.policy,
                shrunk,
                iters,
            )
            .ok();
        self.validations.insert(key, walls.clone());
        walls
    }

    /// Runs the workload to completion and returns the stats.
    pub fn run(&mut self, specs: &[JobSpec]) -> ClusterStats {
        let mut seq: u64 = 0;
        let mut heap: BinaryHeap<Event> = BinaryHeap::new();
        let mut jobs: Vec<JobRun> = Vec::with_capacity(specs.len());
        for (i, spec) in specs.iter().enumerate() {
            let arrival = Time::ZERO + Duration::from_secs_f64(spec.arrival_time.max(0.0));
            jobs.push(JobRun {
                spec: spec.clone(),
                arrival,
                needs: JobNeeds { full: 0, min: 0 },
                footprint: 0,
                failed_budget: None,
                rejected: false,
                gpu: None,
                reserved: 0,
                shrunk: false,
                admitted_at: None,
                finished_at: None,
                walls: Vec::new(),
                iters_done: 0,
            });
            heap.push(Reverse((arrival.as_nanos(), seq, EV_ARRIVE, i)));
            seq += 1;
        }
        let mut gpus: Vec<GpuState> = (0..self.cfg.gpus)
            .map(|_| GpuState::new(self.cfg.spec.memory_bytes))
            .collect();
        let mut pending: Vec<usize> = Vec::new();
        let strategy = self.cfg.strategy.build(self.cfg.aging_rate);

        while let Some(Reverse((t, _, kind, job))) = heap.pop() {
            let now = Time::from_nanos(t);
            match kind {
                EV_ARRIVE => {
                    let (est, needs) = self.estimate(&jobs[job].spec);
                    jobs[job].needs = needs;
                    jobs[job].footprint = est.ideal_peak;
                    if needs.min > self.cfg.spec.memory_bytes {
                        // Admission-time OOM: no bare GPU can ever host it.
                        jobs[job].rejected = true;
                    } else {
                        pending.push(job);
                    }
                }
                _ => {
                    jobs[job].iters_done += 1;
                    if jobs[job].iters_done >= jobs[job].spec.iters {
                        let gpu = jobs[job].gpu.expect("running job has a GPU");
                        jobs[job].finished_at = Some(now);
                        let g = &mut gpus[gpu];
                        g.touch(now);
                        g.reserved -= jobs[job].reserved;
                        g.resident.retain(|&r| r != job);
                    } else {
                        schedule_iter(&jobs, &gpus, job, now, &mut seq, &mut heap);
                    }
                }
            }
            // (Re-)place waiting jobs after every state change.
            loop {
                let cands: Vec<CandidateJob> = pending
                    .iter()
                    .map(|&j| CandidateJob {
                        job: j,
                        arrival: jobs[j].arrival,
                        priority: jobs[j].spec.priority,
                        full_need: jobs[j].needs.full,
                        min_need: jobs[j].needs.min,
                        failed_budget: jobs[j].failed_budget,
                    })
                    .collect();
                if cands.is_empty() {
                    break;
                }
                let views: Vec<GpuView> = gpus
                    .iter()
                    .enumerate()
                    .map(|(idx, g)| GpuView {
                        idx,
                        capacity: g.capacity,
                        reserved: g.reserved,
                    })
                    .collect();
                let fits = |c: &CandidateJob, g: &GpuView| {
                    let h = g.headroom();
                    if h < c.min_need {
                        return false;
                    }
                    let grant = h.min(c.full_need);
                    c.failed_budget.is_none_or(|fb| grant > fb)
                };
                let Some((job, gpu)) = strategy.pick(&cands, &views, now, &fits) else {
                    break;
                };
                let grant = views[gpu].headroom().min(jobs[job].needs.full);
                let shrunk = grant < jobs[job].needs.full;
                let spec = jobs[job].spec.clone();
                match self.validated_walls(&spec, grant, shrunk) {
                    Some(walls) => {
                        let j = &mut jobs[job];
                        j.gpu = Some(gpu);
                        j.reserved = grant;
                        j.shrunk = shrunk;
                        j.admitted_at = Some(now);
                        j.walls = walls;
                        pending.retain(|&p| p != job);
                        let g = &mut gpus[gpu];
                        g.touch(now);
                        g.reserved += grant;
                        g.peak = g.peak.max(g.reserved);
                        g.resident.push(job);
                        g.hosted += 1;
                        schedule_iter(&jobs, &gpus, job, now, &mut seq, &mut heap);
                    }
                    None => {
                        // The budget looked plannable but the engine run
                        // failed; never retry at or below it.
                        let j = &mut jobs[job];
                        j.failed_budget = Some(j.failed_budget.map_or(grant, |fb| fb.max(grant)));
                    }
                }
            }
        }
        self.finalize(jobs, gpus, &*strategy)
    }

    fn finalize(
        &self,
        jobs: Vec<JobRun>,
        mut gpus: Vec<GpuState>,
        strategy: &dyn crate::strategy::PlacementStrategy,
    ) -> ClusterStats {
        let start = jobs.iter().map(|j| j.arrival).min().unwrap_or(Time::ZERO);
        let end = jobs
            .iter()
            .filter_map(|j| j.finished_at)
            .max()
            .unwrap_or(start);
        let makespan = end.saturating_since(start);
        for g in &mut gpus {
            g.touch(end);
        }
        let completed: Vec<&JobRun> = jobs.iter().filter(|j| j.finished_at.is_some()).collect();
        let total_samples: f64 = completed
            .iter()
            .map(|j| (j.spec.batch as u64 * j.spec.iters) as f64)
            .sum();
        let mean = |durs: Vec<Duration>| -> Duration {
            if durs.is_empty() {
                return Duration::ZERO;
            }
            let total: Duration = durs.iter().copied().sum();
            Duration::from_nanos(total.as_nanos() / durs.len() as u64)
        };
        let mean_queueing_delay = mean(
            completed
                .iter()
                .map(|j| {
                    j.admitted_at
                        .expect("completed job was admitted")
                        .saturating_since(j.arrival)
                })
                .collect(),
        );
        let mean_jct = mean(
            completed
                .iter()
                .map(|j| j.finished_at.expect("filtered").saturating_since(j.arrival))
                .collect(),
        );
        let job_stats: Vec<JobStats> = jobs
            .iter()
            .map(|j| {
                let jct = j
                    .finished_at
                    .map(|f| f.saturating_since(j.arrival))
                    .unwrap_or(Duration::ZERO);
                JobStats {
                    name: j.spec.name.clone(),
                    model: j.spec.model.name().to_owned(),
                    batch: j.spec.batch,
                    policy: j.spec.policy.name().to_owned(),
                    outcome: if j.rejected {
                        JobOutcome::Rejected
                    } else if j.finished_at.is_some() {
                        JobOutcome::Completed
                    } else {
                        JobOutcome::Starved
                    },
                    gpu: j.gpu,
                    shrunk: j.shrunk,
                    reserved_bytes: j.reserved,
                    footprint_bytes: j.footprint,
                    arrival: j.arrival.saturating_since(Time::ZERO),
                    queueing_delay: j
                        .admitted_at
                        .map(|a| a.saturating_since(j.arrival))
                        .unwrap_or(Duration::ZERO),
                    jct,
                    mean_iter: match (j.admitted_at, j.finished_at) {
                        (Some(a), Some(f)) if j.spec.iters > 0 => {
                            Duration::from_nanos(f.saturating_since(a).as_nanos() / j.spec.iters)
                        }
                        _ => Duration::ZERO,
                    },
                }
            })
            .collect();
        let makespan_ns = makespan.as_nanos();
        let per_gpu: Vec<GpuStats> = gpus
            .iter()
            .enumerate()
            .map(|(idx, g)| GpuStats {
                gpu: idx,
                capacity: g.capacity,
                peak_reserved_bytes: g.peak,
                mean_utilization: if makespan_ns == 0 {
                    0.0
                } else {
                    g.byte_ns as f64 / (g.capacity as f64 * makespan_ns as f64)
                },
                jobs_hosted: g.hosted,
            })
            .collect();
        ClusterStats {
            gpus: self.cfg.gpus,
            admission: self.cfg.admission.name().to_owned(),
            strategy: strategy.name().to_owned(),
            submitted: jobs.len(),
            completed: completed.len(),
            oom_rejections: jobs.iter().filter(|j| j.rejected).count(),
            midrun_oom_aborts: 0,
            makespan,
            aggregate_samples_per_sec: if makespan.as_secs_f64() == 0.0 {
                0.0
            } else {
                total_samples / makespan.as_secs_f64()
            },
            mean_queueing_delay,
            mean_jct,
            per_gpu,
            jobs: job_stats,
        }
    }
}

/// Schedules the end of `job`'s next iteration: recorded wall time (the
/// validation run's final wall repeats past its length) times the number
/// of jobs currently resident on the GPU.
fn schedule_iter(
    jobs: &[JobRun],
    gpus: &[GpuState],
    job: usize,
    now: Time,
    seq: &mut u64,
    heap: &mut BinaryHeap<Event>,
) {
    let j = &jobs[job];
    let gpu = j.gpu.expect("scheduled job has a GPU");
    let idx = (j.iters_done as usize).min(j.walls.len().saturating_sub(1));
    let wall = j.walls.get(idx).copied().unwrap_or(Duration::ZERO);
    let contention = gpus[gpu].resident.len().max(1) as f64;
    let end = now + wall.mul_f64(contention);
    heap.push(Reverse((end.as_nanos(), *seq, EV_ITER_END, job)));
    *seq += 1;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::{synthetic_jobs, JobPolicy};

    fn small_workload() -> Vec<JobSpec> {
        vec![
            JobSpec {
                name: "a".into(),
                model: capuchin_models::ModelKind::Vgg16,
                batch: 16,
                policy: JobPolicy::Capuchin,
                iters: 3,
                priority: 0,
                arrival_time: 0.0,
            },
            JobSpec {
                name: "b".into(),
                model: capuchin_models::ModelKind::ResNet50,
                batch: 16,
                policy: JobPolicy::TfOri,
                iters: 3,
                priority: 1,
                arrival_time: 0.1,
            },
        ]
    }

    #[test]
    fn small_workload_completes_on_one_gpu() {
        let cfg = ClusterConfig {
            gpus: 1,
            ..ClusterConfig::default()
        };
        let stats = Cluster::new(cfg).run(&small_workload());
        assert_eq!(stats.submitted, 2);
        assert_eq!(stats.completed, 2);
        assert_eq!(stats.oom_rejections, 0);
        assert_eq!(stats.midrun_oom_aborts, 0);
        assert!(stats.makespan > Duration::ZERO);
        assert!(stats.aggregate_samples_per_sec > 0.0);
        assert!(stats.per_gpu[0].peak_reserved_bytes > 0);
        assert!(stats.per_gpu[0].mean_utilization > 0.0);
    }

    #[test]
    fn same_seed_runs_are_byte_identical() {
        let jobs = synthetic_jobs(6, 1, 0.5);
        let a = Cluster::new(ClusterConfig::default()).run(&jobs).to_json();
        let b = Cluster::new(ClusterConfig::default()).run(&jobs).to_json();
        assert_eq!(a, b);
    }

    #[test]
    fn tf_ori_rejects_what_capuchin_shrinks() {
        // VGG16 @ 320 (ideal peak ≈ 19 GiB) oversubscribes a bare 16 GiB
        // device.
        let big = vec![JobSpec {
            name: "big".into(),
            model: capuchin_models::ModelKind::Vgg16,
            batch: 320,
            policy: JobPolicy::Capuchin,
            iters: 3,
            priority: 0,
            arrival_time: 0.0,
        }];
        let tf = Cluster::new(ClusterConfig {
            gpus: 1,
            admission: AdmissionMode::TfOri,
            ..ClusterConfig::default()
        })
        .run(&big);
        assert_eq!(tf.oom_rejections, 1, "{}", tf.to_json());
        let cap = Cluster::new(ClusterConfig {
            gpus: 1,
            admission: AdmissionMode::Capuchin,
            ..ClusterConfig::default()
        })
        .run(&big);
        assert_eq!(cap.completed, 1, "{}", cap.to_json());
        assert!(cap.jobs[0].shrunk);
        assert!(cap.jobs[0].reserved_bytes < cap.jobs[0].footprint_bytes);
    }
}
