//! The cluster simulation: N GPUs, one deterministic event clock.
//!
//! # Model
//!
//! * Each GPU is a byte-granular reservation ledger. A job holds one
//!   reservation *per replica* (granted at admission) for its entire
//!   stay; there is no mid-run growth, because Capuchin's plan keeps the
//!   footprint under the granted budget.
//! * A job with `gpus = k > 1` is a data-parallel **gang**: `k` replicas,
//!   each training `batch / k` samples, admitted to `k` GPUs atomically —
//!   all or none, never a partial gang. Admission measures the
//!   *per-replica* footprint (weights + activations at the replica
//!   batch) once and every replica gets the same grant. The gang iterates
//!   in lockstep: one barrier per iteration boundary, where gradients are
//!   allreduced before the next iteration starts.
//! * Job execution is replayed, not re-simulated: admission validates the
//!   granted budget with a real engine run and the cluster replays the
//!   recorded per-iteration wall times (and swap-byte volumes) on its own
//!   clock. When a job's validation run is shorter than the job, the
//!   final (steady-state) iteration repeats. An empty validation trace is
//!   a failed validation — replaying it would fabricate zero-time
//!   iterations.
//! * Co-located jobs slow each other down: an iteration in flight while
//!   `k` jobs are resident on the GPU progresses at `1/k` of its recorded
//!   pace (compute is time-sliced, memory is partitioned). A gang's
//!   factor is the *maximum* over its GPUs — the lockstep barrier waits
//!   for the slowest replica. Residency changes *re-price* every
//!   in-flight iteration: progress accrued so far is banked at the old
//!   factor and the remainder is rescaled to the new one, so bursty
//!   arrivals are charged honestly.
//! * With [`ClusterConfig::interconnect`] set, all cluster copy traffic
//!   routes over a shared fabric ([`capuchin_sim::Interconnect`]) instead
//!   of private per-job lanes: the *per-tensor transfer timeline* each
//!   iteration recorded during validation, gang gradient allreduces (ring
//!   schedule, `2·(k−1)/k × gradient bytes` per replica), and
//!   checkpoint/restore copies. Concurrent transfers queue on the
//!   finite-bandwidth links and stretch co-resident iterations. Swap
//!   replay re-issues each recorded transfer at its in-iteration offset
//!   and charges only the *deduplicated queueing delay* (the validated
//!   wall already contains the wire time, paid once on a private lane),
//!   so a job's `comm_delay` decomposes exactly into its per-tensor
//!   transfer records; a stretched prefetch accumulates a feedback lead
//!   that pulls its next replay earlier (the §4.4 in-trigger loop at
//!   cluster level). Allreduce — absent from single-GPU validation —
//!   charges its full span at the barrier.
//! * With [`ClusterConfig::preemption`] on, a high-effective-priority
//!   arrival that fits nowhere may preempt the lowest-priority resident
//!   job: the victim's state is checkpointed to the host (a copy of its
//!   whole reservation, from every replica), its reservations are
//!   released, and it re-enters the queue to resume later from the saved
//!   iteration (restore pays the host-to-device copy). Gangs are
//!   preempted whole or not at all — evicting one replica would stall the
//!   lockstep barrier forever. The interrupted iteration is discarded and
//!   redone on resume — the same boundary semantics as
//!   [`capuchin_executor::Engine::snapshot`].
//! * With [`ClusterConfig::elastic`] on, a waiting [`JobSpec::elastic`]
//!   job that fits nowhere at its full batch is admitted at a *reduced*
//!   batch: the cluster bisects the halving ladder
//!   ([`capuchin::elastic_batches`], floored at
//!   [`ClusterConfig::min_batch_fraction`]) for the largest batch some
//!   gang subset can host right now, reusing the footprint/validation
//!   caches keyed by replica batch. A reduced job trains *more
//!   iterations* so that total samples trained is preserved exactly
//!   (the final iteration carries a partial batch when the ladder does
//!   not divide evenly). At every completed-iteration boundary a reduced
//!   job checks whether freed headroom lets it re-grow toward the full
//!   batch; growing re-plans the engine at the new batch
//!   ([`capuchin_executor::Engine::restore_rebatched`]'s semantics), so
//!   the cluster charges the same device-to-host checkpoint plus
//!   host-to-device restore copies preemption models.
//! * Footprint measurement happens off the critical path (think: a
//!   profiling sidecar), so admission consumes no simulated time.
//!
//! # Determinism and gang atomicity
//!
//! Events are ordered by `(time, class, submission sequence)` — the
//! class ranks arrivals ahead of scheduled events at the same instant,
//! which makes the ordering independent of *when* a job was submitted:
//! the online API ([`Cluster::submit`]) interleaves a late submission
//! exactly where the batch loop (which pushes every arrival before any
//! scheduled event exists) would have processed it. All caches are
//! `BTreeMap`s; the waiting queue is a `BTreeMap` keyed by a monotone
//! entry sequence — queue-entry order (arrival, or checkpoint completion
//! for preempted jobs) with O(log n) keyed removal. Re-pricing and
//! preemption supersede scheduled iteration ends via a per-job epoch
//! counter — stale events are skipped on pop, never mutated in place.
//! Two runs over the same workload produce byte-identical stats JSON.
//!
//! Gang reservation cannot deadlock: the strategy returns the *complete*
//! GPU set for one job and the single-threaded event loop grants every
//! member in the same step. No gang ever holds a partial reservation
//! while waiting for the rest, so there is no hold-and-wait cycle — the
//! classic sort-by-gang-then-release protocol degenerates to a single
//! atomic grant.

use std::cmp::Reverse;
use std::collections::{BTreeMap, BTreeSet, BinaryHeap, VecDeque};
use std::sync::Arc;

use capuchin::{bisect_batch, elastic_batches, measure_footprint, measure_forward_footprint};
use capuchin_models::ModelKind;
use capuchin_sim::{
    CopyDir, DeviceSpec, Duration, Interconnect, InterconnectSpec, Time, TransferModel,
};

use crate::admission::{
    min_feasible_budget, Admission, AdmissionMode, AdmissionSource, JobNeeds, ReplayIter,
    ReplayTransfer,
};
use crate::headroom::GpuPool;
use crate::job::{JobClass, JobSpec, SplitMix64};
use crate::policy::CostClass;
use crate::predict::{key_of, FootprintPredictor, FootprintSample};
use crate::stats::{
    ClusterStats, ClusterTransfer, GpuStats, JobEvent, JobEventKind, JobOutcome, JobState,
    JobStats, JobStatus, STATS_SCHEMA_VERSION,
};
use crate::strategy::{
    aging_permille, effective_priority_permille, slo_boost_permille, CandidateJob, StrategyKind,
};

/// Cluster shape and scheduling knobs.
///
/// Construct with [`ClusterConfig::builder`] (which validates every knob
/// and returns [`ConfigError`] on nonsense) or take
/// [`ClusterConfig::default`]. The struct is `#[non_exhaustive]`, so
/// downstream crates cannot assemble it field-by-field and silently skip
/// validation when a new knob appears.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct ClusterConfig {
    /// Number of identical GPUs.
    pub gpus: usize,
    /// Device model for every GPU.
    pub spec: DeviceSpec,
    /// Admission mode.
    pub admission: AdmissionMode,
    /// Placement strategy.
    pub strategy: StrategyKind,
    /// Priority-aging rate for best-fit placement (points per waiting
    /// second).
    pub aging_rate: f64,
    /// Engine iterations per admission validation run (clamped to the
    /// job's own iteration count; at least 2 so Capuchin completes
    /// measured execution).
    pub validate_iters: u64,
    /// Allow checkpoint-preemption: a waiting job whose effective
    /// priority exceeds a resident job's static priority may evict it
    /// through a host-side checkpoint when no GPU set has headroom.
    pub preemption: bool,
    /// Shared-interconnect model. `None` keeps the legacy behavior —
    /// every job owns a private PCIe lane, copies never contend, and
    /// allreduce is free — and reproduces pre-interconnect timings
    /// exactly.
    pub interconnect: Option<InterconnectSpec>,
    /// Elastic re-batching: admit a waiting [`JobSpec::elastic`] job at a
    /// reduced batch when nothing fits at the full batch, and re-grow
    /// resident reduced jobs at completed-iteration boundaries when
    /// headroom frees up. Total samples trained is always preserved — the
    /// iteration count extends to cover `batch × iters` samples.
    pub elastic: bool,
    /// Floor of the elastic batch ladder as a fraction of the requested
    /// batch, in `(0, 1]`: `0.25` means a job never shrinks below a
    /// quarter of its submitted batch. Ignored with `elastic` off.
    pub min_batch_fraction: f64,
    /// SLO-aware scheduling: boost a waiting inference job's effective
    /// priority by the fraction of its latency SLO the oldest pending
    /// request has burned ([`crate::strategy::slo_boost_permille`]), in
    /// placement ranking and preemption alike. `false` is the SLO-blind
    /// baseline the `cluster_mixed` bench compares against; it changes
    /// nothing for training-only workloads (their boost is always 0).
    pub slo_aware: bool,
    /// Predictive admission: once a `(model family, policy, class)` key
    /// has [`ClusterConfig::min_samples`] completed measured runs, admit
    /// on the regression store's prediction scaled by
    /// [`ClusterConfig::safety_margin_permille`] — zero measuring and
    /// zero validation-engine runs. Cold keys fall back to measured
    /// admission (and their completions warm the store); an
    /// under-shooting prediction is caught at the job's first completed
    /// iteration boundary and recovered by checkpoint-preempting the job
    /// back through the measured path. Off by default; with it off, no
    /// predictor code path runs and stats are byte-identical to the
    /// pre-predictor scheduler.
    pub predictive: bool,
    /// Multiplier applied to predicted *budget* targets (full and
    /// minimum reservation), in permille: 1150 reserves 15% above the
    /// raw prediction. Must be in `[1000, 10000]` — a prediction is
    /// never scaled down. Ignored with `predictive` off.
    pub safety_margin_permille: u64,
    /// Completed measured runs a predictor key needs before its
    /// predictions are served (at least 1). Ignored with `predictive`
    /// off.
    pub min_samples: u64,
}

impl Default for ClusterConfig {
    fn default() -> ClusterConfig {
        ClusterConfig {
            gpus: 4,
            spec: DeviceSpec::p100_pcie3(),
            admission: AdmissionMode::Capuchin,
            strategy: StrategyKind::FifoFirstFit,
            aging_rate: 0.1,
            validate_iters: 6,
            preemption: false,
            interconnect: None,
            elastic: false,
            min_batch_fraction: 0.25,
            slo_aware: true,
            predictive: false,
            safety_margin_permille: 1150,
            min_samples: 3,
        }
    }
}

impl ClusterConfig {
    /// Starts a builder seeded with the default configuration.
    pub fn builder() -> ClusterConfigBuilder {
        ClusterConfigBuilder {
            cfg: ClusterConfig::default(),
        }
    }
}

/// Why [`ClusterConfigBuilder::build`] refused a configuration.
#[derive(Debug, Clone, PartialEq)]
pub enum ConfigError {
    /// A cluster needs at least one GPU.
    NoGpus,
    /// The priority-aging rate must be finite and non-negative.
    BadAgingRate(f64),
    /// Validation runs need at least 2 iterations: Capuchin must complete
    /// measured execution before a guided iteration exists to record.
    TooFewValidateIters(u64),
    /// The elastic batch floor must be a fraction in `(0, 1]`.
    BadBatchFraction(f64),
    /// The prediction safety margin must be in `[1000, 10000]` permille —
    /// predicted budgets are padded, never shaved.
    BadSafetyMargin(u64),
    /// The predictor needs at least one completed sample per key before
    /// it can fit anything.
    BadMinSamples(u64),
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::NoGpus => write!(f, "cluster needs at least 1 GPU"),
            ConfigError::BadAgingRate(r) => {
                write!(f, "aging rate {r} must be finite and >= 0")
            }
            ConfigError::TooFewValidateIters(n) => write!(
                f,
                "validation needs at least 2 iterations, got {n} \
                 (Capuchin records guided iterations only after measured execution)"
            ),
            ConfigError::BadBatchFraction(frac) => {
                write!(f, "min batch fraction {frac} must be in (0, 1]")
            }
            ConfigError::BadSafetyMargin(m) => write!(
                f,
                "safety margin {m} permille must be in [1000, 10000] \
                 (predictions are padded, never shaved)"
            ),
            ConfigError::BadMinSamples(n) => {
                write!(f, "predictor min samples {n} must be at least 1")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// Validating builder for [`ClusterConfig`]; every setter overrides one
/// default, and [`ClusterConfigBuilder::build`] checks the whole
/// combination at once.
#[derive(Debug, Clone)]
pub struct ClusterConfigBuilder {
    cfg: ClusterConfig,
}

impl ClusterConfigBuilder {
    /// Number of identical GPUs.
    pub fn gpus(mut self, gpus: usize) -> Self {
        self.cfg.gpus = gpus;
        self
    }

    /// Device model for every GPU.
    pub fn spec(mut self, spec: DeviceSpec) -> Self {
        self.cfg.spec = spec;
        self
    }

    /// Admission mode.
    pub fn admission(mut self, admission: AdmissionMode) -> Self {
        self.cfg.admission = admission;
        self
    }

    /// Placement strategy.
    pub fn strategy(mut self, strategy: StrategyKind) -> Self {
        self.cfg.strategy = strategy;
        self
    }

    /// Priority-aging rate for best-fit placement.
    pub fn aging_rate(mut self, aging_rate: f64) -> Self {
        self.cfg.aging_rate = aging_rate;
        self
    }

    /// Engine iterations per admission validation run.
    pub fn validate_iters(mut self, validate_iters: u64) -> Self {
        self.cfg.validate_iters = validate_iters;
        self
    }

    /// Allow checkpoint-preemption.
    pub fn preemption(mut self, preemption: bool) -> Self {
        self.cfg.preemption = preemption;
        self
    }

    /// Shared-interconnect model (`None` = private lanes).
    pub fn interconnect(mut self, interconnect: Option<InterconnectSpec>) -> Self {
        self.cfg.interconnect = interconnect;
        self
    }

    /// Elastic re-batching on/off.
    pub fn elastic(mut self, elastic: bool) -> Self {
        self.cfg.elastic = elastic;
        self
    }

    /// Floor of the elastic batch ladder, as a fraction in `(0, 1]`.
    pub fn min_batch_fraction(mut self, min_batch_fraction: f64) -> Self {
        self.cfg.min_batch_fraction = min_batch_fraction;
        self
    }

    /// SLO-aware scheduling on/off (`false` = SLO-blind baseline).
    pub fn slo_aware(mut self, slo_aware: bool) -> Self {
        self.cfg.slo_aware = slo_aware;
        self
    }

    /// Predictive admission on/off.
    pub fn predictive(mut self, predictive: bool) -> Self {
        self.cfg.predictive = predictive;
        self
    }

    /// Safety margin applied to predicted budgets, in permille
    /// (`[1000, 10000]`).
    pub fn safety_margin_permille(mut self, safety_margin_permille: u64) -> Self {
        self.cfg.safety_margin_permille = safety_margin_permille;
        self
    }

    /// Completed samples a predictor key needs before predictions are
    /// served (at least 1).
    pub fn min_samples(mut self, min_samples: u64) -> Self {
        self.cfg.min_samples = min_samples;
        self
    }

    /// Validates the combination and produces the configuration.
    ///
    /// # Errors
    ///
    /// [`ConfigError`] naming the first out-of-range knob.
    pub fn build(self) -> Result<ClusterConfig, ConfigError> {
        let cfg = self.cfg;
        if cfg.gpus == 0 {
            return Err(ConfigError::NoGpus);
        }
        if !cfg.aging_rate.is_finite() || cfg.aging_rate < 0.0 {
            return Err(ConfigError::BadAgingRate(cfg.aging_rate));
        }
        if cfg.validate_iters < 2 {
            return Err(ConfigError::TooFewValidateIters(cfg.validate_iters));
        }
        if !cfg.min_batch_fraction.is_finite()
            || cfg.min_batch_fraction <= 0.0
            || cfg.min_batch_fraction > 1.0
        {
            return Err(ConfigError::BadBatchFraction(cfg.min_batch_fraction));
        }
        if !(1000..=10000).contains(&cfg.safety_margin_permille) {
            return Err(ConfigError::BadSafetyMargin(cfg.safety_margin_permille));
        }
        if cfg.min_samples == 0 {
            return Err(ConfigError::BadMinSamples(cfg.min_samples));
        }
        Ok(cfg)
    }
}

/// Host-side checkpoint of a preempted job: everything the cluster needs
/// to resume the replay on any GPU set. This is the replay-level mirror
/// of [`capuchin_executor::EngineSnapshot`] — the iteration cursor plus
/// the validated per-iteration replay trace and the budget it was
/// validated at.
#[derive(Debug, Clone)]
struct Checkpoint {
    /// Completed iterations: the resume point. The interrupted iteration
    /// was discarded and is redone after restore.
    iters_done: u64,
    /// Per-replica reservation the replay was validated at; resume
    /// regrants exactly this on every replica, so no re-validation is
    /// needed.
    reserved: u64,
    /// Whether that reservation was a shrunk grant.
    shrunk: bool,
    /// Validated per-iteration replay trace (shared with the validation
    /// cache — checkpointing never copies the trace).
    replay: Arc<Vec<ReplayIter>>,
    /// Global batch in effect when the checkpoint was taken (may be an
    /// elastically reduced batch).
    cur_batch: usize,
    /// Samples trained as of the checkpoint; resume continues the count.
    samples_done: u64,
}

/// An in-flight elastic batch change: decided at a completed-iteration
/// boundary, applied when the checkpoint + restore copies drain
/// (`EV_REGROW`). The new reservation is claimed immediately so the copy
/// window cannot over-commit; the replay swap happens at the event.
#[derive(Debug, Clone)]
struct Regrow {
    /// The new global batch.
    batch: usize,
    /// Whether the new grant is below the new batch's ideal peak.
    shrunk: bool,
    /// Validated replay trace at the new batch and grant.
    replay: Arc<Vec<ReplayIter>>,
}

/// Per-job simulation state.
#[derive(Debug)]
struct JobRun {
    spec: JobSpec,
    arrival: Time,
    /// When the job (re-)entered the waiting queue: arrival for fresh
    /// jobs, checkpoint completion for preempted ones. Priority aging and
    /// FIFO order run from here, so a preempted job does not return with
    /// an inflated age and immediately reclaim its slot.
    queued_at: Time,
    needs: JobNeeds,
    footprint: u64,
    /// Gradient bytes per replica (the model's weight bytes), allreduced
    /// at every gang barrier.
    grad_bytes: u64,
    /// Largest budget a validation run failed at, keyed by the global
    /// batch it was attempted at (elastic jobs validate at several
    /// batches); never retried at or below the recorded budget.
    failed: BTreeMap<usize, u64>,
    rejected: bool,
    /// Replay became impossible mid-run (empty replay trace): the job was
    /// evicted and counted as a mid-run abort.
    aborted: bool,
    /// Cancelled through the online API ([`Cluster::cancel`]). Events
    /// already in the heap are dead: the arrival by this flag, scheduled
    /// events by the epoch bump taken at cancel time.
    cancelled: bool,
    /// GPUs currently held — the whole gang, in placement order. Kept
    /// after completion for stats; cleared on preemption and abort.
    /// Always empty or exactly `spec.gpus` long: grants are atomic.
    gpus_held: Vec<usize>,
    /// Per-replica reservation (same bytes on every held GPU).
    reserved: u64,
    shrunk: bool,
    admitted_at: Option<Time>,
    finished_at: Option<Time>,
    replay: Arc<Vec<ReplayIter>>,
    iters_done: u64,
    /// Key of this job's entry in [`Session::pending`] while queued.
    queue_key: Option<u64>,
    /// Cached minimum of `needs.min` over the job's whole elastic ladder:
    /// when even this exceeds the best headroom anywhere, the elastic
    /// pass skips the job without probing a single rung.
    ladder_floor_min: Option<u64>,
    /// Global batch currently in effect: `spec.batch` unless elastic
    /// re-batching reduced it (and has not yet grown it back).
    cur_batch: usize,
    /// Samples the job must train in total: `spec.batch × spec.iters`.
    /// Elastic batch changes never alter this — only how many iterations
    /// it takes.
    samples_total: u64,
    /// Samples trained so far (each completed iteration advances by
    /// `cur_batch`, clamped so the final iteration carries a partial
    /// batch when the ladder does not divide evenly).
    samples_done: u64,
    /// Elastic batch changes: the admission-time shrink plus every mid-run
    /// re-grow (or re-shrink on resume).
    rebatches: u64,
    /// When the current reduced-batch period started; `None` while the
    /// job runs at its full batch (or is checkpointed out — the clock
    /// pauses during preemption).
    reduced_since: Option<Time>,
    /// Accumulated wall time spent training below the requested batch.
    elastic_reduced_time: Duration,
    /// A decided batch change waiting for its copies to drain.
    pending_regrow: Option<Regrow>,
    /// Bumped whenever scheduled events for this job become stale
    /// (re-pricing, preemption, abort); events carry the epoch they were
    /// scheduled under and are skipped on mismatch.
    epoch: u64,
    /// An iteration's compute is in flight (false while the gang barrier
    /// communicates, checkpoints or restores).
    iterating: bool,
    /// Base (1×) wall of the in-flight iteration.
    iter_wall: Duration,
    /// Contention factor in effect since `iter_priced_at`.
    iter_k: f64,
    /// When the in-flight iteration started (for wasted-work accounting).
    iter_started: Time,
    /// Last re-pricing instant.
    iter_priced_at: Time,
    /// Fraction of the base wall completed as of `iter_priced_at`.
    iter_progress: f64,
    /// A checkpoint copy is draining (EV_PREEMPT scheduled).
    preempting: bool,
    checkpoint: Option<Checkpoint>,
    /// When the live checkpoint completed (cleared on resume).
    preempted_at: Option<Time>,
    preemptions: u64,
    wasted_work: Duration,
    resume_latency: Duration,
    /// Total checkpoint + restore copy time charged to the job.
    checkpoint_overhead: Duration,
    /// Total allreduce time charged at gang barriers.
    allreduce_time: Duration,
    /// Queueing delay behind other jobs' traffic on the shared fabric.
    comm_delay: Duration,
    /// Per-label feedback lead for replayed prefetches (paper §4.4 during
    /// guided replay): a prefetch that came back stretched on the shared
    /// fabric wants the lane `lead` earlier on later iterations. Ordered
    /// for deterministic iteration.
    lead: BTreeMap<String, Duration>,
    /// Inference: deterministic per-job generator for request
    /// inter-arrival jitter, seeded from the submission index.
    req_rng: SplitMix64,
    /// Inference: request arrivals scheduled so far (arrival `i` schedules
    /// arrival `i + 1` until `spec.requests` have been generated).
    req_scheduled: u64,
    /// Inference: arrival instants of requests waiting to enter a serving
    /// round, oldest first.
    req_queue: VecDeque<Time>,
    /// Inference: arrival instants of the requests in the in-flight
    /// serving round (each holds `kv_bytes_per_request` on every held
    /// GPU until the round drains).
    inflight: Vec<Time>,
    /// Inference: the round concurrency the admission grant priced in —
    /// `min(max_inflight, (grant − base budget) / kv)`. Serving itself is
    /// gated on live headroom up to `max_inflight`, so memory freed after
    /// admission raises the achievable concurrency past this license.
    lic_inflight: usize,
    /// Inference: base needs (forward-only, before KV pricing), cached at
    /// arrival so admission can recover the KV-free budget split.
    base_needs: JobNeeds,
    /// Inference: per-request served latencies in integer nanoseconds,
    /// accumulated for the percentile stats (sorted only at stats time).
    latencies: Vec<u64>,
    /// Inference: requests served so far.
    requests_served: u64,
    /// Inference: served requests that exceeded the SLO.
    slo_misses: u64,
    /// Inference: the SLO in integer nanoseconds (0 for training).
    slo_ns: u64,
    /// Kernel time spent regenerating released tensors, summed over the
    /// replay iterations consumed (integer nanoseconds inside
    /// [`Duration`]; floats only appear at serialization).
    recompute_time: Duration,
    /// Reactive evictions summed over the replay iterations consumed.
    evictions: u64,
    /// Validation engine runs this job triggered at admission (cache
    /// hits charge nothing; heuristic-class policies stay at zero by
    /// construction).
    admission_validations: u64,
    /// Training: mid-run shrinks performed to absorb an inference burst.
    burst_shrinks: u64,
    /// Training: currently running reduced specifically for a burst; the
    /// next re-grow closes the cycle.
    shrunk_for_burst: bool,
    /// Training: a burst-absorption shrink decided by the scheduler,
    /// applied at the job's next completed-iteration boundary (target
    /// global batch, one ladder rung below the current one).
    pending_shrink: Option<usize>,
    /// Where this job's current admission budgets came from. Flips back
    /// to `Measured` when a mispredict recovery re-admits the job, or
    /// when the elastic pass re-derives (and engine-validates) budgets
    /// at a reduced batch.
    admission_source: AdmissionSource,
    /// Margin-padded predicted full reservation (the budget the job was
    /// actually admitted on); 0 for non-predicted admissions.
    predicted_bytes: u64,
    /// Raw (pre-margin) predicted full reservation, kept for the
    /// first-boundary error measurement; 0 for non-predicted admissions.
    predicted_raw_full: u64,
    /// `|raw prediction − measured truth| × 1000 / truth` for the full
    /// reservation, recorded when the first-boundary check runs.
    prediction_error_permille: u64,
    /// Times an under-shooting prediction forced a checkpoint-preempt
    /// and measured re-admission.
    mispredict_recoveries: u64,
    /// The first-boundary truth check already ran (predicted admissions
    /// run it exactly once).
    mispredict_checked: bool,
}

impl JobRun {
    fn new(spec: &JobSpec, id: usize) -> JobRun {
        let arrival = Time::ZERO + Duration::from_secs_f64(spec.arrival_time.max(0.0));
        let samples_total = if spec.is_inference() {
            spec.requests
        } else {
            (spec.batch.max(1) as u64).saturating_mul(spec.iters)
        };
        JobRun {
            slo_ns: spec.slo_nanos(),
            spec: spec.clone(),
            arrival,
            queued_at: arrival,
            needs: JobNeeds { full: 0, min: 0 },
            footprint: 0,
            grad_bytes: 0,
            failed: BTreeMap::new(),
            rejected: false,
            aborted: false,
            cancelled: false,
            gpus_held: Vec::new(),
            reserved: 0,
            shrunk: false,
            admitted_at: None,
            finished_at: None,
            replay: Arc::new(Vec::new()),
            iters_done: 0,
            queue_key: None,
            ladder_floor_min: None,
            cur_batch: spec.batch.max(1),
            samples_total,
            samples_done: 0,
            rebatches: 0,
            reduced_since: None,
            elastic_reduced_time: Duration::ZERO,
            pending_regrow: None,
            epoch: 0,
            iterating: false,
            iter_wall: Duration::ZERO,
            iter_k: 1.0,
            iter_started: Time::ZERO,
            iter_priced_at: Time::ZERO,
            iter_progress: 0.0,
            preempting: false,
            checkpoint: None,
            preempted_at: None,
            preemptions: 0,
            wasted_work: Duration::ZERO,
            resume_latency: Duration::ZERO,
            checkpoint_overhead: Duration::ZERO,
            allreduce_time: Duration::ZERO,
            comm_delay: Duration::ZERO,
            lead: BTreeMap::new(),
            // Mixing in a large odd constant decorrelates consecutive
            // submission indices through splitmix's finalizer.
            req_rng: SplitMix64::new((id as u64).wrapping_mul(0xA076_1D64_78BD_642F) ^ 0x5EED),
            req_scheduled: 0,
            req_queue: VecDeque::new(),
            inflight: Vec::new(),
            lic_inflight: 0,
            base_needs: JobNeeds { full: 0, min: 0 },
            latencies: Vec::new(),
            requests_served: 0,
            slo_misses: 0,
            recompute_time: Duration::ZERO,
            evictions: 0,
            admission_validations: 0,
            burst_shrinks: 0,
            shrunk_for_burst: false,
            pending_shrink: None,
            admission_source: AdmissionSource::Measured,
            predicted_bytes: 0,
            predicted_raw_full: 0,
            prediction_error_permille: 0,
            mispredict_recoveries: 0,
            mispredict_checked: false,
        }
    }

    /// The gang width (defensively at least 1).
    fn width(&self) -> usize {
        self.spec.gpus.max(1)
    }

    /// The strategy's view of this waiting job. A checkpointed job asks
    /// for exactly its validated reservation back — no re-validation, no
    /// shrink search.
    fn candidate(&self, idx: usize) -> CandidateJob {
        match &self.checkpoint {
            Some(cp) => CandidateJob {
                job: idx,
                arrival: self.queued_at,
                priority: self.spec.priority,
                gpus: self.width(),
                full_need: cp.reserved,
                min_need: cp.reserved,
                failed_budget: None,
                boost_permille: 0,
            },
            None => CandidateJob {
                job: idx,
                arrival: self.queued_at,
                priority: self.spec.priority,
                gpus: self.width(),
                full_need: self.needs.full,
                min_need: self.needs.min,
                failed_budget: self.failed.get(&self.spec.batch).copied(),
                boost_permille: 0,
            },
        }
    }

    /// SLO-slack priority boost of a *waiting* inference job, from the
    /// age of its oldest pending request. 0 for training jobs, under
    /// SLO-blind scheduling, and while no request waits — so it can never
    /// perturb a training-only run. The boost is read at settle/preempt
    /// time (not baked into the queue), so it grows as requests age
    /// without re-keying anything.
    fn slo_boost(&self, now: Time, slo_aware: bool) -> u64 {
        if !slo_aware || self.slo_ns == 0 {
            return 0;
        }
        match self.req_queue.front() {
            Some(&t) => slo_boost_permille(self.slo_ns, now.saturating_since(t).as_nanos()),
            None => 0,
        }
    }
}

/// Per-GPU reservation ledger with a byte-time integral for utilization.
#[derive(Debug)]
struct GpuState {
    capacity: u64,
    reserved: u64,
    resident: Vec<usize>,
    peak: u64,
    byte_ns: u128,
    last_touch: Time,
    hosted: usize,
}

impl GpuState {
    fn new(capacity: u64) -> GpuState {
        GpuState {
            capacity,
            reserved: 0,
            resident: Vec::new(),
            peak: 0,
            byte_ns: 0,
            last_touch: Time::ZERO,
            hosted: 0,
        }
    }

    /// Accumulates the byte-time integral up to `now`.
    fn touch(&mut self, now: Time) {
        let span = now.saturating_since(self.last_touch).as_nanos() as u128;
        self.byte_ns += self.reserved as u128 * span;
        self.last_touch = now;
    }
}

/// Removes `job` from a GPU's resident list by position (one find + one
/// shift instead of a full `retain` rewrite). Order is preserved —
/// re-pricing iterates residents in placement order, and reordering them
/// would drift event sequence numbers and the stats JSON.
fn remove_resident(g: &mut GpuState, job: usize) {
    if let Some(pos) = g.resident.iter().position(|&r| r == job) {
        g.resident.remove(pos);
    }
}

const EV_ARRIVE: u8 = 0;
const EV_ITER_END: u8 = 1;
/// A preemption's device-to-host checkpoint copy drained: release the
/// reservations and re-enqueue the victim.
const EV_PREEMPT: u8 = 2;
/// A resume's host-to-device restore copy drained: the job starts
/// iterating again from its saved cursor.
const EV_RESUME: u8 = 3;
/// The iteration-boundary communication (swap-replay queueing and/or the
/// gang's gradient allreduce) drained: the iteration is truly complete.
const EV_COMM: u8 = 4;
/// An elastic batch change's checkpoint + restore copies drained: the new
/// replay takes effect and the job iterates at the new batch.
const EV_REGROW: u8 = 5;
/// An inference request arrived. Carries epoch 0 and — like `EV_ARRIVE` —
/// ignores the job's epoch: request arrivals are an external process, so
/// re-pricing or repreemption epoch bumps must not silently drop them.
/// Staleness is the job's terminal/cancelled state instead.
const EV_REQ_ARRIVE: u8 = 6;
/// A mispredict recovery's device-to-host checkpoint copy drained: the
/// job's predicted grant under-shot the verified truth, so it drops its
/// predicted state entirely and re-enters the queue with measured
/// budgets (unlike `EV_PREEMPT`, no checkpoint is kept — resuming one
/// would regrant the insufficient budget verbatim).
const EV_REMEASURE: u8 = 7;

/// Event queue entry: `(time ns, class, sequence, kind, job, epoch)`
/// under `Reverse` for min-heap order. The class ranks arrivals (0)
/// ahead of scheduled events (1) at the same instant, so an online
/// [`Cluster::submit`] — whose arrival necessarily draws a later
/// sequence number than events already in flight — processes exactly
/// where the batch loop (which pushes every arrival before any
/// scheduled event exists) would have ordered it. The sequence number
/// breaks the remaining ties deterministically; the epoch invalidates
/// events superseded by re-pricing or preemption.
type Event = Reverse<(u64, u8, u64, u8, usize, u64)>;

/// Builds an [`Event`], deriving the arrival-first class rank from the
/// kind.
fn ev(t: Time, seq: u64, kind: u8, job: usize, epoch: u64) -> Event {
    let class = u8::from(kind != EV_ARRIVE);
    Reverse((t.as_nanos(), class, seq, kind, job, epoch))
}

/// A job's replay trace is empty — replaying it would fabricate zero-time
/// iterations (and an infinitely fast job).
#[derive(Debug, PartialEq, Eq)]
struct EmptyWalls;

/// Validation-cache key: `(model, replica batch, budget, policy, shrunk,
/// iters, forward-only)`. Keyed by the *replica* batch, so a 4-GPU gang
/// at batch 128 shares the cache entry with a single-GPU job at batch 32;
/// the trailing flag separates inference validations (which run the
/// forward prefix only) from training ones at the same shape. The model
/// is the interned [`ModelKind`] — probing the cache allocates nothing.
type ValidationKey = (ModelKind, usize, u64, &'static str, bool, u64, bool);

/// The slice of a measuring run the scheduler keeps per `(model, replica
/// batch)`: the two footprint numbers stats report. The full
/// [`capuchin::FootprintEstimate`] drags the whole measured access
/// profile along and is dropped once admission needs are derived.
#[derive(Debug, Clone, Copy)]
struct EstimateSummary {
    /// Peak live memory an unlimited device holds.
    ideal_peak: u64,
    /// Persistent weight bytes (the gang's gradient payload).
    weight_bytes: u64,
    /// Wall time of the unconstrained measuring iteration — the base an
    /// unvalidated (heuristic-class) admission synthesizes its replay
    /// from.
    iter_wall: Duration,
}

/// Measured truth for mispredict verification, cached per `(model,
/// replica batch, forward-only)` shape: one unconstrained measuring run
/// plus planner math — **no validation engine runs**, which is what
/// keeps the warm-key zero-validation guarantee intact even while every
/// predicted admission is checked.
#[derive(Debug, Clone, Copy)]
struct VerifiedTruth {
    /// Peak live memory of the unconstrained measuring run.
    ideal_peak: u64,
    /// Smallest planner-feasible budget ([`min_feasible_budget`]) — the
    /// floor a shrunk Capuchin grant must clear.
    min_plan: u64,
}

/// What the footprint predictor said about one predictable arrival.
enum PredictorOutcome {
    /// Warm key: the arrival was admitted on the prediction.
    Hit,
    /// Cold key: the arrival fell back to measured admission.
    Miss,
    /// The predictor was not consulted (predictive off, heuristic-class
    /// policy, or a non-predictable registry row).
    NotConsulted,
}

/// Provenance half of an admission decision, bundled with the budgets by
/// [`Cluster::admission_estimate`] — the internal mirror of the public
/// [`AdmissionDecision`] before validation charging is known.
struct AdmissionDecisionParts {
    /// Where the budgets came from.
    source: AdmissionSource,
    /// Hit/miss accounting for the cluster-level predictor counters.
    outcome: PredictorOutcome,
    /// Pre-margin predicted full need (0 unless `source` is
    /// [`AdmissionSource::Predicted`]) — kept for
    /// `prediction_error_permille`, which scores the regression, not the
    /// safety padding.
    raw_full: u64,
}

/// Memoization key for one elastic-ladder placement probe: `(gang width,
/// full need, min need, failed budget)` — every input of a
/// single-candidate [`crate::PlacementStrategy::pick`] besides the pool
/// state itself, which is pinned by [`GpuPool::generation`].
type LadderKey = (usize, u64, u64, Option<u64>);

/// Handle for a submitted job: its submission index, stable for the
/// lifetime of the run and equal to the index of the job's entry in
/// [`ClusterStats::jobs`].
pub type JobId = usize;

/// Why [`Cluster::cancel`] refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CancelError {
    /// No job with this id was ever submitted.
    UnknownJob(JobId),
    /// The job already reached a terminal state (completed, rejected,
    /// aborted, or cancelled); there is nothing left to cancel.
    Terminal(JobId),
}

impl std::fmt::Display for CancelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CancelError::UnknownJob(id) => write!(f, "job {id} was never submitted"),
            CancelError::Terminal(id) => {
                write!(f, "job {id} already reached a terminal state")
            }
        }
    }
}

impl std::error::Error for CancelError {}

/// All mutable state of one simulation run: the event heap and clock,
/// per-job and per-GPU state, the waiting queue, and the side-channel
/// logs. [`Cluster::reset`] swaps in a fresh one; the admission caches
/// live on [`Cluster`] itself and survive across runs (they memoize pure
/// functions of the spec, so reuse cannot perturb determinism).
#[derive(Debug)]
struct Session {
    seq: u64,
    heap: BinaryHeap<Event>,
    jobs: Vec<JobRun>,
    gpus: Vec<GpuState>,
    fabric: Option<Interconnect>,
    /// Headroom index mirroring `gpus[i].reserved`; every reservation
    /// change goes through [`Session::reserve_on`]/[`Session::release_on`]
    /// so the two can never disagree.
    pool: GpuPool,
    /// Waiting queue in queue-entry order (arrival, or checkpoint
    /// completion for preempted jobs), keyed by a monotone entry
    /// sequence for O(log n) keyed removal.
    pending: BTreeMap<u64, usize>,
    /// Next queue-entry key.
    queue_seq: u64,
    /// Bumped on every queue mutation (entry, removal, or a failed-budget
    /// record that changes a waiting candidate).
    queue_gen: u64,
    /// Waiting candidates indexed by `(fit threshold, queue key)`
    /// (candidates whose threshold is `None` can never fit and are
    /// excluded). Two roles: its first key is the queue's *fit floor* —
    /// while every device's headroom sits below it, the placement pass
    /// provably picks nothing and settle skips it in O(1) — and for
    /// order-insensitive strategies a range query feeds `pick` exactly
    /// the candidates whose threshold clears the best headroom, instead
    /// of scanning the whole backlog per probe.
    by_threshold: BTreeMap<(u64, u64), usize>,
    /// Waiting elastic jobs (no checkpoint) in queue-entry order — the
    /// elastic pass walks this instead of filtering the whole queue.
    pending_elastic: BTreeMap<u64, usize>,
    /// Multiset of known ladder floors ([`JobRun::ladder_floor_min`])
    /// over the waiting elastic jobs: the elastic-pass analogue of
    /// `fit_thresholds` (no rung of any waiting ladder fits below its
    /// floor, so the pass skips in O(1) while headroom stays under the
    /// smallest floor).
    elastic_floors: BTreeMap<u64, usize>,
    /// Waiting elastic jobs whose ladder floor is not yet measured; the
    /// elastic pass cannot be skipped while any remain.
    elastic_unfloored: usize,
    /// `(pool generation, queue generation)` at the end of the last
    /// settle pass. While both are unchanged, re-running placement and
    /// the elastic pass provably picks nothing (a `None` pick depends
    /// only on queue contents and headroom, never on the clock), so
    /// settle skips them.
    settled_at: Option<(u64, u64)>,
    /// Pool generation [`Session::ladder_probes`] is valid at.
    ladder_gen: u64,
    /// Memoized elastic-ladder placement probes: two waiting jobs with
    /// the same replica needs share one strategy probe per generation.
    ladder_probes: BTreeMap<LadderKey, Option<Vec<usize>>>,
    /// Jobs currently holding reservations — the preemption victim scan
    /// iterates this instead of every job ever submitted.
    resident_jobs: BTreeSet<usize>,
    /// Jobs with a preemption checkpoint copy in flight (the old
    /// `any(|j| j.preempting)` scan, maintained incrementally).
    preempting: usize,
    /// Unified transfer trace (the [`Cluster::run_traced`] side-channel),
    /// drained by [`Cluster::take_transfers`].
    transfers: Vec<ClusterTransfer>,
    /// Lifecycle event log in occurrence order (the `capuchin-serve`
    /// side-channel), drained by [`Cluster::take_events`].
    events: Vec<JobEvent>,
    /// The clock: the last processed event time or the last
    /// [`Cluster::advance_to`] deadline, whichever is later. Online
    /// submissions arriving "in the past" are clamped to it.
    now: Time,
    /// Any inference job was ever submitted this session. While false,
    /// the settle pass skips the inference serving loop entirely — a
    /// training-only run executes the exact pre-inference code path.
    has_inference: bool,
    /// Completed burst-absorption cycles: a training job shrank to
    /// absorb an inference burst and later re-grew (cluster-wide).
    burst_cycles: u64,
    /// Predicted admissions this session: arrivals whose budgets came
    /// from a warm predictor key (predictive mode only).
    predictor_hits: u64,
    /// Predictable arrivals that fell back to measured admission because
    /// their key was still cold (predictive mode only).
    predictor_misses: u64,
}

impl Session {
    fn new(cfg: &ClusterConfig) -> Session {
        let fabric = cfg
            .interconnect
            .clone()
            .map(|spec| Interconnect::new(spec, cfg.gpus));
        let domain_of: Vec<usize> = match &fabric {
            Some(f) => (0..cfg.gpus).map(|g| f.spec().domain_of(g)).collect(),
            // Without a fabric every device is its own link domain.
            None => (0..cfg.gpus).collect(),
        };
        Session {
            gpus: (0..cfg.gpus)
                .map(|_| GpuState::new(cfg.spec.memory_bytes))
                .collect(),
            pool: GpuPool::new(vec![cfg.spec.memory_bytes; cfg.gpus], domain_of),
            fabric,
            ..Session::default()
        }
    }

    /// Appends a job to the waiting queue, in queue-entry order. The fit
    /// floor and elastic bookkeeping pick the job up here; any later
    /// change to its candidate (a failed-budget record) or its ladder
    /// floor adjusts the multisets at the mutation site, so the state
    /// removed by [`Session::dequeue`] always matches what was inserted.
    fn enqueue(&mut self, job: usize) {
        let key = self.queue_seq;
        self.queue_seq += 1;
        let j = &self.jobs[job];
        let threshold = j.candidate(job).fit_threshold();
        // Inference jobs never re-batch (parse-time validation rejects
        // the combination; code-built specs get the same verdict here).
        let elastic = j.spec.elastic && !j.spec.is_inference() && j.checkpoint.is_none();
        let floor = j.ladder_floor_min;
        self.jobs[job].queue_key = Some(key);
        self.pending.insert(key, job);
        if let Some(t) = threshold {
            self.by_threshold.insert((t, key), job);
        }
        if elastic {
            self.pending_elastic.insert(key, job);
            match floor {
                Some(f) => multiset_add(&mut self.elastic_floors, f),
                None => self.elastic_unfloored += 1,
            }
        }
        self.queue_gen += 1;
    }

    /// Removes a job from the waiting queue by its stored key — O(log n)
    /// instead of a retain scan.
    fn dequeue(&mut self, job: usize) {
        if let Some(key) = self.jobs[job].queue_key.take() {
            self.pending.remove(&key);
            let j = &self.jobs[job];
            if let Some(t) = j.candidate(job).fit_threshold() {
                self.by_threshold.remove(&(t, key));
            }
            if self.pending_elastic.remove(&key).is_some() {
                match j.ladder_floor_min {
                    Some(f) => multiset_sub(&mut self.elastic_floors, f),
                    None => self.elastic_unfloored -= 1,
                }
            }
            self.queue_gen += 1;
        }
    }

    /// Adds `bytes` to `gpu`'s reservation, keeping [`GpuState`] (stats
    /// truth) and [`GpuPool`] (placement index) in lock-step.
    fn reserve_on(&mut self, gpu: usize, bytes: u64, now: Time) {
        let g = &mut self.gpus[gpu];
        g.touch(now);
        g.reserved += bytes;
        g.peak = g.peak.max(g.reserved);
        self.pool.set_reserved(gpu, g.reserved);
    }

    /// Releases `bytes` from `gpu`'s reservation, mirrored into the pool.
    fn release_on(&mut self, gpu: usize, bytes: u64, now: Time) {
        let g = &mut self.gpus[gpu];
        g.touch(now);
        g.reserved -= bytes;
        self.pool.set_reserved(gpu, g.reserved);
    }
}

/// Adds one occurrence of `v` to a threshold multiset.
fn multiset_add(set: &mut BTreeMap<u64, usize>, v: u64) {
    *set.entry(v).or_insert(0) += 1;
}

/// Drops one occurrence of `v`. The entry disappears at zero so
/// `first_key_value` stays the true minimum.
fn multiset_sub(set: &mut BTreeMap<u64, usize>, v: u64) {
    match set.get_mut(&v) {
        Some(c) if *c > 1 => *c -= 1,
        _ => {
            set.remove(&v);
        }
    }
}

/// The all-empty placeholder `std::mem::take` leaves behind while the
/// event loop works on the real session; never observed by API callers.
impl Default for Session {
    fn default() -> Session {
        Session {
            seq: 0,
            heap: BinaryHeap::new(),
            jobs: Vec::new(),
            gpus: Vec::new(),
            fabric: None,
            pool: GpuPool::default(),
            pending: BTreeMap::new(),
            queue_seq: 0,
            queue_gen: 0,
            by_threshold: BTreeMap::new(),
            pending_elastic: BTreeMap::new(),
            elastic_floors: BTreeMap::new(),
            elastic_unfloored: 0,
            settled_at: None,
            ladder_gen: 0,
            ladder_probes: BTreeMap::new(),
            resident_jobs: BTreeSet::new(),
            preempting: 0,
            transfers: Vec::new(),
            events: Vec::new(),
            now: Time::ZERO,
            has_inference: false,
            burst_cycles: 0,
            predictor_hits: 0,
            predictor_misses: 0,
        }
    }
}

/// The cluster scheduler.
#[derive(Debug)]
pub struct Cluster {
    cfg: ClusterConfig,
    admission: Admission,
    /// Measured footprints and derived admission budgets keyed by
    /// `(model kind, replica batch)` — jobs (and gang replicas) sharing a
    /// per-replica workload share one measuring run and one bisection.
    /// The interned [`ModelKind`] key avoids a `String` clone per probe,
    /// and only the [`EstimateSummary`] slice of the measuring run is
    /// retained — the full profile would otherwise be cloned on every
    /// cache hit (once per arrival and elastic probe). The trailing flag
    /// is the policy's admission cost class (`true` = heuristic):
    /// heuristic needs skip the measured bisection, so the two classes
    /// derive different budgets from the same measuring run.
    estimates: BTreeMap<(ModelKind, usize, bool), (EstimateSummary, JobNeeds)>,
    /// Forward-only (inference) footprints and budgets, keyed like
    /// [`Cluster::estimates`] but measured over the graph's forward
    /// prefix — a separate map because the same `(model, replica batch)`
    /// has a strictly smaller serving footprint than its training twin.
    forward_estimates: BTreeMap<(ModelKind, usize, bool), (EstimateSummary, JobNeeds)>,
    /// Built training graphs keyed by `(model kind, replica batch)`.
    /// Validation runs at distinct byte budgets can't share a cache
    /// entry, but they all replan over the same graph — rebuilding it
    /// per run used to dominate Capuchin-admission wall time. Bounded by
    /// the workload's shape menu, which synthetic generators keep small.
    models: BTreeMap<(ModelKind, usize), capuchin_models::Model>,
    /// Validation outcomes: `Some` holds the per-iteration replay trace
    /// (shared, not cloned, with every admission that hits the cache),
    /// `None` records a failed run.
    validations: BTreeMap<ValidationKey, Option<Arc<Vec<ReplayIter>>>>,
    /// Validation engine runs already attributed to some job — the
    /// cursor [`Cluster::charge_admission`] advances against the
    /// controller's monotone [`Admission::validation_runs`] counter.
    charged_runs: u64,
    /// Footprint regression store fed by completed measured runs. Like
    /// the estimate caches it survives [`Cluster::reset`], which is what
    /// lets a `capuchin-serve` daemon warm it across online submissions —
    /// the longer the daemon lives, the more admissions are free.
    predictor: FootprintPredictor,
    /// Measured truth for mispredict verification, keyed by `(model,
    /// replica batch, forward-only)` and shared by every predicted job of
    /// the same shape. Populated without validation engine runs.
    truths: BTreeMap<(ModelKind, usize, bool), VerifiedTruth>,
    /// Live run state for the online API (and the batch wrappers).
    session: Session,
}

impl Cluster {
    /// Creates a cluster.
    pub fn new(cfg: ClusterConfig) -> Cluster {
        let mut admission = Admission::new(cfg.admission);
        admission.validate_iters = cfg.validate_iters.max(2);
        let session = Session::new(&cfg);
        Cluster {
            cfg,
            admission,
            estimates: BTreeMap::new(),
            forward_estimates: BTreeMap::new(),
            models: BTreeMap::new(),
            validations: BTreeMap::new(),
            charged_runs: 0,
            predictor: FootprintPredictor::new(),
            truths: BTreeMap::new(),
            session,
        }
    }

    /// Attributes every validation engine run performed since the last
    /// charge to `j` — called after each admission-driven block
    /// (`estimate_at` / `validated_replay` clusters), so per-job
    /// `admission_validations` sums exactly to the controller's total.
    /// Cache-hit admissions charge nothing; heuristic-class policies
    /// never run a validation engine and stay at zero.
    fn charge_admission(&mut self, j: &mut JobRun) {
        let total = self.admission.validation_runs();
        j.admission_validations += total - self.charged_runs;
        self.charged_runs = total;
    }

    /// Memoized validation entries currently held. Diagnostic hook:
    /// heuristic-class admissions must leave this cache cold, so an
    /// all-`dtr` workload reports zero here.
    pub fn validation_cache_len(&self) -> usize {
        self.validations.len()
    }

    /// Total validation engine runs the admission controller has
    /// performed over this cluster's lifetime (all sessions — the
    /// caches, like the controller, survive [`Cluster::reset`]).
    pub fn validation_runs(&self) -> u64 {
        self.admission.validation_runs()
    }

    /// The footprint regression store (read-only). Like the admission
    /// caches it survives [`Cluster::reset`] — a serve daemon's predictor
    /// keeps warming across submissions for its whole lifetime.
    pub fn predictor(&self) -> &FootprintPredictor {
        &self.predictor
    }

    /// Predicted admissions this session (warm predictor keys).
    pub fn predictor_hits(&self) -> u64 {
        self.session.predictor_hits
    }

    /// Predictable arrivals that fell back to measured admission this
    /// session (cold predictor keys).
    pub fn predictor_misses(&self) -> u64 {
        self.session.predictor_misses
    }

    /// Measures the per-replica footprint at global batch `batch`:
    /// weights plus activations at the replica slice (`batch / gpus`).
    /// Elastic probes at reduced batches share the same cache — keyed by
    /// the replica batch, so a 4-GPU gang elastically reduced to batch
    /// 128 reuses the single-GPU batch-32 measuring run.
    fn estimate_at(&mut self, spec: &JobSpec, batch: usize) -> (EstimateSummary, JobNeeds) {
        let rb = spec.replica_batch_at(batch);
        let heuristic = spec.policy.descriptor().cost_class == CostClass::Heuristic;
        let key = (spec.model, rb, heuristic);
        let forward = spec.is_inference();
        let cache = if forward {
            &mut self.forward_estimates
        } else {
            &mut self.estimates
        };
        if let Some(cached) = cache.get(&key) {
            return *cached;
        }
        let model = self
            .models
            .entry((spec.model, rb))
            .or_insert_with(|| spec.model.build(rb));
        // Inference jobs never run the backward pass: measure (and derive
        // needs from) the forward prefix, whose peak is strictly smaller.
        let (est, needs) = if forward {
            let est = measure_forward_footprint(&model.graph, &self.cfg.spec)
                .expect("unconstrained measuring run cannot OOM");
            // Forward-only budgets are verified by measured execution —
            // proportional slack alone undershoots when weights dominate
            // the peak (see `Admission::forward_needs`) — except for
            // heuristic-class policies, which pad a step instead of
            // probing with engine runs.
            let needs = if heuristic {
                self.admission.heuristic_forward_needs(&est)
            } else {
                let fwd = model.graph.forward_prefix();
                self.admission.forward_needs(&fwd, &est, spec.policy)
            };
            (est, needs)
        } else {
            let est = measure_footprint(&model.graph, &self.cfg.spec)
                .expect("unconstrained measuring run cannot OOM");
            let needs = if heuristic {
                self.admission.heuristic_needs(&est)
            } else {
                self.admission.needs(&model.graph, &est)
            };
            (est, needs)
        };
        let summary = EstimateSummary {
            ideal_peak: est.ideal_peak,
            weight_bytes: est.weight_bytes,
            iter_wall: est.iter_wall,
        };
        let cache = if forward {
            &mut self.forward_estimates
        } else {
            &mut self.estimates
        };
        cache.insert(key, (summary, needs));
        (summary, needs)
    }

    /// Admission-time budget derivation, provenance included — the entry
    /// point [`EV_ARRIVE`] dispatches instead of calling
    /// [`Cluster::estimate_at`] directly.
    ///
    /// Heuristic-class policies estimate exactly as before. For
    /// measured-class (predictable) policies with predictive mode on,
    /// the regression store is consulted first: a warm key admits on
    /// `prediction × safety margin` — zero measuring and zero validation
    /// engine runs, even when the estimate cache happens to hold the
    /// shape (the warm-key guarantee is keyed on the *family*, not the
    /// batch) — and a cold key falls back to measured estimation, whose
    /// completion later feeds the store. With predictive off this is
    /// exactly the old two-provenance pipeline.
    fn admission_estimate(
        &mut self,
        spec: &JobSpec,
    ) -> (EstimateSummary, JobNeeds, AdmissionDecisionParts) {
        let descriptor = spec.policy.descriptor();
        if descriptor.cost_class == CostClass::Heuristic {
            let (est, needs) = self.estimate_at(spec, spec.batch);
            return (
                est,
                needs,
                AdmissionDecisionParts {
                    source: AdmissionSource::Heuristic,
                    outcome: PredictorOutcome::NotConsulted,
                    raw_full: 0,
                },
            );
        }
        if self.cfg.predictive && descriptor.predictable {
            let features = spec.predict_features();
            let key = key_of(spec);
            if let Some(raw) =
                self.predictor
                    .predict(&key, features.replica_batch(), self.cfg.min_samples)
            {
                let margin = self.cfg.safety_margin_permille;
                let padded = raw.with_margin(margin);
                let est = EstimateSummary {
                    ideal_peak: padded.ideal_peak,
                    weight_bytes: padded.weight_bytes,
                    iter_wall: padded.iter_wall,
                };
                let needs = JobNeeds {
                    full: padded.full,
                    min: match self.admission.mode {
                        // TfOri admission never shrinks: min == full,
                        // exactly like the measured path.
                        AdmissionMode::TfOri => padded.full,
                        AdmissionMode::Capuchin => padded.min,
                    },
                };
                return (
                    est,
                    needs,
                    AdmissionDecisionParts {
                        source: AdmissionSource::Predicted {
                            margin_permille: margin,
                        },
                        outcome: PredictorOutcome::Hit,
                        raw_full: raw.full,
                    },
                );
            }
            let (est, needs) = self.estimate_at(spec, spec.batch);
            return (
                est,
                needs,
                AdmissionDecisionParts {
                    source: AdmissionSource::Measured,
                    outcome: PredictorOutcome::Miss,
                    raw_full: 0,
                },
            );
        }
        let (est, needs) = self.estimate_at(spec, spec.batch);
        (
            est,
            needs,
            AdmissionDecisionParts {
                source: AdmissionSource::Measured,
                outcome: PredictorOutcome::NotConsulted,
                raw_full: 0,
            },
        )
    }

    fn validated_replay(
        &mut self,
        spec: &JobSpec,
        batch: usize,
        budget: u64,
        shrunk: bool,
    ) -> Option<Arc<Vec<ReplayIter>>> {
        // Heuristic-class policies are never validated by an engine run:
        // their replay is synthesized from the cached footprint estimate
        // and the validation cache stays cold.
        if spec.policy.descriptor().cost_class == CostClass::Heuristic {
            return self.heuristic_replay(spec, batch, budget);
        }
        let rb = spec.replica_batch_at(batch);
        // Inference validates at least 2 engine iterations regardless of
        // `spec.iters` (which inference specs leave at 1): Capuchin needs
        // a measured iteration before a guided one exists to record.
        let iters = spec.iters.min(self.cfg.validate_iters).max(2);
        let forward = spec.is_inference();
        let key = (
            spec.model,
            rb,
            budget,
            spec.policy.name(),
            shrunk,
            iters,
            forward,
        );
        if let Some(cached) = self.validations.get(&key) {
            return cached.clone();
        }
        let model = self
            .models
            .entry((spec.model, rb))
            .or_insert_with(|| spec.model.build(rb));
        // Inference jobs validate the forward prefix only — the budget
        // they are granted never has to fit a backward pass.
        let validated = if forward {
            let fwd = model.graph.forward_prefix();
            self.admission
                .validate(&fwd, &self.cfg.spec, budget, spec.policy, shrunk, iters)
        } else {
            self.admission.validate(
                &model.graph,
                &self.cfg.spec,
                budget,
                spec.policy,
                shrunk,
                iters,
            )
        };
        let replay = validated
            .ok()
            // An empty trace is a failed validation, not a fast job.
            .filter(|replay| !replay.is_empty())
            .map(Arc::new);
        self.validations.insert(key, replay.clone());
        replay
    }

    /// Synthesizes the replay trace an unvalidated (heuristic-class)
    /// admission hands the clock: the unconstrained measuring iteration's
    /// wall, stretched by a paging round-trip of the budget deficit.
    ///
    /// The model is deliberately conservative — the online policy pages
    /// (or regenerates, usually cheaper) the bytes that no longer fit,
    /// priced here as one D2H + H2D round trip of the deficit per
    /// iteration on the device's own transfer model; the synthetic
    /// transfer pair makes that traffic contend on a shared fabric like
    /// validated swap timelines do. Below the slack-padded weight floor
    /// even an online policy cannot run (weights are unevictable), so
    /// the grant is refused like a failed validation — without an engine
    /// run and without touching the validation cache.
    fn heuristic_replay(
        &mut self,
        spec: &JobSpec,
        batch: usize,
        budget: u64,
    ) -> Option<Arc<Vec<ReplayIter>>> {
        let (est, _) = self.estimate_at(spec, batch);
        let iters = spec.iters.min(self.cfg.validate_iters).max(2);
        self.synthesize_replay(spec.policy.name(), &est, budget, iters)
    }

    /// Synthesizes the replay trace a predicted admission hands the
    /// clock, from the regression store alone — the predicted analogue of
    /// [`Cluster::heuristic_replay`], sharing its deficit-paging model
    /// via [`Cluster::synthesize_replay`]. No measuring run, no
    /// validation engine run: that absence *is* the warm-key guarantee.
    /// `None` when the key went cold (impossible once warm — the store
    /// only grows) or the budget sits below the predicted weight floor.
    fn predicted_replay(&self, spec: &JobSpec, budget: u64) -> Option<Arc<Vec<ReplayIter>>> {
        let features = spec.predict_features();
        let p = self
            .predictor
            .predict(
                &key_of(spec),
                features.replica_batch(),
                self.cfg.min_samples,
            )?
            .with_margin(self.cfg.safety_margin_permille);
        let est = EstimateSummary {
            ideal_peak: p.ideal_peak,
            weight_bytes: p.weight_bytes,
            iter_wall: p.iter_wall,
        };
        let iters = spec.iters.min(self.cfg.validate_iters).max(2);
        self.synthesize_replay(spec.policy.name(), &est, budget, iters)
    }

    /// The shared deficit-paging replay model behind
    /// [`Cluster::heuristic_replay`] and [`Cluster::predicted_replay`]:
    /// the (estimated or predicted) unconstrained iteration wall,
    /// stretched by one D2H + H2D round trip of whatever slice of the
    /// slack-padded peak the budget cannot hold.
    fn synthesize_replay(
        &self,
        policy_name: &str,
        est: &EstimateSummary,
        budget: u64,
        iters: u64,
    ) -> Option<Arc<Vec<ReplayIter>>> {
        if budget < crate::admission::with_slack(est.weight_bytes) {
            return None;
        }
        let deficit = crate::admission::with_slack(est.ideal_peak).saturating_sub(budget);
        let iter = if deficit == 0 {
            ReplayIter {
                wall: est.iter_wall,
                swap_bytes: 0,
                recompute_time: Duration::ZERO,
                evictions: 0,
                transfers: Vec::new(),
            }
        } else {
            let transfers = TransferModel::for_device(&self.cfg.spec);
            let out = transfers.time(deficit, CopyDir::DeviceToHost);
            let back = transfers.time(deficit, CopyDir::HostToDevice);
            ReplayIter {
                wall: est.iter_wall + out + back,
                swap_bytes: deficit.saturating_mul(2),
                recompute_time: Duration::ZERO,
                evictions: 1,
                transfers: vec![
                    ReplayTransfer {
                        label: format!("evict:{policy_name}"),
                        bytes: deficit,
                        dir: CopyDir::DeviceToHost,
                        offset: Duration::ZERO,
                    },
                    ReplayTransfer {
                        label: format!("refill:{policy_name}"),
                        bytes: deficit,
                        dir: CopyDir::HostToDevice,
                        offset: out,
                    },
                ],
            }
        };
        Some(Arc::new(vec![iter; iters as usize]))
    }

    /// Runs the workload to completion and returns the stats.
    ///
    /// A thin wrapper over the online core: [`Cluster::reset`], then
    /// [`Cluster::submit`] for every spec, then [`Cluster::drain`]. The
    /// stats JSON is byte-identical to driving the incremental API over
    /// the same submission sequence.
    pub fn run(&mut self, specs: &[JobSpec]) -> ClusterStats {
        self.run_traced(specs).0
    }

    /// Runs the workload and additionally returns the unified transfer
    /// trace: every replayed per-tensor swap, gang allreduce, and
    /// checkpoint/restore copy resolved on the shared fabric, in
    /// settlement order. Empty when the interconnect model is off. The
    /// trace is a side-channel — [`ClusterStats`] (and its JSON) is
    /// identical to what [`Cluster::run`] returns.
    pub fn run_traced(&mut self, specs: &[JobSpec]) -> (ClusterStats, Vec<ClusterTransfer>) {
        self.reset();
        for spec in specs {
            self.submit(spec);
        }
        self.drain();
        let transfers = std::mem::take(&mut self.session.transfers);
        (self.stats(), transfers)
    }

    /// Discards all run state (jobs, clock, heap, side-channel logs) and
    /// starts a fresh session on the same configuration. The admission
    /// caches are kept — they memoize pure functions of the spec, so
    /// reuse cannot perturb determinism.
    pub fn reset(&mut self) {
        self.session = Session::new(&self.cfg);
    }

    /// The simulation clock: the last processed event time or the last
    /// [`Cluster::advance_to`] deadline, whichever is later.
    pub fn now(&self) -> Time {
        self.session.now
    }

    /// Submits one job to the online core and returns its handle.
    ///
    /// The job's [`JobSpec::arrival_time`] is honoured while it is still
    /// in the future; an arrival the clock has already passed is clamped
    /// to [`Cluster::now`] — the cluster cannot admit in the past.
    /// Nothing is processed here: the arrival itself (admission
    /// measuring, placement) happens when the clock reaches it via
    /// [`Cluster::step`], [`Cluster::advance_to`] or [`Cluster::drain`].
    pub fn submit(&mut self, spec: &JobSpec) -> JobId {
        let s = &mut self.session;
        let id = s.jobs.len();
        if spec.is_inference() {
            s.has_inference = true;
        }
        let mut run = JobRun::new(spec, id);
        if run.arrival < s.now {
            run.arrival = s.now;
            run.queued_at = s.now;
        }
        s.events.push(JobEvent {
            t: run.arrival,
            job: id as u64,
            name: run.spec.name.clone(),
            kind: JobEventKind::Submitted,
        });
        s.heap.push(ev(run.arrival, s.seq, EV_ARRIVE, id, 0));
        s.seq += 1;
        s.jobs.push(run);
        id
    }

    /// Cancels a job. A never-admitted queued job simply leaves the
    /// waiting queue — it held no reservation, so nothing is refunded; a
    /// resident (or mid-checkpoint-copy) job releases every replica's
    /// reservation immediately and its in-flight events are invalidated.
    /// Either way the job's outcome becomes [`JobOutcome::Cancelled`] —
    /// distinct from `Rejected` (admission never refused it) and
    /// `Aborted` (its replay state never became unusable).
    ///
    /// # Errors
    ///
    /// [`CancelError::UnknownJob`] for an id [`Cluster::submit`] never
    /// returned; [`CancelError::Terminal`] when the job already
    /// completed, was rejected, aborted, or cancelled.
    pub fn cancel(&mut self, id: JobId) -> Result<(), CancelError> {
        match self.session.jobs.get(id) {
            None => return Err(CancelError::UnknownJob(id)),
            Some(j) if j.rejected || j.finished_at.is_some() || j.aborted || j.cancelled => {
                return Err(CancelError::Terminal(id));
            }
            Some(_) => {}
        }
        let mut s = std::mem::take(&mut self.session);
        let now = s.now;
        let was_preempting = s.jobs[id].preempting;
        {
            let j = &mut s.jobs[id];
            j.cancelled = true;
            j.iterating = false;
            j.preempting = false;
            // Scheduled events die by the epoch bump, the pending
            // arrival by the cancelled flag.
            j.epoch += 1;
            if let Some(since) = j.reduced_since.take() {
                j.elastic_reduced_time += now.saturating_since(since);
            }
        }
        if was_preempting {
            s.preempting -= 1;
        }
        // A queued job holds nothing: refund nothing.
        s.dequeue(id);
        // A resident job's whole gang releases right away (a preempting
        // victim's checkpoint copy is moot — the job is going away).
        let held = std::mem::take(&mut s.jobs[id].gpus_held);
        let reserved = s.jobs[id].reserved;
        s.resident_jobs.remove(&id);
        for &gpu in &held {
            s.release_on(gpu, reserved, now);
            remove_resident(&mut s.gpus[gpu], id);
        }
        s.events.push(JobEvent {
            t: now,
            job: id as u64,
            name: s.jobs[id].spec.name.clone(),
            kind: JobEventKind::Cancelled,
        });
        for &gpu in &held {
            reprice_residents(&mut s.jobs, &s.gpus, gpu, now, &mut s.seq, &mut s.heap);
        }
        // Freed memory — or a freed queue slot ahead of other waiters —
        // may unblock placements immediately.
        self.settle(&mut s, now);
        self.session = s;
        Ok(())
    }

    /// A live snapshot of one job, or `None` for an id never submitted.
    pub fn status(&self, id: JobId) -> Option<JobStatus> {
        let j = self.session.jobs.get(id)?;
        let state = if j.rejected {
            JobState::Rejected
        } else if j.finished_at.is_some() {
            JobState::Completed
        } else if j.cancelled {
            JobState::Cancelled
        } else if j.aborted {
            JobState::Aborted
        } else if j.checkpoint.is_some() || j.preempting {
            JobState::Preempted
        } else if !j.gpus_held.is_empty() {
            JobState::Running
        } else {
            JobState::Queued
        };
        Some(JobStatus {
            id: id as u64,
            name: j.spec.name.clone(),
            state,
            iters_done: j.iters_done,
            samples_done: j.samples_done,
            samples_total: j.samples_total,
            cur_batch: j.cur_batch,
            replicas: j.width(),
            gpus: j.gpus_held.clone(),
            reserved_bytes: if j.gpus_held.is_empty() {
                0
            } else {
                j.reserved
            },
            preemptions: j.preemptions,
            rebatches: j.rebatches,
            admission_source: j.admission_source.name().to_owned(),
        })
    }

    /// Drains the lifecycle event log accumulated since the last call
    /// (or [`Cluster::reset`]): every submit, reject, admit, iteration,
    /// preempt, resume, rebatch, complete, abort and cancel transition,
    /// in occurrence order. A pure side-channel — reading or ignoring it
    /// cannot change the stats.
    pub fn take_events(&mut self) -> Vec<JobEvent> {
        std::mem::take(&mut self.session.events)
    }

    /// Drains the unified transfer trace accumulated since the last call
    /// (or [`Cluster::reset`]) — the same records [`Cluster::run_traced`]
    /// returns, exposed incrementally for streaming consumers. Empty
    /// with the interconnect model off.
    pub fn take_transfers(&mut self) -> Vec<ClusterTransfer> {
        std::mem::take(&mut self.session.transfers)
    }

    /// Whether any live (non-superseded) event is still scheduled.
    pub fn has_work(&self) -> bool {
        self.session
            .heap
            .iter()
            .any(|&Reverse((_, _, _, kind, job, epoch))| {
                let j = &self.session.jobs[job];
                if kind == EV_ARRIVE {
                    !j.cancelled
                } else if kind == EV_REQ_ARRIVE {
                    // Request arrivals are an external process: epoch
                    // bumps (re-pricing, repreemption) must not drop
                    // them. Only a terminal job silences its requests.
                    !(j.cancelled || j.rejected || j.aborted || j.finished_at.is_some())
                } else {
                    epoch == j.epoch
                }
            })
    }

    /// Processes the next event, skipping superseded ones: dispatches
    /// its state transition, then runs one settle pass (placement, the
    /// elastic second pass, preemption) — exactly one turn of the batch
    /// loop. Returns whether an event was processed; `false` means the
    /// cluster is idle.
    pub fn step(&mut self) -> bool {
        self.step_bounded(None)
    }

    /// Advances the clock to `deadline`, processing every event at or
    /// before it, and returns whether live events remain beyond it.
    /// Events strictly after the deadline are untouched, so a later
    /// [`Cluster::submit`] whose arrival lands before them still
    /// interleaves exactly as a batch run would have ordered it.
    pub fn advance_to(&mut self, deadline: Time) -> bool {
        while self.step_bounded(Some(deadline)) {}
        if self.session.now < deadline {
            self.session.now = deadline;
        }
        self.has_work()
    }

    /// Runs the event loop to idle: every submitted job reaches a
    /// terminal state or starves waiting.
    pub fn drain(&mut self) {
        while self.step() {}
    }

    fn step_bounded(&mut self, deadline: Option<Time>) -> bool {
        let mut s = std::mem::take(&mut self.session);
        let mut processed = false;
        while let Some(&Reverse((t, _, _, kind, job, epoch))) = s.heap.peek() {
            let stale = if kind == EV_ARRIVE {
                s.jobs[job].cancelled
            } else if kind == EV_REQ_ARRIVE {
                // Mirror of [`Cluster::has_work`]: terminal state, not
                // the epoch, silences a scheduled request arrival.
                let j = &s.jobs[job];
                j.cancelled || j.rejected || j.aborted || j.finished_at.is_some()
            } else {
                epoch != s.jobs[job].epoch
            };
            if stale {
                // Superseded by a re-pricing, preemption, abort or
                // cancel: drop it without touching the clock.
                s.heap.pop();
                continue;
            }
            let now = Time::from_nanos(t);
            if deadline.is_some_and(|d| now > d) {
                break;
            }
            s.heap.pop();
            s.now = now;
            self.dispatch(&mut s, job, kind, now);
            self.settle(&mut s, now);
            processed = true;
            break;
        }
        self.session = s;
        processed
    }

    /// One event's state transition — the match-arm body of the old
    /// batch loop. The settle pass (placement and friends) runs
    /// separately after every dispatch.
    fn dispatch(&mut self, s: &mut Session, job: usize, kind: u8, now: Time) {
        match kind {
            EV_ARRIVE => {
                // Bad gang widths are rejected at parse time
                // (`load_jobs`); specs built in code get the same
                // verdict here instead of a late panic.
                if s.jobs[job].spec.gpus == 0 || s.jobs[job].spec.gpus > self.cfg.gpus {
                    s.jobs[job].rejected = true;
                } else {
                    let spec = s.jobs[job].spec.clone();
                    let (est, base, decision) = self.admission_estimate(&spec);
                    match decision.outcome {
                        PredictorOutcome::Hit => s.predictor_hits += 1,
                        PredictorOutcome::Miss => s.predictor_misses += 1,
                        PredictorOutcome::NotConsulted => {}
                    }
                    s.jobs[job].admission_source = decision.source;
                    if let AdmissionSource::Predicted { .. } = decision.source {
                        s.jobs[job].predicted_bytes = base.full;
                        s.jobs[job].predicted_raw_full = decision.raw_full;
                    }
                    let capacity = self.cfg.spec.memory_bytes;
                    let needs = if spec.is_inference() {
                        // Admission prices a full round's KV state on
                        // top of the forward-only base: `full` asks for
                        // the licensed concurrency's worth, `min` for at
                        // least one request's slot — a grant anywhere in
                        // between licenses proportionally fewer
                        // concurrent requests (never zero).
                        let kv = spec.kv_bytes_per_request;
                        let max_in = spec.max_inflight.max(1) as u64;
                        JobNeeds {
                            full: base.full.saturating_add(max_in.saturating_mul(kv)),
                            min: base.min.saturating_add(kv),
                        }
                    } else {
                        base
                    };
                    s.jobs[job].base_needs = base;
                    s.jobs[job].needs = needs;
                    s.jobs[job].footprint = est.ideal_peak;
                    // No backward pass means no gradients: the gang
                    // allreduce is skipped for inference via the
                    // existing `grad_bytes > 0` gate.
                    s.jobs[job].grad_bytes = if spec.is_inference() {
                        0
                    } else {
                        est.weight_bytes
                    };
                    // An elastic job whose full-batch minimum exceeds
                    // a bare GPU is still admissible if the ladder's
                    // floor batch fits one.
                    let admissible = needs.min <= capacity
                        || (self.cfg.elastic && spec.elastic && !spec.is_inference() && {
                            let floor = *elastic_batches(spec.batch, self.cfg.min_batch_fraction)
                                .last()
                                .expect("ladder is never empty");
                            self.estimate_at(&spec, floor).1.min <= capacity
                        });
                    self.charge_admission(&mut s.jobs[job]);
                    if admissible {
                        s.enqueue(job);
                        if spec.is_inference() {
                            // The request-arrival process starts with the
                            // job: each arrival schedules its successor.
                            self.schedule_next_request(s, job, now);
                        }
                    } else {
                        // Admission-time OOM: no bare GPU can host a
                        // replica at any allowed batch.
                        s.jobs[job].rejected = true;
                    }
                }
                if s.jobs[job].rejected {
                    s.events.push(JobEvent {
                        t: now,
                        job: job as u64,
                        name: s.jobs[job].spec.name.clone(),
                        kind: JobEventKind::Rejected,
                    });
                }
            }
            EV_ITER_END => {
                // Compute done. The iteration is complete only after
                // the boundary communication (replayed swap traffic
                // queueing, then the gang's gradient allreduce)
                // drains on the shared fabric.
                s.jobs[job].iterating = false;
                let comm_end =
                    settle_comm(&mut s.jobs[job], now, s.fabric.as_mut(), &mut s.transfers);
                if comm_end > now {
                    s.jobs[job].epoch += 1;
                    let epoch = s.jobs[job].epoch;
                    s.heap.push(ev(comm_end, s.seq, EV_COMM, job, epoch));
                    s.seq += 1;
                } else {
                    self.complete_iteration(s, job, now);
                }
            }
            EV_COMM => {
                self.complete_iteration(s, job, now);
            }
            EV_REQ_ARRIVE => {
                // A request joins the job's queue and the arrival
                // process self-perpetuates. Serving is *not* attempted
                // here: the settle pass that follows every dispatch
                // runs the serving loop, so the request is picked up in
                // the same instant if the job is resident and idle.
                s.jobs[job].req_queue.push_back(now);
                s.events.push(JobEvent {
                    t: now,
                    job: job as u64,
                    name: s.jobs[job].spec.name.clone(),
                    kind: JobEventKind::RequestArrived,
                });
                self.schedule_next_request(s, job, now);
            }
            EV_REGROW => {
                // The batch-change copies drained: swap in the new
                // replay and continue from the same samples cursor at
                // the new batch.
                let j = &mut s.jobs[job];
                let rg = j
                    .pending_regrow
                    .take()
                    .expect("regrowing job has a pending batch change");
                let batch = rg.batch;
                let grew = batch > j.cur_batch;
                j.cur_batch = rg.batch;
                j.shrunk = rg.shrunk;
                j.replay = rg.replay;
                if batch >= j.spec.batch {
                    // Back at the requested batch: close the
                    // reduced-time window.
                    if let Some(since) = j.reduced_since.take() {
                        j.elastic_reduced_time += now.saturating_since(since);
                    }
                } else if j.reduced_since.is_none() {
                    // A downward change (burst absorption) opens it.
                    j.reduced_since = Some(now);
                }
                // Any re-growth after a burst-absorption shrink closes
                // the cycle: the burst drained and the trained batch
                // recovered.
                let closed_cycle = grew && j.shrunk_for_burst;
                if closed_cycle {
                    j.shrunk_for_burst = false;
                }
                s.events.push(JobEvent {
                    t: now,
                    job: job as u64,
                    name: s.jobs[job].spec.name.clone(),
                    kind: JobEventKind::Rebatched { batch },
                });
                if closed_cycle {
                    s.burst_cycles += 1;
                }
                if schedule_iter(&mut s.jobs, &s.gpus, job, now, &mut s.seq, &mut s.heap).is_err() {
                    abort_job(s, job, now);
                }
            }
            EV_PREEMPT => {
                // Checkpoint copy drained: release every replica's
                // reservation and put the victim back in the queue,
                // resumable.
                let held = std::mem::take(&mut s.jobs[job].gpus_held);
                assert!(!held.is_empty(), "preempting job holds its gang");
                let reserved = s.jobs[job].reserved;
                let j = &mut s.jobs[job];
                j.preempting = false;
                j.checkpoint = Some(Checkpoint {
                    iters_done: j.iters_done,
                    reserved,
                    shrunk: j.shrunk,
                    replay: j.replay.clone(),
                    cur_batch: j.cur_batch,
                    samples_done: j.samples_done,
                });
                // The reduced-batch clock pauses while the job sits
                // on the host.
                if let Some(since) = j.reduced_since.take() {
                    j.elastic_reduced_time += now.saturating_since(since);
                }
                j.preempted_at = Some(now);
                j.queued_at = now;
                s.preempting -= 1;
                s.resident_jobs.remove(&job);
                for &gpu in &held {
                    s.release_on(gpu, reserved, now);
                    remove_resident(&mut s.gpus[gpu], job);
                }
                // All earlier queue entries have queued_at <= now, so
                // appending preserves queue-entry order.
                s.enqueue(job);
                s.events.push(JobEvent {
                    t: now,
                    job: job as u64,
                    name: s.jobs[job].spec.name.clone(),
                    kind: JobEventKind::Preempted,
                });
                for &gpu in &held {
                    reprice_residents(&mut s.jobs, &s.gpus, gpu, now, &mut s.seq, &mut s.heap);
                }
            }
            EV_RESUME => {
                // Restore copy drained: rebuild the replay state from
                // the checkpoint and continue from the saved cursor.
                let j = &mut s.jobs[job];
                let cp = j.checkpoint.take().expect("resuming job has a checkpoint");
                j.iters_done = cp.iters_done;
                j.shrunk = cp.shrunk;
                j.replay = cp.replay;
                j.cur_batch = cp.cur_batch;
                j.samples_done = cp.samples_done;
                if j.cur_batch < j.spec.batch.max(1) {
                    j.reduced_since = Some(now);
                }
                if let Some(at) = j.preempted_at.take() {
                    j.resume_latency += now.saturating_since(at);
                }
                s.events.push(JobEvent {
                    t: now,
                    job: job as u64,
                    name: s.jobs[job].spec.name.clone(),
                    kind: JobEventKind::Resumed,
                });
                if schedule_iter(&mut s.jobs, &s.gpus, job, now, &mut s.seq, &mut s.heap).is_err() {
                    abort_job(s, job, now);
                }
            }
            EV_REMEASURE => {
                // Mispredict checkpoint copy drained: the predicted
                // grant is surrendered wholesale and the job re-enters
                // admission on the measured path. Unlike EV_PREEMPT no
                // checkpoint is kept — resuming one would regrant the
                // insufficient budget verbatim.
                let held = std::mem::take(&mut s.jobs[job].gpus_held);
                assert!(!held.is_empty(), "recovering job holds its gang");
                let reserved = s.jobs[job].reserved;
                s.preempting -= 1;
                s.resident_jobs.remove(&job);
                for &gpu in &held {
                    s.release_on(gpu, reserved, now);
                    remove_resident(&mut s.gpus[gpu], job);
                }
                let spec = s.jobs[job].spec.clone();
                let (est, base) = self.estimate_at(&spec, spec.batch);
                // The re-measurement's engine runs bill the job whose
                // prediction forced them, not whoever admits next.
                self.charge_admission(&mut s.jobs[job]);
                let capacity = self.cfg.spec.memory_bytes;
                let needs = if spec.is_inference() {
                    let kv = spec.kv_bytes_per_request;
                    let max_in = spec.max_inflight.max(1) as u64;
                    JobNeeds {
                        full: base.full.saturating_add(max_in.saturating_mul(kv)),
                        min: base.min.saturating_add(kv),
                    }
                } else {
                    base
                };
                let j = &mut s.jobs[job];
                j.preempting = false;
                j.checkpoint = None;
                j.admission_source = AdmissionSource::Measured;
                j.base_needs = base;
                j.needs = needs;
                j.footprint = est.ideal_peak;
                j.grad_bytes = if spec.is_inference() {
                    0
                } else {
                    est.weight_bytes
                };
                j.queued_at = now;
                s.events.push(JobEvent {
                    t: now,
                    job: job as u64,
                    name: spec.name.clone(),
                    kind: JobEventKind::Preempted,
                });
                for &gpu in &held {
                    reprice_residents(&mut s.jobs, &s.gpus, gpu, now, &mut s.seq, &mut s.heap);
                }
                if needs.min <= capacity {
                    s.enqueue(job);
                } else {
                    // The measured truth does not fit a bare GPU: the
                    // prediction admitted an impossible job. Abort it —
                    // this is the one mispredict outcome that cannot be
                    // recovered by re-queueing.
                    abort_job(s, job, now);
                }
            }
            other => unreachable!("unknown event kind {other}"),
        }
    }

    /// One settle pass after a state change: (re-)place waiting jobs,
    /// then the elastic second pass, then consider one preemption — the
    /// tail of the old batch loop body, behaviour-identical. Runs after
    /// every dispatched event and after a [`Cluster::cancel`].
    fn settle(&mut self, s: &mut Session, now: Time) {
        // The strategies are stateless values, so rebuilding one per
        // pass is free — and keeps `self` unborrowed for the admission
        // caches the passes consult.
        let strategy = self.cfg.strategy.build(self.cfg.aging_rate);
        // A `None` pick depends only on queue contents and pool headroom,
        // never on the clock, so while both generations are unchanged the
        // placement and elastic passes provably find nothing — skip them.
        // (Preemption *is* clock-dependent through priority aging and
        // runs below regardless.)
        let settled = s.settled_at == Some((s.pool.generation(), s.queue_gen));
        // (Re-)place waiting jobs after every state change. Gang
        // grants are atomic: the strategy names the complete GPU set
        // and every member is reserved in this same loop step, so no
        // job ever holds a partial gang (the no-deadlock invariant).
        loop {
            // O(1) hopeless check: when the pass is already settled, or
            // the queue's fit floor sits above the best headroom
            // anywhere, every candidate's threshold fails on every
            // device — `pick` is provably `None` for any strategy, so
            // skip the queue scan entirely. Re-checked per iteration
            // because each admission shrinks headroom.
            let cap = s.pool.max_headroom();
            let floor = s.by_threshold.first_key_value().map(|(&(t, _), _)| t);
            if settled || floor.is_none_or(|t| t > cap) {
                break;
            }
            let picked = {
                let jobs = &s.jobs;
                let slo_aware = self.cfg.slo_aware;
                // The SLO boost is stamped at read time, not baked into
                // the queue: it grows as pending requests age without
                // re-keying anything, and is identically 0 for training
                // jobs and under SLO-blind scheduling.
                let stamped = |j: usize| {
                    let mut c = jobs[j].candidate(j);
                    c.boost_permille = jobs[j].slo_boost(now, slo_aware);
                    c
                };
                if strategy.order_insensitive() {
                    // Feed only the candidates whose threshold clears
                    // some device — a threshold-index range instead of
                    // the whole backlog. Sound because the strategy
                    // declared its pick invariant to candidate order and
                    // to dropping never-placeable candidates.
                    let mut queue = s
                        .by_threshold
                        .range(..=(cap, u64::MAX))
                        .map(|(_, &j)| stamped(j));
                    strategy.pick(&mut queue, &s.pool, now)
                } else {
                    let mut queue = s.pending.values().map(|&j| stamped(j));
                    strategy.pick(&mut queue, &s.pool, now)
                }
            };
            let Some((job, gang)) = picked else {
                break;
            };
            assert_eq!(
                gang.len(),
                s.jobs[job].width(),
                "strategy returned a partial gang"
            );
            if let Some(cp) = &s.jobs[job].checkpoint {
                // Resume placement: regrant the checkpointed budget on
                // every replica and charge the host-to-device restore
                // copy before the first resumed iteration. On a shared
                // fabric all replicas' restores serialize on the host
                // link (and behind any other traffic in flight).
                let grant = cp.reserved;
                let copy = match s.fabric.as_mut() {
                    Some(f) => {
                        let bytes = grant * gang.len() as u64;
                        let tr = f.host_transfer(now, bytes);
                        s.transfers.push(ClusterTransfer {
                            job: s.jobs[job].spec.name.clone(),
                            iter: u64::MAX,
                            label: "restore".to_owned(),
                            link: "host".to_owned(),
                            dir: CopyDir::HostToDevice,
                            bytes,
                            want: now,
                            start: tr.start,
                            end: tr.end,
                            wait: tr.start.saturating_since(now),
                            charge: Duration::ZERO,
                            lead: Duration::ZERO,
                        });
                        tr.end.saturating_since(now)
                    }
                    None => self.cfg.spec.copy_time(grant, CopyDir::HostToDevice),
                };
                let j = &mut s.jobs[job];
                j.gpus_held = gang.clone();
                j.reserved = grant;
                j.checkpoint_overhead += copy;
                j.epoch += 1;
                let (at, ep) = (now + copy, j.epoch);
                s.dequeue(job);
                s.resident_jobs.insert(job);
                for &gpu in &gang {
                    s.reserve_on(gpu, grant, now);
                    let g = &mut s.gpus[gpu];
                    g.resident.push(job);
                    g.hosted += 1;
                }
                s.heap.push(ev(at, s.seq, EV_RESUME, job, ep));
                s.seq += 1;
                for &gpu in &gang {
                    reprice_residents(&mut s.jobs, &s.gpus, gpu, now, &mut s.seq, &mut s.heap);
                }
                continue;
            }
            // Every replica gets the same grant: the tightest member
            // of the gang caps it (replicas run one validated replay).
            let headroom = gang
                .iter()
                .map(|&g| s.pool.headroom(g))
                .min()
                .expect("gang is non-empty");
            let grant = headroom.min(s.jobs[job].needs.full);
            let spec = s.jobs[job].spec.clone();
            // For inference the validated budget is the forward-only
            // base slice of the grant; the remainder is the KV pool,
            // licensing the round concurrency. Training validates the
            // whole grant (`budget == grant`, `lic` unused).
            let (budget, shrunk, lic) = if spec.is_inference() {
                let base = s.jobs[job].base_needs;
                let kv = spec.kv_bytes_per_request;
                let max_in = spec.max_inflight.max(1);
                let b = grant
                    .saturating_sub(kv.saturating_mul(max_in as u64))
                    .max(base.min)
                    .min(base.full);
                // ≥ 1 when kv > 0: the published `min` priced one
                // request's slot on top of the base minimum, and the
                // strategy never grants below `min`.
                let lic = match grant.saturating_sub(b).checked_div(kv) {
                    Some(slots) => ((slots.max(1)) as usize).min(max_in),
                    None => max_in,
                };
                (b, b < base.full, lic)
            } else {
                (grant, grant < s.jobs[job].needs.full, 0)
            };
            // A predicted admission synthesizes its replay from the
            // regression store — no engine run. Everything else (measured
            // and heuristic provenance alike) goes through
            // `validated_replay`, which internally routes heuristic-class
            // policies to their own synthetic path.
            let predicted = matches!(
                s.jobs[job].admission_source,
                AdmissionSource::Predicted { .. }
            );
            let validated = if predicted {
                self.predicted_replay(&spec, budget)
            } else {
                self.validated_replay(&spec, spec.batch, budget, shrunk)
            };
            self.charge_admission(&mut s.jobs[job]);
            match validated {
                Some(replay) => {
                    let j = &mut s.jobs[job];
                    j.gpus_held = gang.clone();
                    j.reserved = budget;
                    j.shrunk = shrunk;
                    j.admitted_at = Some(now);
                    j.replay = replay;
                    j.lic_inflight = lic;
                    s.dequeue(job);
                    s.resident_jobs.insert(job);
                    s.events.push(JobEvent {
                        t: now,
                        job: job as u64,
                        name: spec.name.clone(),
                        kind: JobEventKind::Admitted {
                            gpus: gang.clone(),
                            batch: spec.batch,
                            reserved: budget,
                        },
                    });
                    for &gpu in &gang {
                        s.reserve_on(gpu, budget, now);
                        let g = &mut s.gpus[gpu];
                        g.resident.push(job);
                        g.hosted += 1;
                    }
                    if spec.is_inference() {
                        // No iteration yet: the serving loop below opens
                        // the first round over the accumulated backlog.
                        for &gpu in &gang {
                            reprice_residents(
                                &mut s.jobs,
                                &s.gpus,
                                gpu,
                                now,
                                &mut s.seq,
                                &mut s.heap,
                            );
                        }
                    } else if schedule_iter(&mut s.jobs, &s.gpus, job, now, &mut s.seq, &mut s.heap)
                        .is_err()
                    {
                        abort_job(s, job, now);
                    } else {
                        for &gpu in &gang {
                            reprice_residents(
                                &mut s.jobs,
                                &s.gpus,
                                gpu,
                                now,
                                &mut s.seq,
                                &mut s.heap,
                            );
                        }
                    }
                }
                None => {
                    // The budget looked plannable but the engine run
                    // failed; never retry at or below it. The record
                    // changes this waiting candidate's fit threshold,
                    // so the queue generation must move and the fit
                    // floor re-files the candidate under its new value.
                    let old = s.jobs[job].candidate(job).fit_threshold();
                    let j = &mut s.jobs[job];
                    let e = j.failed.entry(j.spec.batch).or_insert(grant);
                    *e = (*e).max(grant);
                    let key = j.queue_key.expect("picked candidate is queued");
                    let new = s.jobs[job].candidate(job).fit_threshold();
                    if old != new {
                        if let Some(t) = old {
                            s.by_threshold.remove(&(t, key));
                        }
                        if let Some(t) = new {
                            s.by_threshold.insert((t, key), job);
                        }
                    }
                    s.queue_gen += 1;
                }
            }
        }
        // Elastic second pass: the strategy just said nothing fits at
        // the full batch, so trade batch for an earlier start. For
        // each waiting elastic job (queue-entry order), bisect the
        // halving ladder for the largest reduced batch some gang
        // subset can host right now and admit there; the iteration
        // count extends so total samples trained is preserved.
        // O(1) elastic gate, mirroring the placement fit floor: no rung
        // of any waiting ladder fits below the smallest known floor, so
        // while headroom stays under it (and every floor is known) the
        // whole pass is provably a no-op.
        let elastic_live = s.elastic_unfloored > 0
            || s.elastic_floors
                .first_key_value()
                .is_some_and(|(&f, _)| f <= s.pool.max_headroom());
        if !settled && self.cfg.elastic && elastic_live {
            let waiting: Vec<usize> = s.pending_elastic.values().copied().collect();
            for job in waiting {
                // Admissions earlier in this pass moved the pool
                // generation, so the memo check lives inside the loop.
                if s.ladder_gen != s.pool.generation() {
                    s.ladder_probes.clear();
                    s.ladder_gen = s.pool.generation();
                }
                let ladder = elastic_batches(s.jobs[job].spec.batch, self.cfg.min_batch_fraction);
                if ladder.len() < 2 {
                    // The fraction allows no shrinking — ever. File the
                    // job under an unreachable floor so the gate above
                    // can still close.
                    if s.jobs[job].ladder_floor_min.is_none() {
                        s.jobs[job].ladder_floor_min = Some(u64::MAX);
                        s.elastic_unfloored -= 1;
                        multiset_add(&mut s.elastic_floors, u64::MAX);
                    }
                    continue;
                }
                // Cheap reject before any probe: if even the smallest
                // rung's minimum exceeds the best headroom anywhere, no
                // rung can fit (every rung's fit threshold is at least
                // its own minimum, which is at least the ladder floor).
                let floor_min = match s.jobs[job].ladder_floor_min {
                    Some(v) => v,
                    None => {
                        let spec = s.jobs[job].spec.clone();
                        let v = ladder
                            .iter()
                            .map(|&b| self.estimate_at(&spec, b).1.min)
                            .min()
                            .expect("ladder is never empty");
                        s.jobs[job].ladder_floor_min = Some(v);
                        s.elastic_unfloored -= 1;
                        multiset_add(&mut s.elastic_floors, v);
                        v
                    }
                };
                self.charge_admission(&mut s.jobs[job]);
                if floor_min > s.pool.max_headroom() {
                    continue;
                }
                let mut picks: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
                // ladder[0] is the full batch the strategy already
                // refused this instant; only reduced candidates.
                let (jobs, pool, probes) = (&s.jobs, &s.pool, &mut s.ladder_probes);
                let chosen = bisect_batch(&ladder[1..], |b| {
                    let needs = self.estimate_at(&jobs[job].spec, b).1;
                    let fb = jobs[job].failed.get(&b).copied();
                    // Two waiting jobs with the same shape share one
                    // probe per pool generation: a single-candidate pick
                    // depends only on (width, needs, failed budget) and
                    // the pool — never on identity, arrival or priority.
                    let key: LadderKey = (jobs[job].width(), needs.full, needs.min, fb);
                    let gang = match probes.get(&key) {
                        Some(cached) => cached.clone(),
                        None => {
                            let cand = CandidateJob {
                                job,
                                arrival: jobs[job].queued_at,
                                priority: jobs[job].spec.priority,
                                gpus: jobs[job].width(),
                                full_need: needs.full,
                                min_need: needs.min,
                                failed_budget: fb,
                                // Single-candidate probe: the boost only
                                // breaks ties between candidates.
                                boost_permille: 0,
                            };
                            let picked = strategy
                                .pick(&mut std::iter::once(cand), pool, now)
                                .map(|(_, gang)| gang);
                            probes.insert(key, picked.clone());
                            picked
                        }
                    };
                    match gang {
                        Some(gang) => {
                            picks.insert(b, gang);
                            true
                        }
                        None => false,
                    }
                });
                self.charge_admission(&mut s.jobs[job]);
                let Some(batch) = chosen else { continue };
                let gang = picks.remove(&batch).expect("chosen batch was probed");
                let needs = self.estimate_at(&s.jobs[job].spec, batch).1;
                let headroom = gang
                    .iter()
                    .map(|&g| s.pool.headroom(g))
                    .min()
                    .expect("gang is non-empty");
                let grant = headroom.min(needs.full);
                let shrunk = grant < needs.full;
                let spec = s.jobs[job].spec.clone();
                let validated = self.validated_replay(&spec, batch, grant, shrunk);
                self.charge_admission(&mut s.jobs[job]);
                match validated {
                    Some(replay) => {
                        let j = &mut s.jobs[job];
                        // The reduced-batch grant was engine-validated,
                        // whatever the arrival-time provenance said:
                        // record the stronger guarantee and skip
                        // mispredict verification.
                        j.admission_source = AdmissionSource::Measured;
                        j.gpus_held = gang.clone();
                        j.reserved = grant;
                        j.shrunk = shrunk;
                        j.admitted_at = Some(now);
                        j.replay = replay;
                        j.cur_batch = batch;
                        j.rebatches += 1;
                        j.reduced_since = Some(now);
                        s.dequeue(job);
                        s.resident_jobs.insert(job);
                        s.events.push(JobEvent {
                            t: now,
                            job: job as u64,
                            name: spec.name.clone(),
                            kind: JobEventKind::Admitted {
                                gpus: gang.clone(),
                                batch,
                                reserved: grant,
                            },
                        });
                        for &gpu in &gang {
                            s.reserve_on(gpu, grant, now);
                            let g = &mut s.gpus[gpu];
                            g.resident.push(job);
                            g.hosted += 1;
                        }
                        if schedule_iter(&mut s.jobs, &s.gpus, job, now, &mut s.seq, &mut s.heap)
                            .is_err()
                        {
                            abort_job(s, job, now);
                        } else {
                            for &gpu in &gang {
                                reprice_residents(
                                    &mut s.jobs,
                                    &s.gpus,
                                    gpu,
                                    now,
                                    &mut s.seq,
                                    &mut s.heap,
                                );
                            }
                        }
                    }
                    None => {
                        // The failed record restricts this job's future
                        // ladder probes — the queue generation moves so
                        // the next settle retries it.
                        let j = &mut s.jobs[job];
                        let e = j.failed.entry(batch).or_insert(grant);
                        *e = (*e).max(grant);
                        s.queue_gen += 1;
                    }
                }
            }
        }
        if !settled {
            s.settled_at = Some((s.pool.generation(), s.queue_gen));
        }
        // Serving loop: every resident inference job with an idle engine
        // and a backlog opens a round now. Runs on every settle, *after*
        // the settled snapshot — request arrivals touch neither queue
        // nor pool, so the settled-skip above would otherwise starve
        // them, and any KV reservation made here moves the pool
        // generation so the next settle re-places honestly. Skipped
        // entirely (flag check only) for training-only sessions.
        if s.has_inference {
            let resident: Vec<usize> = s.resident_jobs.iter().copied().collect();
            for job in resident {
                if s.jobs[job].spec.is_inference() {
                    self.try_serve(s, job, now);
                }
            }
        }
        // Nothing placeable: consider evicting a low-priority resident
        // through a host checkpoint. One preemption in flight at a time
        // keeps victim selection honest about headroom. Aging makes the
        // victim choice clock-dependent, so this pass never skips.
        if self.cfg.preemption && s.preempting == 0 {
            if let Some(victim) = pick_preemption(s, now, self.cfg.aging_rate, self.cfg.slo_aware) {
                // The whole gang checkpoints or none: every replica's
                // reservation is copied out. On a shared fabric the
                // replicas' copies serialize on the host link; with
                // private lanes they drain in parallel.
                let width = s.jobs[victim].gpus_held.len().max(1) as u64;
                let copy = match s.fabric.as_mut() {
                    Some(f) => {
                        let bytes = s.jobs[victim].reserved * width;
                        let tr = f.host_transfer(now, bytes);
                        s.transfers.push(ClusterTransfer {
                            job: s.jobs[victim].spec.name.clone(),
                            iter: u64::MAX,
                            label: "checkpoint".to_owned(),
                            link: "host".to_owned(),
                            dir: CopyDir::DeviceToHost,
                            bytes,
                            want: now,
                            start: tr.start,
                            end: tr.end,
                            wait: tr.start.saturating_since(now),
                            charge: Duration::ZERO,
                            lead: Duration::ZERO,
                        });
                        tr.end.saturating_since(now)
                    }
                    None => self
                        .cfg
                        .spec
                        .copy_time(s.jobs[victim].reserved, CopyDir::DeviceToHost),
                };
                let j = &mut s.jobs[victim];
                j.preempting = true;
                j.preemptions += 1;
                j.checkpoint_overhead += copy;
                // The interrupted iteration is lost: checkpoints only
                // capture completed-iteration boundaries.
                if j.iterating {
                    j.wasted_work += now.saturating_since(j.iter_started);
                    j.iterating = false;
                }
                j.epoch += 1;
                let (at, epoch) = (now + copy, j.epoch);
                s.preempting += 1;
                s.heap.push(ev(at, s.seq, EV_PREEMPT, victim, epoch));
                s.seq += 1;
            }
        }
    }

    /// Snapshots whole-run statistics at the current instant — callable
    /// mid-run (jobs still queued or resident simply have no completion
    /// to report yet) and after [`Cluster::drain`], where it renders the
    /// exact JSON the old batch loop produced. Non-destructive: the run
    /// can continue after a snapshot.
    pub fn stats(&self) -> ClusterStats {
        let s = &self.session;
        let jobs = &s.jobs;
        let start = jobs.iter().map(|j| j.arrival).min().unwrap_or(Time::ZERO);
        let end = jobs
            .iter()
            .filter_map(|j| j.finished_at)
            .max()
            .unwrap_or(start);
        let makespan = end.saturating_since(start);
        let completed: Vec<&JobRun> = jobs.iter().filter(|j| j.finished_at.is_some()).collect();
        // `samples_done` equals `batch × iters` for every completed job,
        // elastic or not: re-batching preserves the sample count exactly.
        // Summed in integers; the one float conversion happens at the
        // throughput division below so no per-job precision is lost.
        let total_samples: u64 = completed.iter().map(|j| j.samples_done).sum();
        let total_requests: u64 = jobs.iter().map(|j| j.requests_served).sum();
        let total_misses: u64 = jobs.iter().map(|j| j.slo_misses).sum();
        let mean = |durs: Vec<Duration>| -> Duration {
            if durs.is_empty() {
                return Duration::ZERO;
            }
            // u128 accumulation: a u64-nanos sum can overflow on long
            // runs with many samples.
            let total: u128 = durs.iter().map(|d| d.as_nanos() as u128).sum();
            Duration::from_nanos((total / durs.len() as u128) as u64)
        };
        let mean_queueing_delay = mean(
            completed
                .iter()
                .map(|j| {
                    j.admitted_at
                        .expect("completed job was admitted")
                        .saturating_since(j.arrival)
                })
                .collect(),
        );
        let mean_jct = mean(
            completed
                .iter()
                .map(|j| j.finished_at.expect("filtered").saturating_since(j.arrival))
                .collect(),
        );
        let job_stats: Vec<JobStats> = jobs
            .iter()
            .map(|j| {
                let jct = j
                    .finished_at
                    .map(|f| f.saturating_since(j.arrival))
                    .unwrap_or(Duration::ZERO);
                JobStats {
                    name: j.spec.name.clone(),
                    model: j.spec.model.name().to_owned(),
                    batch: j.spec.batch,
                    policy: j.spec.policy.name().to_owned(),
                    outcome: if j.rejected {
                        JobOutcome::Rejected
                    } else if j.finished_at.is_some() {
                        JobOutcome::Completed
                    } else if j.cancelled {
                        JobOutcome::Cancelled
                    } else if j.aborted {
                        JobOutcome::Aborted
                    } else if j.checkpoint.is_some() || j.preempting {
                        JobOutcome::Preempted
                    } else {
                        JobOutcome::Starved
                    },
                    replicas: j.spec.gpus,
                    gpus_used: j.gpus_held.clone(),
                    shrunk: j.shrunk,
                    reserved_bytes: j.reserved,
                    footprint_bytes: j.footprint,
                    arrival: j.arrival.saturating_since(Time::ZERO),
                    queueing_delay: j
                        .admitted_at
                        .map(|a| a.saturating_since(j.arrival))
                        .unwrap_or(Duration::ZERO),
                    jct,
                    // Over the iterations actually run: an elastic job
                    // that shrank trains more (cheaper) iterations, and
                    // the mean reflects that. Identical to `spec.iters`
                    // for rigid jobs.
                    mean_iter: match (j.admitted_at, j.finished_at) {
                        (Some(a), Some(f)) if j.iters_done > 0 => {
                            Duration::from_nanos(f.saturating_since(a).as_nanos() / j.iters_done)
                        }
                        _ => Duration::ZERO,
                    },
                    preemptions: j.preemptions,
                    wasted_work: j.wasted_work,
                    resume_latency: j.resume_latency,
                    checkpoint_overhead: j.checkpoint_overhead,
                    allreduce_time: j.allreduce_time,
                    comm_delay: j.comm_delay,
                    rebatches: j.rebatches,
                    elastic_time_at_reduced_batch: j.elastic_reduced_time,
                    samples_preserved: j.samples_done,
                    requests_served: j.requests_served,
                    slo_misses: j.slo_misses,
                    p50_latency: latency_percentile(&j.latencies, 50),
                    p99_latency: latency_percentile(&j.latencies, 99),
                    burst_shrinks: j.burst_shrinks,
                    recompute_time: j.recompute_time,
                    evictions: j.evictions,
                    admission_validations: j.admission_validations,
                    admission_source: j.admission_source.name().to_owned(),
                    predicted_bytes: j.predicted_bytes,
                    prediction_error_permille: j.prediction_error_permille,
                    mispredict_recoveries: j.mispredict_recoveries,
                }
            })
            .collect();
        let makespan_ns = makespan.as_nanos();
        let per_gpu: Vec<GpuStats> = s
            .gpus
            .iter()
            .enumerate()
            .map(|(idx, g)| {
                // The byte-time integral, extended to the makespan end
                // without mutating the ledger (`touch` would).
                let byte_ns = g.byte_ns
                    + g.reserved as u128 * end.saturating_since(g.last_touch).as_nanos() as u128;
                GpuStats {
                    gpu: idx,
                    capacity: g.capacity,
                    peak_reserved_bytes: g.peak,
                    mean_utilization: if makespan_ns == 0 {
                        0.0
                    } else {
                        byte_ns as f64 / (g.capacity as f64 * makespan_ns as f64)
                    },
                    jobs_hosted: g.hosted,
                }
            })
            .collect();
        ClusterStats {
            schema_version: STATS_SCHEMA_VERSION,
            gpus: self.cfg.gpus,
            admission: self.cfg.admission.name().to_owned(),
            strategy: self.cfg.strategy.name().to_owned(),
            submitted: jobs.len(),
            completed: completed.len(),
            cancelled: jobs.iter().filter(|j| j.cancelled).count(),
            oom_rejections: jobs.iter().filter(|j| j.rejected).count(),
            midrun_oom_aborts: jobs.iter().filter(|j| j.aborted).count(),
            preemptions: jobs.iter().map(|j| j.preemptions as usize).sum(),
            rebatches: jobs.iter().map(|j| j.rebatches as usize).sum(),
            requests_served: total_requests,
            slo_misses: total_misses,
            // Attainment in integer permille; an all-training run (no
            // requests) reports a vacuous 1000.
            slo_attainment_permille: ((total_requests - total_misses) * 1000)
                .checked_div(total_requests)
                .unwrap_or(1000),
            burst_shrinks: jobs.iter().map(|j| j.burst_shrinks).sum(),
            burst_cycles: s.burst_cycles,
            mispredict_recoveries: jobs.iter().map(|j| j.mispredict_recoveries).sum(),
            predictor_hits: s.predictor_hits,
            predictor_misses: s.predictor_misses,
            makespan,
            aggregate_samples_per_sec: if makespan.as_secs_f64() == 0.0 {
                0.0
            } else {
                total_samples as f64 / makespan.as_secs_f64()
            },
            mean_queueing_delay,
            mean_jct,
            interconnect: s
                .fabric
                .as_ref()
                .map_or_else(|| "off".to_owned(), |f| f.spec().name.clone()),
            links: s
                .fabric
                .as_ref()
                .map(|f| f.link_stats())
                .unwrap_or_default(),
            per_gpu,
            jobs: job_stats,
        }
    }
}

/// Per-iteration feedback step for replayed swap-ins: a stretched
/// host-to-device transfer moves its want `lead_step × service time`
/// earlier on later iterations — the same §4.4 constant the single-GPU
/// policy uses.
fn lead_step() -> f64 {
    capuchin::CapuchinConfig::default().lead_step
}

/// Routes the just-finished iteration's boundary traffic over the shared
/// fabric and returns when it drains (`now` with no fabric, or nothing to
/// move).
///
/// Two charges, in order:
///
/// 1. **Per-tensor swap replay** — the iteration's recorded transfer
///    timeline is re-issued on the host link, each transfer at its
///    recorded in-iteration offset (every replica's bytes coalesced per
///    tensor). Only the *deduplicated queueing charge* accumulates into
///    `comm_delay` ([`capuchin_sim::Lane::admit_charged`]): the validated
///    wall already contains the wire time, paid once on a private lane,
///    and the dedup keeps one busy period from being billed to every
///    waiter — so per-link charges can never exceed the link's wall-clock
///    occupancy, and per-job `comm_delay` is exactly the sum of its
///    transfer records' charges.
///
///    A stretched host-to-device swap replay (a prefetch, or an
///    on-demand swap-in — the ultimate late prefetch) feeds the §4.4
///    loop during guided replay: its accumulated `lead` pulls the want
///    earlier on the next iteration (a 5%-of-service step per late
///    arrival), which is the cluster-level mirror of the engine's
///    in-trigger feedback.
/// 2. **Gradient allreduce** — for gangs, the ring allreduce
///    (`2·(k−1)/k × gradient bytes` per replica) runs after the swap
///    traffic clears. Validation is single-GPU so no part of this is in
///    the wall: the full span is charged at the barrier.
fn settle_comm(
    j: &mut JobRun,
    now: Time,
    fabric: Option<&mut Interconnect>,
    sink: &mut Vec<ClusterTransfer>,
) -> Time {
    let Some(fabric) = fabric else {
        return now;
    };
    let k = j.gpus_held.len().max(1);
    let iter = j.iters_done;
    let idx = (iter as usize).min(j.replay.len().saturating_sub(1));
    let mut charged = Duration::ZERO;
    if let Some(it) = j.replay.get(idx) {
        // Replay the recorded timeline inside the just-finished
        // iteration's span: offsets are relative to the (uncontended)
        // iteration start, and contention only stretches the span, so
        // every want lands at or before `now`. Wants are kept monotonic —
        // the lane is FIFO and the records are in submission order.
        let mut prev_want = j.iter_started;
        for rec in &it.transfers {
            let lead = j.lead.get(&rec.label).copied().unwrap_or(Duration::ZERO);
            let want = (j.iter_started + rec.offset.saturating_sub(lead)).max(prev_want);
            prev_want = want;
            let bytes = rec.bytes * k as u64;
            let (tr, charge) = fabric.host_admit(want, bytes);
            charged += charge;
            let wait = tr.start.saturating_since(want);
            if wait > Duration::ZERO && rec.dir == CopyDir::HostToDevice {
                // A stretched swap-in — whether the engine had already
                // converted it to a prefetch or it was still on-demand —
                // means the bytes arrived late; pull its in-trigger
                // earlier next iteration (§4.4 feedback).
                let step = tr.end.saturating_since(tr.start).mul_f64(lead_step());
                *j.lead.entry(rec.label.clone()).or_insert(Duration::ZERO) += step;
            }
            sink.push(ClusterTransfer {
                job: j.spec.name.clone(),
                iter,
                label: rec.label.clone(),
                link: "host".to_owned(),
                dir: rec.dir,
                bytes,
                want,
                start: tr.start,
                end: tr.end,
                wait,
                charge,
                lead,
            });
        }
        j.comm_delay += charged;
    }
    let mut comm_end = now + charged;
    if k >= 2 && j.grad_bytes > 0 {
        let route = fabric.allreduce_route(&j.gpus_held);
        let ar = fabric.allreduce(comm_end, &j.gpus_held, j.grad_bytes);
        let per_replica = fabric.spec().allreduce_bytes(j.grad_bytes, k);
        let bytes = if route == "host" {
            per_replica * k as u64
        } else {
            per_replica
        };
        sink.push(ClusterTransfer {
            job: j.spec.name.clone(),
            iter,
            label: "allreduce".to_owned(),
            link: route,
            dir: CopyDir::DeviceToHost,
            bytes,
            want: comm_end,
            start: ar.start,
            end: ar.end,
            wait: ar.start.saturating_since(comm_end),
            charge: Duration::ZERO,
            lead: Duration::ZERO,
        });
        j.allreduce_time += ar.end.saturating_since(comm_end);
        comm_end = ar.end;
    }
    comm_end
}

impl Cluster {
    /// Measured truth for mispredict verification, memoized per `(model,
    /// replica batch, forward-only)`: one unconstrained measuring run
    /// plus planner math ([`min_feasible_budget`]) — **zero validation
    /// engine runs**, so checking predictions never erodes the warm-key
    /// guarantee.
    fn verify_truth(&mut self, spec: &JobSpec) -> VerifiedTruth {
        let rb = spec.replica_batch();
        let forward = spec.is_inference();
        let key = (spec.model, rb, forward);
        if let Some(&t) = self.truths.get(&key) {
            return t;
        }
        let model = self
            .models
            .entry((spec.model, rb))
            .or_insert_with(|| spec.model.build(rb));
        let est = if forward {
            measure_forward_footprint(&model.graph, &self.cfg.spec)
        } else {
            measure_footprint(&model.graph, &self.cfg.spec)
        }
        .expect("unconstrained measuring run cannot OOM");
        let t = VerifiedTruth {
            ideal_peak: est.ideal_peak,
            min_plan: min_feasible_budget(&est, &self.admission.planner),
        };
        self.truths.insert(key, t);
        t
    }

    /// Checks a predicted admission against measured truth at the job's
    /// first completed iteration (or serving round) boundary — the
    /// bottom rung of the fallback ladder. A prediction that *held*
    /// (the grant clears what the truth actually requires) just records
    /// its error score. An under-shoot triggers checkpoint-preemption
    /// recovery: the boundary iteration is discarded as wasted work, the
    /// state is copied to the host, and [`EV_REMEASURE`] re-enters
    /// admission on the measured path. Returns whether a recovery is now
    /// in flight (the caller must return without banking progress).
    fn verify_prediction(&mut self, s: &mut Session, job: usize, now: Time) -> bool {
        if !self.cfg.predictive
            || s.jobs[job].mispredict_checked
            || !matches!(
                s.jobs[job].admission_source,
                AdmissionSource::Predicted { .. }
            )
        {
            return false;
        }
        s.jobs[job].mispredict_checked = true;
        let spec = s.jobs[job].spec.clone();
        let truth = self.verify_truth(&spec);
        let true_full = crate::admission::with_slack(truth.ideal_peak);
        // Score the regression itself (pre-margin) — the safety padding
        // is the knob, not the model.
        if true_full > 0 {
            let diff = s.jobs[job].predicted_raw_full.abs_diff(true_full) as u128;
            s.jobs[job].prediction_error_permille = ((diff * 1000) / true_full as u128) as u64;
        }
        // What the grant actually had to clear: TfOri runs unmanaged at
        // the slack-padded peak; Capuchin only needs the smallest
        // planner-feasible budget.
        let required = match self.admission.mode {
            AdmissionMode::TfOri => true_full,
            AdmissionMode::Capuchin => truth.min_plan.min(true_full),
        };
        // A serving round's KV slots ride on top of the forward base the
        // truth describes; compare the base slice of the reservation.
        let kv_held = if spec.is_inference() {
            spec.kv_bytes_per_request
                .saturating_mul(s.jobs[job].inflight.len() as u64)
        } else {
            0
        };
        if s.jobs[job].reserved.saturating_sub(kv_held) >= required {
            return false;
        }
        // Under-shoot: no feasible plan fits the grant. Recover.
        s.jobs[job].mispredict_recoveries += 1;
        if spec.is_inference() {
            // Give the round's requests back to the queue in arrival
            // order and return their KV slots before checkpointing.
            let n = s.jobs[job].inflight.len() as u64;
            while let Some(t0) = s.jobs[job].inflight.pop() {
                s.jobs[job].req_queue.push_front(t0);
            }
            let kv = spec.kv_bytes_per_request.saturating_mul(n);
            if kv > 0 {
                let held = s.jobs[job].gpus_held.clone();
                s.jobs[job].reserved -= kv;
                for &gpu in &held {
                    s.release_on(gpu, kv, now);
                }
            }
        }
        let width = s.jobs[job].gpus_held.len().max(1) as u64;
        let copy = match s.fabric.as_mut() {
            Some(f) => {
                let bytes = s.jobs[job].reserved * width;
                let tr = f.host_transfer(now, bytes);
                s.transfers.push(ClusterTransfer {
                    job: s.jobs[job].spec.name.clone(),
                    iter: u64::MAX,
                    label: "mispredict-checkpoint".to_owned(),
                    link: "host".to_owned(),
                    dir: CopyDir::DeviceToHost,
                    bytes,
                    want: now,
                    start: tr.start,
                    end: tr.end,
                    wait: tr.start.saturating_since(now),
                    charge: Duration::ZERO,
                    lead: Duration::ZERO,
                });
                tr.end.saturating_since(now)
            }
            None => self
                .cfg
                .spec
                .copy_time(s.jobs[job].reserved, CopyDir::DeviceToHost),
        };
        let j = &mut s.jobs[job];
        // The boundary iteration that exposed the mispredict is not
        // banked: its compute is wasted work, like an interrupted
        // iteration under preemption.
        j.wasted_work += now.saturating_since(j.iter_started);
        j.preemptions += 1;
        j.checkpoint_overhead += copy;
        j.preempting = true;
        if let Some(since) = j.reduced_since.take() {
            j.elastic_reduced_time += now.saturating_since(since);
        }
        j.epoch += 1;
        let (at, epoch) = (now + copy, j.epoch);
        s.preempting += 1;
        s.heap.push(ev(at, s.seq, EV_REMEASURE, job, epoch));
        s.seq += 1;
        true
    }

    /// Feeds a completed measured admission's shape into the regression
    /// store. Only measured-provenance completions qualify — predicted
    /// admissions would re-feed the predictor its own output, and
    /// heuristic budgets were never validated. The cached estimate entry
    /// is the ground truth being recorded, so a missing entry (possible
    /// after an elastic job finished at a reduced batch) just skips.
    fn feed_predictor(&mut self, s: &Session, job: usize) {
        if !self.cfg.predictive {
            return;
        }
        let j = &s.jobs[job];
        let spec = &j.spec;
        if !spec.policy.descriptor().predictable
            || !matches!(j.admission_source, AdmissionSource::Measured)
        {
            return;
        }
        let rb = spec.replica_batch();
        let heuristic = false;
        let key = (spec.model, rb, heuristic);
        let cache = if spec.is_inference() {
            &self.forward_estimates
        } else {
            &self.estimates
        };
        let Some(&(est, needs)) = cache.get(&key) else {
            return;
        };
        self.predictor.observe(
            key_of(spec),
            FootprintSample {
                replica_batch: rb as u64,
                full: needs.full,
                min: needs.min,
                ideal_peak: est.ideal_peak,
                weight_bytes: est.weight_bytes,
                iter_wall: est.iter_wall,
            },
        );
    }

    /// Marks the in-flight iteration complete (compute and boundary
    /// communication both drained): advances the samples cursor by the
    /// current batch (clamped — the final iteration carries a partial
    /// batch), finishing the job — releasing every replica's
    /// reservation — or re-growing an elastically reduced batch, or
    /// scheduling the next iteration.
    fn complete_iteration(&mut self, s: &mut Session, job: usize, now: Time) {
        if s.jobs[job].spec.is_inference() {
            // A serving round ended; its requests complete together.
            self.complete_round(s, job, now);
            return;
        }
        // A predicted grant is checked against measured truth at its
        // first completed boundary; an under-shoot discards this
        // iteration and checkpoint-preempts into measured re-admission.
        if self.verify_prediction(s, job, now) {
            return;
        }
        let j = &mut s.jobs[job];
        // Bank the consumed replay iteration's memory-management costs
        // before the cursor advances (the same index `schedule_iter`
        // read when it started this iteration).
        if !j.replay.is_empty() {
            let idx = (j.iters_done as usize).min(j.replay.len() - 1);
            j.recompute_time += j.replay[idx].recompute_time;
            j.evictions += j.replay[idx].evictions;
        }
        j.iters_done += 1;
        let step = (j.cur_batch as u64).min(j.samples_total.saturating_sub(j.samples_done));
        j.samples_done += step;
        let (iter, samples_done) = (j.iters_done, j.samples_done);
        s.events.push(JobEvent {
            t: now,
            job: job as u64,
            name: s.jobs[job].spec.name.clone(),
            kind: JobEventKind::IterationDone { iter, samples_done },
        });
        let j = &mut s.jobs[job];
        if j.samples_done >= j.samples_total {
            assert!(!j.gpus_held.is_empty(), "running job holds its gang");
            j.finished_at = Some(now);
            if let Some(since) = j.reduced_since.take() {
                j.elastic_reduced_time += now.saturating_since(since);
            }
            // `gpus_held` is kept for stats; only the reservations go.
            let held = j.gpus_held.clone();
            let reserved = j.reserved;
            s.resident_jobs.remove(&job);
            for &gpu in &held {
                s.release_on(gpu, reserved, now);
                remove_resident(&mut s.gpus[gpu], job);
            }
            s.events.push(JobEvent {
                t: now,
                job: job as u64,
                name: s.jobs[job].spec.name.clone(),
                kind: JobEventKind::Completed,
            });
            for &gpu in &held {
                reprice_residents(&mut s.jobs, &s.gpus, gpu, now, &mut s.seq, &mut s.heap);
            }
            // A measured completion is ground truth: warm the predictor
            // so the next arrival of this family admits for free.
            self.feed_predictor(s, job);
            return;
        }
        // A burst-absorption shrink decided by the serving loop applies
        // at this boundary, ahead of any re-grow attempt.
        if self.cfg.elastic && s.jobs[job].pending_shrink.is_some() && self.try_shrink(s, job, now)
        {
            return;
        }
        // A reduced elastic job checks for freed headroom at every
        // completed-iteration boundary — the only instants a batch change
        // is sound (the engine snapshot cursor is at a boundary).
        if self.cfg.elastic
            && s.jobs[job].spec.elastic
            && s.jobs[job].cur_batch < s.jobs[job].spec.batch.max(1)
            && self.try_regrow(s, job, now)
        {
            return;
        }
        if schedule_iter(&mut s.jobs, &s.gpus, job, now, &mut s.seq, &mut s.heap).is_err() {
            abort_job(s, job, now);
        }
    }

    /// Tries to grow `job`'s batch back toward the requested size using
    /// headroom on the GPUs it already holds (growth happens in place —
    /// the gang keeps its devices). Bisects the ladder candidates above
    /// the current batch; on success the new reservation is claimed
    /// immediately, the checkpoint (D2H of the old reservation) and
    /// restore (H2D of the new) copies are charged on every replica —
    /// re-planning at a new batch goes through the same
    /// snapshot/restore path preemption uses
    /// ([`capuchin_executor::Engine::restore_rebatched`]) — and
    /// `EV_REGROW` fires when they drain. Returns whether a re-grow is
    /// now in flight (the caller must not schedule the next iteration).
    fn try_regrow(&mut self, s: &mut Session, job: usize, now: Time) -> bool {
        let cur = s.jobs[job].cur_batch;
        let above: Vec<usize> =
            elastic_batches(s.jobs[job].spec.batch, self.cfg.min_batch_fraction)
                .into_iter()
                .filter(|&b| b > cur)
                .collect();
        if above.is_empty() {
            return false;
        }
        // Headroom on each held device with this job's own reservation
        // returned; the gang's tightest member caps the grant.
        let old = s.jobs[job].reserved;
        let free = s.jobs[job]
            .gpus_held
            .iter()
            .map(|&g| s.gpus[g].capacity.saturating_sub(s.gpus[g].reserved) + old)
            .min()
            .expect("resident job holds its gang");
        let jobs = &s.jobs;
        let chosen = bisect_batch(&above, |b| {
            let needs = self.estimate_at(&jobs[job].spec, b).1;
            free >= needs.min
                && jobs[job]
                    .failed
                    .get(&b)
                    .is_none_or(|&fb| free.min(needs.full) > fb)
        });
        self.charge_admission(&mut s.jobs[job]);
        let Some(batch) = chosen else { return false };
        let needs = self.estimate_at(&s.jobs[job].spec, batch).1;
        let grant = free.min(needs.full);
        let shrunk = grant < needs.full;
        let spec = s.jobs[job].spec.clone();
        let validated = self.validated_replay(&spec, batch, grant, shrunk);
        self.charge_admission(&mut s.jobs[job]);
        let Some(replay) = validated else {
            let j = &mut s.jobs[job];
            let e = j.failed.entry(batch).or_insert(grant);
            *e = (*e).max(grant);
            return false;
        };
        // The regrown grant was engine-validated: upgrade a predicted
        // provenance to the stronger measured guarantee.
        s.jobs[job].admission_source = AdmissionSource::Measured;
        // Charge the batch change like a preemption round-trip: D2H of
        // the old reservation, then H2D of the new, on every replica. On
        // a shared fabric both serialize on the host link.
        let width = s.jobs[job].gpus_held.len().max(1) as u64;
        let copy = match s.fabric.as_mut() {
            Some(f) => {
                let out_bytes = old * width;
                let out = f.host_transfer(now, out_bytes);
                s.transfers.push(ClusterTransfer {
                    job: s.jobs[job].spec.name.clone(),
                    iter: u64::MAX,
                    label: "regrow-checkpoint".to_owned(),
                    link: "host".to_owned(),
                    dir: CopyDir::DeviceToHost,
                    bytes: out_bytes,
                    want: now,
                    start: out.start,
                    end: out.end,
                    wait: out.start.saturating_since(now),
                    charge: Duration::ZERO,
                    lead: Duration::ZERO,
                });
                let back_bytes = grant * width;
                let back = f.host_transfer(out.end, back_bytes);
                s.transfers.push(ClusterTransfer {
                    job: s.jobs[job].spec.name.clone(),
                    iter: u64::MAX,
                    label: "regrow-restore".to_owned(),
                    link: "host".to_owned(),
                    dir: CopyDir::HostToDevice,
                    bytes: back_bytes,
                    want: out.end,
                    start: back.start,
                    end: back.end,
                    wait: back.start.saturating_since(out.end),
                    charge: Duration::ZERO,
                    lead: Duration::ZERO,
                });
                back.end.saturating_since(now)
            }
            None => {
                self.cfg.spec.copy_time(old, CopyDir::DeviceToHost)
                    + self.cfg.spec.copy_time(grant, CopyDir::HostToDevice)
            }
        };
        // Claim the new reservation immediately: no placement decided
        // during the copy window can over-commit the headroom the grown
        // batch is about to occupy.
        let held = s.jobs[job].gpus_held.clone();
        for &gpu in &held {
            s.release_on(gpu, old, now);
            s.reserve_on(gpu, grant, now);
        }
        let j = &mut s.jobs[job];
        j.reserved = grant;
        j.checkpoint_overhead += copy;
        j.rebatches += 1;
        j.pending_regrow = Some(Regrow {
            batch,
            shrunk,
            replay,
        });
        j.epoch += 1;
        let (at, epoch) = (now + copy, j.epoch);
        s.heap.push(ev(at, s.seq, EV_REGROW, job, epoch));
        s.seq += 1;
        true
    }

    /// Schedules `job`'s next request arrival, until `spec.requests`
    /// have been generated. Inter-arrival gaps are exponential around
    /// `1 / request_rate`, drawn from the job's own deterministic
    /// generator — the arrival process is a property of the workload,
    /// never of scheduling decisions, so request events carry epoch 0
    /// and ignore epoch bumps entirely.
    fn schedule_next_request(&mut self, s: &mut Session, job: usize, now: Time) {
        let j = &mut s.jobs[job];
        if j.req_scheduled >= j.spec.requests {
            return;
        }
        j.req_scheduled += 1;
        // Clamp the unit draw away from 0 so the log stays finite; the
        // rate was validated positive at parse time (code-built specs
        // defensively floor it here too).
        let u = j.req_rng.unit_f64().max(1e-12);
        let rate = j.spec.request_rate.max(1e-9);
        let gap = Duration::from_secs_f64(-u.ln() / rate);
        s.heap.push(ev(now + gap, s.seq, EV_REQ_ARRIVE, job, 0));
        s.seq += 1;
    }

    /// Opens a serving round for a resident, idle inference job: up to
    /// `max_inflight` requests move from the queue into the round, each
    /// reserving its KV state on every held replica for the round's
    /// duration. Live headroom gates every slot — the admission-time
    /// license ([`JobRun::lic_inflight`]) priced the grant, but memory
    /// freed since (completions, elastic shrinks) raises the achievable
    /// concurrency without re-admission. A KV-blocked backlog asks an
    /// elastic training neighbour to shrink ([`Cluster::absorb_burst`]).
    fn try_serve(&mut self, s: &mut Session, job: usize, now: Time) {
        {
            let j = &s.jobs[job];
            if !j.spec.is_inference()
                || j.gpus_held.is_empty()
                || j.iterating
                || j.preempting
                || !j.inflight.is_empty()
                || j.pending_regrow.is_some()
                || j.cancelled
                || j.aborted
                || j.finished_at.is_some()
                || j.req_queue.is_empty()
            {
                return;
            }
        }
        let kv = s.jobs[job].spec.kv_bytes_per_request;
        let lic = s.jobs[job].spec.max_inflight.max(1);
        let held = s.jobs[job].gpus_held.clone();
        let mut admitted = 0usize;
        while admitted < lic && !s.jobs[job].req_queue.is_empty() {
            if kv > 0 {
                // Every replica mirrors the KV state, so the tightest
                // held device gates each admission individually — the
                // round never over-commits by a single request.
                if !held.iter().all(|&g| s.pool.headroom(g) >= kv) {
                    break;
                }
                for &gpu in &held {
                    s.reserve_on(gpu, kv, now);
                }
                s.jobs[job].reserved += kv;
            }
            let t0 = s.jobs[job]
                .req_queue
                .pop_front()
                .expect("loop condition checked non-empty");
            s.jobs[job].inflight.push(t0);
            admitted += 1;
        }
        if admitted > 0
            && schedule_iter(&mut s.jobs, &s.gpus, job, now, &mut s.seq, &mut s.heap).is_err()
        {
            abort_job(s, job, now);
            return;
        }
        if admitted < lic && !s.jobs[job].req_queue.is_empty() {
            self.absorb_burst(s, job);
        }
    }

    /// Marks an inference serving round complete: every in-flight
    /// request is served at this instant — its latency recorded in
    /// integer nanoseconds and judged against the SLO — and its KV
    /// reservation released. The job then either completes (all
    /// requests served) or immediately opens the next round over the
    /// queued backlog.
    fn complete_round(&mut self, s: &mut Session, job: usize, now: Time) {
        // Same first-boundary check as training: an under-shot predicted
        // grant requeues the round's requests and re-enters admission on
        // the measured path before anything is banked.
        if self.verify_prediction(s, job, now) {
            return;
        }
        let j = &mut s.jobs[job];
        if !j.replay.is_empty() {
            let idx = (j.iters_done as usize).min(j.replay.len() - 1);
            j.recompute_time += j.replay[idx].recompute_time;
            j.evictions += j.replay[idx].evictions;
        }
        j.iters_done += 1;
        let served = std::mem::take(&mut j.inflight);
        let n = served.len() as u64;
        j.requests_served += n;
        // One "sample" per request keeps the existing progress and
        // throughput accounting meaningful for serving jobs.
        j.samples_done = j.requests_served;
        let (iter, samples_done) = (j.iters_done, j.samples_done);
        let name = j.spec.name.clone();
        let slo_ns = j.slo_ns;
        s.events.push(JobEvent {
            t: now,
            job: job as u64,
            name: name.clone(),
            kind: JobEventKind::IterationDone { iter, samples_done },
        });
        for &t0 in &served {
            let lat = now.saturating_since(t0);
            s.jobs[job].latencies.push(lat.as_nanos());
            s.events.push(JobEvent {
                t: now,
                job: job as u64,
                name: name.clone(),
                kind: JobEventKind::RequestServed { latency: lat },
            });
            if slo_ns > 0 && lat.as_nanos() > slo_ns {
                s.jobs[job].slo_misses += 1;
                s.events.push(JobEvent {
                    t: now,
                    job: job as u64,
                    name: name.clone(),
                    kind: JobEventKind::SloMissed { latency: lat },
                });
            }
        }
        // The round's KV state drains with it.
        let kv = s.jobs[job].spec.kv_bytes_per_request.saturating_mul(n);
        if kv > 0 {
            let held = s.jobs[job].gpus_held.clone();
            for &gpu in &held {
                s.release_on(gpu, kv, now);
            }
            s.jobs[job].reserved -= kv;
        }
        let j = &mut s.jobs[job];
        if j.requests_served >= j.spec.requests {
            assert!(!j.gpus_held.is_empty(), "serving job holds its gang");
            j.finished_at = Some(now);
            let held = j.gpus_held.clone();
            let reserved = j.reserved;
            s.resident_jobs.remove(&job);
            for &gpu in &held {
                s.release_on(gpu, reserved, now);
                remove_resident(&mut s.gpus[gpu], job);
            }
            s.events.push(JobEvent {
                t: now,
                job: job as u64,
                name,
                kind: JobEventKind::Completed,
            });
            for &gpu in &held {
                reprice_residents(&mut s.jobs, &s.gpus, gpu, now, &mut s.seq, &mut s.heap);
            }
            self.feed_predictor(s, job);
            return;
        }
        // Backlog waiting: the next round opens in the same instant.
        self.try_serve(s, job, now);
    }

    /// Finds an elastic training neighbour to shrink one ladder rung so
    /// `job`'s KV-blocked backlog can be served. The victim must hold
    /// *every* deficient device (a gang re-batches whole), have a rung
    /// left below its current batch, and no batch change already in
    /// flight; the lowest-priority such resident is asked. The shrink
    /// itself is deferred to the victim's next completed-iteration
    /// boundary — the only instant a batch change is sound.
    fn absorb_burst(&mut self, s: &mut Session, job: usize) {
        if !self.cfg.elastic {
            return;
        }
        let kv = s.jobs[job].spec.kv_bytes_per_request;
        if kv == 0 {
            return;
        }
        let deficient: Vec<usize> = s.jobs[job]
            .gpus_held
            .iter()
            .copied()
            .filter(|&g| s.pool.headroom(g) < kv)
            .collect();
        if deficient.is_empty() {
            return;
        }
        let candidates: Vec<usize> = {
            let jobs = &s.jobs;
            let mut v: Vec<usize> = s
                .resident_jobs
                .iter()
                .copied()
                .filter(|&v| {
                    let t = &jobs[v];
                    t.spec.class == JobClass::Training
                        && t.spec.elastic
                        && !t.preempting
                        && t.pending_regrow.is_none()
                        && t.pending_shrink.is_none()
                        && deficient.iter().all(|d| t.gpus_held.contains(d))
                })
                .collect();
            v.sort_by_key(|&c| (jobs[c].spec.priority, c));
            v
        };
        for v in candidates {
            let ladder = elastic_batches(s.jobs[v].spec.batch, self.cfg.min_batch_fraction);
            let cur = s.jobs[v].cur_batch;
            // The ladder is descending: the first rung under the current
            // batch is the smallest shrink that frees any memory.
            if let Some(target) = ladder.into_iter().find(|&b| b < cur) {
                s.jobs[v].pending_shrink = Some(target);
                return;
            }
        }
    }

    /// Applies a pending burst-absorption shrink at `job`'s completed-
    /// iteration boundary: re-validates at the reduced batch, releases
    /// the freed bytes immediately (the burst claims them during the
    /// copy window), and charges the same checkpoint/restore round-trip
    /// a re-grow pays. Returns whether a batch change is now in flight
    /// (the caller must not schedule the next iteration).
    fn try_shrink(&mut self, s: &mut Session, job: usize, now: Time) -> bool {
        let Some(target) = s.jobs[job].pending_shrink.take() else {
            return false;
        };
        if target >= s.jobs[job].cur_batch {
            return false;
        }
        let needs = self.estimate_at(&s.jobs[job].spec, target).1;
        self.charge_admission(&mut s.jobs[job]);
        let old = s.jobs[job].reserved;
        let grant = old.min(needs.full);
        if grant < needs.min {
            return false;
        }
        let shrunk = grant < needs.full;
        let spec = s.jobs[job].spec.clone();
        let validated = self.validated_replay(&spec, target, grant, shrunk);
        self.charge_admission(&mut s.jobs[job]);
        let Some(replay) = validated else {
            let j = &mut s.jobs[job];
            let e = j.failed.entry(target).or_insert(grant);
            *e = (*e).max(grant);
            return false;
        };
        // Same provenance upgrade as re-grow: the shrunk grant is now
        // engine-validated.
        s.jobs[job].admission_source = AdmissionSource::Measured;
        let width = s.jobs[job].gpus_held.len().max(1) as u64;
        let copy = match s.fabric.as_mut() {
            Some(f) => {
                let out_bytes = old * width;
                let out = f.host_transfer(now, out_bytes);
                s.transfers.push(ClusterTransfer {
                    job: s.jobs[job].spec.name.clone(),
                    iter: u64::MAX,
                    label: "shrink-checkpoint".to_owned(),
                    link: "host".to_owned(),
                    dir: CopyDir::DeviceToHost,
                    bytes: out_bytes,
                    want: now,
                    start: out.start,
                    end: out.end,
                    wait: out.start.saturating_since(now),
                    charge: Duration::ZERO,
                    lead: Duration::ZERO,
                });
                let back_bytes = grant * width;
                let back = f.host_transfer(out.end, back_bytes);
                s.transfers.push(ClusterTransfer {
                    job: s.jobs[job].spec.name.clone(),
                    iter: u64::MAX,
                    label: "shrink-restore".to_owned(),
                    link: "host".to_owned(),
                    dir: CopyDir::HostToDevice,
                    bytes: back_bytes,
                    want: out.end,
                    start: back.start,
                    end: back.end,
                    wait: back.start.saturating_since(out.end),
                    charge: Duration::ZERO,
                    lead: Duration::ZERO,
                });
                back.end.saturating_since(now)
            }
            None => {
                self.cfg.spec.copy_time(old, CopyDir::DeviceToHost)
                    + self.cfg.spec.copy_time(grant, CopyDir::HostToDevice)
            }
        };
        // The freed bytes return to the pool now, not when the copies
        // drain: the whole point is that the blocked burst can claim
        // them in this very settle pass.
        let held = s.jobs[job].gpus_held.clone();
        for &gpu in &held {
            s.release_on(gpu, old - grant, now);
        }
        let j = &mut s.jobs[job];
        j.reserved = grant;
        j.checkpoint_overhead += copy;
        j.rebatches += 1;
        j.burst_shrinks += 1;
        j.shrunk_for_burst = true;
        j.pending_regrow = Some(Regrow {
            batch: target,
            shrunk,
            replay,
        });
        j.epoch += 1;
        let (at, epoch) = (now + copy, j.epoch);
        s.heap.push(ev(at, s.seq, EV_REGROW, job, epoch));
        s.seq += 1;
        true
    }
}

/// Nearest-rank percentile over integer-nanosecond latency samples —
/// `sorted[(len − 1) × p / 100]`. All accumulation stays in u64 space;
/// the one Duration conversion happens here, at stats assembly.
fn latency_percentile(ns: &[u64], p: u64) -> Duration {
    if ns.is_empty() {
        return Duration::ZERO;
    }
    let mut sorted = ns.to_vec();
    sorted.sort_unstable();
    let idx = ((sorted.len() - 1) as u64 * p / 100) as usize;
    Duration::from_nanos(sorted[idx])
}

/// The contention factor a job experiences: the maximum resident count
/// over the GPUs its gang holds. The lockstep barrier waits for the
/// slowest replica, so the most crowded device paces the whole gang.
fn contention_factor(jobs: &[JobRun], gpus: &[GpuState], job: usize) -> f64 {
    jobs[job]
        .gpus_held
        .iter()
        .map(|&g| gpus[g].resident.len())
        .max()
        .unwrap_or(1)
        .max(1) as f64
}

/// Schedules the end of `job`'s next iteration's compute: recorded wall
/// time (the validation run's final wall repeats past its length) scaled
/// by the gang's contention factor. Re-pricing adjusts the end later if
/// residency changes mid-iteration; boundary communication is charged
/// separately when the compute drains.
///
/// # Errors
///
/// Returns [`EmptyWalls`] when the job has no replay trace — admission
/// rejects such traces, so this is a defence, not a path.
fn schedule_iter(
    jobs: &mut [JobRun],
    gpus: &[GpuState],
    job: usize,
    now: Time,
    seq: &mut u64,
    heap: &mut BinaryHeap<Event>,
) -> Result<(), EmptyWalls> {
    assert!(
        !jobs[job].gpus_held.is_empty(),
        "scheduled job holds a gang"
    );
    let k = contention_factor(jobs, gpus, job);
    let j = &mut jobs[job];
    if j.replay.is_empty() {
        return Err(EmptyWalls);
    }
    let idx = (j.iters_done as usize).min(j.replay.len() - 1);
    let wall = j.replay[idx].wall;
    j.iter_wall = wall;
    j.iter_k = k;
    j.iter_progress = 0.0;
    j.iter_started = now;
    j.iter_priced_at = now;
    j.iterating = true;
    let end = now + wall.mul_f64(k);
    heap.push(ev(end, *seq, EV_ITER_END, job, j.epoch));
    *seq += 1;
    Ok(())
}

/// Re-prices every in-flight iteration on `gpu` after its resident set
/// changed at `now`: progress accrued under the old contention factor is
/// banked, the remainder is rescaled to the new factor, and a fresh
/// iteration-end event supersedes the stale one (epoch bump). A gang's
/// factor spans all its GPUs, so a residency change on one device
/// re-prices gang-mates whose other devices are untouched.
fn reprice_residents(
    jobs: &mut [JobRun],
    gpus: &[GpuState],
    gpu: usize,
    now: Time,
    seq: &mut u64,
    heap: &mut BinaryHeap<Event>,
) {
    let residents = gpus[gpu].resident.clone();
    for r in residents {
        let k = contention_factor(jobs, gpus, r);
        let j = &mut jobs[r];
        if !j.iterating || j.iter_k == k {
            continue;
        }
        let base = j.iter_wall.as_nanos() as f64;
        if base > 0.0 {
            let elapsed = now.saturating_since(j.iter_priced_at).as_nanos() as f64;
            j.iter_progress = (j.iter_progress + elapsed / (j.iter_k * base)).min(1.0);
        } else {
            j.iter_progress = 1.0;
        }
        j.iter_k = k;
        j.iter_priced_at = now;
        let remaining = Duration::from_nanos(((1.0 - j.iter_progress) * k * base).round() as u64);
        j.epoch += 1;
        heap.push(ev(now + remaining, *seq, EV_ITER_END, r, j.epoch));
        *seq += 1;
    }
}

/// Evicts `job` as a mid-run abort: every replica's reservation is
/// released, its events are invalidated, and it counts toward
/// `midrun_oom_aborts`.
fn abort_job(s: &mut Session, job: usize, now: Time) {
    let j = &mut s.jobs[job];
    j.aborted = true;
    j.iterating = false;
    if let Some(since) = j.reduced_since.take() {
        j.elastic_reduced_time += now.saturating_since(since);
    }
    j.epoch += 1;
    let held = std::mem::take(&mut j.gpus_held);
    let reserved = j.reserved;
    s.resident_jobs.remove(&job);
    for &gpu in &held {
        s.release_on(gpu, reserved, now);
        remove_resident(&mut s.gpus[gpu], job);
    }
    s.events.push(JobEvent {
        t: now,
        job: job as u64,
        name: s.jobs[job].spec.name.clone(),
        kind: JobEventKind::Aborted,
    });
    for &gpu in &held {
        reprice_residents(&mut s.jobs, &s.gpus, gpu, now, &mut s.seq, &mut s.heap);
    }
}

/// Selects a preemption victim, or `None` when preemption cannot help.
///
/// For each *fresh* waiting job (checkpointed jobs queue for natural
/// space — letting them preempt would ping-pong), in descending effective
/// priority (`priority + aging_rate × wait`): if its gang fits nowhere
/// as-is, look for the lowest-static-priority iterating resident whose
/// eviction would open enough headroom for the waiter's full gang width,
/// with the victim's priority strictly below the waiter's effective
/// priority. A victim gang is evicted whole — releasing its reservation
/// on *every* device it holds — or not at all.
fn pick_preemption(s: &Session, now: Time, aging_rate: f64, slo_aware: bool) -> Option<usize> {
    let jobs = &s.jobs;
    let ap = aging_permille(aging_rate);
    let eff = |priority: u32, since: Time| {
        effective_priority_permille(priority, ap, now.saturating_since(since))
    };
    // A waiter's urgency includes its SLO boost: a latency job with
    // requests burning slack can evict where its static priority alone
    // could not. 0 for training waiters and under SLO-blind scheduling.
    let eff_of = |p: usize| {
        eff(jobs[p].spec.priority, jobs[p].queued_at) + jobs[p].slo_boost(now, slo_aware) as u128
    };
    // Would evicting `victim` open enough devices for waiter `jp`'s full
    // gang? The fit predicate is monotone in headroom (a per-waiter
    // threshold, see [`CandidateJob::fit_threshold`]), so the base count
    // is one index probe; the victim's held devices — the only ones whose
    // headroom the eviction changes, disjoint from the base count since
    // they sit below the threshold — are then credited individually.
    let gang_fits = |jp: &JobRun, victim: Option<usize>| {
        let cand = jp.candidate(0);
        let Some(t) = cand.fit_threshold() else {
            // A failed budget at or above the full need: no headroom,
            // freed or not, can ever satisfy this waiter.
            return false;
        };
        let width = jp.width();
        let base = s.pool.count_at_least(t, width);
        if base >= width {
            return true;
        }
        let Some(v) = victim else { return false };
        let vres = jobs[v].reserved;
        let credited = jobs[v]
            .gpus_held
            .iter()
            .filter(|&&g| {
                let h = s.pool.headroom(g);
                h < t && h + vres >= t
            })
            .count();
        base + credited >= width
    };
    let mut waiters: Vec<usize> = s
        .pending
        .values()
        .copied()
        .filter(|&p| jobs[p].checkpoint.is_none())
        .collect();
    waiters.sort_by_cached_key(|&a| {
        (
            Reverse(eff_of(a)),
            Reverse(jobs[a].spec.priority),
            jobs[a].queued_at.as_nanos(),
            a,
        )
    });
    for &p in &waiters {
        let jp = &jobs[p];
        let ep = eff_of(p);
        if gang_fits(jp, None) {
            // Placeable without violence; the strategy just chose not to
            // (e.g. FIFO head-of-line). Preemption is not the tool.
            continue;
        }
        // Inference residents are never victims: checkpoint-preempting a
        // serving job mid-request would strand its in-flight latencies
        // behind a host round-trip the SLO never priced.
        let mut victims: Vec<usize> = s
            .resident_jobs
            .iter()
            .copied()
            .filter(|&v| jobs[v].spec.class == JobClass::Training)
            .filter(|&v| jobs[v].iterating && !jobs[v].preempting)
            .filter(|&v| (jobs[v].spec.priority as u128) * 1000 < ep)
            .collect();
        victims.sort_by_key(|&v| (jobs[v].spec.priority, v));
        for &v in &victims {
            if gang_fits(jp, Some(v)) {
                return Some(v);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::{synthetic_jobs, JobPolicy};

    fn small_workload() -> Vec<JobSpec> {
        vec![
            JobSpec {
                name: "a".into(),
                model: capuchin_models::ModelKind::Vgg16,
                batch: 16,
                gpus: 1,
                policy: JobPolicy::Capuchin,
                iters: 3,
                priority: 0,
                arrival_time: 0.0,
                elastic: false,
                ..JobSpec::default()
            },
            JobSpec {
                name: "b".into(),
                model: capuchin_models::ModelKind::ResNet50,
                batch: 16,
                gpus: 1,
                policy: JobPolicy::TfOri,
                iters: 3,
                priority: 1,
                arrival_time: 0.1,
                elastic: false,
                ..JobSpec::default()
            },
        ]
    }

    #[test]
    fn small_workload_completes_on_one_gpu() {
        let cfg = ClusterConfig::builder().gpus(1).build().unwrap();
        let stats = Cluster::new(cfg).run(&small_workload());
        assert_eq!(stats.submitted, 2);
        assert_eq!(stats.completed, 2);
        assert_eq!(stats.oom_rejections, 0);
        assert_eq!(stats.midrun_oom_aborts, 0);
        assert_eq!(stats.preemptions, 0);
        assert!(stats.makespan > Duration::ZERO);
        assert!(stats.aggregate_samples_per_sec > 0.0);
        assert!(stats.per_gpu[0].peak_reserved_bytes > 0);
        assert!(stats.per_gpu[0].mean_utilization > 0.0);
        assert_eq!(stats.interconnect, "off");
        assert!(stats.links.is_empty());
    }

    #[test]
    fn same_seed_runs_are_byte_identical() {
        let jobs = synthetic_jobs(6, 1, 0.5);
        let a = Cluster::new(ClusterConfig::default()).run(&jobs).to_json();
        let b = Cluster::new(ClusterConfig::default()).run(&jobs).to_json();
        assert_eq!(a, b);
    }

    #[test]
    fn tf_ori_rejects_what_capuchin_shrinks() {
        // VGG16 @ 320 (ideal peak ≈ 19 GiB) oversubscribes a bare 16 GiB
        // device.
        let big = vec![JobSpec {
            name: "big".into(),
            model: capuchin_models::ModelKind::Vgg16,
            batch: 320,
            gpus: 1,
            policy: JobPolicy::Capuchin,
            iters: 3,
            priority: 0,
            arrival_time: 0.0,
            elastic: false,
            ..JobSpec::default()
        }];
        let tf = Cluster::new(
            ClusterConfig::builder()
                .gpus(1)
                .admission(AdmissionMode::TfOri)
                .build()
                .unwrap(),
        )
        .run(&big);
        assert_eq!(tf.oom_rejections, 1, "{}", tf.to_json());
        let cap = Cluster::new(
            ClusterConfig::builder()
                .gpus(1)
                .admission(AdmissionMode::Capuchin)
                .build()
                .unwrap(),
        )
        .run(&big);
        assert_eq!(cap.completed, 1, "{}", cap.to_json());
        assert!(cap.jobs[0].shrunk);
        assert!(cap.jobs[0].reserved_bytes < cap.jobs[0].footprint_bytes);
    }

    /// A gang splits its batch: admission measures the per-replica
    /// footprint, all replicas are placed atomically, and the gang
    /// completes with allreduce time visible when a fabric is modelled.
    #[test]
    fn gang_places_all_replicas_atomically() {
        let gang = vec![JobSpec {
            name: "gang".into(),
            model: capuchin_models::ModelKind::ResNet50,
            batch: 64,
            gpus: 2,
            policy: JobPolicy::TfOri,
            iters: 3,
            priority: 0,
            arrival_time: 0.0,
            elastic: false,
            ..JobSpec::default()
        }];
        let stats = Cluster::new(
            ClusterConfig::builder()
                .gpus(2)
                .interconnect(Some(InterconnectSpec::pcie_shared()))
                .build()
                .unwrap(),
        )
        .run(&gang);
        assert_eq!(stats.completed, 1, "{}", stats.to_json());
        let j = &stats.jobs[0];
        assert_eq!(j.replicas, 2);
        assert_eq!(j.gpus_used, vec![0, 1]);
        assert!(j.allreduce_time > Duration::ZERO);
        // Both devices hosted one replica with the same reservation.
        assert_eq!(stats.per_gpu[0].peak_reserved_bytes, j.reserved_bytes);
        assert_eq!(stats.per_gpu[1].peak_reserved_bytes, j.reserved_bytes);
        // The host link carried the allreduce traffic.
        assert!(stats.links[0].bytes > 0);
    }

    /// A gang wider than the cluster is rejected defensively at arrival
    /// (parse-time validation already catches it for workload files).
    #[test]
    fn oversized_gang_is_rejected_not_panicked() {
        let wide = vec![JobSpec {
            name: "wide".into(),
            model: capuchin_models::ModelKind::ResNet50,
            batch: 64,
            gpus: 4,
            policy: JobPolicy::TfOri,
            iters: 2,
            priority: 0,
            arrival_time: 0.0,
            elastic: false,
            ..JobSpec::default()
        }];
        let stats = Cluster::new(ClusterConfig::builder().gpus(2).build().unwrap()).run(&wide);
        assert_eq!(stats.oom_rejections, 1);
        assert_eq!(stats.jobs[0].outcome, JobOutcome::Rejected);
        assert!(stats.jobs[0].gpus_used.is_empty());
    }

    /// With the interconnect modelled, two co-resident shrunk jobs (both
    /// replaying swap traffic over the one host link) finish later than
    /// with private lanes; an unconstrained fabric reproduces the private
    /// timings exactly.
    #[test]
    fn shared_fabric_stretches_swapping_neighbours() {
        let swapper = |name: &str| JobSpec {
            name: name.into(),
            model: capuchin_models::ModelKind::Vgg16,
            batch: 320,
            gpus: 1,
            policy: JobPolicy::Capuchin,
            iters: 3,
            priority: 0,
            arrival_time: 0.0,
            elastic: false,
            ..JobSpec::default()
        };
        let jobs = vec![swapper("s0"), swapper("s1")];
        let cfg = |ic: Option<InterconnectSpec>| {
            ClusterConfig::builder()
                .gpus(2)
                .interconnect(ic)
                .build()
                .unwrap()
        };
        let off = Cluster::new(cfg(None)).run(&jobs);
        let on = Cluster::new(cfg(Some(InterconnectSpec::pcie_shared()))).run(&jobs);
        let free = Cluster::new(cfg(Some(InterconnectSpec::unconstrained()))).run(&jobs);
        assert_eq!(off.completed, 2);
        assert_eq!(on.completed, 2);
        // Both jobs swap; their replayed traffic shares one link, so at
        // least one queues behind the other.
        let total_delay: Duration = on.jobs.iter().map(|j| j.comm_delay).sum();
        assert!(total_delay > Duration::ZERO, "{}", on.to_json());
        assert!(on.makespan > off.makespan);
        // The no-contention limit matches the unmodelled fabric.
        for (a, b) in off.jobs.iter().zip(free.jobs.iter()) {
            assert_eq!(a.jct, b.jct, "{}: jct drifted", a.name);
            assert_eq!(a.queueing_delay, b.queueing_delay);
            assert_eq!(a.mean_iter, b.mean_iter);
        }
        assert_eq!(off.makespan, free.makespan);
    }

    /// Two staggered jobs must slow each other for exactly the overlap:
    /// the first job's in-flight iteration is re-priced when the second
    /// arrives mid-iteration, so neither keeps a stale 1× wall.
    #[test]
    fn staggered_jobs_reprice_in_flight_iterations() {
        let solo = |arrival: f64, name: &str| JobSpec {
            name: name.into(),
            model: capuchin_models::ModelKind::ResNet50,
            batch: 16,
            gpus: 1,
            policy: JobPolicy::TfOri,
            iters: 4,
            priority: 0,
            arrival_time: arrival,
            elastic: false,
            ..JobSpec::default()
        };
        let baseline = Cluster::new(ClusterConfig::builder().gpus(1).build().unwrap())
            .run(&[solo(0.0, "alone")]);
        let solo_jct = baseline.jobs[0].jct;
        assert!(solo_jct > Duration::ZERO);
        // Stagger the second arrival into the middle of the first job's
        // run (well past admission, well before completion).
        let stagger = solo_jct.as_secs_f64() * 0.4;
        let both = Cluster::new(ClusterConfig::builder().gpus(1).build().unwrap())
            .run(&[solo(0.0, "first"), solo(stagger, "second")]);
        assert_eq!(both.completed, 2, "{}", both.to_json());
        let first = &both.jobs[0];
        let second = &both.jobs[1];
        // Both must be slower than solo: the first pays 2× for its tail
        // (including the re-priced in-flight iteration), the second pays
        // 2× until the first finishes.
        assert!(
            first.jct > solo_jct,
            "first job untouched by contention: {:?} vs solo {:?}",
            first.jct,
            solo_jct
        );
        assert!(
            second.jct > solo_jct,
            "second job untouched by contention: {:?} vs solo {:?}",
            second.jct,
            solo_jct
        );
        // And the overlap is bounded: neither can be slower than a full
        // 2× of the whole solo run.
        assert!(first.jct < solo_jct.mul_f64(2.0));
    }

    /// The re-pricing itself, in isolation: a job mid-iteration at 1×
    /// whose GPU gains a neighbour must finish that iteration later than
    /// scheduled, by the remaining fraction at 2×.
    #[test]
    fn reprice_splits_iteration_at_residency_change() {
        let mut jobs = vec![JobRun::new(
            &JobSpec {
                name: "j".into(),
                model: capuchin_models::ModelKind::ResNet50,
                batch: 1,
                gpus: 1,
                policy: JobPolicy::TfOri,
                iters: 1,
                priority: 0,
                arrival_time: 0.0,
                elastic: false,
                ..JobSpec::default()
            },
            0,
        )];
        jobs[0].gpus_held = vec![0];
        jobs[0].replay = Arc::new(vec![ReplayIter {
            wall: Duration::from_millis(100),
            swap_bytes: 0,
            recompute_time: Duration::ZERO,
            evictions: 0,
            transfers: vec![],
        }]);
        let mut gpus = vec![GpuState::new(1 << 30)];
        gpus[0].resident.push(0);
        let mut seq = 0;
        let mut heap: BinaryHeap<Event> = BinaryHeap::new();
        schedule_iter(&mut jobs, &gpus, 0, Time::ZERO, &mut seq, &mut heap).unwrap();
        let Reverse((end, _, _, _, _, epoch)) = *heap.peek().unwrap();
        assert_eq!(end, Duration::from_millis(100).as_nanos());
        assert_eq!(epoch, jobs[0].epoch);
        // A neighbour joins at t = 40 ms: 60 ms of base wall remain, now
        // at 2× -> new end at 40 + 120 = 160 ms.
        gpus[0].resident.push(1);
        jobs.push(JobRun::new(&jobs[0].spec.clone(), 1));
        let at = Time::ZERO + Duration::from_millis(40);
        reprice_residents(&mut jobs, &gpus, 0, at, &mut seq, &mut heap);
        let newest = heap
            .iter()
            .find(|Reverse((_, _, _, _, job, ep))| *job == 0 && *ep == jobs[0].epoch)
            .expect("re-priced event exists");
        let Reverse((end, _, _, _, _, _)) = *newest;
        assert_eq!(end, Duration::from_millis(160).as_nanos());
    }

    /// Empty replay traces are rejected: `schedule_iter` refuses to
    /// fabricate zero-time iterations.
    #[test]
    fn schedule_iter_rejects_empty_walls() {
        let mut jobs = vec![JobRun::new(&small_workload()[0], 0)];
        jobs[0].gpus_held = vec![0];
        let gpus = vec![GpuState::new(1 << 30)];
        let mut seq = 0;
        let mut heap: BinaryHeap<Event> = BinaryHeap::new();
        assert_eq!(
            schedule_iter(&mut jobs, &gpus, 0, Time::ZERO, &mut seq, &mut heap),
            Err(EmptyWalls)
        );
        assert!(heap.is_empty());
    }

    /// On a contended single GPU, best-fit with preemption starts a
    /// high-priority arrival before the resident low-priority job
    /// finishes; the victim checkpoints out, resumes, and completes with
    /// the PCIe checkpoint/restore time visible in its JCT.
    #[test]
    fn preemption_starts_high_priority_before_low_finishes() {
        let low = JobSpec {
            name: "low-long".into(),
            model: capuchin_models::ModelKind::Vgg16,
            batch: 48,
            gpus: 1,
            policy: JobPolicy::TfOri,
            iters: 40,
            priority: 0,
            arrival_time: 0.0,
            elastic: false,
            ..JobSpec::default()
        };
        let high = JobSpec {
            name: "high-short".into(),
            model: capuchin_models::ModelKind::Vgg16,
            batch: 48,
            gpus: 1,
            policy: JobPolicy::TfOri,
            iters: 4,
            priority: 8,
            arrival_time: 0.5,
            elastic: false,
            ..JobSpec::default()
        };
        let cfg = |preemption: bool| {
            ClusterConfig::builder()
                .gpus(1)
                .spec(DeviceSpec::p100_pcie3().with_memory(6 << 30))
                .strategy(StrategyKind::BestFit)
                .preemption(preemption)
                .build()
                .unwrap()
        };
        // Sanity: the two jobs cannot co-reside (each needs > half).
        let off = Cluster::new(cfg(false)).run(&[low.clone(), high.clone()]);
        assert_eq!(off.completed, 2);
        assert_eq!(off.preemptions, 0);
        let high_off = &off.jobs[1];
        let on = Cluster::new(cfg(true)).run(&[low, high]);
        assert_eq!(on.completed, 2, "{}", on.to_json());
        assert!(on.preemptions >= 1, "{}", on.to_json());
        let low_on = &on.jobs[0];
        let high_on = &on.jobs[1];
        // The high-priority job started before the low one finished:
        // without preemption it had to queue behind the whole run.
        assert!(
            high_on.queueing_delay < high_off.queueing_delay,
            "preemption did not shorten the high-priority queueing delay: {:?} vs {:?}",
            high_on.queueing_delay,
            high_off.queueing_delay
        );
        assert!(high_on.jct < high_off.jct);
        // The victim was preempted, resumed, completed — and paid for it.
        assert_eq!(low_on.outcome, JobOutcome::Completed);
        assert!(low_on.preemptions >= 1);
        assert!(low_on.checkpoint_overhead > Duration::ZERO);
        assert!(low_on.resume_latency > Duration::ZERO);
        assert!(low_on.wasted_work > Duration::ZERO);
        assert!(
            low_on.jct > off.jobs[0].jct + low_on.checkpoint_overhead,
            "checkpoint/restore time must be visible in the victim's JCT"
        );
    }

    /// `--preemption off` never preempts, regardless of priorities.
    #[test]
    fn preemption_off_never_preempts() {
        let jobs = synthetic_jobs(8, 3, 0.2);
        let stats = Cluster::new(
            ClusterConfig::builder()
                .gpus(2)
                .strategy(StrategyKind::BestFit)
                .preemption(false)
                .build()
                .unwrap(),
        )
        .run(&jobs);
        assert_eq!(stats.preemptions, 0);
        assert!(stats.jobs.iter().all(|j| j.preemptions == 0));
    }

    /// The builder refuses out-of-range knobs with typed errors instead of
    /// letting a bad configuration reach the event loop.
    #[test]
    fn builder_rejects_bad_knobs() {
        assert_eq!(
            ClusterConfig::builder().gpus(0).build().unwrap_err(),
            ConfigError::NoGpus
        );
        assert_eq!(
            ClusterConfig::builder()
                .aging_rate(-0.5)
                .build()
                .unwrap_err(),
            ConfigError::BadAgingRate(-0.5)
        );
        assert!(matches!(
            ClusterConfig::builder()
                .aging_rate(f64::NAN)
                .build()
                .unwrap_err(),
            ConfigError::BadAgingRate(_)
        ));
        assert_eq!(
            ClusterConfig::builder()
                .validate_iters(1)
                .build()
                .unwrap_err(),
            ConfigError::TooFewValidateIters(1)
        );
        assert_eq!(
            ClusterConfig::builder()
                .min_batch_fraction(0.0)
                .build()
                .unwrap_err(),
            ConfigError::BadBatchFraction(0.0)
        );
        assert_eq!(
            ClusterConfig::builder()
                .min_batch_fraction(1.5)
                .build()
                .unwrap_err(),
            ConfigError::BadBatchFraction(1.5)
        );
        assert_eq!(
            ClusterConfig::builder()
                .safety_margin_permille(999)
                .build()
                .unwrap_err(),
            ConfigError::BadSafetyMargin(999)
        );
        assert_eq!(
            ClusterConfig::builder()
                .safety_margin_permille(10001)
                .build()
                .unwrap_err(),
            ConfigError::BadSafetyMargin(10001)
        );
        assert_eq!(
            ClusterConfig::builder().min_samples(0).build().unwrap_err(),
            ConfigError::BadMinSamples(0)
        );
        let msg = ConfigError::TooFewValidateIters(1).to_string();
        assert!(msg.contains("at least 2 iterations"), "{msg}");
        let msg = ConfigError::BadSafetyMargin(999).to_string();
        assert!(msg.contains("never shaved"), "{msg}");
        assert!(ClusterConfig::builder()
            .min_batch_fraction(1.0)
            .build()
            .is_ok());
        assert!(ClusterConfig::builder()
            .predictive(true)
            .safety_margin_permille(1000)
            .min_samples(1)
            .build()
            .is_ok());
    }

    /// An elastic job that cannot fit at its full batch next to a resident
    /// job is admitted at a bisected smaller batch — starting earlier than
    /// the rigid run — and re-grows to the full batch when the neighbour
    /// finishes, with total samples trained preserved exactly.
    #[test]
    fn elastic_job_shrinks_to_start_earlier_then_regrows() {
        let resident = JobSpec {
            name: "resident".into(),
            model: capuchin_models::ModelKind::Vgg16,
            batch: 128,
            gpus: 1,
            policy: JobPolicy::TfOri,
            iters: 4,
            priority: 0,
            arrival_time: 0.0,
            elastic: false,
            ..JobSpec::default()
        };
        let grower = JobSpec {
            name: "grower".into(),
            model: capuchin_models::ModelKind::Vgg16,
            batch: 256,
            gpus: 1,
            policy: JobPolicy::TfOri,
            iters: 8,
            priority: 0,
            arrival_time: 0.05,
            elastic: true,
            ..JobSpec::default()
        };
        let cfg = |elastic: bool| {
            ClusterConfig::builder()
                .gpus(1)
                .admission(AdmissionMode::TfOri)
                .elastic(elastic)
                .build()
                .unwrap()
        };
        // Rigid baseline: the big job queues behind the whole resident run.
        let rigid = Cluster::new(cfg(false)).run(&[resident.clone(), grower.clone()]);
        assert_eq!(rigid.completed, 2, "{}", rigid.to_json());
        assert_eq!(rigid.rebatches, 0);

        let elastic = Cluster::new(cfg(true)).run(&[resident, grower]);
        assert_eq!(elastic.completed, 2, "{}", elastic.to_json());
        assert_eq!(elastic.midrun_oom_aborts, 0);
        let g = &elastic.jobs[1];
        assert_eq!(g.outcome, JobOutcome::Completed);
        assert_eq!(
            g.rebatches,
            2,
            "shrink at admission + one regrow: {}",
            elastic.to_json()
        );
        assert_eq!(g.samples_preserved, 256 * 8);
        assert!(g.elastic_time_at_reduced_batch > Duration::ZERO);
        assert!(
            g.checkpoint_overhead > Duration::ZERO,
            "regrow checkpoint/restore copies must be charged"
        );
        assert!(
            g.queueing_delay < rigid.jobs[1].queueing_delay,
            "elastic admission must start the job earlier: {:?} vs {:?}",
            g.queueing_delay,
            rigid.jobs[1].queueing_delay
        );
        // The resident job is untouched by its neighbour's elasticity.
        assert_eq!(elastic.jobs[0].rebatches, 0);
        assert_eq!(elastic.jobs[0].samples_preserved, 128 * 4);
        // No over-commit at any instant, even through the regrow window.
        assert!(elastic.per_gpu[0].peak_reserved_bytes <= elastic.per_gpu[0].capacity);
        assert_eq!(elastic.rebatches, 2);
    }

    /// With elastic re-batching enabled but no `elastic` jobs in the
    /// workload, the stats are byte-identical to an elastic-off run: the
    /// second admission pass never touches rigid jobs.
    #[test]
    fn elastic_flag_is_inert_without_elastic_jobs() {
        let jobs = synthetic_jobs(5, 2, 0.3);
        let cfg = |elastic: bool| {
            ClusterConfig::builder()
                .gpus(2)
                .elastic(elastic)
                .build()
                .unwrap()
        };
        let off = Cluster::new(cfg(false)).run(&jobs).to_json();
        let on = Cluster::new(cfg(true)).run(&jobs).to_json();
        assert_eq!(off, on);
    }

    /// With predictive admission *off* (the default) the new knobs are
    /// provably inert: same-seed stats JSON is byte-identical to a
    /// default-config run, with every predictor counter zero and every
    /// measured job reporting `measured` provenance.
    #[test]
    fn predictive_off_is_byte_identical_to_default() {
        let jobs = synthetic_jobs(5, 4, 0.3);
        let base = Cluster::new(ClusterConfig::builder().gpus(2).build().unwrap()).run(&jobs);
        let off = Cluster::new(
            ClusterConfig::builder()
                .gpus(2)
                .predictive(false)
                .safety_margin_permille(2000)
                .min_samples(7)
                .build()
                .unwrap(),
        )
        .run(&jobs);
        assert_eq!(base.to_json(), off.to_json());
        assert_eq!(off.predictor_hits, 0);
        assert_eq!(off.predictor_misses, 0);
        assert_eq!(off.mispredict_recoveries, 0);
        for j in &off.jobs {
            assert_ne!(j.admission_source, "predicted", "{}", j.name);
            assert_eq!(j.predicted_bytes, 0);
        }
    }

    /// The warm-key guarantee: once a completed measured run has fed the
    /// predictor, the next arrival of the same `(model, policy, class)`
    /// family is admitted on the prediction with **zero** validation
    /// engine runs charged — and completes without a mid-run OOM abort.
    #[test]
    fn warm_key_predicted_admission_charges_zero_validations() {
        let family = |name: &str, arrival: f64| JobSpec {
            name: name.into(),
            model: capuchin_models::ModelKind::Vgg16,
            batch: 16,
            gpus: 1,
            policy: JobPolicy::Capuchin,
            iters: 3,
            priority: 0,
            arrival_time: arrival,
            elastic: false,
            ..JobSpec::default()
        };
        // The second arrival lands well after the first completes, so
        // its key is warm.
        let jobs = vec![family("cold", 0.0), family("warm", 120.0)];
        let cfg = ClusterConfig::builder()
            .gpus(1)
            .predictive(true)
            .min_samples(1)
            .build()
            .unwrap();
        let mut cluster = Cluster::new(cfg);
        let stats = cluster.run(&jobs);
        assert_eq!(stats.completed, 2, "{}", stats.to_json());
        assert_eq!(stats.midrun_oom_aborts, 0);
        assert_eq!(stats.predictor_misses, 1);
        assert_eq!(stats.predictor_hits, 1);
        let cold = &stats.jobs[0];
        assert_eq!(cold.admission_source, "measured");
        assert!(cold.admission_validations > 0, "cold run must validate");
        let warm = &stats.jobs[1];
        assert_eq!(warm.admission_source, "predicted", "{}", stats.to_json());
        assert_eq!(
            warm.admission_validations, 0,
            "warm-key admission must charge zero engine runs"
        );
        assert!(warm.predicted_bytes > 0);
        assert_eq!(warm.mispredict_recoveries, 0, "same-shape prediction holds");
        // Attribution stays complete with the predicted path in play.
        let billed: u64 = stats.jobs.iter().map(|j| j.admission_validations).sum();
        assert_eq!(billed, cluster.validation_runs());

        // The store survives `reset` (how a serve daemon warms across
        // online submissions): a second same-workload run on the same
        // cluster admits *both* jobs predicted, charging nothing.
        let again = cluster.run(&jobs);
        assert_eq!(again.completed, 2);
        assert_eq!(again.predictor_hits, 2);
        assert_eq!(again.predictor_misses, 0);
        for j in &again.jobs {
            assert_eq!(j.admission_source, "predicted", "{}", j.name);
            assert_eq!(j.admission_validations, 0);
        }
    }

    /// The fallback ladder's bottom rung: a prediction extrapolated to an
    /// unseen (larger) batch under-shoots under TfOri admission, is
    /// caught at the first completed-iteration boundary, and the job is
    /// checkpoint-preempted into a measured re-admission — completing
    /// without over-commit instead of aborting.
    #[test]
    fn undershooting_prediction_recovers_via_remeasure() {
        let job = |name: &str, batch: usize, arrival: f64| JobSpec {
            name: name.into(),
            model: capuchin_models::ModelKind::Vgg16,
            batch,
            gpus: 1,
            policy: JobPolicy::TfOri,
            iters: 3,
            priority: 0,
            arrival_time: arrival,
            elastic: false,
            ..JobSpec::default()
        };
        // One sample at batch 16 fits a flat line; predicting batch 48
        // from it under-shoots the true footprint by far more than the
        // 15% safety margin covers.
        let jobs = vec![job("seed", 16, 0.0), job("big", 48, 120.0)];
        let cfg = ClusterConfig::builder()
            .gpus(1)
            .admission(AdmissionMode::TfOri)
            .predictive(true)
            .min_samples(1)
            .build()
            .unwrap();
        let mut cluster = Cluster::new(cfg);
        let stats = cluster.run(&jobs);
        assert_eq!(stats.completed, 2, "{}", stats.to_json());
        assert_eq!(stats.midrun_oom_aborts, 0);
        assert_eq!(stats.predictor_hits, 1);
        let big = &stats.jobs[1];
        assert_eq!(
            big.mispredict_recoveries,
            1,
            "under-shoot must trigger exactly one recovery: {}",
            stats.to_json()
        );
        assert_eq!(stats.mispredict_recoveries, 1);
        // Re-admission downgraded the provenance to the measured truth
        // and billed the re-measurement to the mispredicting job.
        assert_eq!(big.admission_source, "measured");
        assert!(big.admission_validations > 0);
        assert!(big.prediction_error_permille > 150, "error beyond margin");
        assert!(big.preemptions >= 1, "recovery rides the preemption path");
        assert!(big.checkpoint_overhead > Duration::ZERO);
        // No over-commit at any instant, recovery window included.
        for g in &stats.per_gpu {
            assert!(g.peak_reserved_bytes <= g.capacity);
        }
        let billed: u64 = stats.jobs.iter().map(|j| j.admission_validations).sum();
        assert_eq!(billed, cluster.validation_runs());
    }
}
