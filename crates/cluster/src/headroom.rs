//! Incremental free-headroom index over the cluster's GPUs.
//!
//! Placement probes used to re-scan every GPU on every scheduling pass —
//! O(gpus) per probe, fatal at the 1k-GPU / 100k-job target. [`GpuPool`]
//! keeps per-device headroom under two max segment trees (one over device
//! index, one over link domains) that are updated in O(log n) whenever a
//! reservation changes, so a strategy can answer "first device with at
//! least T bytes free", "how many devices clear T (up to a limit)", and
//! "next domain holding a device that clears T" without touching devices
//! that cannot fit. A generation counter increments on every mutation and
//! keys the cluster's memoized elastic-ladder probes: any cached probe
//! result is valid exactly as long as the generation is unchanged.
//!
//! The index answers the same fit question the brute-force scan asked,
//! because the cluster's fit predicate is monotone in headroom: a job fits
//! a GPU iff `headroom >= T` for a per-job threshold `T` (see
//! [`crate::CandidateJob::fit_threshold`]). `prop_scale` keeps the index
//! honest by diffing indexed picks against the retained brute-force path
//! on arbitrary reserve/release interleavings.

use crate::strategy::GpuView;

/// Iterative max segment tree over a fixed-length array of `u64`.
///
/// Leaves live at `tree[size..size + len]`; missing leaves (when `len` is
/// not a power of two) read as 0, which is safe because headroom is
/// non-negative and queries search for values `>= T` with `T >= 1`
/// (a threshold of 0 is answered without the tree).
#[derive(Debug, Clone)]
struct MaxTree {
    len: usize,
    size: usize,
    tree: Vec<u64>,
}

impl MaxTree {
    fn new(values: &[u64]) -> MaxTree {
        let len = values.len();
        let size = len.next_power_of_two().max(1);
        let mut tree = vec![0u64; 2 * size];
        tree[size..size + len].copy_from_slice(values);
        for i in (1..size).rev() {
            tree[i] = tree[2 * i].max(tree[2 * i + 1]);
        }
        MaxTree { len, size, tree }
    }

    fn get(&self, i: usize) -> u64 {
        self.tree[self.size + i]
    }

    fn set(&mut self, i: usize, v: u64) {
        let mut n = self.size + i;
        self.tree[n] = v;
        while n > 1 {
            n /= 2;
            self.tree[n] = self.tree[2 * n].max(self.tree[2 * n + 1]);
        }
    }

    fn max(&self) -> u64 {
        self.tree[1]
    }

    /// Smallest index `>= from` whose value is `>= min`, by descending
    /// from the root and pruning subtrees that end before `from` or whose
    /// max falls short. O(log² n) worst case, O(log n) typical.
    fn first_at_least(&self, from: usize, min: u64) -> Option<usize> {
        if from >= self.len || self.tree[1] < min {
            return None;
        }
        self.descend(1, 0, self.size, from, min)
    }

    fn descend(&self, node: usize, lo: usize, hi: usize, from: usize, min: u64) -> Option<usize> {
        if hi <= from || self.tree[node] < min {
            return None;
        }
        if node >= self.size {
            return (node - self.size < self.len).then_some(node - self.size);
        }
        let mid = (lo + hi) / 2;
        self.descend(2 * node, lo, mid, from, min)
            .or_else(|| self.descend(2 * node + 1, mid, hi, from, min))
    }

    /// Number of values `>= min`, stopping early once `limit` are found.
    fn count_at_least(&self, min: u64, limit: usize) -> usize {
        if limit == 0 {
            return 0;
        }
        let mut count = 0;
        self.count_descend(1, min, limit, &mut count);
        count
    }

    fn count_descend(&self, node: usize, min: u64, limit: usize, count: &mut usize) {
        if *count >= limit || self.tree[node] < min {
            return;
        }
        if node >= self.size {
            if node - self.size < self.len {
                *count += 1;
            }
            return;
        }
        self.count_descend(2 * node, min, limit, count);
        self.count_descend(2 * node + 1, min, limit, count);
    }
}

/// Reservation-aware headroom index over every GPU in the cluster.
///
/// The cluster core routes every reservation change (grant, release,
/// regrow, preemption) through [`GpuPool::set_reserved`]; strategies and
/// the elastic pass then query headroom in O(log n) instead of scanning.
#[derive(Debug, Clone, Default)]
pub struct GpuPool {
    capacity: Vec<u64>,
    reserved: Vec<u64>,
    domain_of: Vec<usize>,
    /// Domain id -> member GPU indices, ascending.
    members: Vec<Vec<usize>>,
    /// Max headroom per GPU index.
    by_gpu: MaxTree,
    /// Max headroom per domain (max over the domain's members).
    by_domain: MaxTree,
    generation: u64,
}

impl Default for MaxTree {
    fn default() -> MaxTree {
        MaxTree::new(&[])
    }
}

impl GpuPool {
    /// Builds the index for devices with the given capacities, where
    /// `domain_of[i]` names the link domain of device `i`. Domain ids must
    /// be dense (`0..max+1`); with no interconnect model every device is
    /// its own domain.
    pub fn new(capacity: Vec<u64>, domain_of: Vec<usize>) -> GpuPool {
        assert_eq!(capacity.len(), domain_of.len());
        let domains = domain_of.iter().map(|&d| d + 1).max().unwrap_or(0);
        let mut members = vec![Vec::new(); domains];
        for (gpu, &d) in domain_of.iter().enumerate() {
            members[d].push(gpu);
        }
        let by_gpu = MaxTree::new(&capacity);
        let by_domain = MaxTree::new(
            &members
                .iter()
                .map(|m| m.iter().map(|&g| capacity[g]).max().unwrap_or(0))
                .collect::<Vec<_>>(),
        );
        GpuPool {
            reserved: vec![0; capacity.len()],
            capacity,
            domain_of,
            members,
            by_gpu,
            by_domain,
            generation: 0,
        }
    }

    /// Number of devices indexed.
    pub fn len(&self) -> usize {
        self.capacity.len()
    }

    /// True when the pool indexes no devices.
    pub fn is_empty(&self) -> bool {
        self.capacity.is_empty()
    }

    /// Monotone counter bumped on every reservation change. Cached probe
    /// results keyed by this value stay valid until it moves.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Current headroom of device `gpu`.
    pub fn headroom(&self, gpu: usize) -> u64 {
        self.by_gpu.get(gpu)
    }

    /// Largest headroom on any device (0 when empty).
    pub fn max_headroom(&self) -> u64 {
        self.by_gpu.max()
    }

    /// Link domain of device `gpu`.
    pub fn domain_of(&self, gpu: usize) -> usize {
        self.domain_of[gpu]
    }

    /// Member devices of `domain`, ascending by index.
    pub fn domain_members(&self, domain: usize) -> &[usize] {
        &self.members[domain]
    }

    /// Updates device `gpu` to `reserved` bytes and bumps the generation.
    pub fn set_reserved(&mut self, gpu: usize, reserved: u64) {
        debug_assert!(reserved <= self.capacity[gpu], "over-reserved GPU {gpu}");
        self.reserved[gpu] = reserved;
        self.by_gpu
            .set(gpu, self.capacity[gpu].saturating_sub(reserved));
        let d = self.domain_of[gpu];
        let dmax = self.members[d].iter().map(|&g| self.by_gpu.get(g)).max();
        self.by_domain.set(d, dmax.unwrap_or(0));
        self.generation += 1;
    }

    /// First `width` devices (ascending index) whose headroom clears
    /// `threshold`, or `None` if fewer exist. This is exactly the
    /// first-fit scan, done as `width` tree descents.
    pub fn first_fit(&self, threshold: u64, width: usize) -> Option<Vec<usize>> {
        let width = width.max(1);
        let mut take = Vec::with_capacity(width);
        let mut from = 0;
        while take.len() < width {
            let g = self.first_at_least(from, threshold)?;
            take.push(g);
            from = g + 1;
        }
        Some(take)
    }

    /// Smallest device index `>= from` with headroom `>= threshold`.
    pub fn first_at_least(&self, from: usize, threshold: u64) -> Option<usize> {
        if threshold == 0 {
            return (from < self.len()).then_some(from);
        }
        self.by_gpu.first_at_least(from, threshold)
    }

    /// Number of devices with headroom `>= threshold`, counting at most
    /// `limit` before stopping.
    pub fn count_at_least(&self, threshold: u64, limit: usize) -> usize {
        if threshold == 0 {
            return self.len().min(limit);
        }
        self.by_gpu.count_at_least(threshold, limit)
    }

    /// Smallest domain id `>= from` holding at least one device with
    /// headroom `>= threshold`.
    pub fn next_domain_at_least(&self, from: usize, threshold: u64) -> Option<usize> {
        if threshold == 0 {
            // Zero headroom is always cleared, but only by a domain that
            // actually holds a device (ids need not all be populated).
            return (from..self.members.len()).find(|&d| !self.members[d].is_empty());
        }
        self.by_domain.first_at_least(from, threshold)
    }

    /// Materializes the brute-force [`GpuView`] slice for the reference
    /// scan path and differential tests.
    pub fn views(&self) -> Vec<GpuView> {
        (0..self.len())
            .map(|idx| GpuView {
                idx,
                domain: self.domain_of[idx],
                capacity: self.capacity[idx],
                reserved: self.reserved[idx],
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool(caps: &[u64], domains: &[usize]) -> GpuPool {
        GpuPool::new(caps.to_vec(), domains.to_vec())
    }

    #[test]
    fn queries_match_linear_scan_after_updates() {
        let mut p = pool(&[100, 60, 80, 40, 90], &[0, 0, 1, 1, 2]);
        p.set_reserved(0, 70); // headroom 30
        p.set_reserved(2, 80); // headroom 0
        p.set_reserved(4, 15); // headroom 75
        let head = [30, 60, 0, 40, 75];
        assert_eq!(p.max_headroom(), 75);
        for t in [0u64, 1, 30, 31, 40, 60, 61, 75, 76, 200] {
            let brute: Vec<usize> = (0..5).filter(|&g| head[g] >= t).collect();
            assert_eq!(p.first_at_least(0, t), brute.first().copied(), "t={t}");
            for limit in 0..=6 {
                assert_eq!(
                    p.count_at_least(t, limit),
                    brute.len().min(limit),
                    "t={t} limit={limit}"
                );
            }
            let brute_dom: Vec<usize> = (0..3)
                .filter(|&d| p.domain_members(d).iter().any(|&g| head[g] >= t))
                .collect();
            assert_eq!(p.next_domain_at_least(0, t), brute_dom.first().copied());
        }
        assert_eq!(p.first_fit(40, 2), Some(vec![1, 3]));
        assert_eq!(p.first_fit(61, 2), None);
        assert_eq!(p.first_fit(0, 5), Some(vec![0, 1, 2, 3, 4]));
    }

    #[test]
    fn generation_moves_on_every_mutation() {
        let mut p = pool(&[10, 10], &[0, 1]);
        let g0 = p.generation();
        p.set_reserved(0, 5);
        assert_ne!(p.generation(), g0);
        let g1 = p.generation();
        p.set_reserved(0, 5); // same value still invalidates
        assert_ne!(p.generation(), g1);
    }

    #[test]
    fn views_round_trip_reservations() {
        let mut p = pool(&[32, 16], &[0, 0]);
        p.set_reserved(1, 9);
        let v = p.views();
        assert_eq!((v[1].capacity, v[1].reserved, v[1].headroom()), (16, 9, 7));
        assert_eq!(v[0].domain, 0);
    }

    #[test]
    fn empty_pool_is_inert() {
        let p = GpuPool::new(Vec::new(), Vec::new());
        assert!(p.is_empty());
        assert_eq!(p.max_headroom(), 0);
        assert_eq!(p.first_at_least(0, 1), None);
        assert_eq!(p.first_fit(0, 1), None);
        assert_eq!(p.count_at_least(0, 3), 0);
    }
}
