//! Shared parsing vocabulary for the cluster's CLI-facing enums.
//!
//! [`AdmissionMode`](crate::AdmissionMode),
//! [`JobPolicy`](crate::JobPolicy) and
//! [`StrategyKind`](crate::StrategyKind) all implement
//! [`std::str::FromStr`] with this error type, so every "unknown value"
//! message is rendered in one place and always lists the accepted
//! spellings — the CLI never hand-rolls an accepted-values list again.

/// A CLI-facing enum failed to parse: the input did not match any
/// accepted spelling.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseEnumError {
    /// What was being parsed (`"admission mode"`, `"job policy"`,
    /// `"placement strategy"`).
    pub what: &'static str,
    /// The rejected input.
    pub given: String,
    /// Every accepted spelling, canonical first.
    pub accepted: &'static [&'static str],
}

impl ParseEnumError {
    /// Creates the error for an unknown `given` value.
    pub fn unknown(
        what: &'static str,
        given: &str,
        accepted: &'static [&'static str],
    ) -> ParseEnumError {
        ParseEnumError {
            what,
            given: given.to_owned(),
            accepted,
        }
    }
}

impl std::fmt::Display for ParseEnumError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "unknown {} `{}` (expected one of: {})",
            self.what,
            self.given,
            self.accepted.join(", ")
        )
    }
}

impl std::error::Error for ParseEnumError {}

/// Parses an `on`/`off` toggle value (the spelling every boolean cluster
/// flag uses), through the same error machinery as the enums — `what`
/// names the flag in the message (e.g. `"--predictive"`).
///
/// # Errors
///
/// Returns a [`ParseEnumError`] listing `on, off` for anything else.
pub fn parse_on_off(what: &'static str, given: &str) -> Result<bool, ParseEnumError> {
    match given {
        "on" => Ok(true),
        "off" => Ok(false),
        other => Err(ParseEnumError::unknown(what, other, &["on", "off"])),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn message_lists_every_accepted_spelling() {
        let err = ParseEnumError::unknown("admission mode", "bogus", &["tf-ori", "capuchin"]);
        let msg = err.to_string();
        assert!(msg.contains("`bogus`"), "{msg}");
        assert!(msg.contains("tf-ori, capuchin"), "{msg}");
    }

    #[test]
    fn on_off_round_trips_and_rejects_everything_else() {
        assert_eq!(parse_on_off("--predictive", "on"), Ok(true));
        assert_eq!(parse_on_off("--predictive", "off"), Ok(false));
        let msg = parse_on_off("--predictive", "maybe")
            .unwrap_err()
            .to_string();
        assert!(msg.contains("--predictive"), "{msg}");
        assert!(msg.contains("on, off"), "{msg}");
    }
}
