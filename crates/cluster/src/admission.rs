//! Memory-aware admission control.
//!
//! Before a job touches a GPU, the controller runs one measured iteration
//! on an unconstrained simulated device ([`capuchin::measure_footprint`])
//! and derives two numbers:
//!
//! * `full` — the ideal live-memory peak: what the job needs to run with
//!   no memory management at all;
//! * `min` — the smallest budget the Policy Maker can plan the job into.
//!   Under [`AdmissionMode::TfOri`] no shrinking exists, so `min == full`.
//!
//! A job is *rejected* (admission-time OOM) when even `min` exceeds a
//! bare GPU's capacity. Otherwise it waits until some GPU has at least
//! `min` bytes of headroom; the reservation granted is
//! `min(headroom, full)` and any shrunk admission is re-validated by an
//! actual engine run at the granted budget — which is what guarantees
//! admitted jobs never abort mid-run.
//!
//! # Cost model
//!
//! Every [`Admission::validate`] call is a *real engine run* — milliseconds
//! of planner + executor work, not a table lookup. The cluster memoizes
//! results by `(model, batch, budget, policy, shrunk, iters)`, so under
//! tf-ori admission (grants always equal `full`) a whole workload's
//! validations collapse onto its shape menu. Under Capuchin admission the
//! grant is `min(headroom, full)` — an arbitrary byte value — so every
//! distinct shrunk grant is a cache miss that pays a full validation run.
//! That cost is the paper's measured-validation guarantee, inherent
//! per-job simulation payload rather than scheduler overhead; the scale
//! bench (`cluster_scale`) therefore clocks the scheduler under tf-ori
//! admission and leaves per-budget validation cost to the admission
//! benches. See `DESIGN.md` §13 for the memoization keys.

use std::cell::Cell;

use capuchin::{shrink_feasibility, FootprintEstimate, PlannerConfig};
use capuchin_executor::{Engine, EngineConfig, ExecError};
use capuchin_graph::Graph;
use capuchin_sim::{CopyDir, DeviceSpec, Duration};

use crate::job::JobPolicy;
use crate::parse::ParseEnumError;

/// How the controller predicts a job's device-memory need.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmissionMode {
    /// Framework-default admission: a job needs its full ideal peak, and
    /// anything larger than the device is rejected outright.
    TfOri,
    /// Capuchin admission: the Policy Maker may shrink the footprint, so
    /// the job only needs the smallest budget a feasible plan covers.
    Capuchin,
}

impl AdmissionMode {
    /// Accepted [`std::str::FromStr`] spellings, canonical first.
    pub const ACCEPTED: &'static [&'static str] = &[
        "tf-ori",
        "capuchin",
        "tf-ori-admission",
        "capuchin-admission",
    ];

    /// CLI/stats name.
    pub fn name(self) -> &'static str {
        match self {
            AdmissionMode::TfOri => "tf-ori-admission",
            AdmissionMode::Capuchin => "capuchin-admission",
        }
    }
}

impl std::fmt::Display for AdmissionMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for AdmissionMode {
    type Err = ParseEnumError;

    fn from_str(s: &str) -> Result<AdmissionMode, ParseEnumError> {
        match s {
            "tf-ori" | "tf-ori-admission" => Ok(AdmissionMode::TfOri),
            "capuchin" | "capuchin-admission" => Ok(AdmissionMode::Capuchin),
            other => Err(ParseEnumError::unknown(
                "admission mode",
                other,
                Self::ACCEPTED,
            )),
        }
    }
}

/// One recorded transfer of a validated iteration, replayed by the
/// cluster at per-tensor granularity: which tensor moved (`label`), how
/// much, which direction, and *when inside the iteration* it was
/// submitted (`offset` from the iteration's start). The cluster re-issues
/// each transfer on the shared host link at `iteration_start + offset`,
/// so co-resident jobs' prefetches contend with allreduce and checkpoint
/// copies and an individual late prefetch is visible to the policy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplayTransfer {
    /// Request label from the engine (`prefetch:<t>`, `swapout:<t>`,
    /// `swapin:<t>`, `evict:<t>`).
    pub label: String,
    /// Payload size.
    pub bytes: u64,
    /// Transfer direction.
    pub dir: CopyDir,
    /// Submission instant relative to the iteration's start.
    pub offset: Duration,
}

/// One validated iteration the cluster replays on its clock: how long the
/// iteration took on a private device, and the per-tensor swap timeline it
/// recorded while doing so. The cluster re-routes those transfers over the
/// *shared* host link, so one job's swap traffic delays another's.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplayIter {
    /// Wall time of the iteration on an uncontended device (swap transfer
    /// time already included — the engine overlaps and stalls for it).
    pub wall: Duration,
    /// Swap traffic (D2H evictions + H2D prefetches) the iteration moved.
    /// Always equals the sum of `transfers[..].bytes`.
    pub swap_bytes: u64,
    /// Kernel time spent regenerating released tensors (recompute-plan
    /// entries and on-demand lineage replay) during the iteration.
    pub recompute_time: Duration,
    /// Tensors evicted reactively under allocation pressure (the engine's
    /// passive-mode evictions, not planned proactive swaps).
    pub evictions: u64,
    /// The iteration's recorded transfer timeline, in submission order.
    pub transfers: Vec<ReplayTransfer>,
}

/// The two budgets admission derives from a measured footprint.
#[derive(Debug, Clone, Copy, Default)]
pub struct JobNeeds {
    /// Full reservation: the measured ideal peak plus a small allocator
    /// slack, avoiding all management overhead.
    pub full: u64,
    /// Smallest budget a validation run succeeded at (`== full` under
    /// tf-ori).
    pub min: u64,
}

/// Allocator slack added to the ideal peak: free-list fragmentation means
/// a run needs slightly more than its live-byte peak (measured: ~2% for
/// VGG16; 1/32 ≈ 3.1% keeps a margin).
pub(crate) fn with_slack(peak: u64) -> u64 {
    peak + peak / 32
}

/// Where an admission decision's budgets came from. The pipeline has
/// three provenances, in descending cost:
///
/// * [`Measured`](AdmissionSource::Measured) — a real measuring run plus
///   (under Capuchin admission) a bisection of validation engine runs;
/// * [`Heuristic`](AdmissionSource::Heuristic) — a measuring run plus
///   pure planner math, no validation engines
///   ([`CostClass::Heuristic`](crate::policy::CostClass) policies);
/// * [`Predicted`](AdmissionSource::Predicted) — no engine work at all:
///   the [`cluster::predict`](crate::predict) regression store answered
///   from prior completed runs, padded by the configured safety margin.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmissionSource {
    /// Budgets derived from a measured footprint and engine-validated
    /// bisection — the pre-predictor default for measured-class policies.
    Measured,
    /// Budgets derived from the footprint estimate and planner math only
    /// (heuristic-class policies such as DTR).
    Heuristic,
    /// Budgets predicted by the regression store from prior completed
    /// runs: zero measuring and zero validation engine runs.
    Predicted {
        /// The safety margin (permille, ≥ 1000) the raw prediction was
        /// multiplied by before it became the admission budget.
        margin_permille: u64,
    },
}

impl AdmissionSource {
    /// Stats/wire name (`"measured"`, `"heuristic"`, `"predicted"`).
    pub fn name(self) -> &'static str {
        match self {
            AdmissionSource::Measured => "measured",
            AdmissionSource::Heuristic => "heuristic",
            AdmissionSource::Predicted { .. } => "predicted",
        }
    }
}

impl std::fmt::Display for AdmissionSource {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A typed admission decision: the derived budgets plus the provenance
/// they came from and the validation engine runs the derivation charged.
/// This replaces the ad-hoc "needs plus infer-from-counters" convention —
/// decision provenance is inspectable end-to-end (per-job stats carry
/// `admission_source`, serve `status` replies carry it on the wire).
#[derive(Debug, Clone, Copy)]
pub struct AdmissionDecision {
    /// The budgets admission derived (full and minimum reservation).
    pub budgets: JobNeeds,
    /// Where the budgets came from.
    pub source: AdmissionSource,
    /// Validation engine runs this decision performed. Zero for
    /// heuristic and predicted decisions by construction; the cluster's
    /// attribution cursor charges exactly this many runs to the job.
    pub validations_charged: u64,
}

/// Finds the smallest budget (to within ~1/64 of the transient footprint,
/// floor 1 MiB) for which the Policy Maker produces a feasible plan, by
/// bisecting [`shrink_feasibility`] between the weight floor and the
/// ideal peak.
pub fn min_feasible_budget(est: &FootprintEstimate, planner: &PlannerConfig) -> u64 {
    let transient = est.transient_bytes();
    if transient == 0 {
        return est.ideal_peak;
    }
    let granularity = (transient / 64).max(1 << 20);
    // Invariant: `hi` is always feasible (the peak trivially is); `lo`
    // (the weight floor) never is.
    let mut lo = est.weight_bytes;
    let mut hi = est.ideal_peak;
    while hi.saturating_sub(lo) > granularity {
        let mid = lo + (hi - lo) / 2;
        if shrink_feasibility(est, mid, planner).feasible {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    hi
}

/// The admission controller: mode plus the planner configuration used for
/// shrink queries and validation runs.
#[derive(Debug, Clone)]
pub struct Admission {
    /// Prediction mode.
    pub mode: AdmissionMode,
    /// Policy Maker configuration for shrink feasibility.
    pub planner: PlannerConfig,
    /// Engine iterations per validation/bisection run (at least 2 so
    /// Capuchin completes measured execution and runs guided iterations).
    pub validate_iters: u64,
    /// Validation engine runs performed (successful or not) — the real
    /// admission cost the per-job `admission_validations` stat attributes.
    runs: Cell<u64>,
}

impl Admission {
    /// Creates a controller with the default planner configuration.
    pub fn new(mode: AdmissionMode) -> Admission {
        Admission {
            mode,
            planner: PlannerConfig::default(),
            validate_iters: 4,
            runs: Cell::new(0),
        }
    }

    /// Total validation engine runs this controller has performed.
    /// Monotone; the cluster samples it around admission calls to
    /// attribute per-job validation counts.
    pub fn validation_runs(&self) -> u64 {
        self.runs.get()
    }

    /// Derives the admission budgets for a measured job. Under Capuchin
    /// admission, `min` is found by bisecting *actual engine runs* — the
    /// Policy Maker's feasibility verdict brackets the search from below,
    /// but measured execution is the ground truth (plans are optimistic
    /// about fragmentation and transient working sets).
    pub fn needs(&self, graph: &Graph, est: &FootprintEstimate) -> JobNeeds {
        let full = with_slack(est.ideal_peak);
        let min = match self.mode {
            AdmissionMode::TfOri => full,
            AdmissionMode::Capuchin => self.measured_min_budget(graph, est).min(full),
        };
        JobNeeds { full, min }
    }

    /// Derives admission budgets for a forward-only (inference) graph.
    ///
    /// The forward peak is dominated by persistent weights, so the
    /// proportional slack that comfortably covers training transients can
    /// undershoot a single conv output here — and the cluster caps grants
    /// at `full`, so an over-tight `full` would fail validation forever.
    /// Measured execution is the ground truth (the same doctrine as
    /// `Admission::measured_min_budget`): escalate `full` until a
    /// keep-everything engine run actually completes. The probe policy
    /// comes from the job policy's registry row — unmanaged execution
    /// ([`JobPolicy::TfOri`]) is the stricter probe, so a budget it
    /// survives also runs under any managed policy.
    pub fn forward_needs(
        &self,
        graph: &Graph,
        est: &FootprintEstimate,
        policy: JobPolicy,
    ) -> JobNeeds {
        let probe = policy.descriptor().probe;
        let mut full = with_slack(est.ideal_peak);
        let step = (est.ideal_peak / 16).max(32 << 20);
        // Bounded escalation: the transient working set of one forward
        // pass is a handful of activations, far below 64 steps' worth.
        for _ in 0..64 {
            if self
                .validate(graph, &est.spec, full, probe, false, 2)
                .is_ok()
            {
                break;
            }
            full = full.saturating_add(step);
        }
        let min = match self.mode {
            AdmissionMode::TfOri => full,
            AdmissionMode::Capuchin => self.measured_min_budget(graph, est).min(full),
        };
        JobNeeds { full, min }
    }

    /// Derives admission budgets for a [`crate::policy::CostClass::Heuristic`]
    /// policy *without any validation engine run*: `full` is the
    /// slack-padded measured peak and `min` is the Policy Maker's pure
    /// feasibility bisection ([`min_feasible_budget`] — planner math, no
    /// engine). The policy regenerates or pages on demand at whatever
    /// budget it is granted; checkpoint-preemption is the backstop if the
    /// estimate was optimistic.
    pub fn heuristic_needs(&self, est: &FootprintEstimate) -> JobNeeds {
        let full = with_slack(est.ideal_peak);
        let min = match self.mode {
            AdmissionMode::TfOri => full,
            AdmissionMode::Capuchin => min_feasible_budget(est, &self.planner).min(full),
        };
        JobNeeds { full, min }
    }

    /// Heuristic counterpart of [`Admission::forward_needs`]: instead of
    /// probing with engine runs, pads `full` by one escalation step (the
    /// same step the measured path would take) so the
    /// weights-dominated forward peak keeps transient headroom.
    pub fn heuristic_forward_needs(&self, est: &FootprintEstimate) -> JobNeeds {
        let step = (est.ideal_peak / 16).max(32 << 20);
        let full = with_slack(est.ideal_peak).saturating_add(step);
        let min = match self.mode {
            AdmissionMode::TfOri => full,
            AdmissionMode::Capuchin => min_feasible_budget(est, &self.planner).min(full),
        };
        JobNeeds { full, min }
    }

    /// Bisects the smallest budget at which a Capuchin validation run
    /// actually completes, between the planner's (optimistic) minimum and
    /// the ideal peak.
    fn measured_min_budget(&self, graph: &Graph, est: &FootprintEstimate) -> u64 {
        let runs_at = |budget: u64| {
            self.validate(
                graph,
                &est.spec,
                budget,
                JobPolicy::Capuchin,
                true,
                self.validate_iters,
            )
            .is_ok()
        };
        let mut hi = with_slack(est.ideal_peak);
        if !runs_at(hi) {
            // Even the slack-padded peak fails; let the cluster's
            // failed-budget escalation find a workable grant.
            return hi;
        }
        let mut lo = min_feasible_budget(est, &self.planner);
        if runs_at(lo) {
            return lo;
        }
        let transient = est.transient_bytes();
        let granularity = (transient / 32).max(16 << 20);
        while hi.saturating_sub(lo) > granularity {
            let mid = lo + (hi - lo) / 2;
            if runs_at(mid) {
                hi = mid;
            } else {
                lo = mid;
            }
        }
        hi
    }

    /// Validates an admission decision by actually running `iters`
    /// iterations of the job at the granted budget, returning the
    /// per-iteration wall times and swap-byte volumes the cluster replays
    /// on its clock.
    ///
    /// Shrunk admissions run under the plan-capable policy the job
    /// policy's registry row names (`shrunk_runs_as` — a plan is what
    /// makes the budget viable); as-is admissions run the job's own
    /// requested policy. Both constructors come from the registry.
    ///
    /// # Errors
    ///
    /// Returns the engine's [`ExecError`] (typically OOM) when the budget
    /// turns out to be insufficient; the caller must not admit at this
    /// budget. Zero-iteration requests fail with
    /// [`ExecError::NoIterations`] — an empty wall trace would replay as
    /// zero-time iterations.
    pub fn validate(
        &self,
        graph: &Graph,
        spec: &DeviceSpec,
        budget: u64,
        policy: JobPolicy,
        shrunk: bool,
        iters: u64,
    ) -> Result<Vec<ReplayIter>, ExecError> {
        if iters == 0 {
            return Err(ExecError::NoIterations);
        }
        let cfg = EngineConfig::for_device(spec.clone().with_memory(budget));
        let run_as = if shrunk {
            policy.descriptor().shrunk_runs_as
        } else {
            policy
        };
        let policy = run_as.descriptor().build(budget, spec);
        let mut eng = Engine::new(graph, cfg, policy);
        self.runs.set(self.runs.get() + 1);
        let stats = eng.run(iters)?;
        Ok(stats
            .iters
            .iter()
            .zip(eng.iter_transfers())
            .map(|(it, recs)| ReplayIter {
                wall: it.wall(),
                swap_bytes: it.swap_out_bytes + it.swap_in_bytes,
                recompute_time: it.recompute_time,
                evictions: it.passive_evictions,
                transfers: recs
                    .iter()
                    .map(|rec| ReplayTransfer {
                        label: rec.label.clone(),
                        bytes: rec.bytes,
                        dir: rec.dir,
                        offset: rec.queued.saturating_since(it.started_at),
                    })
                    .collect(),
            })
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use capuchin::measure_footprint;
    use capuchin_models::ModelKind;

    #[test]
    fn capuchin_needs_less_than_tf_ori() {
        let model = ModelKind::Vgg16.build(32);
        let est = measure_footprint(&model.graph, &DeviceSpec::p100_pcie3()).unwrap();
        let tf = Admission::new(AdmissionMode::TfOri).needs(&model.graph, &est);
        let cap = Admission::new(AdmissionMode::Capuchin).needs(&model.graph, &est);
        assert!(tf.full >= est.ideal_peak);
        assert_eq!(tf.min, tf.full);
        assert_eq!(cap.full, tf.full);
        assert!(cap.min < cap.full, "{cap:?}");
        assert!(cap.min > est.weight_bytes, "{cap:?}");
        // The planner agrees a plan exists at the measured minimum.
        let check = shrink_feasibility(&est, cap.min, &PlannerConfig::default());
        assert!(check.feasible);
    }

    #[test]
    fn admission_mode_round_trips_through_fromstr_and_display() {
        for m in [AdmissionMode::TfOri, AdmissionMode::Capuchin] {
            assert_eq!(m.to_string().parse::<AdmissionMode>(), Ok(m));
        }
        // Short CLI spellings also parse.
        assert_eq!("tf-ori".parse(), Ok(AdmissionMode::TfOri));
        assert_eq!("capuchin".parse(), Ok(AdmissionMode::Capuchin));
        let err = "strict".parse::<AdmissionMode>().unwrap_err();
        assert!(err.to_string().contains("tf-ori, capuchin"), "{err}");
    }

    #[test]
    fn zero_iteration_validation_is_rejected() {
        let model = ModelKind::ResNet50.build(8);
        let adm = Admission::new(AdmissionMode::Capuchin);
        assert!(matches!(
            adm.validate(
                &model.graph,
                &DeviceSpec::p100_pcie3(),
                4 << 30,
                JobPolicy::Capuchin,
                false,
                0
            ),
            Err(ExecError::NoIterations)
        ));
    }

    #[test]
    fn heuristic_needs_run_no_validation_engines() {
        let model = ModelKind::Vgg16.build(32);
        let spec = DeviceSpec::p100_pcie3();
        let est = measure_footprint(&model.graph, &spec).unwrap();
        let adm = Admission::new(AdmissionMode::Capuchin);
        let needs = adm.heuristic_needs(&est);
        let fwd = adm.heuristic_forward_needs(&est);
        assert_eq!(adm.validation_runs(), 0, "heuristic admission is free");
        assert!(needs.min <= needs.full);
        assert!(needs.min > est.weight_bytes);
        assert!(fwd.full > needs.full, "forward heuristic pads a step");
        // The measured path, by contrast, pays engine runs.
        let measured = adm.needs(&model.graph, &est);
        assert!(adm.validation_runs() > 0);
        assert_eq!(needs.full, measured.full, "same slack-padded peak");
    }

    #[test]
    fn validation_succeeds_at_min_budget_and_fails_below_weights() {
        let model = ModelKind::Vgg16.build(32);
        let spec = DeviceSpec::p100_pcie3();
        let adm = Admission::new(AdmissionMode::Capuchin);
        let est = measure_footprint(&model.graph, &spec).unwrap();
        let needs = adm.needs(&model.graph, &est);
        // The measured minimum is validated by construction: an actual
        // engine run completes at that budget.
        let replay = adm
            .validate(&model.graph, &spec, needs.min, JobPolicy::Capuchin, true, 4)
            .unwrap();
        assert_eq!(replay.len(), 4);
        assert!(replay.iter().all(|it| it.wall > Duration::ZERO));
        // A shrunk run must actually swap: the replayed traffic is what
        // the cluster routes over the shared host link.
        assert!(replay.iter().any(|it| it.swap_bytes > 0), "{replay:?}");
        // Far below the weight floor even Capuchin cannot run.
        assert!(adm
            .validate(
                &model.graph,
                &spec,
                est.weight_bytes / 2,
                JobPolicy::Capuchin,
                true,
                2
            )
            .is_err());
    }
}
