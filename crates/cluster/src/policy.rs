//! The policy registry: one descriptor per [`JobPolicy`], dispatched by
//! everything that used to `match` on the enum.
//!
//! Admission, validation, job-file parsing, the CLI and the serve daemon
//! all need per-policy facts — what the canonical spelling is, whether a
//! validation run must be measured before admitting, which policy a
//! *shrunk* grant actually executes under, and how to instantiate the
//! executor-level [`MemoryPolicy`]. Before the registry each of those
//! sites kept its own `match JobPolicy` arm; adding a policy meant
//! finding all of them. Now a policy is added by appending one
//! [`PolicyDescriptor`] to [`REGISTRY`] — the spellings, admission
//! class and constructors follow from the table.

use capuchin::Capuchin;
use capuchin_baselines::DtrPolicy;
use capuchin_executor::{MemoryPolicy, TfOri};
use capuchin_sim::DeviceSpec;

use crate::job::JobPolicy;

/// How expensive it is to decide whether a job fits at a budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CostClass {
    /// Admission runs a real measured iteration (and, for shrunk grants,
    /// a validated engine run at the granted budget) before placement.
    /// Mid-run OOM is impossible for admitted jobs; admission is slow.
    Measured,
    /// Admission estimates from the cached footprint measurement alone —
    /// no validation replay, no engine run at the granted budget. Cheap
    /// to admit; checkpoint-preemption is the backstop if the estimate
    /// was optimistic.
    Heuristic,
}

impl CostClass {
    /// Stats/docs name.
    pub fn name(self) -> &'static str {
        match self {
            CostClass::Measured => "measured",
            CostClass::Heuristic => "heuristic",
        }
    }
}

/// Everything the rest of the system needs to know about one policy.
pub struct PolicyDescriptor {
    /// The enum variant this row describes.
    pub policy: JobPolicy,
    /// Canonical CLI/stats/job-file name.
    pub name: &'static str,
    /// Wire spelling in serialized job files (the Rust variant name,
    /// kept for workload files written before the registry existed).
    pub wire: &'static str,
    /// Accepted `FromStr` spellings, canonical first.
    pub accepted: &'static [&'static str],
    /// Whether admission must run a measured validation.
    pub cost_class: CostClass,
    /// Whether the executor-level policy supports engine snapshots
    /// ([`MemoryPolicy::snapshot`] returns `Some`). Cluster-level
    /// checkpoint-preemption replays at the iteration boundary and does
    /// not require it; single-engine checkpointing does.
    pub snapshot: bool,
    /// The policy a *shrunk* admission actually executes under: running
    /// below the ideal peak needs a plan, so plan-less policies delegate.
    pub shrunk_runs_as: JobPolicy,
    /// The policy used to probe forward-only (inference) footprints:
    /// unmanaged execution exposes the true peak.
    pub probe: JobPolicy,
    /// Whether the footprint predictor ([`crate::predict`]) may stand in
    /// for this policy's admission when its key is warm and
    /// [`crate::ClusterConfig::predictive`] is on. Only meaningful for
    /// [`CostClass::Measured`] rows — heuristic admission is already
    /// validation-free, so there is nothing for a prediction to save.
    pub predictable: bool,
    builder: fn(u64, &DeviceSpec) -> Box<dyn MemoryPolicy>,
}

impl PolicyDescriptor {
    /// Instantiates the executor-level policy for a run at `budget`
    /// bytes on `spec`. Current policies configure themselves from the
    /// engine, so the arguments are forwarded for uniformity and future
    /// budget-aware policies.
    pub fn build(&self, budget: u64, spec: &DeviceSpec) -> Box<dyn MemoryPolicy> {
        (self.builder)(budget, spec)
    }
}

impl std::fmt::Debug for PolicyDescriptor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PolicyDescriptor")
            .field("policy", &self.policy)
            .field("name", &self.name)
            .field("wire", &self.wire)
            .field("accepted", &self.accepted)
            .field("cost_class", &self.cost_class)
            .field("snapshot", &self.snapshot)
            .field("shrunk_runs_as", &self.shrunk_runs_as)
            .field("probe", &self.probe)
            .finish_non_exhaustive()
    }
}

fn build_tf_ori(_budget: u64, _spec: &DeviceSpec) -> Box<dyn MemoryPolicy> {
    Box::new(TfOri::new())
}

fn build_capuchin(_budget: u64, _spec: &DeviceSpec) -> Box<dyn MemoryPolicy> {
    Box::new(Capuchin::new())
}

fn build_dtr(_budget: u64, _spec: &DeviceSpec) -> Box<dyn MemoryPolicy> {
    Box::new(DtrPolicy::new())
}

fn build_delta(_budget: u64, _spec: &DeviceSpec) -> Box<dyn MemoryPolicy> {
    Box::new(Capuchin::delta())
}

/// One row per [`JobPolicy`] variant, canonical-name order.
pub const REGISTRY: &[PolicyDescriptor] = &[
    PolicyDescriptor {
        policy: JobPolicy::TfOri,
        name: "tf-ori",
        wire: "TfOri",
        accepted: &["tf-ori"],
        cost_class: CostClass::Measured,
        snapshot: false,
        shrunk_runs_as: JobPolicy::Capuchin,
        probe: JobPolicy::TfOri,
        predictable: true,
        builder: build_tf_ori,
    },
    PolicyDescriptor {
        policy: JobPolicy::Capuchin,
        name: "capuchin",
        wire: "Capuchin",
        accepted: &["capuchin"],
        cost_class: CostClass::Measured,
        snapshot: true,
        shrunk_runs_as: JobPolicy::Capuchin,
        probe: JobPolicy::TfOri,
        predictable: true,
        builder: build_capuchin,
    },
    PolicyDescriptor {
        policy: JobPolicy::Dtr,
        name: "dtr",
        wire: "Dtr",
        accepted: &["dtr"],
        cost_class: CostClass::Heuristic,
        snapshot: true,
        shrunk_runs_as: JobPolicy::Dtr,
        probe: JobPolicy::TfOri,
        predictable: false,
        builder: build_dtr,
    },
    PolicyDescriptor {
        policy: JobPolicy::Delta,
        name: "delta",
        wire: "Delta",
        accepted: &["delta"],
        cost_class: CostClass::Measured,
        snapshot: true,
        shrunk_runs_as: JobPolicy::Delta,
        probe: JobPolicy::TfOri,
        predictable: true,
        builder: build_delta,
    },
];

/// Total accepted-spelling count across the registry, for the derived
/// [`JobPolicy::ACCEPTED`] array.
const fn accepted_count() -> usize {
    let mut n = 0;
    let mut i = 0;
    while i < REGISTRY.len() {
        n += REGISTRY[i].accepted.len();
        i += 1;
    }
    n
}

/// All accepted spellings, registry order — the single source for
/// `JobPolicy::ACCEPTED` and parse-error suggestions.
pub(crate) const ACCEPTED_SPELLINGS: [&str; accepted_count()] = {
    let mut out = [""; accepted_count()];
    let mut k = 0;
    let mut i = 0;
    while i < REGISTRY.len() {
        let mut j = 0;
        while j < REGISTRY[i].accepted.len() {
            out[k] = REGISTRY[i].accepted[j];
            k += 1;
            j += 1;
        }
        i += 1;
    }
    out
};

impl JobPolicy {
    /// The registry row for this policy.
    pub fn descriptor(self) -> &'static PolicyDescriptor {
        REGISTRY
            .iter()
            .find(|d| d.policy == self)
            .expect("every JobPolicy variant has a registry row")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_variant_has_a_row_and_names_are_unique() {
        let all = [
            JobPolicy::TfOri,
            JobPolicy::Capuchin,
            JobPolicy::Dtr,
            JobPolicy::Delta,
        ];
        assert_eq!(REGISTRY.len(), all.len());
        for p in all {
            let d = p.descriptor();
            assert_eq!(d.policy, p);
            assert_eq!(d.accepted[0], d.name, "canonical spelling leads");
        }
        let mut names: Vec<&str> = REGISTRY.iter().map(|d| d.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), REGISTRY.len(), "duplicate canonical name");
        let mut spellings = ACCEPTED_SPELLINGS.to_vec();
        spellings.sort_unstable();
        spellings.dedup();
        assert_eq!(
            spellings.len(),
            ACCEPTED_SPELLINGS.len(),
            "duplicate accepted spelling"
        );
    }

    #[test]
    fn descriptor_snapshot_flag_matches_executor_policy() {
        let spec = DeviceSpec::p100_pcie3();
        for d in REGISTRY {
            let built = d.build(1 << 30, &spec);
            assert_eq!(
                built.snapshot().is_some(),
                d.snapshot,
                "descriptor {} misdeclares snapshot support",
                d.name
            );
            assert_eq!(built.name(), d.name, "built policy reports its name");
        }
    }

    #[test]
    fn predictable_rows_are_exactly_the_measured_class() {
        // Prediction replaces *measured* admission cost; a heuristic row
        // claiming predictability would silently change its provenance
        // without saving anything, and a non-predictable measured row
        // would never warm its key.
        for d in REGISTRY {
            assert_eq!(
                d.predictable,
                d.cost_class == CostClass::Measured,
                "registry row {} predictable/cost_class mismatch",
                d.name
            );
        }
    }

    #[test]
    fn shrunk_delegation_targets_plan_capable_policies() {
        for d in REGISTRY {
            let target = d.shrunk_runs_as.descriptor();
            assert_ne!(
                target.policy,
                JobPolicy::TfOri,
                "shrunk {} must not run unmanaged",
                d.name
            );
        }
    }
}
