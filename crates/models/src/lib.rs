//! # capuchin-models — the paper's workload zoo
//!
//! From-scratch graph builders for the seven networks of the paper's
//! Table 1: VGG16, ResNet-50, ResNet-152, InceptionV3, InceptionV4,
//! DenseNet-121, and BERT-Base. Each builder produces the full *training*
//! graph — forward pass, reverse-mode backward pass, and SGD weight
//! updates — at a chosen batch size.
//!
//! ```
//! use capuchin_models::ModelKind;
//!
//! let model = ModelKind::ResNet50.build(32);
//! assert!(model.graph.op_count() > 500);
//! println!("{} at batch {}: {} params", model.graph.name(),
//!          model.batch, model.graph.param_count());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod bert;
mod densenet;
mod inception;
mod resnet;
mod vgg;

pub use bert::{bert, bert_base, BertConfig};
pub use densenet::densenet121;
pub use inception::{inception_v3, inception_v4};
pub use resnet::{resnet101, resnet152, resnet50};
pub use vgg::{vgg16, vgg19};

use capuchin_graph::{build_backward, GradInfo, Graph, ValueId};
use serde::{Deserialize, Serialize};

/// A fully-built training computation.
#[derive(Debug)]
pub struct Model {
    /// The training graph (forward + backward + updates).
    pub graph: Graph,
    /// The scalar loss value.
    pub loss: ValueId,
    /// Gradient bookkeeping from autodiff.
    pub grads: GradInfo,
    /// Mini-batch size the graph was built for.
    pub batch: usize,
}

impl Model {
    /// Finalizes a forward graph into a training model by appending the
    /// backward pass.
    pub fn finish(mut graph: Graph, loss: ValueId, batch: usize) -> Model {
        let grads = build_backward(&mut graph, loss);
        debug_assert!(graph.validate().is_ok());
        Model {
            graph,
            loss,
            grads,
            batch,
        }
    }
}

/// The paper's workloads (Table 1).
///
/// `Ord` follows declaration order; the variant itself serves as an
/// interned cache key (cheaper than cloning the model's name `String`
/// per lookup).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum ModelKind {
    /// VGG16, 224×224 CNN.
    Vgg16,
    /// ResNet-50, 224×224 CNN.
    ResNet50,
    /// ResNet-152, 224×224 CNN.
    ResNet152,
    /// InceptionV3, 299×299 CNN.
    InceptionV3,
    /// InceptionV4, 299×299 CNN.
    InceptionV4,
    /// DenseNet-121, 224×224 CNN (eager-mode workload).
    DenseNet121,
    /// BERT-Base with an MLM head (Transformer).
    BertBase,
}

impl ModelKind {
    /// All workloads, in the paper's Table 1 order.
    pub const ALL: [ModelKind; 7] = [
        ModelKind::Vgg16,
        ModelKind::ResNet50,
        ModelKind::ResNet152,
        ModelKind::InceptionV3,
        ModelKind::InceptionV4,
        ModelKind::DenseNet121,
        ModelKind::BertBase,
    ];

    /// Display name matching the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            ModelKind::Vgg16 => "Vgg16",
            ModelKind::ResNet50 => "ResNet-50",
            ModelKind::ResNet152 => "ResNet-152",
            ModelKind::InceptionV3 => "InceptionV3",
            ModelKind::InceptionV4 => "InceptionV4",
            ModelKind::DenseNet121 => "DenseNet",
            ModelKind::BertBase => "BERT",
        }
    }

    /// Builds the training graph at the given batch size.
    pub fn build(self, batch: usize) -> Model {
        match self {
            ModelKind::Vgg16 => vgg16(batch),
            ModelKind::ResNet50 => resnet50(batch),
            ModelKind::ResNet152 => resnet152(batch),
            ModelKind::InceptionV3 => inception_v3(batch),
            ModelKind::InceptionV4 => inception_v4(batch),
            ModelKind::DenseNet121 => densenet121(batch),
            ModelKind::BertBase => bert_base(batch),
        }
    }
}

impl std::fmt::Display for ModelKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_models_build_and_validate_at_small_batch() {
        for kind in ModelKind::ALL {
            let m = kind.build(2);
            m.graph.validate().unwrap_or_else(|e| panic!("{kind}: {e}"));
            assert_eq!(m.batch, 2);
            assert!(m.graph.op_count() > 50, "{kind} suspiciously small");
        }
    }

    #[test]
    fn activation_bytes_scale_with_batch() {
        let small = ModelKind::ResNet50.build(2);
        let big = ModelKind::ResNet50.build(4);
        // Feature maps scale ~linearly with batch (weights don't).
        let s = small.graph.activation_bytes();
        let b = big.graph.activation_bytes();
        assert!(b > s * 19 / 10, "s={s} b={b}");
    }

    #[test]
    fn node_counts_match_paper_scale() {
        // "more than 3000 nodes in ResNet-50, 7000 nodes in BERT" (§1) for
        // TF's internal graph; our leaner IR should still be in the
        // hundreds-to-thousands.
        let resnet = ModelKind::ResNet50.build(2);
        assert!(resnet.graph.op_count() > 400, "{}", resnet.graph.op_count());
        let bert = ModelKind::BertBase.build(2);
        assert!(bert.graph.op_count() > 700, "{}", bert.graph.op_count());
    }
}
