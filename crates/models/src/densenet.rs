//! DenseNet-121 (Huang et al., CVPR 2017).
//!
//! Dense connectivity makes every layer's output live until the end of its
//! block (each subsequent layer concatenates all previous outputs), which
//! is why DenseNet is the paper's second eager-mode workload — its memory
//! footprint grows quadratically with depth inside a block.

use capuchin_graph::{Graph, ValueId};
use capuchin_tensor::{DType, Shape};

use crate::Model;

const GROWTH: usize = 32;

/// BN → ReLU → 1×1 conv(4k) → BN → ReLU → 3×3 conv(k), concatenated onto
/// the running feature stack.
fn dense_layer(g: &mut Graph, name: &str, x: ValueId) -> ValueId {
    let b1 = g.batch_norm(&format!("{name}/bn1"), x);
    let r1 = g.relu(&format!("{name}/relu1"), b1);
    let c1 = g.conv2d(&format!("{name}/conv1"), r1, 4 * GROWTH, 1, 1, 0);
    let b2 = g.batch_norm(&format!("{name}/bn2"), c1);
    let r2 = g.relu(&format!("{name}/relu2"), b2);
    let c2 = g.conv2d(&format!("{name}/conv2"), r2, GROWTH, 3, 1, 1);
    g.concat(&format!("{name}/concat"), &[x, c2], 1)
}

/// BN → ReLU → 1×1 conv (halve channels) → 2×2 average pool.
fn transition(g: &mut Graph, name: &str, x: ValueId) -> ValueId {
    let c_in = g.value(x).shape.dim(1);
    let b = g.batch_norm(&format!("{name}/bn"), x);
    let r = g.relu(&format!("{name}/relu"), b);
    let c = g.conv2d(&format!("{name}/conv"), r, c_in / 2, 1, 1, 0);
    g.avg_pool(&format!("{name}/pool"), c, 2, 2, 0)
}

/// DenseNet-121 with a training batch of `batch` 224×224 images.
pub fn densenet121(batch: usize) -> Model {
    let mut g = Graph::new("densenet121");
    let x = g.input("images", Shape::nchw(batch, 3, 224, 224), DType::F32);
    let labels = g.input("labels", Shape::vector(batch), DType::I32);

    let mut h = g.conv2d("conv1", x, 64, 7, 2, 3);
    h = g.batch_norm("bn1", h);
    h = g.relu("relu1", h);
    h = g.max_pool("pool1", h, 3, 2, 1);

    let blocks = [6, 12, 24, 16];
    for (bi, &layers) in blocks.iter().enumerate() {
        for li in 0..layers {
            h = dense_layer(&mut g, &format!("block{}/layer{}", bi + 1, li + 1), h);
        }
        if bi + 1 < blocks.len() {
            h = transition(&mut g, &format!("transition{}", bi + 1), h);
        }
    }

    h = g.batch_norm("bn_final", h);
    h = g.relu("relu_final", h);
    let gap = g.global_avg_pool("gap", h);
    let logits = g.dense("fc", gap, 1000);
    let loss = g.softmax_cross_entropy("loss", logits, labels);
    Model::finish(g, loss, batch)
}

#[cfg(test)]
mod tests {
    use super::*;
    use capuchin_graph::OpKind;

    #[test]
    fn parameter_count_near_8m() {
        let m = densenet121(2);
        let params = m.graph.param_count();
        assert!(
            (7_500_000..8_500_000).contains(&params),
            "densenet121 params = {params}"
        );
    }

    #[test]
    fn conv_count_is_121_structure() {
        let m = densenet121(2);
        let convs = m
            .graph
            .ops()
            .iter()
            .filter(|o| matches!(o.kind, OpKind::Conv2d(_)))
            .count();
        // 1 stem + 58 layers * 2 + 3 transitions = 120 convs (+ fc = 121).
        assert_eq!(convs, 120);
    }

    #[test]
    fn channel_growth_inside_block() {
        let m = densenet121(2);
        // Block 1 starts at 64 and adds 32 per layer: 64 + 6*32 = 256.
        let out = m
            .graph
            .values()
            .iter()
            .find(|v| v.name == "block1/layer6/concat/out")
            .unwrap();
        assert_eq!(out.shape.dim(1), 256);
        // Final stack: transitions halve; block4 ends at 512 + 16*32 = 1024.
        let last = m
            .graph
            .values()
            .iter()
            .find(|v| v.name == "block4/layer16/concat/out")
            .unwrap();
        assert_eq!(last.shape.dim(1), 1024);
        assert_eq!(&last.shape.dims()[2..], &[7, 7]);
    }

    #[test]
    fn validates_with_backward() {
        densenet121(2).graph.validate().unwrap();
    }
}
