//! BERT-Base (Devlin et al., 2018) with a masked-language-model head.
//!
//! 12 transformer encoder layers, hidden size 768, 12 attention heads,
//! 3072-wide feed-forward, vocabulary 30522, sequence length 128 —
//! ~110M parameters as in the paper's Table 1. The MLM head projects every
//! position back onto the vocabulary (tying the embedding table), which is
//! what makes BERT training so memory hungry: the logits and saved softmax
//! probabilities alone are `batch × seq × 30522` floats.

use capuchin_graph::{Graph, ValueId};
use capuchin_tensor::{DType, Shape};

use crate::Model;

/// BERT-Base hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BertConfig {
    /// Number of transformer layers.
    pub layers: usize,
    /// Hidden size.
    pub hidden: usize,
    /// Attention heads.
    pub heads: usize,
    /// Feed-forward inner size.
    pub intermediate: usize,
    /// Vocabulary size.
    pub vocab: usize,
    /// Sequence length.
    pub seq_len: usize,
}

impl BertConfig {
    /// The base configuration (110M parameters).
    pub fn base() -> BertConfig {
        BertConfig {
            layers: 12,
            hidden: 768,
            heads: 12,
            intermediate: 3072,
            vocab: 30522,
            seq_len: 128,
        }
    }
}

fn encoder_layer(g: &mut Graph, name: &str, x: ValueId, cfg: &BertConfig, batch: usize) -> ValueId {
    let (b, s, h) = (batch, cfg.seq_len, cfg.hidden);
    let head_dim = h / cfg.heads;
    let heads = cfg.heads;

    // Self-attention.
    let q = g.dense(&format!("{name}/attn/query"), x, h);
    let k = g.dense(&format!("{name}/attn/key"), x, h);
    let v = g.dense(&format!("{name}/attn/value"), x, h);
    let split = Shape::new(vec![b * heads, s, head_dim]);
    let qh = g.transpose_to(&format!("{name}/attn/q_heads"), q, split.clone());
    let kh = g.transpose_to(&format!("{name}/attn/k_heads"), k, split.clone());
    let vh = g.transpose_to(&format!("{name}/attn/v_heads"), v, split);
    let scores = g.matmul(&format!("{name}/attn/scores"), qh, kh, false, true);
    let scaled = g.scalar_mul(
        &format!("{name}/attn/scale"),
        scores,
        1.0 / (head_dim as f64).sqrt(),
    );
    let probs = g.softmax(&format!("{name}/attn/softmax"), scaled);
    let probs = g.dropout(&format!("{name}/attn/dropout"), probs, 10);
    let ctx = g.matmul(&format!("{name}/attn/context"), probs, vh, false, false);
    let merged = g.transpose_to(
        &format!("{name}/attn/merge"),
        ctx,
        Shape::new(vec![b, s, h]),
    );
    let attn_out = g.dense(&format!("{name}/attn/output"), merged, h);
    let attn_out = g.dropout(&format!("{name}/attn/out_dropout"), attn_out, 10);
    let res1 = g.add(&format!("{name}/attn/residual"), attn_out, x);
    let norm1 = g.layer_norm(&format!("{name}/attn/layer_norm"), res1);

    // Feed-forward.
    let ff1 = g.dense(&format!("{name}/ffn/dense1"), norm1, cfg.intermediate);
    let act = g.gelu(&format!("{name}/ffn/gelu"), ff1);
    let ff2 = g.dense(&format!("{name}/ffn/dense2"), act, h);
    let ff2 = g.dropout(&format!("{name}/ffn/dropout"), ff2, 10);
    let res2 = g.add(&format!("{name}/ffn/residual"), ff2, norm1);
    g.layer_norm(&format!("{name}/ffn/layer_norm"), res2)
}

/// BERT-Base with a training batch of `batch` sequences.
pub fn bert_base(batch: usize) -> Model {
    bert(BertConfig::base(), batch)
}

/// BERT with an explicit configuration.
pub fn bert(cfg: BertConfig, batch: usize) -> Model {
    let mut g = Graph::new("bert_base");
    let (b, s, h) = (batch, cfg.seq_len, cfg.hidden);

    let ids = g.input("input_ids", Shape::matrix(b, s), DType::I32);
    let labels = g.input("mlm_labels", Shape::vector(b * s), DType::I32);

    // Embeddings: token + learned position, then layer-norm + dropout.
    let tok = g.embedding("embeddings/token", ids, cfg.vocab, h);
    let pos_table = g.weight("embeddings/position", Shape::matrix(s, h));
    let pos = g.reshape(
        "embeddings/position_bcast",
        pos_table,
        Shape::new(vec![1, s, h]),
    );
    // Broadcast add is modeled as a full-shape add after an explicit tile.
    let pos_tiled = {
        let tiles: Vec<ValueId> = (0..1).map(|_| pos).collect();
        if b == 1 {
            tiles[0]
        } else {
            let many: Vec<ValueId> = std::iter::repeat_n(pos, b).collect();
            g.concat("embeddings/position_tile", &many, 0)
        }
    };
    let emb = g.add("embeddings/sum", tok, pos_tiled);
    let emb = g.layer_norm("embeddings/layer_norm", emb);
    let mut hstate = g.dropout("embeddings/dropout", emb, 10);

    for layer in 0..cfg.layers {
        hstate = encoder_layer(&mut g, &format!("layer{layer}"), hstate, &cfg, b);
    }

    // MLM head: transform + project onto the vocabulary.
    let flat = g.reshape("mlm/flatten", hstate, Shape::matrix(b * s, h));
    let transform = g.dense("mlm/transform", flat, h);
    let transform = g.gelu("mlm/gelu", transform);
    let transform = g.layer_norm("mlm/layer_norm", transform);
    let logits = g.dense("mlm/logits", transform, cfg.vocab);
    let loss = g.softmax_cross_entropy("loss", logits, labels);
    Model::finish(g, loss, batch)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_parameter_count_near_110m() {
        let m = bert_base(2);
        let params = m.graph.param_count();
        // 110M canonical (token embeddings 23.4M + 12 layers * 7.1M + heads).
        assert!(
            (105_000_000..135_000_000).contains(&params),
            "bert params = {params}"
        );
    }

    #[test]
    fn attention_scores_shape() {
        let m = bert_base(4);
        let scores = m
            .graph
            .values()
            .iter()
            .find(|v| v.name == "layer0/attn/scores/out")
            .unwrap();
        assert_eq!(scores.shape.dims(), &[4 * 12, 128, 128]);
    }

    #[test]
    fn mlm_logits_cover_vocab() {
        let m = bert_base(2);
        let logits = m
            .graph
            .values()
            .iter()
            .find(|v| v.name == "mlm/logits/bias_add/out")
            .unwrap();
        assert_eq!(logits.shape.dims(), &[2 * 128, 30522]);
    }

    #[test]
    fn twelve_layers_built() {
        let m = bert_base(1);
        for layer in 0..12 {
            assert!(
                m.graph
                    .values()
                    .iter()
                    .any(|v| v.name == format!("layer{layer}/ffn/layer_norm/out")),
                "layer {layer} missing"
            );
        }
    }

    #[test]
    fn validates_with_backward() {
        bert_base(2).graph.validate().unwrap();
    }

    #[test]
    fn batch_one_skips_position_tile() {
        let m = bert(BertConfig::base(), 1);
        m.graph.validate().unwrap();
    }
}
