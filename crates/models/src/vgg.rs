//! VGG-16 (Simonyan & Zisserman, 2014).
//!
//! The paper's hardest workload for memory managers: few, huge feature
//! maps (its first ReLU alone needs ~6 GB at batch 230 — §6.3.1) and a
//! 123M-parameter classifier head.

use capuchin_graph::Graph;
use capuchin_tensor::{DType, Shape};

use crate::Model;

/// VGG-16 with a training batch of `batch` 224×224 images.
pub fn vgg16(batch: usize) -> Model {
    vgg(
        "vgg16",
        &[
            &[64, 64],
            &[128, 128],
            &[256, 256, 256],
            &[512, 512, 512],
            &[512, 512, 512],
        ],
        batch,
    )
}

/// VGG-19 with a training batch of `batch` 224×224 images (not part of
/// the paper's Table 1; provided for model-zoo completeness).
pub fn vgg19(batch: usize) -> Model {
    vgg(
        "vgg19",
        &[
            &[64, 64],
            &[128, 128],
            &[256, 256, 256, 256],
            &[512, 512, 512, 512],
            &[512, 512, 512, 512],
        ],
        batch,
    )
}

fn vgg(name: &str, stages: &[&[usize]], batch: usize) -> Model {
    let mut g = Graph::new(name);
    let x = g.input("images", Shape::nchw(batch, 3, 224, 224), DType::F32);
    let labels = g.input("labels", Shape::vector(batch), DType::I32);

    let mut h = x;
    for (si, stage) in stages.iter().enumerate() {
        for (ci, &channels) in stage.iter().enumerate() {
            let name = format!("conv{}_{}", si + 1, ci + 1);
            h = g.conv2d(&name, h, channels, 3, 1, 1);
            h = g.relu(&format!("relu{}_{}", si + 1, ci + 1), h);
        }
        h = g.max_pool(&format!("pool{}", si + 1), h, 2, 2, 0);
    }

    let hs = g.value(h).shape.clone();
    let flat = g.reshape("flatten", h, Shape::matrix(batch, hs.elem_count() / batch));
    let fc6 = g.dense("fc6", flat, 4096);
    let fc6 = g.relu("relu6", fc6);
    let fc6 = g.dropout("drop6", fc6, 50);
    let fc7 = g.dense("fc7", fc6, 4096);
    let fc7 = g.relu("relu7", fc7);
    let fc7 = g.dropout("drop7", fc7, 50);
    let logits = g.dense("fc8", fc7, 1000);
    let loss = g.softmax_cross_entropy("loss", logits, labels);
    Model::finish(g, loss, batch)
}

#[cfg(test)]
mod tests {
    use super::*;
    use capuchin_graph::OpKind;
    use capuchin_tensor::DType;

    #[test]
    fn parameter_count_is_canonical() {
        let m = vgg16(2);
        let params = m.graph.param_count();
        // Canonical VGG-16 has 138,357,544 parameters; we model
        // convolutions without per-channel biases (they are folded into
        // the following layer), which removes exactly 4,224 of them.
        assert_eq!(params, 138_357_544 - 4_224);
    }

    #[test]
    fn thirteen_convs_three_dense() {
        let m = vgg16(2);
        let convs = m
            .graph
            .ops()
            .iter()
            .filter(|o| matches!(o.kind, OpKind::Conv2d(_)))
            .count();
        assert_eq!(convs, 13);
    }

    #[test]
    fn first_relu_is_enormous() {
        // The paper notes VGG16's first ReLU output needs ~6 GB at batch
        // 230: 230 * 64 * 224 * 224 * 4 B = 2.95 GB for the output alone;
        // (with its conv input as well the layer needs ~6 GB live).
        let m = vgg16(230);
        let relu = m
            .graph
            .values()
            .iter()
            .find(|v| v.name == "relu1_1/out")
            .unwrap();
        let bytes = relu.shape.size_bytes(DType::F32);
        assert!(bytes > 2_900_000_000, "relu1_1 = {bytes} bytes");
    }

    #[test]
    fn validates_with_backward() {
        let m = vgg16(2);
        m.graph.validate().unwrap();
    }

    #[test]
    fn vgg19_has_sixteen_convs() {
        let m = vgg19(2);
        let convs = m
            .graph
            .ops()
            .iter()
            .filter(|o| matches!(o.kind, OpKind::Conv2d(_)))
            .count();
        assert_eq!(convs, 16);
        // Canonical VGG-19: 143,667,240 params (minus our folded conv
        // biases, 5,504 of them).
        assert_eq!(m.graph.param_count(), 143_667_240 - 5_504);
    }
}
