//! InceptionV3 and InceptionV4 (Szegedy et al.).
//!
//! Faithful module topology (branch structure, channel counts, grid
//! reductions) over 299×299 inputs. One modeling simplification: the
//! asymmetric 1×7/7×1 and 1×3/3×1 factorized convolutions are represented
//! as square 3×3 convolutions with the same channel counts (our conv IR is
//! square-kernel); the FLOP difference is bounded (9 vs 7 MACs per output)
//! and the layer count / activation footprint — what the paper's Fig. 2
//! and the memory experiments measure — is preserved.

use capuchin_graph::{Graph, ValueId};
use capuchin_tensor::{DType, Shape};

use crate::Model;

/// conv + batch-norm + relu, the basic Inception cell.
fn cbr(
    g: &mut Graph,
    name: &str,
    x: ValueId,
    out_c: usize,
    kernel: usize,
    stride: usize,
    pad: usize,
) -> ValueId {
    let c = g.conv2d(&format!("{name}/conv"), x, out_c, kernel, stride, pad);
    let b = g.batch_norm(&format!("{name}/bn"), c);
    g.relu(&format!("{name}/relu"), b)
}

/// Stand-in for an asymmetric (1×k + k×1) factorized conv pair.
fn asym(g: &mut Graph, name: &str, x: ValueId, out_c: usize) -> ValueId {
    cbr(g, name, x, out_c, 3, 1, 1)
}

// ---------------------------------------------------------------------
// InceptionV3
// ---------------------------------------------------------------------

fn v3_inception_a(g: &mut Graph, name: &str, x: ValueId, pool_c: usize) -> ValueId {
    let b1 = cbr(g, &format!("{name}/b1x1"), x, 64, 1, 1, 0);
    let b5 = cbr(g, &format!("{name}/b5x5_1"), x, 48, 1, 1, 0);
    let b5 = cbr(g, &format!("{name}/b5x5_2"), b5, 64, 5, 1, 2);
    let b3 = cbr(g, &format!("{name}/b3x3_1"), x, 64, 1, 1, 0);
    let b3 = cbr(g, &format!("{name}/b3x3_2"), b3, 96, 3, 1, 1);
    let b3 = cbr(g, &format!("{name}/b3x3_3"), b3, 96, 3, 1, 1);
    let bp = g.avg_pool(&format!("{name}/pool"), x, 3, 1, 1);
    let bp = cbr(g, &format!("{name}/pool_proj"), bp, pool_c, 1, 1, 0);
    g.concat(&format!("{name}/concat"), &[b1, b5, b3, bp], 1)
}

fn v3_reduction_a(g: &mut Graph, name: &str, x: ValueId) -> ValueId {
    let b3 = cbr(g, &format!("{name}/b3x3"), x, 384, 3, 2, 0);
    let bd = cbr(g, &format!("{name}/bdbl_1"), x, 64, 1, 1, 0);
    let bd = cbr(g, &format!("{name}/bdbl_2"), bd, 96, 3, 1, 1);
    let bd = cbr(g, &format!("{name}/bdbl_3"), bd, 96, 3, 2, 0);
    let bp = g.max_pool(&format!("{name}/pool"), x, 3, 2, 0);
    g.concat(&format!("{name}/concat"), &[b3, bd, bp], 1)
}

fn v3_inception_b(g: &mut Graph, name: &str, x: ValueId, c7: usize) -> ValueId {
    let b1 = cbr(g, &format!("{name}/b1x1"), x, 192, 1, 1, 0);
    let b7 = cbr(g, &format!("{name}/b7_1"), x, c7, 1, 1, 0);
    let b7 = asym(g, &format!("{name}/b7_2"), b7, c7);
    let b7 = asym(g, &format!("{name}/b7_3"), b7, 192);
    let bd = cbr(g, &format!("{name}/b7dbl_1"), x, c7, 1, 1, 0);
    let bd = asym(g, &format!("{name}/b7dbl_2"), bd, c7);
    let bd = asym(g, &format!("{name}/b7dbl_3"), bd, c7);
    let bd = asym(g, &format!("{name}/b7dbl_4"), bd, c7);
    let bd = asym(g, &format!("{name}/b7dbl_5"), bd, 192);
    let bp = g.avg_pool(&format!("{name}/pool"), x, 3, 1, 1);
    let bp = cbr(g, &format!("{name}/pool_proj"), bp, 192, 1, 1, 0);
    g.concat(&format!("{name}/concat"), &[b1, b7, bd, bp], 1)
}

fn v3_reduction_b(g: &mut Graph, name: &str, x: ValueId) -> ValueId {
    let b3 = cbr(g, &format!("{name}/b3_1"), x, 192, 1, 1, 0);
    let b3 = cbr(g, &format!("{name}/b3_2"), b3, 320, 3, 2, 0);
    let b7 = cbr(g, &format!("{name}/b7_1"), x, 192, 1, 1, 0);
    let b7 = asym(g, &format!("{name}/b7_2"), b7, 192);
    let b7 = cbr(g, &format!("{name}/b7_3"), b7, 192, 3, 2, 0);
    let bp = g.max_pool(&format!("{name}/pool"), x, 3, 2, 0);
    g.concat(&format!("{name}/concat"), &[b3, b7, bp], 1)
}

fn v3_inception_c(g: &mut Graph, name: &str, x: ValueId) -> ValueId {
    let b1 = cbr(g, &format!("{name}/b1x1"), x, 320, 1, 1, 0);
    let b3 = cbr(g, &format!("{name}/b3_1"), x, 384, 1, 1, 0);
    let b3a = asym(g, &format!("{name}/b3_2a"), b3, 384);
    let b3b = asym(g, &format!("{name}/b3_2b"), b3, 384);
    let bd = cbr(g, &format!("{name}/bdbl_1"), x, 448, 1, 1, 0);
    let bd = cbr(g, &format!("{name}/bdbl_2"), bd, 384, 3, 1, 1);
    let bda = asym(g, &format!("{name}/bdbl_3a"), bd, 384);
    let bdb = asym(g, &format!("{name}/bdbl_3b"), bd, 384);
    let bp = g.avg_pool(&format!("{name}/pool"), x, 3, 1, 1);
    let bp = cbr(g, &format!("{name}/pool_proj"), bp, 192, 1, 1, 0);
    g.concat(&format!("{name}/concat"), &[b1, b3a, b3b, bda, bdb, bp], 1)
}

/// InceptionV3 with a training batch of `batch` 299×299 images.
pub fn inception_v3(batch: usize) -> Model {
    let mut g = Graph::new("inception_v3");
    let x = g.input("images", Shape::nchw(batch, 3, 299, 299), DType::F32);
    let labels = g.input("labels", Shape::vector(batch), DType::I32);

    // Stem: 299 -> 35.
    let mut h = cbr(&mut g, "stem/conv1", x, 32, 3, 2, 0);
    h = cbr(&mut g, "stem/conv2", h, 32, 3, 1, 0);
    h = cbr(&mut g, "stem/conv3", h, 64, 3, 1, 1);
    h = g.max_pool("stem/pool1", h, 3, 2, 0);
    h = cbr(&mut g, "stem/conv4", h, 80, 1, 1, 0);
    h = cbr(&mut g, "stem/conv5", h, 192, 3, 1, 0);
    h = g.max_pool("stem/pool2", h, 3, 2, 0);

    h = v3_inception_a(&mut g, "mixed_a1", h, 32);
    h = v3_inception_a(&mut g, "mixed_a2", h, 64);
    h = v3_inception_a(&mut g, "mixed_a3", h, 64);
    h = v3_reduction_a(&mut g, "reduction_a", h);
    for (i, c7) in [128, 160, 160, 192].iter().enumerate() {
        h = v3_inception_b(&mut g, &format!("mixed_b{}", i + 1), h, *c7);
    }
    h = v3_reduction_b(&mut g, "reduction_b", h);
    h = v3_inception_c(&mut g, "mixed_c1", h);
    h = v3_inception_c(&mut g, "mixed_c2", h);

    let gap = g.global_avg_pool("gap", h);
    let gap = g.dropout("dropout", gap, 20);
    let logits = g.dense("fc", gap, 1000);
    let loss = g.softmax_cross_entropy("loss", logits, labels);
    Model::finish(g, loss, batch)
}

// ---------------------------------------------------------------------
// InceptionV4
// ---------------------------------------------------------------------

fn v4_inception_a(g: &mut Graph, name: &str, x: ValueId) -> ValueId {
    let b1 = cbr(g, &format!("{name}/b1x1"), x, 96, 1, 1, 0);
    let b3 = cbr(g, &format!("{name}/b3_1"), x, 64, 1, 1, 0);
    let b3 = cbr(g, &format!("{name}/b3_2"), b3, 96, 3, 1, 1);
    let bd = cbr(g, &format!("{name}/bdbl_1"), x, 64, 1, 1, 0);
    let bd = cbr(g, &format!("{name}/bdbl_2"), bd, 96, 3, 1, 1);
    let bd = cbr(g, &format!("{name}/bdbl_3"), bd, 96, 3, 1, 1);
    let bp = g.avg_pool(&format!("{name}/pool"), x, 3, 1, 1);
    let bp = cbr(g, &format!("{name}/pool_proj"), bp, 96, 1, 1, 0);
    g.concat(&format!("{name}/concat"), &[b1, b3, bd, bp], 1)
}

fn v4_reduction_a(g: &mut Graph, name: &str, x: ValueId) -> ValueId {
    let b3 = cbr(g, &format!("{name}/b3"), x, 384, 3, 2, 0);
    let bd = cbr(g, &format!("{name}/bdbl_1"), x, 192, 1, 1, 0);
    let bd = cbr(g, &format!("{name}/bdbl_2"), bd, 224, 3, 1, 1);
    let bd = cbr(g, &format!("{name}/bdbl_3"), bd, 256, 3, 2, 0);
    let bp = g.max_pool(&format!("{name}/pool"), x, 3, 2, 0);
    g.concat(&format!("{name}/concat"), &[b3, bd, bp], 1)
}

fn v4_inception_b(g: &mut Graph, name: &str, x: ValueId) -> ValueId {
    let b1 = cbr(g, &format!("{name}/b1x1"), x, 384, 1, 1, 0);
    let b7 = cbr(g, &format!("{name}/b7_1"), x, 192, 1, 1, 0);
    let b7 = asym(g, &format!("{name}/b7_2"), b7, 224);
    let b7 = asym(g, &format!("{name}/b7_3"), b7, 256);
    let bd = cbr(g, &format!("{name}/b7dbl_1"), x, 192, 1, 1, 0);
    let bd = asym(g, &format!("{name}/b7dbl_2"), bd, 192);
    let bd = asym(g, &format!("{name}/b7dbl_3"), bd, 224);
    let bd = asym(g, &format!("{name}/b7dbl_4"), bd, 224);
    let bd = asym(g, &format!("{name}/b7dbl_5"), bd, 256);
    let bp = g.avg_pool(&format!("{name}/pool"), x, 3, 1, 1);
    let bp = cbr(g, &format!("{name}/pool_proj"), bp, 128, 1, 1, 0);
    g.concat(&format!("{name}/concat"), &[b1, b7, bd, bp], 1)
}

fn v4_reduction_b(g: &mut Graph, name: &str, x: ValueId) -> ValueId {
    let b3 = cbr(g, &format!("{name}/b3_1"), x, 192, 1, 1, 0);
    let b3 = cbr(g, &format!("{name}/b3_2"), b3, 192, 3, 2, 0);
    let b7 = cbr(g, &format!("{name}/b7_1"), x, 256, 1, 1, 0);
    let b7 = asym(g, &format!("{name}/b7_2"), b7, 256);
    let b7 = asym(g, &format!("{name}/b7_3"), b7, 320);
    let b7 = cbr(g, &format!("{name}/b7_4"), b7, 320, 3, 2, 0);
    let bp = g.max_pool(&format!("{name}/pool"), x, 3, 2, 0);
    g.concat(&format!("{name}/concat"), &[b3, b7, bp], 1)
}

fn v4_inception_c(g: &mut Graph, name: &str, x: ValueId) -> ValueId {
    let b1 = cbr(g, &format!("{name}/b1x1"), x, 256, 1, 1, 0);
    let b3 = cbr(g, &format!("{name}/b3_1"), x, 384, 1, 1, 0);
    let b3a = asym(g, &format!("{name}/b3_2a"), b3, 256);
    let b3b = asym(g, &format!("{name}/b3_2b"), b3, 256);
    let bd = cbr(g, &format!("{name}/bdbl_1"), x, 384, 1, 1, 0);
    let bd = asym(g, &format!("{name}/bdbl_2"), bd, 448);
    let bd = asym(g, &format!("{name}/bdbl_3"), bd, 512);
    let bda = asym(g, &format!("{name}/bdbl_4a"), bd, 256);
    let bdb = asym(g, &format!("{name}/bdbl_4b"), bd, 256);
    let bp = g.avg_pool(&format!("{name}/pool"), x, 3, 1, 1);
    let bp = cbr(g, &format!("{name}/pool_proj"), bp, 256, 1, 1, 0);
    g.concat(&format!("{name}/concat"), &[b1, b3a, b3b, bda, bdb, bp], 1)
}

/// InceptionV4 with a training batch of `batch` 299×299 images.
pub fn inception_v4(batch: usize) -> Model {
    let mut g = Graph::new("inception_v4");
    let x = g.input("images", Shape::nchw(batch, 3, 299, 299), DType::F32);
    let labels = g.input("labels", Shape::vector(batch), DType::I32);

    // Stem: 299 -> 35, with the V4 concat-mixing structure.
    let mut h = cbr(&mut g, "stem/conv1", x, 32, 3, 2, 0);
    h = cbr(&mut g, "stem/conv2", h, 32, 3, 1, 0);
    h = cbr(&mut g, "stem/conv3", h, 64, 3, 1, 1);
    let p1 = g.max_pool("stem/mix1_pool", h, 3, 2, 0);
    let c1 = cbr(&mut g, "stem/mix1_conv", h, 96, 3, 2, 0);
    h = g.concat("stem/mix1", &[p1, c1], 1);
    let a = cbr(&mut g, "stem/mix2a_1", h, 64, 1, 1, 0);
    let a = cbr(&mut g, "stem/mix2a_2", a, 96, 3, 1, 0);
    let b = cbr(&mut g, "stem/mix2b_1", h, 64, 1, 1, 0);
    let b = asym(&mut g, "stem/mix2b_2", b, 64);
    let b = cbr(&mut g, "stem/mix2b_3", b, 96, 3, 1, 0);
    h = g.concat("stem/mix2", &[a, b], 1);
    let c2 = cbr(&mut g, "stem/mix3_conv", h, 192, 3, 2, 0);
    let p2 = g.max_pool("stem/mix3_pool", h, 3, 2, 0);
    h = g.concat("stem/mix3", &[c2, p2], 1);

    for i in 0..4 {
        h = v4_inception_a(&mut g, &format!("mixed_a{}", i + 1), h);
    }
    h = v4_reduction_a(&mut g, "reduction_a", h);
    for i in 0..7 {
        h = v4_inception_b(&mut g, &format!("mixed_b{}", i + 1), h);
    }
    h = v4_reduction_b(&mut g, "reduction_b", h);
    for i in 0..3 {
        h = v4_inception_c(&mut g, &format!("mixed_c{}", i + 1), h);
    }

    let gap = g.global_avg_pool("gap", h);
    let gap = g.dropout("dropout", gap, 20);
    let logits = g.dense("fc", gap, 1000);
    let loss = g.softmax_cross_entropy("loss", logits, labels);
    Model::finish(g, loss, batch)
}

#[cfg(test)]
mod tests {
    use super::*;
    use capuchin_graph::OpKind;

    #[test]
    fn v3_conv_count_near_94() {
        let m = inception_v3(2);
        let convs = m
            .graph
            .ops()
            .iter()
            .filter(|o| matches!(o.kind, OpKind::Conv2d(_)))
            .count();
        // The paper counts 94 convolution layers in InceptionV3 (Fig. 2);
        // without the auxiliary head we land slightly below.
        assert!((85..=95).contains(&convs), "v3 convs = {convs}");
    }

    #[test]
    fn v3_parameter_count_in_range() {
        let m = inception_v3(2);
        let params = m.graph.param_count();
        // Canonical 23.8M; square-kernel stand-ins inflate slightly.
        assert!(
            (21_000_000..33_000_000).contains(&params),
            "v3 params = {params}"
        );
    }

    #[test]
    fn v3_grid_sizes() {
        let m = inception_v3(2);
        let find = |name: &str| {
            m.graph
                .values()
                .iter()
                .find(|v| v.name == name)
                .unwrap_or_else(|| panic!("{name} missing"))
                .shape
                .clone()
        };
        assert_eq!(find("mixed_a3/concat/out").dims()[2..], [35, 35]);
        assert_eq!(find("mixed_b4/concat/out").dims()[2..], [17, 17]);
        assert_eq!(find("mixed_c2/concat/out").dims()[2..], [8, 8]);
        assert_eq!(find("mixed_c2/concat/out").dims()[1], 2048);
    }

    #[test]
    fn v4_is_bigger_than_v3() {
        let v3 = inception_v3(1);
        let v4 = inception_v4(1);
        assert!(v4.graph.param_count() > v3.graph.param_count());
        assert!(v4.graph.op_count() > v3.graph.op_count());
    }

    #[test]
    fn v4_final_channels_1536() {
        let m = inception_v4(2);
        let last = m
            .graph
            .values()
            .iter()
            .find(|v| v.name == "mixed_c3/concat/out")
            .unwrap();
        assert_eq!(last.shape.dim(1), 1536);
        assert_eq!(&last.shape.dims()[2..], &[8, 8]);
    }

    #[test]
    fn both_validate() {
        inception_v3(2).graph.validate().unwrap();
        inception_v4(2).graph.validate().unwrap();
    }
}
